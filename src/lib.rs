//! # hcc — low-overhead concurrency control for partitioned main-memory databases
//!
//! A from-scratch Rust reproduction of Jones, Abadi and Madden, *Low
//! Overhead Concurrency Control for Partitioned Main Memory Databases*
//! (SIGMOD 2010): the H-Store-style execution substrate (single-threaded
//! partitions, central coordinator, two-phase commit, primary/backup
//! replication) and the paper's three concurrency control schemes —
//! **blocking**, **speculative execution**, and **lightweight locking** —
//! plus the OCC variant sketched in its §5.7.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`common`] | ids, virtual time, protocol messages, cost model, stats |
//! | [`storage`] | byte-string KV store and TPC-C tables, both with undo |
//! | [`locking`] | single-threaded lock manager + deadlock detection |
//! | [`core`] | the schedulers, coordinator, client-side 2PC |
//! | [`workloads`] | the paper's microbenchmark and modified TPC-C |
//! | [`sim`] | deterministic discrete-event driver (calibrated to Table 2) |
//! | [`runtime`] | live driver: thread-per-actor and multiplexed backends |
//! | [`model`] | the §6 analytical throughput model |
//!
//! ## Quickstart
//!
//! ```
//! use hcc::prelude::*;
//! use hcc::workloads::micro::{MicroConfig, MicroWorkload};
//!
//! // Two partitions, 10 closed-loop clients, 20% multi-partition
//! // transactions, speculative concurrency control.
//! let micro = MicroConfig { mp_fraction: 0.2, clients: 10, ..Default::default() };
//! let system = SystemConfig::new(Scheme::Speculative)
//!     .with_partitions(2)
//!     .with_clients(10);
//! let sim = SimConfig::new(system)
//!     .with_window(Nanos::from_millis(10), Nanos::from_millis(50));
//! let builder = MicroWorkload::new(micro);
//! let (report, _, _, _) =
//!     Simulation::new(sim, MicroWorkload::new(micro), move |p| builder.build_engine(p)).run();
//! assert!(report.committed > 0);
//! println!("{}", report.summary());
//! ```
//!
//! See `examples/` for the threaded runtime, TPC-C, and scheme-selection
//! walkthroughs, and `crates/bench` for the harness that regenerates every
//! figure and table of the paper.

pub use hcc_common as common;
pub use hcc_core as core;
pub use hcc_locking as locking;
pub use hcc_model as model;
pub use hcc_runtime as runtime;
pub use hcc_sim as sim;
pub use hcc_storage as storage;
pub use hcc_workloads as workloads;

/// The types most programs need.
pub mod prelude {
    pub use hcc_common::{
        AbortReason, AdaptiveConfig, AdaptiveStats, ClientId, CommitRecord, CoordinatorRef,
        CostModel, Decision, DurabilityConfig, FailurePlan, FragmentResponse, FragmentTask,
        LockKey, LogEncode, Nanos, PartitionId, RetryConfig, Scheme, SystemConfig, TxnId,
        TxnResult,
    };
    pub use hcc_core::{
        make_scheduler, ExecOutcome, ExecutionEngine, Outbox, PartitionOut, Procedure, ReplicaCore,
        ReplicationSession, Request, RequestGenerator, RoundOutputs, Scheduler, Step,
    };
    pub use hcc_runtime::{
        run, Backend, BackendChoice, MultiplexedBackend, RunMode, RuntimeConfig, RuntimeReport,
        ThreadedBackend,
    };
    pub use hcc_sim::{SimConfig, SimFailover, SimReport, Simulation};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        use crate::prelude::*;
        let cfg = SystemConfig::new(Scheme::Speculative);
        assert_eq!(cfg.scheme, Scheme::Speculative);
        let _ = CostModel::default();
    }
}
