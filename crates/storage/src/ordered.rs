//! An ordered key view over a hash-table store, for range scans.
//!
//! The paper's microbenchmark engine is a pure hash table: every
//! fragment is a point read or write, so nothing in the seed system can
//! express a *range* — yet fragment length is exactly the axis §5 says
//! separates blocking from speculation (long fragments hold partitions
//! hostage under blocking and make mis-speculation expensive). The
//! ordered view makes scans a first-class storage operation:
//! [`crate::KvStore`] keeps an [`OrderedIndex`] of its keys in byte
//! order next to the open-addressing [`crate::Table`], maintained by
//! every mutation path — including undo replay, so rollback and the
//! birth-ordered committed-state `snapshot()` (§3.3 recovery) preserve
//! the index exactly.
//!
//! Since the vertical-scale PR the index is backed by a **lock-free
//! skiplist** ([`crate::skiplist::SkipList`]) instead of a `BTreeSet`:
//! every operation takes `&self`, scans are epoch-pinned instead of
//! copying, and concurrent readers never serialize against writers. In
//! unit-test builds every index carries a `BTreeSet` **differential
//! oracle** — a shadow copy checked after each mutation — so any
//! divergence between the skiplist and the reference semantics fails
//! loudly in the storage test suite while costing release builds nothing.
//!
//! The index is opt-in: engines that never scan (the paper's original
//! microbenchmark, the point-read YCSB-B mix) pay nothing, which keeps
//! the golden fixed-seed results and the hot-path numbers untouched.

use crate::skiplist::SkipList;
use bytes::Bytes;

/// A sorted set of the keys present in a store, in lexicographic byte
/// order. Values stay in the hash table; a scan walks the index and
/// probes the table per member.
#[derive(Debug, Default)]
pub struct OrderedIndex {
    keys: SkipList,
    /// Differential oracle: the previous `BTreeSet` implementation, kept
    /// in lockstep and compared after every mutation (unit tests only).
    #[cfg(test)]
    oracle: parking_lot::Mutex<std::collections::BTreeSet<Bytes>>,
}

impl OrderedIndex {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    #[inline]
    pub fn insert(&self, key: Bytes) {
        #[cfg(test)]
        self.oracle.lock().insert(key.clone());
        self.keys.insert(key);
        #[cfg(test)]
        self.assert_matches_oracle_len();
    }

    #[inline]
    pub fn remove(&self, key: &[u8]) {
        #[cfg(test)]
        self.oracle.lock().remove(key);
        self.keys.remove(key);
        #[cfg(test)]
        self.assert_matches_oracle_len();
    }

    #[inline]
    pub fn contains(&self, key: &[u8]) -> bool {
        self.keys.contains(key)
    }

    /// Keys in `[start, end)`, ascending. An empty or inverted range
    /// yields nothing. Yields owned [`Bytes`] (refcount bumps): the
    /// iterator holds an epoch pin, not a lock, so concurrent writers
    /// are never blocked by an in-progress scan.
    pub fn range(&self, start: &[u8], end: &[u8]) -> impl Iterator<Item = Bytes> + '_ {
        // An inverted range yields nothing (BTreeSet::range would panic).
        let end = if end < start { start } else { end };
        self.keys.range_from(start, Some(end))
    }

    /// All keys, ascending.
    pub fn iter(&self) -> impl Iterator<Item = Bytes> + '_ {
        self.keys.iter()
    }

    /// Raw index-contention counter (failed CAS attempts on this index).
    pub fn cas_retries(&self) -> u64 {
        self.keys.cas_retries()
    }

    /// Cheap per-mutation oracle check: cardinality must always agree.
    #[cfg(test)]
    fn assert_matches_oracle_len(&self) {
        let oracle_len = self.oracle.lock().len();
        assert_eq!(
            self.keys.len(),
            oracle_len,
            "skiplist/BTree cardinality diverged"
        );
    }

    /// Full differential check against the `BTreeSet` oracle: identical
    /// membership in identical order.
    #[cfg(test)]
    pub fn verify_against_oracle(&self) {
        let expect: Vec<Bytes> = self.oracle.lock().iter().cloned().collect();
        let got: Vec<Bytes> = self.keys.iter().collect();
        assert_eq!(got, expect, "skiplist iteration diverged from BTree oracle");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    #[test]
    fn range_is_half_open_and_sorted() {
        let ix = OrderedIndex::new();
        for k in [&b"c"[..], b"a", b"e", b"b", b"d"] {
            ix.insert(b(k));
        }
        let got: Vec<_> = ix.range(b"b", b"e").map(|k| k.to_vec()).collect();
        assert_eq!(got, vec![b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]);
        ix.verify_against_oracle();
    }

    #[test]
    fn inverted_and_empty_ranges_yield_nothing() {
        let ix = OrderedIndex::new();
        ix.insert(b(b"m"));
        assert_eq!(ix.range(b"z", b"a").count(), 0);
        assert_eq!(ix.range(b"m", b"m").count(), 0);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let ix = OrderedIndex::new();
        ix.insert(b(b"k"));
        assert!(ix.contains(b"k"));
        ix.insert(b(b"k"));
        assert_eq!(ix.len(), 1, "duplicate inserts collapse");
        ix.remove(b"k");
        assert!(ix.is_empty());
        ix.remove(b"k"); // idempotent
        ix.verify_against_oracle();
    }

    #[test]
    fn randomized_differential_against_btree_oracle() {
        // Seeded mixed workload: every mutation keeps the shadow BTree in
        // lockstep (see `insert`/`remove`), and the full-order comparison
        // runs periodically plus at the end.
        let ix = OrderedIndex::new();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for step in 0..20_000u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = ((x >> 24) % 512) as u16;
            let key = Bytes::copy_from_slice(&key.to_be_bytes());
            if (x >> 60).is_multiple_of(3) {
                ix.remove(&key);
            } else {
                ix.insert(key);
            }
            if step % 4096 == 0 {
                ix.verify_against_oracle();
            }
        }
        ix.verify_against_oracle();

        // Range queries agree with the oracle's view too.
        let lo = 100u16.to_be_bytes();
        let hi = 300u16.to_be_bytes();
        let got: Vec<Bytes> = ix.range(&lo, &hi).collect();
        let expect: Vec<Bytes> = ix
            .oracle
            .lock()
            .iter()
            .filter(|k| ***k >= lo[..] && ***k < hi[..])
            .cloned()
            .collect();
        assert_eq!(got, expect);
    }
}
