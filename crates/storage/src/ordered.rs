//! An ordered key view over a hash-table store, for range scans.
//!
//! The paper's microbenchmark engine is a pure hash table: every
//! fragment is a point read or write, so nothing in the seed system can
//! express a *range* — yet fragment length is exactly the axis §5 says
//! separates blocking from speculation (long fragments hold partitions
//! hostage under blocking and make mis-speculation expensive). The
//! ordered view makes scans a first-class storage operation:
//! [`crate::KvStore`] keeps an [`OrderedIndex`] of its keys in byte
//! order next to the open-addressing [`crate::Table`], maintained by
//! every mutation path — including undo replay, so rollback and the
//! birth-ordered committed-state `snapshot()` (§3.3 recovery) preserve
//! the index exactly.
//!
//! The index is opt-in: engines that never scan (the paper's original
//! microbenchmark, the point-read YCSB-B mix) pay nothing, which keeps
//! the golden fixed-seed results and the hot-path numbers untouched.

use bytes::Bytes;
use std::collections::BTreeSet;
use std::ops::Bound;

/// A sorted set of the keys present in a store, in lexicographic byte
/// order. Values stay in the hash table; a scan walks the index and
/// probes the table per member.
#[derive(Debug, Default, Clone)]
pub struct OrderedIndex {
    keys: BTreeSet<Bytes>,
}

impl OrderedIndex {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    #[inline]
    pub fn insert(&mut self, key: Bytes) {
        self.keys.insert(key);
    }

    #[inline]
    pub fn remove(&mut self, key: &[u8]) {
        self.keys.remove(key);
    }

    #[inline]
    pub fn contains(&self, key: &[u8]) -> bool {
        self.keys.contains(key)
    }

    /// Keys in `[start, end)`, ascending. An empty or inverted range
    /// yields nothing. Allocation-free: the bounds borrow the caller's
    /// slices (`Bytes: Borrow<[u8]> + Ord`), which matters because this
    /// is the per-scan hot path.
    pub fn range<'a>(&'a self, start: &'a [u8], end: &'a [u8]) -> impl Iterator<Item = &'a Bytes> {
        // BTreeSet::range panics on start > end; normalize to empty.
        let end = if end < start { start } else { end };
        self.keys
            .range::<[u8], _>((Bound::Included(start), Bound::Excluded(end)))
    }

    /// All keys, ascending.
    pub fn iter(&self) -> impl Iterator<Item = &Bytes> {
        self.keys.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    #[test]
    fn range_is_half_open_and_sorted() {
        let mut ix = OrderedIndex::new();
        for k in [&b"c"[..], b"a", b"e", b"b", b"d"] {
            ix.insert(b(k));
        }
        let got: Vec<_> = ix.range(b"b", b"e").map(|k| k.to_vec()).collect();
        assert_eq!(got, vec![b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]);
    }

    #[test]
    fn inverted_and_empty_ranges_yield_nothing() {
        let mut ix = OrderedIndex::new();
        ix.insert(b(b"m"));
        assert_eq!(ix.range(b"z", b"a").count(), 0);
        assert_eq!(ix.range(b"m", b"m").count(), 0);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut ix = OrderedIndex::new();
        ix.insert(b(b"k"));
        assert!(ix.contains(b"k"));
        ix.insert(b(b"k"));
        assert_eq!(ix.len(), 1, "duplicate inserts collapse");
        ix.remove(b"k");
        assert!(ix.is_empty());
        ix.remove(b"k"); // idempotent
    }
}
