//! A small table abstraction over a fast-hash open-addressing map.
//!
//! `Table` is the storage primitive behind [`crate::KvStore`]: byte-string
//! keys and values in std's SwissTable (open addressing, quadratic
//! probing) with the Fx hash function from `hcc_common::hash` instead of
//! SipHash. For the microbenchmark's 8-byte keys this cuts the per-probe
//! cost to a few cycles, which is most of what the paper's
//! single-partition fast path does.

use bytes::Bytes;
use hcc_common::FxHashMap;

/// A byte-string → byte-string hash table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    map: FxHashMap<Bytes, Bytes>,
}

impl Table {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size for `n` rows (the loaders know the row count up front, so
    /// steady state never rehashes).
    pub fn with_capacity(n: usize) -> Self {
        Table {
            map: FxHashMap::with_capacity_and_hasher(n, Default::default()),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    #[inline]
    pub fn get(&self, key: &[u8]) -> Option<&Bytes> {
        self.map.get(key)
    }

    /// As [`get`](Table::get), but also returns the table's own key —
    /// scans yield borrowed rows while walking an index that hands out
    /// owned keys.
    #[inline]
    pub fn get_key_value(&self, key: &[u8]) -> Option<(&Bytes, &Bytes)> {
        self.map.get_key_value(key)
    }

    /// Mutable access to an existing row — the probe-once path for
    /// read-modify-write, which would otherwise hash the key twice.
    #[inline]
    pub fn get_mut(&mut self, key: &[u8]) -> Option<&mut Bytes> {
        self.map.get_mut(key)
    }

    #[inline]
    pub fn insert(&mut self, key: Bytes, value: Bytes) -> Option<Bytes> {
        self.map.insert(key, value)
    }

    #[inline]
    pub fn remove(&mut self, key: &[u8]) -> Option<Bytes> {
        self.map.remove(key)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Bytes, &Bytes)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    #[test]
    fn basic_ops() {
        let mut t = Table::with_capacity(4);
        assert!(t.is_empty());
        assert_eq!(t.insert(b(b"k"), b(b"v1")), None);
        assert_eq!(t.insert(b(b"k"), b(b"v2")), Some(b(b"v1")));
        assert_eq!(t.get(b"k"), Some(&b(b"v2")));
        *t.get_mut(b"k").unwrap() = b(b"v3");
        assert_eq!(t.remove(b"k"), Some(b(b"v3")));
        assert_eq!(t.len(), 0);
    }
}
