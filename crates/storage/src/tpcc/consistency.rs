//! TPC-C consistency conditions (clause 3.3.2), used by integration tests
//! to verify that concurrent histories leave the database in a state some
//! serial history could have produced.
//!
//! Implemented conditions (those meaningful for our workload surface):
//!
//! 1. `W_YTD = Σ D_YTD` for each warehouse.
//! 2. `D_NEXT_O_ID - 1 = max(O_ID) = max(NO_O_ID)` per district.
//! 3. NEW-ORDER rows per district form a contiguous range of order ids.
//! 4. `Σ O_OL_CNT = count(ORDER-LINE)` per district.
//! 5. Every NEW-ORDER row has a matching ORDER row with no carrier, and
//!    every delivered order has a carrier.
//! 6. Order lines exist exactly for `1..=O_OL_CNT` of each order.

use super::schema::OId;
use super::store::TpccStore;

/// A consistency violation, described for test failure messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub condition: &'static str,
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.condition, self.detail)
    }
}

/// Check all supported consistency conditions; `Err` carries every
/// violation found.
pub fn check(store: &TpccStore) -> Result<(), Vec<Violation>> {
    let mut violations = Vec::new();

    // Condition 1: warehouse YTD equals the sum of its districts' YTD.
    for (w_id, w) in &store.warehouse {
        let d_sum: i64 = store
            .district
            .iter()
            .filter(|((dw, _), _)| dw == w_id)
            .map(|(_, d)| d.ytd_cents)
            .sum();
        if w.ytd_cents != d_sum {
            violations.push(Violation {
                condition: "C1:w_ytd",
                detail: format!(
                    "warehouse {w_id}: W_YTD={} but Σ D_YTD={d_sum}",
                    w.ytd_cents
                ),
            });
        }
    }

    for ((w_id, d_id), d) in &store.district {
        let max_o = store
            .order
            .keys()
            .filter(|(ow, od, _)| ow == w_id && od == d_id)
            .map(|(_, _, o)| *o)
            .max()
            .unwrap_or(0);
        // Condition 2: next_o_id is one past the newest order.
        if d.next_o_id != max_o + 1 {
            violations.push(Violation {
                condition: "C2:next_o_id",
                detail: format!(
                    "district ({w_id},{d_id}): next_o_id={} but max(O_ID)={max_o}",
                    d.next_o_id
                ),
            });
        }

        // Condition 3: NEW-ORDER ids contiguous.
        let no_ids: Vec<OId> = store
            .new_order
            .range((*w_id, *d_id, 0)..=(*w_id, *d_id, OId::MAX))
            .map(|((_, _, o), ())| *o)
            .collect();
        if let (Some(&first), Some(&last)) = (no_ids.first(), no_ids.last()) {
            if no_ids.len() as u32 != last - first + 1 {
                violations.push(Violation {
                    condition: "C3:new_order_contiguous",
                    detail: format!(
                        "district ({w_id},{d_id}): {} NEW-ORDER rows span [{first},{last}]",
                        no_ids.len()
                    ),
                });
            }
        }

        // Condition 4: Σ ol_cnt matches the order-line count.
        let ol_cnt_sum: u64 = store
            .order
            .iter()
            .filter(|((ow, od, _), _)| ow == w_id && od == d_id)
            .map(|(_, o)| o.ol_cnt as u64)
            .sum();
        let ol_rows = store
            .order_line
            .range((*w_id, *d_id, 0, 0)..=(*w_id, *d_id, OId::MAX, u8::MAX))
            .count() as u64;
        if ol_cnt_sum != ol_rows {
            violations.push(Violation {
                condition: "C4:order_line_count",
                detail: format!(
                    "district ({w_id},{d_id}): Σ O_OL_CNT={ol_cnt_sum} but {ol_rows} ORDER-LINE rows"
                ),
            });
        }
    }

    // Condition 5: NEW-ORDER rows pair with undelivered orders.
    for ((w, d, o), ()) in store.new_order.iter() {
        match store.order.get(&(*w, *d, *o)) {
            None => violations.push(Violation {
                condition: "C5:new_order_has_order",
                detail: format!("NEW-ORDER ({w},{d},{o}) has no ORDER row"),
            }),
            Some(ord) if ord.carrier_id.is_some() => violations.push(Violation {
                condition: "C5:new_order_undelivered",
                detail: format!("NEW-ORDER ({w},{d},{o}) exists but order has a carrier"),
            }),
            _ => {}
        }
    }

    // Condition 6: each order's lines are exactly 1..=ol_cnt.
    for ((w, d, o), ord) in store.order.iter() {
        let lines: Vec<u8> = store
            .order_line
            .range((*w, *d, *o, 0)..=(*w, *d, *o, u8::MAX))
            .map(|((_, _, _, n), _)| *n)
            .collect();
        let expect: Vec<u8> = (1..=ord.ol_cnt).collect();
        if lines != expect {
            violations.push(Violation {
                condition: "C6:order_lines_complete",
                detail: format!(
                    "order ({w},{d},{o}): ol_cnt={} but lines {:?}",
                    ord.ol_cnt, lines
                ),
            });
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::super::loader::load_partition;
    use super::super::scale::TpccScale;
    use super::super::store::TpccStore;
    use super::*;

    fn store() -> TpccStore {
        let mut s = TpccStore::new();
        load_partition(&mut s, &[1], 1, &TpccScale::tiny(), 3);
        s
    }

    #[test]
    fn fresh_load_is_consistent() {
        assert!(check(&store()).is_ok());
    }

    #[test]
    fn detects_w_ytd_mismatch() {
        let mut s = store();
        s.update_warehouse(1, None, |w| w.ytd_cents += 1);
        let errs = check(&s).unwrap_err();
        assert!(errs.iter().any(|v| v.condition == "C1:w_ytd"));
    }

    #[test]
    fn detects_next_o_id_mismatch() {
        let mut s = store();
        s.update_district(1, 1, None, |d| d.next_o_id += 5);
        let errs = check(&s).unwrap_err();
        assert!(errs.iter().any(|v| v.condition == "C2:next_o_id"));
    }

    #[test]
    fn detects_dangling_new_order() {
        let mut s = store();
        s.insert_new_order((1, 1, 9999), None);
        let errs = check(&s).unwrap_err();
        assert!(errs.iter().any(|v| v.condition.starts_with("C5")));
    }

    #[test]
    fn detects_missing_order_line() {
        let mut s = store();
        let key = *s.order_line.keys().next().unwrap();
        s.order_line.remove(&key);
        let errs = check(&s).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| v.condition == "C4:order_line_count"
                || v.condition == "C6:order_lines_complete"));
    }

    #[test]
    fn detects_delivered_order_still_in_new_order() {
        let mut s = store();
        let (w, d, o) = *s.new_order.keys().next().unwrap();
        s.update_order((w, d, o), None, |ord| ord.carrier_id = Some(1));
        let errs = check(&s).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| v.condition == "C5:new_order_undelivered"));
    }

    #[test]
    fn violation_display() {
        let v = Violation {
            condition: "C1:w_ytd",
            detail: "oops".into(),
        };
        assert_eq!(v.to_string(), "[C1:w_ytd] oops");
    }
}
