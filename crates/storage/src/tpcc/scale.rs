//! TPC-C scaling parameters.
//!
//! The full TPC-C cardinalities (100 000 items, 3 000 customers per
//! district) are supported, but the default scale divides the per-row
//! cardinalities by ten. The paper's results depend on transaction *shape*
//! (how many rows are touched, which partitions participate), not on table
//! sizes — the simulator charges CPU per logical operation — so the scaled
//! database reproduces the same curves while loading fast enough to run
//! full parameter sweeps.

/// Cardinalities and non-uniform-random constants for TPC-C data.
#[derive(Debug, Clone, Copy)]
pub struct TpccScale {
    pub districts_per_warehouse: u8,
    pub customers_per_district: u32,
    pub items: u32,
    /// Initial orders loaded per district (customers_per_district in the
    /// spec); the most recent ~30% are undelivered (rows in NEW-ORDER).
    pub initial_orders_per_district: u32,
    /// NURand `A` constant for customer-id selection.
    pub nurand_a_c_id: u64,
    /// NURand `A` constant for item-id selection.
    pub nurand_a_i_id: u64,
    /// NURand `A` constant for last-name selection (over name numbers
    /// 0..=`max_name_number`-1).
    pub nurand_a_name: u64,
    /// Number of distinct last-name numbers in use (≤ 1000).
    pub max_name_number: u64,
}

impl TpccScale {
    /// Full TPC-C cardinalities (clause 1.2 / 4.3).
    pub fn full() -> Self {
        TpccScale {
            districts_per_warehouse: 10,
            customers_per_district: 3000,
            items: 100_000,
            initial_orders_per_district: 3000,
            nurand_a_c_id: 1023,
            nurand_a_i_id: 8191,
            nurand_a_name: 255,
            max_name_number: 1000,
        }
    }

    /// Default: cardinalities ÷ 10, NURand constants rescaled to keep the
    /// same skew profile relative to the range.
    pub fn default_scaled() -> Self {
        TpccScale {
            districts_per_warehouse: 10,
            customers_per_district: 300,
            items: 10_000,
            initial_orders_per_district: 300,
            nurand_a_c_id: 127,
            nurand_a_i_id: 1023,
            nurand_a_name: 255,
            max_name_number: 300,
        }
    }

    /// Tiny scale for unit tests: loads in microseconds.
    pub fn tiny() -> Self {
        TpccScale {
            districts_per_warehouse: 2,
            customers_per_district: 30,
            items: 100,
            initial_orders_per_district: 30,
            nurand_a_c_id: 15,
            nurand_a_i_id: 63,
            nurand_a_name: 31,
            max_name_number: 30,
        }
    }
}

impl Default for TpccScale {
    fn default() -> Self {
        TpccScale::default_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_spec() {
        let s = TpccScale::full();
        assert_eq!(s.items, 100_000);
        assert_eq!(s.customers_per_district, 3000);
        assert_eq!(s.districts_per_warehouse, 10);
        assert_eq!(s.nurand_a_c_id, 1023);
        assert_eq!(s.nurand_a_i_id, 8191);
    }

    #[test]
    fn nurand_constants_cover_range() {
        // The spec's own constants satisfy A ≈ range/3 (c_id) and
        // A ≈ range/12 (i_id); check ours keep at least that coverage.
        for s in [
            TpccScale::full(),
            TpccScale::default_scaled(),
            TpccScale::tiny(),
        ] {
            assert!(s.nurand_a_c_id * 4 >= s.customers_per_district as u64);
            assert!(s.nurand_a_i_id * 16 >= s.items as u64);
        }
    }
}
