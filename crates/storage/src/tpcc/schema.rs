//! TPC-C row types and keys.
//!
//! Monetary amounts are stored as integer cents (`i64`) and rates (tax,
//! discount) as basis points (`u32`, 1 bp = 0.01%), keeping all arithmetic
//! exact and deterministic across platforms — important because the
//! serializability tests compare replica state bit-for-bit.

pub type WId = u32;
pub type DId = u8;
pub type CId = u32;
pub type IId = u32;
pub type OId = u32;

/// Composite keys.
pub type DistrictKey = (WId, DId);
pub type CustomerKey = (WId, DId, CId);
pub type OrderKey = (WId, DId, OId);
pub type OrderLineKey = (WId, DId, OId, u8);
pub type StockKey = (WId, IId);

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warehouse {
    pub w_id: WId,
    pub name: String,
    pub street_1: String,
    pub street_2: String,
    pub city: String,
    pub state: String,
    pub zip: String,
    /// Sales tax in basis points (0..=2000 ⇒ 0%..20%).
    pub tax_bp: u32,
    pub ytd_cents: i64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct District {
    pub w_id: WId,
    pub d_id: DId,
    pub name: String,
    pub street_1: String,
    pub street_2: String,
    pub city: String,
    pub state: String,
    pub zip: String,
    pub tax_bp: u32,
    pub ytd_cents: i64,
    /// Next available order number for this district.
    pub next_o_id: OId,
}

/// Customer credit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Credit {
    Good,
    Bad,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Customer {
    pub w_id: WId,
    pub d_id: DId,
    pub c_id: CId,
    pub first: String,
    pub middle: &'static str,
    pub last: String,
    pub street_1: String,
    pub street_2: String,
    pub city: String,
    pub state: String,
    pub zip: String,
    pub phone: String,
    pub since: u64,
    pub credit: Credit,
    pub credit_lim_cents: i64,
    /// Discount in basis points (0..=5000 ⇒ 0%..50%).
    pub discount_bp: u32,
    pub balance_cents: i64,
    pub ytd_payment_cents: i64,
    pub payment_cnt: u32,
    pub delivery_cnt: u32,
    pub data: String,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct History {
    pub c_id: CId,
    pub c_d_id: DId,
    pub c_w_id: WId,
    pub d_id: DId,
    pub w_id: WId,
    pub date: u64,
    pub amount_cents: i64,
    pub data: String,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Order {
    pub w_id: WId,
    pub d_id: DId,
    pub o_id: OId,
    pub c_id: CId,
    pub entry_d: u64,
    pub carrier_id: Option<u8>,
    pub ol_cnt: u8,
    pub all_local: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderLine {
    pub w_id: WId,
    pub d_id: DId,
    pub o_id: OId,
    pub ol_number: u8,
    pub i_id: IId,
    pub supply_w_id: WId,
    pub delivery_d: Option<u64>,
    pub quantity: u8,
    pub amount_cents: i64,
    pub dist_info: String,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    pub i_id: IId,
    pub im_id: u32,
    pub name: String,
    pub price_cents: i64,
    pub data: String,
}

/// The updatable (partitioned) half of the vertically partitioned STOCK
/// table. Lives only at the owning warehouse's partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StockMut {
    pub quantity: i32,
    pub ytd: u32,
    pub order_cnt: u32,
    pub remote_cnt: u32,
}

/// The read-only (replicated) half of STOCK: the ten per-district info
/// strings and the data column, available at every partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StockInfo {
    pub dists: [String; 10],
    pub data: String,
}

impl StockInfo {
    /// The `S_DIST_xx` string for a district (1-based district id).
    pub fn dist_for(&self, d_id: DId) -> &str {
        &self.dists[(d_id - 1) as usize]
    }
}

/// Lock-key table tags (see `hcc_common::LockKey::packed`). Order tables
/// use a single coarse per-district granule: order numbers are assigned
/// from `District.next_o_id` under the district lock, so per-row order
/// locks would never be contended anyway, and coarse locks are conservative
/// (they can only add conflicts, never miss one).
pub mod lock_tags {
    pub const WAREHOUSE: u8 = 1;
    pub const DISTRICT: u8 = 2;
    pub const CUSTOMER: u8 = 3;
    /// Per-district granule over the *newest* orders: new-order inserts,
    /// order-status/stock-level scans of recent orders.
    pub const ORDERS: u8 = 4;
    pub const STOCK: u8 = 5;
    /// Coarse granule for by-last-name customer lookups.
    pub const CUSTOMER_NAME: u8 = 6;
    /// Per-district granule over the *oldest undelivered* orders: delivery
    /// consumes the NEW-ORDER head. Disjoint from the tail granule —
    /// delivery and new-order never touch the same rows (insert at the
    /// tail vs. delete at the head), so they need not conflict.
    pub const ORDERS_HEAD: u8 = 7;
}

use hcc_common::LockKey;

pub fn warehouse_lock(w: WId) -> LockKey {
    LockKey::packed(lock_tags::WAREHOUSE, w as u64)
}

pub fn district_lock(w: WId, d: DId) -> LockKey {
    LockKey::packed(lock_tags::DISTRICT, ((w as u64) << 8) | d as u64)
}

pub fn customer_lock(w: WId, d: DId, c: CId) -> LockKey {
    LockKey::packed(
        lock_tags::CUSTOMER,
        ((w as u64) << 28) | ((d as u64) << 20) | c as u64,
    )
}

pub fn orders_lock(w: WId, d: DId) -> LockKey {
    LockKey::packed(lock_tags::ORDERS, ((w as u64) << 8) | d as u64)
}

pub fn orders_head_lock(w: WId, d: DId) -> LockKey {
    LockKey::packed(lock_tags::ORDERS_HEAD, ((w as u64) << 8) | d as u64)
}

pub fn stock_lock(w: WId, i: IId) -> LockKey {
    LockKey::packed(lock_tags::STOCK, ((w as u64) << 24) | i as u64)
}

pub fn customer_name_lock(w: WId, d: DId, name_hash: u32) -> LockKey {
    LockKey::packed(
        lock_tags::CUSTOMER_NAME,
        ((w as u64) << 40) | ((d as u64) << 32) | name_hash as u64,
    )
}

/// The ten TPC-C last-name syllables (clause 4.3.2.3).
pub const LAST_NAME_SYLLABLES: [&str; 10] = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
];

/// Build a customer last name from a number in 0..=999.
pub fn last_name(num: u64) -> String {
    debug_assert!(num < 1000);
    let mut s = String::with_capacity(15);
    s.push_str(LAST_NAME_SYLLABLES[(num / 100 % 10) as usize]);
    s.push_str(LAST_NAME_SYLLABLES[(num / 10 % 10) as usize]);
    s.push_str(LAST_NAME_SYLLABLES[(num % 10) as usize]);
    s
}

/// FNV-1a of a last name, for the coarse name-lock granule.
pub fn name_hash(last: &str) -> u32 {
    let mut h = 0x811c_9dc5u32;
    for &b in last.as_bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h & 0x0FFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_name_composition() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
    }

    #[test]
    fn lock_keys_distinct_across_tables() {
        let keys = [
            warehouse_lock(1),
            district_lock(1, 1),
            customer_lock(1, 1, 1),
            orders_lock(1, 1),
            stock_lock(1, 1),
            customer_name_lock(1, 1, 1),
        ];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "collision between {i} and {j}");
            }
        }
    }

    #[test]
    fn district_lock_separates_districts() {
        assert_ne!(district_lock(1, 1), district_lock(1, 2));
        assert_ne!(district_lock(1, 1), district_lock(2, 1));
    }

    #[test]
    fn stock_lock_separates_items() {
        assert_ne!(stock_lock(1, 10), stock_lock(1, 11));
        assert_ne!(stock_lock(1, 10), stock_lock(2, 10));
    }

    #[test]
    fn stock_info_dist_for() {
        let info = StockInfo {
            dists: std::array::from_fn(|i| format!("dist{i}")),
            data: String::new(),
        };
        assert_eq!(info.dist_for(1), "dist0");
        assert_eq!(info.dist_for(10), "dist9");
    }
}
