//! The per-partition TPC-C store: tables, indexes, and undo.
//!
//! Table representations follow the paper ("Each table is represented as
//! either a B-Tree, a binary tree, or hash table, as appropriate"):
//! point-lookup tables (WAREHOUSE, DISTRICT, CUSTOMER, ITEM, STOCK) are hash
//! maps; range-scanned tables (ORDER-by-customer, NEW-ORDER, ORDER-LINE) are
//! B-trees. A secondary index maps (warehouse, district, last name) to the
//! customer ids sharing that name, for the 60% of Payment / Order-Status
//! transactions that select customers by last name.

use super::schema::*;
use hcc_common::FxHashMap;
use std::collections::BTreeMap;

/// One undoable mutation. Pre-image variants store the full prior row;
/// insert variants store the key to remove.
#[derive(Debug, Clone)]
pub enum TpccUndo {
    WarehousePre(Warehouse),
    DistrictPre(District),
    CustomerPre(Box<Customer>),
    StockPre(StockKey, StockMut),
    OrderInserted(OrderKey, CId),
    OrderPre(Box<Order>),
    OrderLineInserted(OrderLineKey),
    OrderLinePre(Box<OrderLine>),
    NewOrderInserted(OrderKey),
    NewOrderDeleted(OrderKey),
    HistoryAppended,
}

/// A per-transaction undo buffer.
#[derive(Debug, Default)]
pub struct TpccUndoBuf {
    records: Vec<TpccUndo>,
    /// Engine-assigned creation order among live buffers; see
    /// `KvUndo::birth` for the snapshot ordering contract.
    pub birth: u64,
}

impl TpccUndoBuf {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drop all records, keeping the allocation for reuse (buffer pools).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Pre-size for a transaction of `n` mutations.
    pub fn reserve(&mut self, n: usize) {
        self.records.reserve(n);
    }
}

/// All TPC-C state owned by one partition.
#[derive(Debug, Default, Clone)]
pub struct TpccStore {
    /// Warehouse ids whose partitioned data lives here.
    pub local_warehouses: Vec<WId>,
    pub warehouse: FxHashMap<WId, Warehouse>,
    pub district: FxHashMap<DistrictKey, District>,
    pub customer: FxHashMap<CustomerKey, Customer>,
    /// Secondary index: (w, d, last name) → customer ids, sorted by first
    /// name (clause 2.5.2.2 requires "ordered by C_FIRST").
    pub customer_by_name: FxHashMap<(WId, DId, String), Vec<CId>>,
    pub history: Vec<History>,
    pub order: FxHashMap<OrderKey, Order>,
    /// Secondary index for "most recent order of a customer".
    pub order_by_customer: BTreeMap<(WId, DId, CId, OId), ()>,
    pub new_order: BTreeMap<OrderKey, ()>,
    pub order_line: BTreeMap<OrderLineKey, OrderLine>,
    /// Replicated, read-only.
    pub item: FxHashMap<IId, Item>,
    /// Partitioned, updatable half of STOCK (local warehouses only).
    pub stock: FxHashMap<StockKey, StockMut>,
    /// Replicated, read-only half of STOCK (all warehouses).
    pub stock_info: FxHashMap<StockKey, StockInfo>,
}

impl TpccStore {
    pub fn new() -> Self {
        Self::default()
    }

    fn push_undo(undo: Option<&mut TpccUndoBuf>, rec: TpccUndo) {
        if let Some(u) = undo {
            u.records.push(rec);
        }
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    pub fn warehouse(&self, w: WId) -> Option<&Warehouse> {
        self.warehouse.get(&w)
    }

    pub fn district(&self, w: WId, d: DId) -> Option<&District> {
        self.district.get(&(w, d))
    }

    pub fn customer(&self, w: WId, d: DId, c: CId) -> Option<&Customer> {
        self.customer.get(&(w, d, c))
    }

    pub fn item(&self, i: IId) -> Option<&Item> {
        self.item.get(&i)
    }

    pub fn stock_mut_row(&self, w: WId, i: IId) -> Option<&StockMut> {
        self.stock.get(&(w, i))
    }

    pub fn stock_info_row(&self, w: WId, i: IId) -> Option<&StockInfo> {
        self.stock_info.get(&(w, i))
    }

    /// Customer ids with the given last name, sorted by first name.
    pub fn customers_by_last_name(&self, w: WId, d: DId, last: &str) -> &[CId] {
        self.customer_by_name
            .get(&(w, d, last.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The spec's "customer at position ⌈n/2⌉ in the list sorted by first
    /// name" rule for by-name selection (clause 2.5.2.2).
    pub fn customer_by_name_midpoint(&self, w: WId, d: DId, last: &str) -> Option<CId> {
        let ids = self.customers_by_last_name(w, d, last);
        if ids.is_empty() {
            None
        } else {
            Some(ids[ids.len().div_ceil(2) - 1])
        }
    }

    /// Most recent order placed by a customer.
    pub fn last_order_of(&self, w: WId, d: DId, c: CId) -> Option<&Order> {
        self.order_by_customer
            .range((w, d, c, 0)..=(w, d, c, OId::MAX))
            .next_back()
            .and_then(|((ow, od, _, oid), ())| self.order.get(&(*ow, *od, *oid)))
    }

    /// Oldest undelivered order in a district (head of NEW-ORDER).
    pub fn oldest_new_order(&self, w: WId, d: DId) -> Option<OId> {
        self.new_order
            .range((w, d, 0)..=(w, d, OId::MAX))
            .next()
            .map(|((_, _, o), ())| *o)
    }

    /// All order lines of one order.
    pub fn order_lines(&self, w: WId, d: DId, o: OId) -> impl Iterator<Item = &OrderLine> {
        self.order_line
            .range((w, d, o, 0)..=(w, d, o, u8::MAX))
            .map(|(_, ol)| ol)
    }

    /// Order lines of the last `n` orders before `next_o_id` (Stock-Level).
    pub fn recent_order_lines(
        &self,
        w: WId,
        d: DId,
        next_o_id: OId,
        n: u32,
    ) -> impl Iterator<Item = &OrderLine> {
        let lo = next_o_id.saturating_sub(n);
        self.order_line
            .range((w, d, lo, 0)..(w, d, next_o_id, 0))
            .map(|(_, ol)| ol)
    }

    // ------------------------------------------------------------------
    // Mutations (all optionally undo-logged)
    // ------------------------------------------------------------------

    /// Apply `f` to the warehouse row, recording the pre-image.
    pub fn update_warehouse(
        &mut self,
        w: WId,
        undo: Option<&mut TpccUndoBuf>,
        f: impl FnOnce(&mut Warehouse),
    ) -> bool {
        match self.warehouse.get_mut(&w) {
            Some(row) => {
                Self::push_undo(undo, TpccUndo::WarehousePre(row.clone()));
                f(row);
                true
            }
            None => false,
        }
    }

    pub fn update_district(
        &mut self,
        w: WId,
        d: DId,
        undo: Option<&mut TpccUndoBuf>,
        f: impl FnOnce(&mut District),
    ) -> bool {
        match self.district.get_mut(&(w, d)) {
            Some(row) => {
                Self::push_undo(undo, TpccUndo::DistrictPre(row.clone()));
                f(row);
                true
            }
            None => false,
        }
    }

    pub fn update_customer(
        &mut self,
        w: WId,
        d: DId,
        c: CId,
        undo: Option<&mut TpccUndoBuf>,
        f: impl FnOnce(&mut Customer),
    ) -> bool {
        match self.customer.get_mut(&(w, d, c)) {
            Some(row) => {
                Self::push_undo(undo, TpccUndo::CustomerPre(Box::new(row.clone())));
                f(row);
                true
            }
            None => false,
        }
    }

    pub fn update_stock(
        &mut self,
        w: WId,
        i: IId,
        undo: Option<&mut TpccUndoBuf>,
        f: impl FnOnce(&mut StockMut),
    ) -> bool {
        match self.stock.get_mut(&(w, i)) {
            Some(row) => {
                Self::push_undo(undo, TpccUndo::StockPre((w, i), *row));
                f(row);
                true
            }
            None => false,
        }
    }

    pub fn update_order(
        &mut self,
        key: OrderKey,
        undo: Option<&mut TpccUndoBuf>,
        f: impl FnOnce(&mut Order),
    ) -> bool {
        match self.order.get_mut(&key) {
            Some(row) => {
                Self::push_undo(undo, TpccUndo::OrderPre(Box::new(row.clone())));
                f(row);
                true
            }
            None => false,
        }
    }

    pub fn update_order_line(
        &mut self,
        key: OrderLineKey,
        undo: Option<&mut TpccUndoBuf>,
        f: impl FnOnce(&mut OrderLine),
    ) -> bool {
        match self.order_line.get_mut(&key) {
            Some(row) => {
                Self::push_undo(undo, TpccUndo::OrderLinePre(Box::new(row.clone())));
                f(row);
                true
            }
            None => false,
        }
    }

    pub fn insert_order(&mut self, row: Order, undo: Option<&mut TpccUndoBuf>) {
        let key = (row.w_id, row.d_id, row.o_id);
        Self::push_undo(undo, TpccUndo::OrderInserted(key, row.c_id));
        self.order_by_customer
            .insert((row.w_id, row.d_id, row.c_id, row.o_id), ());
        self.order.insert(key, row);
    }

    pub fn insert_order_line(&mut self, row: OrderLine, undo: Option<&mut TpccUndoBuf>) {
        let key = (row.w_id, row.d_id, row.o_id, row.ol_number);
        Self::push_undo(undo, TpccUndo::OrderLineInserted(key));
        self.order_line.insert(key, row);
    }

    pub fn insert_new_order(&mut self, key: OrderKey, undo: Option<&mut TpccUndoBuf>) {
        Self::push_undo(undo, TpccUndo::NewOrderInserted(key));
        self.new_order.insert(key, ());
    }

    pub fn delete_new_order(&mut self, key: OrderKey, undo: Option<&mut TpccUndoBuf>) -> bool {
        if self.new_order.remove(&key).is_some() {
            Self::push_undo(undo, TpccUndo::NewOrderDeleted(key));
            true
        } else {
            false
        }
    }

    pub fn append_history(&mut self, row: History, undo: Option<&mut TpccUndoBuf>) {
        Self::push_undo(undo, TpccUndo::HistoryAppended);
        self.history.push(row);
    }

    // ------------------------------------------------------------------
    // Rollback
    // ------------------------------------------------------------------

    /// Undo every mutation in the buffer, most recent first.
    pub fn rollback(&mut self, mut undo: TpccUndoBuf) {
        self.rollback_reuse(&mut undo);
    }

    /// As [`rollback`](TpccStore::rollback), but leaves the (now empty)
    /// buffer's allocation intact so the caller can pool it.
    pub fn rollback_reuse(&mut self, undo: &mut TpccUndoBuf) {
        for rec in undo.records.drain(..).rev() {
            self.apply_undo(rec);
        }
    }

    /// Apply `undo` without consuming it — for building a committed-state
    /// copy of a store with live transactions (see `KvStore::rollback_copy`
    /// for the contract).
    pub fn rollback_copy(&mut self, undo: &TpccUndoBuf) {
        for rec in undo.records.iter().rev() {
            self.apply_undo(rec.clone());
        }
    }

    fn apply_undo(&mut self, rec: TpccUndo) {
        match rec {
            TpccUndo::WarehousePre(row) => {
                self.warehouse.insert(row.w_id, row);
            }
            TpccUndo::DistrictPre(row) => {
                self.district.insert((row.w_id, row.d_id), row);
            }
            TpccUndo::CustomerPre(row) => {
                self.customer.insert((row.w_id, row.d_id, row.c_id), *row);
            }
            TpccUndo::StockPre(key, row) => {
                self.stock.insert(key, row);
            }
            TpccUndo::OrderInserted(key, c_id) => {
                self.order.remove(&key);
                self.order_by_customer.remove(&(key.0, key.1, c_id, key.2));
            }
            TpccUndo::OrderPre(row) => {
                self.order.insert((row.w_id, row.d_id, row.o_id), *row);
            }
            TpccUndo::OrderLineInserted(key) => {
                self.order_line.remove(&key);
            }
            TpccUndo::OrderLinePre(row) => {
                self.order_line
                    .insert((row.w_id, row.d_id, row.o_id, row.ol_number), *row);
            }
            TpccUndo::NewOrderInserted(key) => {
                self.new_order.remove(&key);
            }
            TpccUndo::NewOrderDeleted(key) => {
                self.new_order.insert(key, ());
            }
            TpccUndo::HistoryAppended => {
                self.history.pop();
            }
        }
    }

    /// Order-independent fingerprint of all partitioned state, for replica
    /// comparison and rollback tests. Replicated read-only tables (ITEM,
    /// STOCK-info) are excluded: they never change.
    pub fn fingerprint(&self) -> u64 {
        let mut acc = 0u64;
        let mut mix = |h: u64| acc ^= h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for w in self.warehouse.values() {
            mix(fnv(&[w.w_id as u64, w.ytd_cents as u64]));
        }
        for d in self.district.values() {
            mix(fnv(&[
                d.w_id as u64,
                d.d_id as u64,
                d.ytd_cents as u64,
                d.next_o_id as u64,
            ]));
        }
        for c in self.customer.values() {
            mix(fnv(&[
                c.w_id as u64,
                c.d_id as u64,
                c.c_id as u64,
                c.balance_cents as u64,
                c.ytd_payment_cents as u64,
                c.payment_cnt as u64,
                c.delivery_cnt as u64,
                c.data.len() as u64,
            ]));
        }
        for s in self.stock.iter() {
            mix(fnv(&[
                s.0 .0 as u64,
                s.0 .1 as u64,
                s.1.quantity as u64,
                s.1.ytd as u64,
                s.1.order_cnt as u64,
                s.1.remote_cnt as u64,
            ]));
        }
        for (k, o) in self.order.iter() {
            mix(fnv(&[
                k.0 as u64,
                k.1 as u64,
                k.2 as u64,
                o.c_id as u64,
                o.carrier_id.map(|c| c as u64 + 1).unwrap_or(0),
                o.ol_cnt as u64,
            ]));
        }
        for (k, ()) in self.new_order.iter() {
            mix(fnv(&[0xA0, k.0 as u64, k.1 as u64, k.2 as u64]));
        }
        for (k, ol) in self.order_line.iter() {
            mix(fnv(&[
                k.0 as u64,
                k.1 as u64,
                k.2 as u64,
                k.3 as u64,
                ol.i_id as u64,
                ol.amount_cents as u64,
                ol.delivery_d.map(|d| d + 1).unwrap_or(0),
            ]));
        }
        mix(fnv(&[self.history.len() as u64]));
        acc
    }
}

fn fnv(words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &w in words {
        for i in 0..8 {
            h ^= (w >> (i * 8)) & 0xFF;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::super::loader::load_partition;
    use super::super::scale::TpccScale;
    use super::*;

    fn store() -> TpccStore {
        let mut s = TpccStore::new();
        load_partition(&mut s, &[1], 1, &TpccScale::tiny(), 11);
        s
    }

    #[test]
    fn update_warehouse_records_preimage_and_rolls_back() {
        let mut s = store();
        let fp = s.fingerprint();
        let mut undo = TpccUndoBuf::new();
        assert!(s.update_warehouse(1, Some(&mut undo), |w| w.ytd_cents += 500));
        assert_ne!(s.fingerprint(), fp);
        s.rollback(undo);
        assert_eq!(s.fingerprint(), fp);
    }

    #[test]
    fn update_missing_rows_return_false() {
        let mut s = store();
        assert!(!s.update_warehouse(99, None, |_| {}));
        assert!(!s.update_district(99, 1, None, |_| {}));
        assert!(!s.update_customer(99, 1, 1, None, |_| {}));
        assert!(!s.update_stock(99, 1, None, |_| {}));
        assert!(!s.update_order((99, 1, 1), None, |_| {}));
        assert!(!s.delete_new_order((99, 1, 1), None));
    }

    #[test]
    fn insert_order_maintains_customer_index() {
        let mut s = store();
        let next = s.district(1, 1).unwrap().next_o_id;
        s.insert_order(
            Order {
                w_id: 1,
                d_id: 1,
                o_id: next,
                c_id: 7,
                entry_d: 42,
                carrier_id: None,
                ol_cnt: 0,
                all_local: true,
            },
            None,
        );
        let last = s.last_order_of(1, 1, 7).unwrap();
        assert_eq!(last.o_id, next);
        assert_eq!(last.entry_d, 42);
    }

    #[test]
    fn rollback_insert_order_removes_both_indexes() {
        let mut s = store();
        let fp = s.fingerprint();
        let before_last = s.last_order_of(1, 1, 7).map(|o| o.o_id);
        let mut undo = TpccUndoBuf::new();
        s.insert_order(
            Order {
                w_id: 1,
                d_id: 1,
                o_id: 5000,
                c_id: 7,
                entry_d: 42,
                carrier_id: None,
                ol_cnt: 2,
                all_local: true,
            },
            Some(&mut undo),
        );
        s.insert_order_line(
            OrderLine {
                w_id: 1,
                d_id: 1,
                o_id: 5000,
                ol_number: 1,
                i_id: 1,
                supply_w_id: 1,
                delivery_d: None,
                quantity: 5,
                amount_cents: 100,
                dist_info: String::new(),
            },
            Some(&mut undo),
        );
        s.insert_new_order((1, 1, 5000), Some(&mut undo));
        s.rollback(undo);
        assert_eq!(s.fingerprint(), fp);
        assert_eq!(s.last_order_of(1, 1, 7).map(|o| o.o_id), before_last);
        assert!(!s.order.contains_key(&(1, 1, 5000)));
    }

    #[test]
    fn delete_new_order_rolls_back() {
        let mut s = store();
        let fp = s.fingerprint();
        let oldest = s.oldest_new_order(1, 1).unwrap();
        let mut undo = TpccUndoBuf::new();
        assert!(s.delete_new_order((1, 1, oldest), Some(&mut undo)));
        assert_ne!(s.oldest_new_order(1, 1), Some(oldest));
        s.rollback(undo);
        assert_eq!(s.oldest_new_order(1, 1), Some(oldest));
        assert_eq!(s.fingerprint(), fp);
    }

    #[test]
    fn history_append_rolls_back() {
        let mut s = store();
        let n = s.history.len();
        let mut undo = TpccUndoBuf::new();
        s.append_history(
            History {
                c_id: 1,
                c_d_id: 1,
                c_w_id: 1,
                d_id: 1,
                w_id: 1,
                date: 1,
                amount_cents: 1,
                data: String::new(),
            },
            Some(&mut undo),
        );
        assert_eq!(s.history.len(), n + 1);
        s.rollback(undo);
        assert_eq!(s.history.len(), n);
    }

    #[test]
    fn interleaved_mutations_roll_back_to_exact_state() {
        let mut s = store();
        let fp = s.fingerprint();
        let mut undo = TpccUndoBuf::new();
        s.update_district(1, 1, Some(&mut undo), |d| {
            d.ytd_cents += 10;
            d.next_o_id += 1;
        });
        s.update_customer(1, 1, 3, Some(&mut undo), |c| c.balance_cents -= 10_000);
        s.update_stock(1, 5, Some(&mut undo), |st| {
            st.quantity -= 3;
            st.ytd += 3;
            st.order_cnt += 1;
        });
        s.update_warehouse(1, Some(&mut undo), |w| w.ytd_cents += 10);
        assert_eq!(undo.len(), 4);
        s.rollback(undo);
        assert_eq!(s.fingerprint(), fp);
    }

    #[test]
    fn customer_midpoint_rule() {
        let mut s = TpccStore::new();
        // Three customers named SAME, first names A < B < C.
        for (c_id, first) in [(1u32, "A"), (2, "B"), (3, "C")] {
            s.customer.insert(
                (1, 1, c_id),
                Customer {
                    w_id: 1,
                    d_id: 1,
                    c_id,
                    first: first.into(),
                    middle: "OE",
                    last: "SAME".into(),
                    street_1: String::new(),
                    street_2: String::new(),
                    city: String::new(),
                    state: String::new(),
                    zip: String::new(),
                    phone: String::new(),
                    since: 0,
                    credit: Credit::Good,
                    credit_lim_cents: 0,
                    discount_bp: 0,
                    balance_cents: 0,
                    ytd_payment_cents: 0,
                    payment_cnt: 0,
                    delivery_cnt: 0,
                    data: String::new(),
                },
            );
        }
        s.customer_by_name
            .insert((1, 1, "SAME".into()), vec![1, 2, 3]);
        // ceil(3/2) = 2nd in first-name order = c_id 2.
        assert_eq!(s.customer_by_name_midpoint(1, 1, "SAME"), Some(2));
        assert_eq!(s.customer_by_name_midpoint(1, 1, "NOBODY"), None);
    }

    #[test]
    fn recent_order_lines_window() {
        let s = store();
        let d = s.district(1, 1).unwrap();
        let all: Vec<_> = s.recent_order_lines(1, 1, d.next_o_id, 20).collect();
        assert!(!all.is_empty());
        for ol in &all {
            assert!(ol.o_id >= d.next_o_id.saturating_sub(20) && ol.o_id < d.next_o_id);
        }
    }

    #[test]
    fn order_lines_iter_exact() {
        let s = store();
        let (key, ord) = s.order.iter().next().unwrap();
        let lines: Vec<_> = s.order_lines(key.0, key.1, key.2).collect();
        assert_eq!(lines.len(), ord.ol_cnt as usize);
    }
}
