//! Initial TPC-C population (clause 4.3), deterministic per seed.
//!
//! `load_partition` fills a [`TpccStore`] with the partitioned data of the
//! warehouses assigned to one partition plus the replicated tables (ITEM
//! and the read-only half of STOCK for *all* warehouses). Two partitions
//! loaded with the same seed therefore hold identical replicated tables,
//! like the paper's system where those tables are copied to every node.

use super::scale::TpccScale;
use super::schema::*;
use super::store::TpccStore;
use hcc_common::rng::SplitMix64;

/// Epoch used for all load-time dates.
const LOAD_DATE: u64 = 1_000_000;

fn rand_str(rng: &mut SplitMix64, lo: usize, hi: usize) -> String {
    let mut buf = [0u8; 64];
    let n = rng.alnum_into(&mut buf, lo, hi);
    String::from_utf8_lossy(&buf[..n]).into_owned()
}

fn zip(rng: &mut SplitMix64) -> String {
    format!("{:04}11111", rng.range_inclusive(0, 9999))
}

/// Customer last-name number for load: the first customers get sequential
/// name numbers (so every name in range exists), the rest are NURand.
fn load_name_number(rng: &mut SplitMix64, c_id: CId, scale: &TpccScale) -> u64 {
    let n = scale.max_name_number;
    if (c_id as u64) <= n {
        (c_id as u64) - 1
    } else {
        rng.nurand(scale.nurand_a_name, 173, 0, n - 1)
    }
}

/// Load `store` with the data for `local_warehouses` (partitioned tables)
/// out of `all_warehouses` total (replicated tables cover all of them).
pub fn load_partition(
    store: &mut TpccStore,
    local_warehouses: &[WId],
    all_warehouses: u32,
    scale: &TpccScale,
    seed: u64,
) {
    store.local_warehouses = local_warehouses.to_vec();

    // Replicated tables use a seed independent of the local warehouse set
    // so every partition holds the identical copy.
    let mut rrng = SplitMix64::new(seed ^ 0x5EED_0001);
    for i_id in 1..=scale.items {
        let data = if rrng.next_f64() < 0.10 {
            // 10% of items carry "ORIGINAL" (clause 4.3.3.1).
            format!(
                "{}ORIGINAL{}",
                rand_str(&mut rrng, 6, 12),
                rand_str(&mut rrng, 6, 12)
            )
        } else {
            rand_str(&mut rrng, 26, 50)
        };
        store.item.insert(
            i_id,
            Item {
                i_id,
                im_id: rrng.range_inclusive(1, 10_000) as u32,
                name: rand_str(&mut rrng, 14, 24),
                price_cents: rrng.range_inclusive(100, 10_000) as i64,
                data,
            },
        );
    }
    for w_id in 1..=all_warehouses {
        for i_id in 1..=scale.items {
            let dists = std::array::from_fn(|_| rand_str(&mut rrng, 24, 24));
            let data = if rrng.next_f64() < 0.10 {
                format!(
                    "{}ORIGINAL{}",
                    rand_str(&mut rrng, 6, 12),
                    rand_str(&mut rrng, 6, 12)
                )
            } else {
                rand_str(&mut rrng, 26, 50)
            };
            store
                .stock_info
                .insert((w_id, i_id), StockInfo { dists, data });
        }
    }

    // Partitioned tables, seeded per warehouse so the same warehouse loads
    // identically regardless of which partition owns it.
    for &w_id in local_warehouses {
        let mut rng = SplitMix64::new(seed ^ 0x10AD ^ ((w_id as u64) << 16));
        load_warehouse(store, w_id, scale, &mut rng);
    }
}

fn load_warehouse(store: &mut TpccStore, w_id: WId, scale: &TpccScale, rng: &mut SplitMix64) {
    store.warehouse.insert(
        w_id,
        Warehouse {
            w_id,
            name: rand_str(rng, 6, 10),
            street_1: rand_str(rng, 10, 20),
            street_2: rand_str(rng, 10, 20),
            city: rand_str(rng, 10, 20),
            state: rand_str(rng, 2, 2),
            zip: zip(rng),
            tax_bp: rng.range_inclusive(0, 2000) as u32,
            // Consistency condition 1: W_YTD = Σ D_YTD at load.
            ytd_cents: 3_000_000 * scale.districts_per_warehouse as i64,
        },
    );

    for i_id in 1..=scale.items {
        store.stock.insert(
            (w_id, i_id),
            StockMut {
                quantity: rng.range_inclusive(10, 100) as i32,
                ytd: 0,
                order_cnt: 0,
                remote_cnt: 0,
            },
        );
    }

    for d in 1..=scale.districts_per_warehouse {
        let d_id = d as DId;
        store.district.insert(
            (w_id, d_id),
            District {
                w_id,
                d_id,
                name: rand_str(rng, 6, 10),
                street_1: rand_str(rng, 10, 20),
                street_2: rand_str(rng, 10, 20),
                city: rand_str(rng, 10, 20),
                state: rand_str(rng, 2, 2),
                zip: zip(rng),
                tax_bp: rng.range_inclusive(0, 2000) as u32,
                ytd_cents: 3_000_000,
                next_o_id: scale.initial_orders_per_district + 1,
            },
        );

        for c_id in 1..=scale.customers_per_district {
            let name_num = load_name_number(rng, c_id, scale);
            let last = last_name(name_num);
            let credit = if rng.next_f64() < 0.10 {
                Credit::Bad
            } else {
                Credit::Good
            };
            store.customer.insert(
                (w_id, d_id, c_id),
                Customer {
                    w_id,
                    d_id,
                    c_id,
                    first: rand_str(rng, 8, 16),
                    middle: "OE",
                    last: last.clone(),
                    street_1: rand_str(rng, 10, 20),
                    street_2: rand_str(rng, 10, 20),
                    city: rand_str(rng, 10, 20),
                    state: rand_str(rng, 2, 2),
                    zip: zip(rng),
                    phone: format!("{:016}", rng.next_u64() % 10_000_000_000_000_000),
                    since: LOAD_DATE,
                    credit,
                    credit_lim_cents: 5_000_000,
                    discount_bp: rng.range_inclusive(0, 5000) as u32,
                    balance_cents: -1000,
                    ytd_payment_cents: 1000,
                    payment_cnt: 1,
                    delivery_cnt: 0,
                    data: rand_str(rng, 30, 50),
                },
            );
            store
                .customer_by_name
                .entry((w_id, d_id, last))
                .or_default()
                .push(c_id);

            store.history.push(History {
                c_id,
                c_d_id: d_id,
                c_w_id: w_id,
                d_id,
                w_id,
                date: LOAD_DATE,
                amount_cents: 1000,
                data: rand_str(rng, 12, 24),
            });
        }

        // Sort the by-name index by customer first name (clause 2.5.2.2).
        let mut names: Vec<String> = store
            .customer_by_name
            .keys()
            .filter(|(w, dd, _)| *w == w_id && *dd == d_id)
            .map(|(_, _, l)| l.clone())
            .collect();
        names.sort();
        for l in names {
            let key = (w_id, d_id, l);
            if let Some(ids) = store.customer_by_name.get(&key) {
                let mut ids = ids.clone();
                ids.sort_by(|a, b| {
                    store.customer[&(w_id, d_id, *a)]
                        .first
                        .cmp(&store.customer[&(w_id, d_id, *b)].first)
                });
                store.customer_by_name.insert(key, ids);
            }
        }

        // Initial orders: a random permutation of customers, one order each.
        let n_orders = scale.initial_orders_per_district;
        let mut cust_perm: Vec<CId> = (1..=scale.customers_per_district).collect();
        // Fisher-Yates with our deterministic RNG.
        for i in (1..cust_perm.len()).rev() {
            let j = rng.range_inclusive(0, i as u64) as usize;
            cust_perm.swap(i, j);
        }
        let delivered_cutoff = n_orders - n_orders * 30 / 100;
        for o_id in 1..=n_orders {
            let c_id = cust_perm[(o_id - 1) as usize % cust_perm.len()];
            let ol_cnt = rng.range_inclusive(5, 15) as u8;
            let delivered = o_id <= delivered_cutoff;
            store.insert_order(
                Order {
                    w_id,
                    d_id,
                    o_id,
                    c_id,
                    entry_d: LOAD_DATE,
                    carrier_id: if delivered {
                        Some(rng.range_inclusive(1, 10) as u8)
                    } else {
                        None
                    },
                    ol_cnt,
                    all_local: true,
                },
                None,
            );
            if !delivered {
                store.insert_new_order((w_id, d_id, o_id), None);
            }
            for ol_number in 1..=ol_cnt {
                let i_id = rng.range_inclusive(1, scale.items as u64) as IId;
                store.insert_order_line(
                    OrderLine {
                        w_id,
                        d_id,
                        o_id,
                        ol_number,
                        i_id,
                        supply_w_id: w_id,
                        delivery_d: delivered.then_some(LOAD_DATE),
                        quantity: 5,
                        amount_cents: if delivered {
                            0
                        } else {
                            rng.range_inclusive(1, 999_999) as i64
                        },
                        dist_info: rand_str(rng, 24, 24),
                    },
                    None,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc::consistency;

    fn tiny_store() -> TpccStore {
        let mut s = TpccStore::new();
        load_partition(&mut s, &[1, 2], 4, &TpccScale::tiny(), 7);
        s
    }

    #[test]
    fn loads_expected_cardinalities() {
        let scale = TpccScale::tiny();
        let s = tiny_store();
        assert_eq!(s.warehouse.len(), 2);
        assert_eq!(s.district.len(), 2 * scale.districts_per_warehouse as usize);
        assert_eq!(
            s.customer.len(),
            2 * scale.districts_per_warehouse as usize * scale.customers_per_district as usize
        );
        assert_eq!(s.item.len(), scale.items as usize);
        // Partitioned stock: local warehouses only. Replicated info: all 4.
        assert_eq!(s.stock.len(), 2 * scale.items as usize);
        assert_eq!(s.stock_info.len(), 4 * scale.items as usize);
    }

    #[test]
    fn new_order_holds_undelivered_tail() {
        let scale = TpccScale::tiny();
        let s = tiny_store();
        let n = scale.initial_orders_per_district;
        let undelivered = n * 30 / 100;
        let count = s.new_order.range((1, 1, 0)..=(1, 1, OId::MAX)).count() as u32;
        assert_eq!(count, undelivered);
        // The oldest undelivered order is the first after the cutoff.
        assert_eq!(s.oldest_new_order(1, 1), Some(n - undelivered + 1));
    }

    #[test]
    fn replicated_tables_identical_across_partitions() {
        let scale = TpccScale::tiny();
        let mut a = TpccStore::new();
        let mut b = TpccStore::new();
        load_partition(&mut a, &[1, 2], 4, &scale, 99);
        load_partition(&mut b, &[3, 4], 4, &scale, 99);
        assert_eq!(a.item, b.item);
        assert_eq!(a.stock_info, b.stock_info);
    }

    #[test]
    fn same_warehouse_loads_identically_regardless_of_grouping() {
        let scale = TpccScale::tiny();
        let mut a = TpccStore::new();
        let mut b = TpccStore::new();
        load_partition(&mut a, &[2], 4, &scale, 99);
        load_partition(&mut b, &[1, 2], 4, &scale, 99);
        assert_eq!(a.warehouse[&2], b.warehouse[&2]);
        assert_eq!(a.district[&(2, 1)], b.district[&(2, 1)]);
        assert_eq!(a.customer[&(2, 1, 1)], b.customer[&(2, 1, 1)]);
    }

    #[test]
    fn by_name_index_sorted_by_first_name() {
        let s = tiny_store();
        for ((w, d, _), ids) in s.customer_by_name.iter() {
            let firsts: Vec<&String> = ids
                .iter()
                .map(|c| &s.customer[&(*w, *d, *c)].first)
                .collect();
            let mut sorted = firsts.clone();
            sorted.sort();
            assert_eq!(firsts, sorted);
        }
    }

    #[test]
    fn every_name_number_in_range_resolves() {
        let scale = TpccScale::tiny();
        let s = tiny_store();
        for num in 0..scale.max_name_number {
            let last = last_name(num);
            assert!(
                !s.customers_by_last_name(1, 1, &last).is_empty(),
                "no customer named {last}"
            );
        }
    }

    #[test]
    fn fresh_load_passes_consistency() {
        let s = tiny_store();
        consistency::check(&s).expect("fresh load must be consistent");
    }

    #[test]
    fn deterministic_given_seed() {
        let scale = TpccScale::tiny();
        let mut a = TpccStore::new();
        let mut b = TpccStore::new();
        load_partition(&mut a, &[1], 2, &scale, 5);
        load_partition(&mut b, &[1], 2, &scale, 5);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = TpccStore::new();
        load_partition(&mut c, &[1], 2, &scale, 6);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
