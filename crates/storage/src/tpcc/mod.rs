//! TPC-C storage: schema, scaling parameters, the per-partition store with
//! undo support, the initial population loader, and consistency checks.
//!
//! Partitioning follows the paper (§5.5): the database is partitioned by
//! warehouse; the read-only ITEM table is replicated to every partition; the
//! STOCK table is vertically partitioned, with its read-only columns
//! (`S_DIST_xx`, `S_DATA`) replicated to every partition and its updatable
//! columns (`S_QUANTITY`, `S_YTD`, `S_ORDER_CNT`, `S_REMOTE_CNT`) kept at
//! the warehouse's home partition. With this layout, 89% of transactions
//! touch a single partition and every distributed transaction is a *simple*
//! multi-partition transaction (one fragment per participant, one round).

pub mod consistency;
pub mod loader;
pub mod scale;
pub mod schema;
pub mod store;

pub use loader::load_partition;
pub use scale::TpccScale;
pub use schema::*;
pub use store::{TpccStore, TpccUndo, TpccUndoBuf};
