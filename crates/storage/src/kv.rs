//! The microbenchmark execution engine: a byte-string key/value store.
//!
//! Paper §5: "the execution engine is a simple key/value store, where keys
//! and values are arbitrary byte strings. One transaction is supported,
//! which reads a set of values then updates them."
//!
//! Mutations can record pre-images into a [`KvUndo`] buffer; applying the
//! buffer restores the exact prior state. Schedulers keep one buffer per
//! in-flight transaction and roll them back in reverse execution order.
//!
//! Hot-path design (the paper's whole point is that these fixed costs
//! decide throughput): the store is a fast-hash open-addressing
//! [`Table`], short keys/values are inline `Bytes` (no allocation), the
//! [`KvStore::update`] path probes the table once per read-modify-write,
//! and undo buffers are meant to be **recycled** via
//! [`KvStore::rollback_reuse`] / [`KvUndo::clear`] so steady state
//! allocates nothing per transaction.

use crate::ordered::OrderedIndex;
use crate::table::Table;
use bytes::Bytes;
use std::cell::Cell;

/// One recorded pre-image: the value (or absence) a key had before a
/// mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct UndoRecord {
    key: Bytes,
    prior: Option<Bytes>,
}

/// Per-transaction undo buffer for the KV store. Records are replayed in
/// reverse order by [`KvStore::rollback`].
#[derive(Debug, Default, Clone)]
pub struct KvUndo {
    records: Vec<UndoRecord>,
    /// Engine-assigned creation order among *live* buffers: schedulers
    /// stack concurrent transactions (speculation, lock queues) such that
    /// a younger buffer's writes never precede an older buffer's writes
    /// to the same key, so undoing whole buffers youngest-first restores
    /// committed state. Used by committed-state snapshots (§3.3
    /// recovery); rollback of a single transaction ignores it.
    pub birth: u64,
}

impl KvUndo {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded pre-images (used by cost accounting).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drop all records, keeping the allocation for reuse (buffer pools).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Pre-size for a transaction of `n` mutations (engines know the op
    /// count from the fragment, so recording never reallocates).
    pub fn reserve(&mut self, n: usize) {
        self.records.reserve(n);
    }
}

/// An in-memory hash table of byte-string keys and values, with an
/// optional ordered key view for range scans.
#[derive(Debug, Default)]
pub struct KvStore {
    map: Table,
    /// Ordered key index (see [`OrderedIndex`]), maintained by every
    /// mutation path — including undo replay — once enabled. `None` keeps
    /// point-only stores at their original hot-path cost.
    ordered: Option<OrderedIndex>,
    /// Set when a clone deferred its index build (see [`Clone`] below):
    /// mutations skip a stale index, and the first ordered read rebuilds
    /// it from the map. `Cell` keeps rebuilds possible through `&self`
    /// (the store stays `Send`; engines are thread-owned, never shared).
    ordered_stale: Cell<bool>,
}

impl Clone for KvStore {
    fn clone(&self) -> Self {
        // O(1) index "clone": committed-state snapshots (§3.3) clone the
        // store and roll live undo buffers back on the copy. Copying the
        // whole ordered index for that was the scaling bottleneck — the
        // copy instead starts with an *empty* index marked stale and lazily
        // rebuilds it from the (post-rollback) map on first ordered read.
        KvStore {
            map: self.map.clone(),
            ordered: self.ordered.as_ref().map(|_| OrderedIndex::new()),
            ordered_stale: Cell::new(self.ordered.is_some()),
        }
    }
}

impl KvStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sized store (loaders know the row count).
    pub fn with_capacity(n: usize) -> Self {
        KvStore {
            map: Table::with_capacity(n),
            ordered: None,
            ordered_stale: Cell::new(false),
        }
    }

    /// Build (or rebuild) the ordered key index from the current
    /// contents, enabling [`scan_range`](KvStore::scan_range). Idempotent.
    pub fn enable_ordered_index(&mut self) {
        let ix = OrderedIndex::new();
        for (k, _) in self.map.iter() {
            ix.insert(k.clone());
        }
        self.ordered = Some(ix);
        self.ordered_stale.set(false);
    }

    pub fn has_ordered_index(&self) -> bool {
        self.ordered.is_some()
    }

    /// The index to maintain on mutation: `None` while stale (a deferred
    /// clone rebuild captures the final map state anyway).
    #[inline]
    fn live_index(&self) -> Option<&OrderedIndex> {
        if self.ordered_stale.get() {
            None
        } else {
            self.ordered.as_ref()
        }
    }

    /// Rebuilds a stale (clone-deferred) index from the map. Every ordered
    /// read goes through here; fresh indexes pay one `Cell` load.
    fn ensure_ordered_fresh(&self) {
        if !self.ordered_stale.get() {
            return;
        }
        if let Some(ix) = self.ordered.as_ref() {
            debug_assert!(ix.is_empty(), "stale index must start empty");
            for (k, _) in self.map.iter() {
                ix.insert(k.clone());
            }
        }
        self.ordered_stale.set(false);
    }

    /// Rows with keys in `[start, end)`, ascending by key byte order.
    ///
    /// # Panics
    /// If the ordered index was never enabled — scans require an engine
    /// loaded scan-capable (the workloads that generate `Scan` ops build
    /// their engines with the index on).
    pub fn scan_range<'a>(
        &'a self,
        start: &'a [u8],
        end: &'a [u8],
    ) -> impl Iterator<Item = (&'a Bytes, &'a Bytes)> {
        self.ensure_ordered_fresh();
        let ix = self
            .ordered
            .as_ref()
            .expect("scan on a store without an ordered index");
        ix.range(start, end).map(move |k| {
            self.map
                .get_key_value(&k)
                .expect("ordered index entry missing from table")
        })
    }

    /// Order-*sensitive* fingerprint: a sequential hash over the ordered
    /// iteration of the index, probing the table per member. Two stores
    /// agree iff their ordered views walk identical (key, value) rows in
    /// identical order — so a stale or partial index after rollback,
    /// snapshot, or recovery shows up even when the order-independent
    /// [`fingerprint`](KvStore::fingerprint) still matches.
    pub fn ordered_fingerprint(&self) -> u64 {
        self.ensure_ordered_fresh();
        let ix = self
            .ordered
            .as_ref()
            .expect("ordered_fingerprint on a store without an ordered index");
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mix = |h: &mut u64, bytes: &[u8]| {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            // Chunk-length separator: a fixed byte would let
            // (key=[a,X], value=[]) collide with (key=[a], value=[X]).
            *h ^= bytes.len() as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for k in ix.iter() {
            let v = self
                .map
                .get(&k)
                .expect("ordered index entry missing from table");
            mix(&mut h, &k);
            mix(&mut h, v);
        }
        h
    }

    /// Index/table consistency check for tests: every indexed key has a
    /// row and every row is indexed. `Ok(())` when no index is enabled.
    pub fn check_ordered_invariants(&self) -> Result<(), String> {
        if self.ordered.is_some() {
            self.ensure_ordered_fresh();
        }
        let Some(ix) = self.ordered.as_ref() else {
            return Ok(());
        };
        if ix.len() != self.map.len() {
            return Err(format!(
                "ordered index has {} keys, table has {} rows",
                ix.len(),
                self.map.len()
            ));
        }
        for k in ix.iter() {
            if self.map.get(&k).is_none() {
                return Err(format!("indexed key {k:?} missing from table"));
            }
        }
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Read a value.
    #[inline]
    pub fn get(&self, key: &[u8]) -> Option<&Bytes> {
        self.map.get(key)
    }

    /// Write a value, optionally recording the pre-image for rollback.
    pub fn put(&mut self, key: Bytes, value: Bytes, undo: Option<&mut KvUndo>) {
        if let Some(ix) = self.live_index() {
            ix.insert(key.clone());
        }
        let prior = self.map.insert(key.clone(), value);
        if let Some(u) = undo {
            u.records.push(UndoRecord { key, prior });
        }
    }

    /// Read-modify-write an **existing** key with one table probe:
    /// `f(current)` produces the new value; the pre-image is recorded if
    /// requested. Returns the prior value's bytes via the closure.
    /// Falls back to an insert when the key is absent.
    #[inline]
    pub fn update(
        &mut self,
        key: &[u8],
        undo: Option<&mut KvUndo>,
        f: impl FnOnce(Option<&Bytes>) -> Bytes,
    ) {
        match self.map.get_mut(key) {
            Some(slot) => {
                let next = f(Some(slot));
                if let Some(u) = undo {
                    u.records.push(UndoRecord {
                        key: Bytes::copy_from_slice(key),
                        prior: Some(std::mem::replace(slot, next)),
                    });
                } else {
                    *slot = next;
                }
            }
            None => {
                let value = f(None);
                self.put(Bytes::copy_from_slice(key), value, undo);
            }
        }
    }

    /// Delete a key, optionally recording the pre-image. Returns the removed
    /// value, if any.
    pub fn delete(&mut self, key: &Bytes, undo: Option<&mut KvUndo>) -> Option<Bytes> {
        if let Some(ix) = self.live_index() {
            ix.remove(key);
        }
        let prior = self.map.remove(key);
        if let Some(u) = undo {
            u.records.push(UndoRecord {
                key: key.clone(),
                prior: prior.clone(),
            });
        }
        prior
    }

    /// Undo every mutation recorded in `undo`, most recent first, restoring
    /// the state the store had before the transaction ran.
    pub fn rollback(&mut self, mut undo: KvUndo) {
        self.rollback_reuse(&mut undo);
    }

    /// As [`rollback`](KvStore::rollback), but leaves the (now empty)
    /// buffer's allocation intact so the caller can pool it.
    pub fn rollback_reuse(&mut self, undo: &mut KvUndo) {
        for rec in undo.records.drain(..).rev() {
            self.apply_undo_record(rec.key, rec.prior);
        }
    }

    /// Apply `undo` without consuming it — for building a committed-state
    /// copy of a store that has live (in-flight) transactions: clone the
    /// store, then roll the live buffers back on the clone,
    /// youngest-[`birth`](KvUndo::birth) first.
    pub fn rollback_copy(&mut self, undo: &KvUndo) {
        for rec in undo.records.iter().rev() {
            self.apply_undo_record(rec.key.clone(), rec.prior.clone());
        }
    }

    /// Restore one pre-image: the single source of truth both rollback
    /// flavors share. Keeps the ordered index in sync so rollback of
    /// inserts/deletes restores the scannable view exactly.
    fn apply_undo_record(&mut self, key: Bytes, prior: Option<Bytes>) {
        match prior {
            Some(v) => {
                if let Some(ix) = self.live_index() {
                    ix.insert(key.clone());
                }
                self.map.insert(key, v);
            }
            None => {
                if let Some(ix) = self.live_index() {
                    ix.remove(&key);
                }
                self.map.remove(&key);
            }
        }
    }

    /// Iterate over all entries (test/verification support).
    pub fn iter(&self) -> impl Iterator<Item = (&Bytes, &Bytes)> {
        self.map.iter()
    }

    /// A stable fingerprint of the full store contents, used by tests to
    /// compare replica state and to check rollback restores state exactly.
    pub fn fingerprint(&self) -> u64 {
        // XOR of per-entry FNV hashes: order-independent, cheap.
        let mut acc = 0u64;
        for (k, v) in self.map.iter() {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in k.iter().chain(v.iter()) {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            // Mix in a separator between key and value lengths to avoid
            // (k="ab", v="c") colliding with (k="a", v="bc").
            h ^= (k.len() as u64) << 32 | v.len() as u64;
            acc ^= h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_roundtrip() {
        let mut kv = KvStore::new();
        kv.put(b("x"), b("5"), None);
        assert_eq!(kv.get(b"x"), Some(&b("5")));
        assert_eq!(kv.get(b"y"), None);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn overwrite_without_undo() {
        let mut kv = KvStore::new();
        kv.put(b("x"), b("1"), None);
        kv.put(b("x"), b("2"), None);
        assert_eq!(kv.get(b"x"), Some(&b("2")));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn rollback_restores_overwritten_value() {
        let mut kv = KvStore::new();
        kv.put(b("x"), b("old"), None);
        let before = kv.fingerprint();

        let mut undo = KvUndo::new();
        kv.put(b("x"), b("new"), Some(&mut undo));
        assert_eq!(kv.get(b"x"), Some(&b("new")));
        kv.rollback(undo);
        assert_eq!(kv.get(b"x"), Some(&b("old")));
        assert_eq!(kv.fingerprint(), before);
    }

    #[test]
    fn rollback_removes_inserted_key() {
        let mut kv = KvStore::new();
        let before = kv.fingerprint();
        let mut undo = KvUndo::new();
        kv.put(b("fresh"), b("v"), Some(&mut undo));
        kv.rollback(undo);
        assert_eq!(kv.get(b"fresh"), None);
        assert!(kv.is_empty());
        assert_eq!(kv.fingerprint(), before);
    }

    #[test]
    fn rollback_restores_deleted_key() {
        let mut kv = KvStore::new();
        kv.put(b("x"), b("keep"), None);
        let before = kv.fingerprint();
        let mut undo = KvUndo::new();
        let removed = kv.delete(&b("x"), Some(&mut undo));
        assert_eq!(removed, Some(b("keep")));
        assert_eq!(kv.get(b"x"), None);
        kv.rollback(undo);
        assert_eq!(kv.get(b"x"), Some(&b("keep")));
        assert_eq!(kv.fingerprint(), before);
    }

    #[test]
    fn rollback_is_lifo_within_buffer() {
        let mut kv = KvStore::new();
        kv.put(b("x"), b("0"), None);
        let before = kv.fingerprint();
        let mut undo = KvUndo::new();
        kv.put(b("x"), b("1"), Some(&mut undo));
        kv.put(b("x"), b("2"), Some(&mut undo));
        kv.put(b("x"), b("3"), Some(&mut undo));
        kv.rollback(undo);
        assert_eq!(kv.get(b"x"), Some(&b("0")));
        assert_eq!(kv.fingerprint(), before);
    }

    #[test]
    fn undo_len_counts_records() {
        let mut kv = KvStore::new();
        let mut undo = KvUndo::new();
        assert!(undo.is_empty());
        kv.put(b("a"), b("1"), Some(&mut undo));
        kv.put(b("b"), b("2"), Some(&mut undo));
        assert_eq!(undo.len(), 2);
    }

    #[test]
    fn update_probes_once_and_rolls_back() {
        let mut kv = KvStore::new();
        kv.put(b("x"), b("a"), None);
        let before = kv.fingerprint();
        let mut undo = KvUndo::new();
        kv.update(b"x", Some(&mut undo), |cur| {
            assert_eq!(cur, Some(&b("a")));
            b("b")
        });
        assert_eq!(kv.get(b"x"), Some(&b("b")));
        assert_eq!(undo.len(), 1);
        kv.rollback_reuse(&mut undo);
        assert!(undo.is_empty());
        assert_eq!(kv.fingerprint(), before);
    }

    #[test]
    fn update_inserts_missing_key() {
        let mut kv = KvStore::new();
        let mut undo = KvUndo::new();
        kv.update(b"nu", Some(&mut undo), |cur| {
            assert_eq!(cur, None);
            b("v")
        });
        assert_eq!(kv.get(b"nu"), Some(&b("v")));
        kv.rollback(undo);
        assert!(kv.is_empty());
    }

    #[test]
    fn rollback_reuse_keeps_capacity() {
        let mut kv = KvStore::new();
        let mut undo = KvUndo::new();
        undo.reserve(16);
        for i in 0..16u8 {
            kv.put(Bytes::copy_from_slice(&[i]), b("v"), Some(&mut undo));
        }
        let cap = undo.records.capacity();
        kv.rollback_reuse(&mut undo);
        assert!(undo.is_empty());
        assert_eq!(undo.records.capacity(), cap, "pooled buffer keeps storage");
    }

    #[test]
    fn fingerprint_detects_differences() {
        let mut a = KvStore::new();
        let mut bst = KvStore::new();
        a.put(b("x"), b("1"), None);
        bst.put(b("x"), b("2"), None);
        assert_ne!(a.fingerprint(), bst.fingerprint());
        bst.put(b("x"), b("1"), None);
        assert_eq!(a.fingerprint(), bst.fingerprint());
    }

    #[test]
    fn scan_range_walks_keys_in_order() {
        let mut kv = KvStore::new();
        for k in ["d", "a", "c", "e", "b"] {
            kv.put(b(k), b(&format!("v{k}")), None);
        }
        kv.enable_ordered_index();
        let got: Vec<(String, String)> = kv
            .scan_range(b"b", b"e")
            .map(|(k, v)| {
                (
                    String::from_utf8(k.to_vec()).unwrap(),
                    String::from_utf8(v.to_vec()).unwrap(),
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![
                ("b".into(), "vb".into()),
                ("c".into(), "vc".into()),
                ("d".into(), "vd".into())
            ]
        );
        kv.check_ordered_invariants().unwrap();
    }

    #[test]
    fn ordered_index_tracks_inserts_and_deletes() {
        let mut kv = KvStore::new();
        kv.enable_ordered_index();
        kv.put(b("m"), b("1"), None);
        kv.put(b("k"), b("2"), None);
        assert_eq!(kv.scan_range(b"", b"z").count(), 2);
        kv.delete(&b("k"), None);
        let keys: Vec<_> = kv.scan_range(b"", b"z").map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b("m")]);
        kv.check_ordered_invariants().unwrap();
    }

    #[test]
    fn rollback_restores_the_ordered_view() {
        let mut kv = KvStore::new();
        kv.put(b("b"), b("keep"), None);
        kv.enable_ordered_index();
        let before = kv.ordered_fingerprint();

        let mut undo = KvUndo::new();
        kv.put(b("a"), b("new"), Some(&mut undo)); // insert
        kv.delete(&b("b"), Some(&mut undo)); // delete
        kv.put(b("c"), b("x"), Some(&mut undo)); // insert
        kv.update(b"c", Some(&mut undo), |_| b("y")); // overwrite
        assert_ne!(kv.ordered_fingerprint(), before);
        kv.rollback(undo);
        assert_eq!(kv.ordered_fingerprint(), before);
        kv.check_ordered_invariants().unwrap();
        assert_eq!(kv.scan_range(b"", b"z").count(), 1);
    }

    #[test]
    fn rollback_copy_maintains_the_index_on_clones() {
        let mut kv = KvStore::new();
        kv.enable_ordered_index();
        kv.put(b("base"), b("0"), None);
        let committed_fp = kv.ordered_fingerprint();

        // A live (uncommitted) transaction inserts and deletes.
        let mut undo = KvUndo::new();
        kv.put(b("phantom"), b("1"), Some(&mut undo));
        kv.delete(&b("base"), Some(&mut undo));

        // Committed-state copy: clone + rollback_copy (the snapshot()
        // path) must restore the ordered view on the clone while the
        // original keeps its in-flight state.
        let mut copy = kv.clone();
        copy.rollback_copy(&undo);
        assert_eq!(copy.ordered_fingerprint(), committed_fp);
        copy.check_ordered_invariants().unwrap();
        assert!(kv.scan_range(b"", b"zzz").any(|(k, _)| k == &b("phantom")));
        assert!(!copy
            .scan_range(b"", b"zzz")
            .any(|(k, _)| k == &b("phantom")));
    }

    #[test]
    fn ordered_fingerprint_detects_value_changes() {
        let mut a = KvStore::new();
        a.enable_ordered_index();
        a.put(b("x"), b("1"), None);
        let mut c = KvStore::new();
        c.enable_ordered_index();
        c.put(b("x"), b("2"), None);
        assert_ne!(a.ordered_fingerprint(), c.ordered_fingerprint());
        c.put(b("x"), b("1"), None);
        assert_eq!(a.ordered_fingerprint(), c.ordered_fingerprint());
    }

    #[test]
    fn enable_ordered_index_is_idempotent_and_late() {
        let mut kv = KvStore::new();
        kv.put(b("x"), b("1"), None);
        kv.put(b("y"), b("2"), None);
        kv.enable_ordered_index(); // built from existing contents
        kv.enable_ordered_index(); // rebuild is a no-op semantically
        assert_eq!(kv.scan_range(b"", b"z").count(), 2);
        kv.check_ordered_invariants().unwrap();
    }

    #[test]
    fn fingerprint_order_independent() {
        let mut a = KvStore::new();
        a.put(b("x"), b("1"), None);
        a.put(b("y"), b("2"), None);
        let mut c = KvStore::new();
        c.put(b("y"), b("2"), None);
        c.put(b("x"), b("1"), None);
        assert_eq!(a.fingerprint(), c.fingerprint());
    }
}
