//! The microbenchmark execution engine: a byte-string key/value store.
//!
//! Paper §5: "the execution engine is a simple key/value store, where keys
//! and values are arbitrary byte strings. One transaction is supported,
//! which reads a set of values then updates them."
//!
//! Mutations can record pre-images into a [`KvUndo`] buffer; applying the
//! buffer restores the exact prior state. Schedulers keep one buffer per
//! in-flight transaction and roll them back in reverse execution order.
//!
//! Hot-path design (the paper's whole point is that these fixed costs
//! decide throughput): the store is a fast-hash open-addressing
//! [`Table`], short keys/values are inline `Bytes` (no allocation), the
//! [`KvStore::update`] path probes the table once per read-modify-write,
//! and undo buffers are meant to be **recycled** via
//! [`KvStore::rollback_reuse`] / [`KvUndo::clear`] so steady state
//! allocates nothing per transaction.

use crate::table::Table;
use bytes::Bytes;

/// One recorded pre-image: the value (or absence) a key had before a
/// mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct UndoRecord {
    key: Bytes,
    prior: Option<Bytes>,
}

/// Per-transaction undo buffer for the KV store. Records are replayed in
/// reverse order by [`KvStore::rollback`].
#[derive(Debug, Default, Clone)]
pub struct KvUndo {
    records: Vec<UndoRecord>,
    /// Engine-assigned creation order among *live* buffers: schedulers
    /// stack concurrent transactions (speculation, lock queues) such that
    /// a younger buffer's writes never precede an older buffer's writes
    /// to the same key, so undoing whole buffers youngest-first restores
    /// committed state. Used by committed-state snapshots (§3.3
    /// recovery); rollback of a single transaction ignores it.
    pub birth: u64,
}

impl KvUndo {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded pre-images (used by cost accounting).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drop all records, keeping the allocation for reuse (buffer pools).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Pre-size for a transaction of `n` mutations (engines know the op
    /// count from the fragment, so recording never reallocates).
    pub fn reserve(&mut self, n: usize) {
        self.records.reserve(n);
    }
}

/// An in-memory hash table of byte-string keys and values.
#[derive(Debug, Default, Clone)]
pub struct KvStore {
    map: Table,
}

impl KvStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sized store (loaders know the row count).
    pub fn with_capacity(n: usize) -> Self {
        KvStore {
            map: Table::with_capacity(n),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Read a value.
    #[inline]
    pub fn get(&self, key: &[u8]) -> Option<&Bytes> {
        self.map.get(key)
    }

    /// Write a value, optionally recording the pre-image for rollback.
    pub fn put(&mut self, key: Bytes, value: Bytes, undo: Option<&mut KvUndo>) {
        let prior = self.map.insert(key.clone(), value);
        if let Some(u) = undo {
            u.records.push(UndoRecord { key, prior });
        }
    }

    /// Read-modify-write an **existing** key with one table probe:
    /// `f(current)` produces the new value; the pre-image is recorded if
    /// requested. Returns the prior value's bytes via the closure.
    /// Falls back to an insert when the key is absent.
    #[inline]
    pub fn update(
        &mut self,
        key: &[u8],
        undo: Option<&mut KvUndo>,
        f: impl FnOnce(Option<&Bytes>) -> Bytes,
    ) {
        match self.map.get_mut(key) {
            Some(slot) => {
                let next = f(Some(slot));
                if let Some(u) = undo {
                    u.records.push(UndoRecord {
                        key: Bytes::copy_from_slice(key),
                        prior: Some(std::mem::replace(slot, next)),
                    });
                } else {
                    *slot = next;
                }
            }
            None => {
                let value = f(None);
                self.put(Bytes::copy_from_slice(key), value, undo);
            }
        }
    }

    /// Delete a key, optionally recording the pre-image. Returns the removed
    /// value, if any.
    pub fn delete(&mut self, key: &Bytes, undo: Option<&mut KvUndo>) -> Option<Bytes> {
        let prior = self.map.remove(key);
        if let Some(u) = undo {
            u.records.push(UndoRecord {
                key: key.clone(),
                prior: prior.clone(),
            });
        }
        prior
    }

    /// Undo every mutation recorded in `undo`, most recent first, restoring
    /// the state the store had before the transaction ran.
    pub fn rollback(&mut self, mut undo: KvUndo) {
        self.rollback_reuse(&mut undo);
    }

    /// As [`rollback`](KvStore::rollback), but leaves the (now empty)
    /// buffer's allocation intact so the caller can pool it.
    pub fn rollback_reuse(&mut self, undo: &mut KvUndo) {
        for rec in undo.records.drain(..).rev() {
            self.apply_undo_record(rec.key, rec.prior);
        }
    }

    /// Apply `undo` without consuming it — for building a committed-state
    /// copy of a store that has live (in-flight) transactions: clone the
    /// store, then roll the live buffers back on the clone,
    /// youngest-[`birth`](KvUndo::birth) first.
    pub fn rollback_copy(&mut self, undo: &KvUndo) {
        for rec in undo.records.iter().rev() {
            self.apply_undo_record(rec.key.clone(), rec.prior.clone());
        }
    }

    /// Restore one pre-image: the single source of truth both rollback
    /// flavors share.
    fn apply_undo_record(&mut self, key: Bytes, prior: Option<Bytes>) {
        match prior {
            Some(v) => {
                self.map.insert(key, v);
            }
            None => {
                self.map.remove(&key);
            }
        }
    }

    /// Iterate over all entries (test/verification support).
    pub fn iter(&self) -> impl Iterator<Item = (&Bytes, &Bytes)> {
        self.map.iter()
    }

    /// A stable fingerprint of the full store contents, used by tests to
    /// compare replica state and to check rollback restores state exactly.
    pub fn fingerprint(&self) -> u64 {
        // XOR of per-entry FNV hashes: order-independent, cheap.
        let mut acc = 0u64;
        for (k, v) in self.map.iter() {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in k.iter().chain(v.iter()) {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            // Mix in a separator between key and value lengths to avoid
            // (k="ab", v="c") colliding with (k="a", v="bc").
            h ^= (k.len() as u64) << 32 | v.len() as u64;
            acc ^= h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_roundtrip() {
        let mut kv = KvStore::new();
        kv.put(b("x"), b("5"), None);
        assert_eq!(kv.get(b"x"), Some(&b("5")));
        assert_eq!(kv.get(b"y"), None);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn overwrite_without_undo() {
        let mut kv = KvStore::new();
        kv.put(b("x"), b("1"), None);
        kv.put(b("x"), b("2"), None);
        assert_eq!(kv.get(b"x"), Some(&b("2")));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn rollback_restores_overwritten_value() {
        let mut kv = KvStore::new();
        kv.put(b("x"), b("old"), None);
        let before = kv.fingerprint();

        let mut undo = KvUndo::new();
        kv.put(b("x"), b("new"), Some(&mut undo));
        assert_eq!(kv.get(b"x"), Some(&b("new")));
        kv.rollback(undo);
        assert_eq!(kv.get(b"x"), Some(&b("old")));
        assert_eq!(kv.fingerprint(), before);
    }

    #[test]
    fn rollback_removes_inserted_key() {
        let mut kv = KvStore::new();
        let before = kv.fingerprint();
        let mut undo = KvUndo::new();
        kv.put(b("fresh"), b("v"), Some(&mut undo));
        kv.rollback(undo);
        assert_eq!(kv.get(b"fresh"), None);
        assert!(kv.is_empty());
        assert_eq!(kv.fingerprint(), before);
    }

    #[test]
    fn rollback_restores_deleted_key() {
        let mut kv = KvStore::new();
        kv.put(b("x"), b("keep"), None);
        let before = kv.fingerprint();
        let mut undo = KvUndo::new();
        let removed = kv.delete(&b("x"), Some(&mut undo));
        assert_eq!(removed, Some(b("keep")));
        assert_eq!(kv.get(b"x"), None);
        kv.rollback(undo);
        assert_eq!(kv.get(b"x"), Some(&b("keep")));
        assert_eq!(kv.fingerprint(), before);
    }

    #[test]
    fn rollback_is_lifo_within_buffer() {
        let mut kv = KvStore::new();
        kv.put(b("x"), b("0"), None);
        let before = kv.fingerprint();
        let mut undo = KvUndo::new();
        kv.put(b("x"), b("1"), Some(&mut undo));
        kv.put(b("x"), b("2"), Some(&mut undo));
        kv.put(b("x"), b("3"), Some(&mut undo));
        kv.rollback(undo);
        assert_eq!(kv.get(b"x"), Some(&b("0")));
        assert_eq!(kv.fingerprint(), before);
    }

    #[test]
    fn undo_len_counts_records() {
        let mut kv = KvStore::new();
        let mut undo = KvUndo::new();
        assert!(undo.is_empty());
        kv.put(b("a"), b("1"), Some(&mut undo));
        kv.put(b("b"), b("2"), Some(&mut undo));
        assert_eq!(undo.len(), 2);
    }

    #[test]
    fn update_probes_once_and_rolls_back() {
        let mut kv = KvStore::new();
        kv.put(b("x"), b("a"), None);
        let before = kv.fingerprint();
        let mut undo = KvUndo::new();
        kv.update(b"x", Some(&mut undo), |cur| {
            assert_eq!(cur, Some(&b("a")));
            b("b")
        });
        assert_eq!(kv.get(b"x"), Some(&b("b")));
        assert_eq!(undo.len(), 1);
        kv.rollback_reuse(&mut undo);
        assert!(undo.is_empty());
        assert_eq!(kv.fingerprint(), before);
    }

    #[test]
    fn update_inserts_missing_key() {
        let mut kv = KvStore::new();
        let mut undo = KvUndo::new();
        kv.update(b"nu", Some(&mut undo), |cur| {
            assert_eq!(cur, None);
            b("v")
        });
        assert_eq!(kv.get(b"nu"), Some(&b("v")));
        kv.rollback(undo);
        assert!(kv.is_empty());
    }

    #[test]
    fn rollback_reuse_keeps_capacity() {
        let mut kv = KvStore::new();
        let mut undo = KvUndo::new();
        undo.reserve(16);
        for i in 0..16u8 {
            kv.put(Bytes::copy_from_slice(&[i]), b("v"), Some(&mut undo));
        }
        let cap = undo.records.capacity();
        kv.rollback_reuse(&mut undo);
        assert!(undo.is_empty());
        assert_eq!(undo.records.capacity(), cap, "pooled buffer keeps storage");
    }

    #[test]
    fn fingerprint_detects_differences() {
        let mut a = KvStore::new();
        let mut bst = KvStore::new();
        a.put(b("x"), b("1"), None);
        bst.put(b("x"), b("2"), None);
        assert_ne!(a.fingerprint(), bst.fingerprint());
        bst.put(b("x"), b("1"), None);
        assert_eq!(a.fingerprint(), bst.fingerprint());
    }

    #[test]
    fn fingerprint_order_independent() {
        let mut a = KvStore::new();
        a.put(b("x"), b("1"), None);
        a.put(b("y"), b("2"), None);
        let mut c = KvStore::new();
        c.put(b("y"), b("2"), None);
        c.put(b("x"), b("1"), None);
        assert_eq!(a.fingerprint(), c.fingerprint());
    }
}
