//! A lock-free ordered set of byte-string keys: Harris-style skiplist
//! with epoch-based reclamation.
//!
//! This is the latch-free replacement for the `BTreeSet` behind
//! [`crate::OrderedIndex`]. The BTree serialized every scan and insert on
//! the index granule; the skiplist gives `&self` insert/remove/contains
//! and **epoch-pinned iteration**, so concurrent scans never block
//! writers and a snapshot clone does not need to copy the index at all
//! (see `KvStore::clone`'s lazy rebuild).
//!
//! Design (Fraser 2004 / Herlihy–Shavit §14.4, the `rusty-db` sketch in
//! SNIPPETS.md):
//!
//! - Each node owns a tower of `next` pointers; level 0 is a complete
//!   sorted linked list, higher levels are express lanes.
//! - **Deletion mark** = tag bit 1 on a node's `next` pointer at each
//!   level. Marking level 0 is the remove's linearization point; the mark
//!   also makes any insert-after-victim CAS fail (the tagged word differs),
//!   which is the classic Harris trick.
//! - Traversals physically unlink (snip) marked nodes they pass. A node's
//!   `pending_links` counter starts at its height; every snipped level and
//!   every level the inserter abandoned (because the node was marked
//!   mid-build) decrements it, and whoever takes it to zero — now provably
//!   unreachable from every level — defers destruction to the epoch
//!   collector.
//! - **Deterministic tower height** from a hash of the key: the structure
//!   is a pure function of the key set, independent of insertion order or
//!   thread interleaving, so fixed-seed runs build bit-identical indexes.
//!
//! Iteration (`range`) pins an epoch guard for its lifetime: removed nodes
//! stay allocated (their frozen `next` pointers still lead back into the
//! list) until the iterator drops, giving consistent lock-free scans. A
//! concurrent scan may or may not observe a concurrent insert/remove —
//! each key's presence is decided at visit time (the usual skiplist scan
//! semantics); single-threaded use (the engine hot path) is exact.

use bytes::Bytes;
use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Tallest tower: comfortable up to tens of millions of keys at p = 1/2.
const MAX_HEIGHT: usize = 16;

/// Deletion mark on a `next` pointer.
const MARK: usize = 1;

// ---------------------------------------------------------------------------
// Contention counters
// ---------------------------------------------------------------------------

/// Process-wide index-contention tallies, mirrored by per-list counters.
/// Benches read these around a run (same pattern as
/// `crossbeam_epoch::reclaimed_count`); they are observational only and
/// never feed back into behavior, so determinism is unaffected.
static GLOBAL_CAS_RETRIES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_SNIPS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide skiplist contention counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContentionSnapshot {
    /// Failed link/unlink CAS attempts (another thread won the race).
    pub cas_retries: u64,
    /// Physical unlinks of marked nodes performed by traversals.
    pub snips: u64,
    /// Deferred node destructions actually executed by the epoch collector
    /// (process-wide, includes any other epoch users).
    pub reclaimed: u64,
}

/// Reads the process-wide contention counters (bench support).
pub fn contention_snapshot() -> ContentionSnapshot {
    ContentionSnapshot {
        cas_retries: GLOBAL_CAS_RETRIES.load(Ordering::Relaxed),
        snips: GLOBAL_SNIPS.load(Ordering::Relaxed),
        reclaimed: epoch::reclaimed_count(),
    }
}

// ---------------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------------

struct Node {
    key: Bytes,
    /// Tower of next pointers; `next[L]` tag bit 1 = marked (deleted) at
    /// level `L`. Length = tower height.
    next: Vec<Atomic<Node>>,
    /// Levels that still hold (or will hold) a physical link to this node.
    /// Snip and abandoned-link decrements race; zero ⇒ unreachable ⇒ safe
    /// to defer destruction. Exactly `height` decrements ever happen.
    pending_links: AtomicUsize,
}

impl Node {
    fn new(key: Bytes, height: usize) -> Node {
        Node {
            key,
            next: (0..height).map(|_| Atomic::null()).collect(),
            pending_links: AtomicUsize::new(height),
        }
    }

    fn height(&self) -> usize {
        self.next.len()
    }

    /// Is this node logically deleted? (Level-0 mark is the commit point.)
    fn is_marked(&self, g: &Guard) -> bool {
        self.next[0].load(Ordering::Acquire, g).tag() == MARK
    }
}

/// Tower height as a pure function of the key: FNV-1a hash, then a
/// geometric(1/2) draw from its trailing zeros. Insertion order and thread
/// timing never affect the final structure.
fn tower_height(key: &[u8]) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Avalanche: FNV's low bits are weak for short keys.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    (1 + h.trailing_zeros() as usize).min(MAX_HEIGHT)
}

/// The result of a mutating search: for each level, the link to CAS
/// (`preds`) and the first node at-or-after the key (`succs`).
struct Position<'a> {
    preds: [&'a Atomic<Node>; MAX_HEIGHT],
    succs: [Shared<'a, Node>; MAX_HEIGHT],
}

impl Position<'_> {
    fn found(&self, key: &[u8]) -> bool {
        unsafe { self.succs[0].as_ref() }.is_some_and(|n| &*n.key == key)
    }
}

// ---------------------------------------------------------------------------
// SkipList
// ---------------------------------------------------------------------------

/// A lock-free sorted set of `Bytes` keys. All operations take `&self`.
pub struct SkipList {
    head: [Atomic<Node>; MAX_HEIGHT],
    len: AtomicUsize,
    /// Per-list mirrors of the global contention counters.
    cas_retries: AtomicU64,
    snips: AtomicU64,
}

impl Default for SkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SkipList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkipList")
            .field("len", &self.len())
            .finish()
    }
}

impl SkipList {
    pub fn new() -> Self {
        SkipList {
            head: std::array::from_fn(|_| Atomic::null()),
            len: AtomicUsize::new(0),
            cas_retries: AtomicU64::new(0),
            snips: AtomicU64::new(0),
        }
    }

    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Failed CAS attempts on this list (contention observability).
    pub fn cas_retries(&self) -> u64 {
        self.cas_retries.load(Ordering::Relaxed)
    }

    fn note_retry(&self) {
        self.cas_retries.fetch_add(1, Ordering::Relaxed);
        GLOBAL_CAS_RETRIES.fetch_add(1, Ordering::Relaxed);
    }

    fn note_snip(&self) {
        self.snips.fetch_add(1, Ordering::Relaxed);
        GLOBAL_SNIPS.fetch_add(1, Ordering::Relaxed);
    }

    /// One level of a pending-links decrement; frees the node when it was
    /// the last reference.
    unsafe fn release_links(&self, node: Shared<'_, Node>, n: usize, g: &Guard) {
        debug_assert!(n >= 1);
        let prev = node.deref().pending_links.fetch_sub(n, Ordering::AcqRel);
        debug_assert!(prev >= n, "pending_links underflow");
        if prev == n {
            g.defer_destroy(node);
        }
    }

    /// Mutating search: finds the insertion position for `key` at every
    /// level, physically unlinking marked nodes along the way (the
    /// cooperative-cleanup half of Harris's algorithm).
    fn search<'a>(&'a self, key: &[u8], g: &'a Guard) -> Position<'a> {
        'retry: loop {
            let mut preds: [&'a Atomic<Node>; MAX_HEIGHT] = std::array::from_fn(|l| &self.head[l]);
            let mut succs: [Shared<'a, Node>; MAX_HEIGHT] = [Shared::null(); MAX_HEIGHT];
            // The predecessor *node* carries across levels: descending from
            // level L+1 re-enters its tower one entry lower (`None` = head).
            let mut pred_node: Option<&'a Node> = None;
            for level in (0..MAX_HEIGHT).rev() {
                let mut link: &'a Atomic<Node> = match pred_node {
                    None => &self.head[level],
                    Some(p) => &p.next[level],
                };
                let mut curr = link.load(Ordering::Acquire, g);
                // Walk this level until the end (`curr` null) or a key >= ours.
                while let Some(c) = unsafe { curr.as_ref() } {
                    let next = c.next[level].load(Ordering::Acquire, g);
                    if next.tag() == MARK {
                        // `c` is deleted: snip it at this level.
                        match link.compare_exchange(
                            curr.with_tag(0),
                            next.with_tag(0),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            g,
                        ) {
                            Ok(_) => {
                                self.note_snip();
                                unsafe { self.release_links(curr, 1, g) };
                                curr = next.with_tag(0);
                            }
                            Err(_) => {
                                self.note_retry();
                                continue 'retry;
                            }
                        }
                    } else if &*c.key < key {
                        pred_node = Some(c);
                        link = &c.next[level];
                        curr = next;
                    } else {
                        break;
                    }
                }
                preds[level] = link;
                succs[level] = curr;
            }
            return Position { preds, succs };
        }
    }

    /// Inserts `key`; returns `false` if it was already present.
    pub fn insert(&self, key: Bytes) -> bool {
        let g = epoch::pin();
        let height = tower_height(&key);
        let mut owned = Owned::new(Node::new(key, height));
        loop {
            let key_bytes: Bytes = owned.key.clone();
            let pos = self.search(&key_bytes, &g);
            if pos.found(&key_bytes) {
                return false; // set semantics; `owned` drops here
            }
            // Link level 0: the insert's linearization point.
            owned.next[0].store(pos.succs[0], Ordering::Relaxed);
            match pos.preds[0].compare_exchange(
                pos.succs[0],
                owned,
                Ordering::AcqRel,
                Ordering::Acquire,
                &g,
            ) {
                Ok(node) => {
                    self.len.fetch_add(1, Ordering::AcqRel);
                    self.build_tower(node, height, &key_bytes, &g);
                    return true;
                }
                Err(e) => {
                    self.note_retry();
                    owned = e.new; // recover the allocation, retry
                }
            }
        }
    }

    /// Links levels `1..height` of a freshly inserted node. If the node
    /// gets marked mid-build, the remaining levels are abandoned and their
    /// pending-link counts released.
    fn build_tower(&self, node: Shared<'_, Node>, height: usize, key: &[u8], g: &Guard) {
        let node_ref = unsafe { node.deref() };
        for level in 1..height {
            loop {
                let pos = self.search(key, g);
                // Abandoned if deleted already (level-0 mark is authoritative).
                let cur = node_ref.next[level].load(Ordering::Acquire, g);
                if cur.tag() == MARK || node_ref.is_marked(g) {
                    unsafe { self.release_links(node, height - level, g) };
                    return;
                }
                let succ = pos.succs[level];
                if succ == node {
                    // Another traversal observed us linked here already
                    // (possible only via our own CAS below having succeeded
                    // on a prior iteration) — move on.
                    break;
                }
                // Point our tower at the successor *by CAS*: a concurrent
                // remover may set the mark on this level at any moment, and
                // a plain store would erase it (leaking the level).
                if node_ref.next[level]
                    .compare_exchange(
                        cur,
                        succ.with_tag(0),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        g,
                    )
                    .is_err()
                {
                    // Lost to a marker: abandon this and all higher levels.
                    unsafe { self.release_links(node, height - level, g) };
                    return;
                }
                match pos.preds[level].compare_exchange(
                    succ,
                    node,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    g,
                ) {
                    Ok(_) => break,
                    Err(_) => {
                        self.note_retry();
                        // Structure changed under us; re-search and retry
                        // this level.
                    }
                }
            }
        }
    }

    /// Removes `key`; returns `false` if it was not present.
    pub fn remove(&self, key: &[u8]) -> bool {
        let g = epoch::pin();
        loop {
            let pos = self.search(key, &g);
            if !pos.found(key) {
                return false;
            }
            let node = pos.succs[0];
            let node_ref = unsafe { node.deref() };
            let height = node_ref.height();
            // Mark top-down; level 0 last, by CAS, so exactly one remover
            // wins the logical delete.
            for level in (1..height).rev() {
                node_ref.next[level].fetch_or(MARK, Ordering::AcqRel, &g);
            }
            loop {
                let next = node_ref.next[0].load(Ordering::Acquire, &g);
                if next.tag() == MARK {
                    // Another remover linearized first; retry the outer
                    // search (the key may have been re-inserted).
                    self.note_retry();
                    break;
                }
                match node_ref.next[0].compare_exchange(
                    next,
                    next.with_tag(MARK),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    &g,
                ) {
                    Ok(_) => {
                        self.len.fetch_sub(1, Ordering::AcqRel);
                        // Cooperative cleanup: this search snips the victim
                        // at every level it is still linked at.
                        let _ = self.search(key, &g);
                        return true;
                    }
                    Err(_) => self.note_retry(),
                }
            }
        }
    }

    /// Non-mutating membership test (never CASes; safe on shared paths).
    pub fn contains(&self, key: &[u8]) -> bool {
        let g = epoch::pin();
        match self.seek_ge(key, &g) {
            Some(n) => &*n.key == key,
            None => false,
        }
    }

    /// First live node with `node.key >= key`, without unlinking anything.
    fn seek_ge<'a>(&'a self, key: &[u8], g: &'a Guard) -> Option<&'a Node> {
        let mut tower: &'a [Atomic<Node>] = &self.head;
        for level in (0..MAX_HEIGHT).rev() {
            let mut curr = tower[level].load(Ordering::Acquire, g);
            while let Some(c) = unsafe { curr.as_ref() } {
                let next = c.next[level].load(Ordering::Acquire, g);
                if next.tag() == MARK || &*c.key < key {
                    // Deleted nodes are stepped *through* (their frozen next
                    // still leads back into the list); live smaller keys
                    // advance the predecessor tower.
                    if next.tag() != MARK {
                        tower = &c.next;
                    }
                    curr = next.with_tag(0);
                } else {
                    if level == 0 {
                        return Some(c);
                    }
                    break;
                }
            }
        }
        None
    }

    /// Keys in `[start, end)` ascending; `end = None` means unbounded.
    /// The iterator holds an epoch guard: O(1) setup, no copying, and
    /// nodes it can reach are not freed while it lives.
    pub fn range_from(&self, start: &[u8], end: Option<&[u8]>) -> Range<'_> {
        let guard = epoch::pin();
        // Seek under *this* guard; the raw pointer stays valid while the
        // iterator (and thus the guard) lives.
        let first = {
            // Guard lives in the returned struct; reborrow locally for the
            // seek. Safe: `seek_ge`'s result only needs the pin to be held,
            // and we hold it until the iterator drops.
            let g: &Guard = &guard;
            self.seek_ge(start, g)
                .map(|n| n as *const Node)
                .unwrap_or(std::ptr::null())
        };
        Range {
            _list: self,
            guard,
            curr: first,
            end: end.map(|e| e.to_vec()),
        }
    }

    /// All keys, ascending.
    pub fn iter(&self) -> Range<'_> {
        self.range_from(&[], None)
    }
}

// ---------------------------------------------------------------------------
// Range iterator
// ---------------------------------------------------------------------------

/// Epoch-pinned ascending iterator over `[start, end)`. Yields owned
/// [`Bytes`] (a refcount bump, not a copy).
pub struct Range<'a> {
    _list: &'a SkipList,
    guard: Guard,
    /// Next node to consider; null = exhausted. Valid while `guard` lives.
    curr: *const Node,
    /// Exclusive upper bound.
    end: Option<Vec<u8>>,
}

impl Iterator for Range<'_> {
    type Item = Bytes;

    fn next(&mut self) -> Option<Bytes> {
        loop {
            if self.curr.is_null() {
                return None;
            }
            // SAFETY: `curr` was reached through loads under `self.guard`,
            // which has been continuously pinned; the node is not freed.
            let node = unsafe { &*self.curr };
            if let Some(end) = &self.end {
                if &*node.key >= end.as_slice() {
                    self.curr = std::ptr::null();
                    return None;
                }
            }
            let next = node.next[0].load(Ordering::Acquire, &self.guard);
            self.curr = next.as_raw();
            if next.tag() != MARK {
                return Some(node.key.clone());
            }
            // Logically deleted: step through without yielding.
        }
    }
}

// ---------------------------------------------------------------------------
// Teardown
// ---------------------------------------------------------------------------

impl Drop for SkipList {
    fn drop(&mut self) {
        // `&mut self`: no concurrent operations. Any node still physically
        // linked at ≥1 level (pending_links > 0) is owned by the list and
        // freed here; fully unlinked nodes were already handed to the epoch
        // collector by whoever took pending_links to zero.
        let mut seen: std::collections::HashSet<*const Node> = std::collections::HashSet::new();
        for level in 0..MAX_HEIGHT {
            let mut curr = unsafe { self.head[level].load_unprotected() };
            while let Some(c) = unsafe { curr.as_ref() } {
                let next = unsafe { c.next[level].load_unprotected() };
                seen.insert(curr.as_raw());
                curr = next.with_tag(0);
            }
        }
        for ptr in seen {
            drop(unsafe { Box::from_raw(ptr as *mut Node) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let s = SkipList::new();
        assert!(s.insert(b(b"b")));
        assert!(s.insert(b(b"a")));
        assert!(!s.insert(b(b"a")), "duplicate insert rejected");
        assert_eq!(s.len(), 2);
        assert!(s.contains(b"a"));
        assert!(!s.contains(b"c"));
        assert!(s.remove(b"a"));
        assert!(!s.remove(b"a"), "double remove rejected");
        assert!(!s.contains(b"a"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_is_sorted_and_half_open() {
        let s = SkipList::new();
        for k in [&b"c"[..], b"a", b"e", b"b", b"d"] {
            s.insert(b(k));
        }
        let all: Vec<Vec<u8>> = s.iter().map(|k| k.to_vec()).collect();
        assert_eq!(
            all,
            vec![
                b"a".to_vec(),
                b"b".to_vec(),
                b"c".to_vec(),
                b"d".to_vec(),
                b"e".to_vec()
            ]
        );
        let mid: Vec<Vec<u8>> = s.range_from(b"b", Some(b"e")).map(|k| k.to_vec()).collect();
        assert_eq!(mid, vec![b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]);
        assert_eq!(s.range_from(b"m", Some(b"m")).count(), 0);
    }

    #[test]
    fn structure_is_insertion_order_independent() {
        // Same key set, different insertion orders and interleaved
        // removals: iteration must agree (and heights are deterministic,
        // so even the internal towers match).
        let mk = |order: &[u32]| {
            let s = SkipList::new();
            for &i in order {
                s.insert(Bytes::copy_from_slice(&i.to_be_bytes()));
            }
            s
        };
        let a = mk(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let c = mk(&[8, 3, 1, 7, 5, 2, 6, 4]);
        let ka: Vec<Bytes> = a.iter().collect();
        let kc: Vec<Bytes> = c.iter().collect();
        assert_eq!(ka, kc);
    }

    #[test]
    fn removed_keys_can_be_reinserted() {
        let s = SkipList::new();
        for round in 0..5 {
            assert!(s.insert(b(b"k")), "round {round}");
            assert!(s.contains(b"k"));
            assert!(s.remove(b"k"));
            assert!(!s.contains(b"k"));
        }
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn scan_skips_concurrently_removed_keys() {
        let s = SkipList::new();
        for i in 0..100u32 {
            s.insert(Bytes::copy_from_slice(&i.to_be_bytes()));
        }
        // Start a scan, then remove keys ahead of it: the scan must skip
        // them without crashing or yielding stale members... and because
        // the guard pins the epoch, the removed nodes' memory stays valid.
        let mut it = s.iter();
        let first = it.next().unwrap();
        assert_eq!(&first[..], &0u32.to_be_bytes());
        for i in 50..100u32 {
            s.remove(&i.to_be_bytes());
        }
        let rest: Vec<Bytes> = it.collect();
        assert_eq!(rest.len(), 49, "keys 1..50 remain");
        drop(s);
    }

    #[test]
    fn large_population_stays_sorted() {
        let s = SkipList::new();
        // Pseudo-random insertion order (LCG), then verify total order.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..4096 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s.insert(Bytes::copy_from_slice(&(x >> 32).to_be_bytes()[..4]));
        }
        let keys: Vec<Bytes> = s.iter().collect();
        assert_eq!(keys.len(), s.len());
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "strictly ascending, no duplicates");
        }
    }
}
