//! Injectable durable command log (ISSUE 6).
//!
//! The paper's system is memory-only: replication is the sole failure
//! story, and a correlated crash of a whole replica group loses every
//! committed transaction. This module adds the missing durability layer
//! as an *injectable* abstraction, so the same scheduler/group-commit
//! code runs against a real buffered file ([`FileLog`]) in the live
//! runtime and a deterministic in-memory log ([`MemLog`]) with injectable
//! fault modes — torn tail writes, stalled syncs, write errors — in the
//! simulator and the crash-point test sweep.
//!
//! # On-disk format
//!
//! The log is a flat sequence of framed records:
//!
//! ```text
//! [u32 payload_len (LE)] [u64 FNV-1a checksum of payload (LE)] [payload]
//! ```
//!
//! The payload is an encoded `CommitRecord` (see `hcc_common::codec`),
//! but the framing layer is payload-agnostic. A record is valid only if
//! its full frame is present *and* the checksum matches; recovery
//! ([`decode_frames`]) walks the log from the front and stops at the
//! first invalid frame, discarding it and everything after it — which is
//! exactly the torn-tail-write semantics of a crash mid-append: the
//! durable prefix survives, the partial record does not. Group commit
//! guarantees no *acknowledged* transaction is ever in that discarded
//! suffix.

use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Bytes of framing per record: `u32` length + `u64` checksum.
pub const FRAME_HEADER: usize = 4 + 8;

/// FNV-1a over a byte slice — the same hash `LockKey::from_bytes` uses,
/// cheap and dependency-free. Not cryptographic; it detects torn/corrupt
/// tail writes, not an adversary.
#[inline]
pub fn checksum(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Why a log operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogError {
    /// The underlying device rejected the write (injected fault, or a
    /// real I/O error in [`FileLog`]).
    WriteFailed,
    /// The sync did not complete (stalled device). The caller's
    /// stalled-log guard turns this into `AbortReason::LogStalled`.
    Stalled,
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::WriteFailed => f.write_str("log write failed"),
            LogError::Stalled => f.write_str("log sync stalled"),
        }
    }
}

/// A durable append-only command log.
///
/// Records are identified by 1-based append index; `durable()` is the
/// highest index guaranteed to survive a crash (advanced by `sync`).
/// Implementations never reorder: index order is durability order is
/// replay order.
pub trait DurableLog {
    /// Append one framed record; returns its 1-based index. The record is
    /// NOT durable until a subsequent [`sync`](DurableLog::sync) covers it.
    fn append(&mut self, payload: &[u8]) -> Result<u64, LogError>;
    /// Make every appended record durable; returns the new durable
    /// watermark (== `appended()` on success).
    fn sync(&mut self) -> Result<u64, LogError>;
    /// Records appended so far.
    fn appended(&self) -> u64;
    /// Records guaranteed to survive a crash.
    fn durable(&self) -> u64;
    /// Byte image of the *durable* log — what recovery would read after a
    /// crash right now. (Appended-but-unsynced records are excluded; a
    /// torn-tail fault may append a partial frame, see [`MemLog`].)
    fn crash_image(&mut self) -> Vec<u8>;
}

/// Split a log byte image into record payloads.
///
/// Walks frames from the front; stops at the first truncated or
/// checksum-corrupt frame. Returns the valid payloads and whether a torn
/// (partial/corrupt) tail was discarded.
pub fn decode_frames(mut bytes: &[u8]) -> (Vec<Vec<u8>>, bool) {
    let mut records = Vec::new();
    while bytes.len() >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let sum = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
        let rest = &bytes[FRAME_HEADER..];
        if rest.len() < len {
            return (records, true); // torn: frame announces more than exists
        }
        let payload = &rest[..len];
        if checksum(payload) != sum {
            return (records, true); // corrupt tail write
        }
        records.push(payload.to_vec());
        bytes = &rest[len..];
    }
    (records, !bytes.is_empty())
}

/// Frame one payload (length + checksum header).
pub fn frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

// ---------------------------------------------------------------------
// FileLog
// ---------------------------------------------------------------------

/// A real buffered-file log for the live runtime: appends go through a
/// `BufWriter`, `sync` flushes and `sync_data`s — one device round-trip
/// per group-commit batch, which is the entire point of group commit.
pub struct FileLog {
    writer: BufWriter<File>,
    appended: u64,
    durable: u64,
    /// Byte length of the durable prefix (for `crash_image` read-back).
    durable_bytes: u64,
    pending_bytes: u64,
}

impl FileLog {
    /// Create (truncating) a log file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::options()
            .create(true)
            .write(true)
            .read(true)
            .truncate(true)
            .open(path)?;
        Ok(FileLog {
            writer: BufWriter::new(file),
            appended: 0,
            durable: 0,
            durable_bytes: 0,
            pending_bytes: 0,
        })
    }
}

impl DurableLog for FileLog {
    fn append(&mut self, payload: &[u8]) -> Result<u64, LogError> {
        let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame(payload, &mut buf);
        self.writer
            .write_all(&buf)
            .map_err(|_| LogError::WriteFailed)?;
        self.appended += 1;
        self.pending_bytes += buf.len() as u64;
        Ok(self.appended)
    }

    fn sync(&mut self) -> Result<u64, LogError> {
        self.writer.flush().map_err(|_| LogError::WriteFailed)?;
        self.writer
            .get_ref()
            .sync_data()
            .map_err(|_| LogError::Stalled)?;
        self.durable = self.appended;
        self.durable_bytes += self.pending_bytes;
        self.pending_bytes = 0;
        Ok(self.durable)
    }

    fn appended(&self) -> u64 {
        self.appended
    }

    fn durable(&self) -> u64 {
        self.durable
    }

    fn crash_image(&mut self) -> Vec<u8> {
        // Read back the synced prefix. Buffered-but-unflushed bytes are by
        // definition not durable, so they are excluded even though the OS
        // may in fact have them.
        let _ = self.writer.flush();
        let file = self.writer.get_mut();
        let mut bytes = Vec::new();
        if file.seek(SeekFrom::Start(0)).is_ok() {
            let _ = file.read_to_end(&mut bytes);
            let _ = file.seek(SeekFrom::End(0));
        }
        bytes.truncate(self.durable_bytes as usize);
        bytes
    }
}

// ---------------------------------------------------------------------
// MemLog
// ---------------------------------------------------------------------

/// Injectable fault modes for [`MemLog`]. All off by default.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultMode {
    /// Fail every append after this many have succeeded.
    pub fail_appends_after: Option<u64>,
    /// Stall (fail with [`LogError::Stalled`]) every sync after this many
    /// have succeeded. `Some(0)` stalls from the first sync on.
    pub stall_syncs_after: Option<u64>,
    /// On [`crash_image`](DurableLog::crash_image), include a *partial*
    /// prefix of the first unsynced record — the torn tail write of a
    /// crash mid-append. Recovery must detect and discard it.
    pub torn_tail: bool,
}

/// Deterministic in-memory log for the simulator and tests: the byte
/// image is identical to what [`FileLog`] would persist, durability is an
/// explicit watermark, and faults are injectable.
pub struct MemLog {
    /// Framed bytes of all appended records.
    bytes: Vec<u8>,
    /// Byte offset of the end of each record's frame (index i = records
    /// `1..=i+1`), so any record-aligned prefix is addressable.
    ends: Vec<usize>,
    appended: u64,
    durable: u64,
    syncs: u64,
    pub fault: FaultMode,
}

impl MemLog {
    pub fn new() -> Self {
        MemLog {
            bytes: Vec::new(),
            ends: Vec::new(),
            appended: 0,
            durable: 0,
            syncs: 0,
            fault: FaultMode::default(),
        }
    }

    pub fn with_fault(fault: FaultMode) -> Self {
        let mut log = Self::new();
        log.fault = fault;
        log
    }

    /// Byte image of the full appended log (as if every record had been
    /// synced) — the oracle side of the crash tests.
    pub fn full_image(&self) -> Vec<u8> {
        self.bytes.clone()
    }

    /// Byte image of the first `n` records (record-aligned prefix).
    pub fn prefix_image(&self, n: u64) -> Vec<u8> {
        if n == 0 {
            return Vec::new();
        }
        let end = self.ends[(n as usize).min(self.ends.len()) - 1];
        self.bytes[..end].to_vec()
    }
}

impl Default for MemLog {
    fn default() -> Self {
        Self::new()
    }
}

impl DurableLog for MemLog {
    fn append(&mut self, payload: &[u8]) -> Result<u64, LogError> {
        if let Some(limit) = self.fault.fail_appends_after {
            if self.appended >= limit {
                return Err(LogError::WriteFailed);
            }
        }
        frame(payload, &mut self.bytes);
        self.ends.push(self.bytes.len());
        self.appended += 1;
        Ok(self.appended)
    }

    fn sync(&mut self) -> Result<u64, LogError> {
        if let Some(limit) = self.fault.stall_syncs_after {
            if self.syncs >= limit {
                return Err(LogError::Stalled);
            }
        }
        self.syncs += 1;
        self.durable = self.appended;
        Ok(self.durable)
    }

    fn appended(&self) -> u64 {
        self.appended
    }

    fn durable(&self) -> u64 {
        self.durable
    }

    fn crash_image(&mut self) -> Vec<u8> {
        let durable_end = if self.durable == 0 {
            0
        } else {
            self.ends[self.durable as usize - 1]
        };
        let mut image = self.bytes[..durable_end].to_vec();
        if self.fault.torn_tail && self.durable < self.appended {
            // Half of the first unsynced record's frame made it to the
            // device before the crash.
            let next_end = self.ends[self.durable as usize];
            let torn = (next_end - durable_end) / 2;
            image.extend_from_slice(&self.bytes[durable_end..durable_end + torn.max(1)]);
        }
        image
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(i: u8) -> Vec<u8> {
        vec![i; 3 + i as usize]
    }

    #[test]
    fn memlog_appends_and_syncs() {
        let mut log = MemLog::new();
        assert_eq!(log.append(&payload(1)).unwrap(), 1);
        assert_eq!(log.append(&payload(2)).unwrap(), 2);
        assert_eq!(log.durable(), 0);
        assert_eq!(log.sync().unwrap(), 2);
        assert_eq!(log.durable(), 2);
        let (records, torn) = decode_frames(&log.crash_image());
        assert!(!torn);
        assert_eq!(records, vec![payload(1), payload(2)]);
    }

    #[test]
    fn unsynced_records_are_not_in_the_crash_image() {
        let mut log = MemLog::new();
        log.append(&payload(1)).unwrap();
        log.sync().unwrap();
        log.append(&payload(2)).unwrap();
        let (records, torn) = decode_frames(&log.crash_image());
        assert!(!torn);
        assert_eq!(records, vec![payload(1)]);
    }

    #[test]
    fn torn_tail_is_detected_and_discarded() {
        let mut log = MemLog::with_fault(FaultMode {
            torn_tail: true,
            ..Default::default()
        });
        log.append(&payload(1)).unwrap();
        log.sync().unwrap();
        log.append(&payload(2)).unwrap();
        let image = log.crash_image();
        let (records, torn) = decode_frames(&image);
        assert!(torn, "partial tail frame must be flagged");
        assert_eq!(records, vec![payload(1)]);
    }

    #[test]
    fn corrupt_checksum_stops_decoding() {
        let mut log = MemLog::new();
        log.append(&payload(1)).unwrap();
        log.append(&payload(2)).unwrap();
        log.sync().unwrap();
        let mut image = log.crash_image();
        let n = image.len();
        image[n - 1] ^= 0xFF; // flip a payload byte of record 2
        let (records, torn) = decode_frames(&image);
        assert!(torn);
        assert_eq!(records, vec![payload(1)]);
    }

    #[test]
    fn injected_faults_fire() {
        let mut log = MemLog::with_fault(FaultMode {
            fail_appends_after: Some(1),
            stall_syncs_after: Some(0),
            torn_tail: false,
        });
        assert_eq!(log.append(&payload(1)).unwrap(), 1);
        assert_eq!(log.append(&payload(2)), Err(LogError::WriteFailed));
        assert_eq!(log.sync(), Err(LogError::Stalled));
        assert_eq!(log.durable(), 0);
    }

    #[test]
    fn prefix_image_is_record_aligned() {
        let mut log = MemLog::new();
        for i in 1..=4 {
            log.append(&payload(i)).unwrap();
        }
        for k in 0..=4u64 {
            let (records, torn) = decode_frames(&log.prefix_image(k));
            assert!(!torn);
            assert_eq!(records.len(), k as usize);
        }
    }

    #[test]
    fn filelog_roundtrips_through_a_real_file() {
        let dir = std::env::temp_dir().join(format!("hcc-durable-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p0.log");
        let mut log = FileLog::create(&path).unwrap();
        log.append(&payload(1)).unwrap();
        log.append(&payload(2)).unwrap();
        assert_eq!(log.sync().unwrap(), 2);
        log.append(&payload(3)).unwrap(); // buffered, never synced
        let (records, torn) = decode_frames(&log.crash_image());
        assert!(!torn);
        assert_eq!(records, vec![payload(1), payload(2)]);
        // Appends after a crash-image read-back continue to work.
        assert_eq!(log.sync().unwrap(), 3);
        let (records, _) = decode_frames(&log.crash_image());
        assert_eq!(records.len(), 3);
        drop(log);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memlog_image_matches_filelog_image() {
        let dir = std::env::temp_dir().join(format!("hcc-durable-eq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut mem = MemLog::new();
        let mut file = FileLog::create(&dir.join("eq.log")).unwrap();
        for i in 1..=5 {
            mem.append(&payload(i)).unwrap();
            file.append(&payload(i)).unwrap();
        }
        mem.sync().unwrap();
        file.sync().unwrap();
        assert_eq!(
            mem.crash_image(),
            file.crash_image(),
            "the two implementations must persist identical bytes"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
