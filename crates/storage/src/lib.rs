//! Main-memory storage engines for `hcc`.
//!
//! Two engines, matching the paper's evaluation (§5):
//!
//! * [`kv`] — "a simple key/value store, where keys and values are arbitrary
//!   byte strings" used by the microbenchmarks. One transaction type is
//!   supported: read a set of values, then update them.
//! * [`tpcc`] — "a custom written execution engine that executes
//!   transactions directly on data in memory. Each table is represented as
//!   either a B-Tree \[or\] hash table, as appropriate." Includes the paper's
//!   TPC-C partitioning: by warehouse, with the read-only ITEM table
//!   replicated and the STOCK table vertically partitioned (read-only
//!   columns replicated to every partition).
//!
//! Both engines support **undo buffers**: per-transaction logs of pre-images
//! that can roll a transaction's effects back, required for speculative
//! execution, multi-partition transactions, and deadlock aborts. In the
//! non-speculative fast path the schedulers skip undo recording entirely,
//! which is where the paper's low overhead comes from.

pub mod durable;
pub mod kv;
pub mod ordered;
pub mod skiplist;
pub mod table;
pub mod tpcc;

pub use durable::{decode_frames, DurableLog, FaultMode, FileLog, LogError, MemLog};
pub use kv::{KvStore, KvUndo};
pub use ordered::OrderedIndex;
pub use table::Table;
