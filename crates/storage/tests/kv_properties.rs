//! Property tests: the KV undo buffer inverts arbitrary operation
//! sequences, including interleaved transactions rolled back in LIFO
//! order — the invariant the speculative scheduler's cascade relies on.

use bytes::Bytes;
use hcc_storage::{KvStore, KvUndo};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8),
    Delete(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 32, v)),
        any::<u8>().prop_map(|k| Op::Delete(k % 32)),
    ]
}

fn key(k: u8) -> Bytes {
    Bytes::copy_from_slice(&[k])
}

fn apply(kv: &mut KvStore, ops: &[Op], undo: Option<&mut KvUndo>) {
    let mut undo = undo;
    for op in ops {
        match *op {
            Op::Put(k, v) => kv.put(key(k), Bytes::copy_from_slice(&[v]), undo.as_deref_mut()),
            Op::Delete(k) => {
                kv.delete(&key(k), undo.as_deref_mut());
            }
        }
    }
}

proptest! {
    /// rollback(execute(ops)) is the identity on store state.
    #[test]
    fn rollback_inverts_any_sequence(
        base in proptest::collection::vec(op_strategy(), 0..40),
        txn in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut kv = KvStore::new();
        apply(&mut kv, &base, None);
        let before = kv.fingerprint();

        let mut undo = KvUndo::new();
        apply(&mut kv, &txn, Some(&mut undo));
        kv.rollback(undo);
        prop_assert_eq!(kv.fingerprint(), before);
    }

    /// Two interleaved transactions rolled back newest-first restore the
    /// pre-state exactly (the speculation squash order).
    #[test]
    fn lifo_rollback_of_interleaved_txns(
        base in proptest::collection::vec(op_strategy(), 0..20),
        t1 in proptest::collection::vec(op_strategy(), 1..20),
        t2 in proptest::collection::vec(op_strategy(), 1..20),
    ) {
        let mut kv = KvStore::new();
        apply(&mut kv, &base, None);
        let before = kv.fingerprint();

        let mut u1 = KvUndo::new();
        let mut u2 = KvUndo::new();
        apply(&mut kv, &t1, Some(&mut u1));
        apply(&mut kv, &t2, Some(&mut u2));
        kv.rollback(u2);
        kv.rollback(u1);
        prop_assert_eq!(kv.fingerprint(), before);
    }

    /// Committing the first txn and rolling back the second leaves exactly
    /// the first txn's effects.
    #[test]
    fn partial_rollback_keeps_committed_effects(
        t1 in proptest::collection::vec(op_strategy(), 1..20),
        t2 in proptest::collection::vec(op_strategy(), 1..20),
    ) {
        let mut kv = KvStore::new();
        let mut reference = KvStore::new();
        apply(&mut kv, &t1, None);
        apply(&mut reference, &t1, None);

        let mut u2 = KvUndo::new();
        apply(&mut kv, &t2, Some(&mut u2));
        kv.rollback(u2);
        prop_assert_eq!(kv.fingerprint(), reference.fingerprint());
    }
}
