//! Concurrent torture test for the lock-free skiplist.
//!
//! Seeded multi-thread stress proving the three properties the ordered
//! index depends on:
//!
//! 1. **Per-key linearizability**: each writer owns a disjoint key slice
//!    and replays a deterministic op sequence; after the run the list must
//!    hold exactly that writer's expected residual set — no lost inserts,
//!    no resurrected removes, regardless of interleaving.
//! 2. **Scan-during-mutation safety**: scanner threads iterate the full
//!    list *while* writers churn; every observed scan must be strictly
//!    ascending (no duplicates, no order inversions) and contain only keys
//!    from the universe.
//! 3. **No use-after-free**: iteration touches nodes that concurrent
//!    removers retire; epoch pinning must keep them alive. The test also
//!    asserts the epoch collector genuinely reclaimed nodes (a collector
//!    that never frees would pass 1–2 vacuously).

use bytes::Bytes;
use hcc_storage::skiplist::{contention_snapshot, SkipList};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITERS: usize = 4;
const SCANNERS: usize = 2;
const KEYS_PER_WRITER: u32 = 256;
const OPS_PER_WRITER: u32 = 60_000;

fn key(writer: usize, k: u32) -> Bytes {
    let mut buf = [0u8; 6];
    buf[..2].copy_from_slice(&(writer as u16).to_be_bytes());
    buf[2..].copy_from_slice(&k.to_be_bytes());
    Bytes::copy_from_slice(&buf)
}

/// Deterministic per-writer op stream (splitmix-style); returns the
/// expected final key set.
fn run_writer(list: &SkipList, writer: usize, seed: u64) -> BTreeSet<Bytes> {
    let mut expect: BTreeSet<Bytes> = BTreeSet::new();
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
    for _ in 0..OPS_PER_WRITER {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let k = key(writer, ((x >> 33) as u32) % KEYS_PER_WRITER);
        if (x >> 62) & 1 == 0 {
            list.insert(k.clone());
            expect.insert(k);
        } else {
            list.remove(&k);
            expect.remove(&k);
        }
    }
    expect
}

#[test]
fn concurrent_writers_and_scanners_stay_linearizable() {
    let before = contention_snapshot();
    let list = Arc::new(SkipList::new());
    let stop = Arc::new(AtomicBool::new(false));

    let scanners: Vec<_> = (0..SCANNERS)
        .map(|_| {
            let list = list.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut scans = 0u64;
                let mut seen = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let mut prev: Option<Bytes> = None;
                    for k in list.iter() {
                        if let Some(p) = &prev {
                            assert!(
                                *p < k,
                                "scan order inversion: {:?} then {:?}",
                                &p[..],
                                &k[..]
                            );
                        }
                        assert_eq!(k.len(), 6, "key from outside the universe");
                        let w = u16::from_be_bytes([k[0], k[1]]) as usize;
                        let n = u32::from_be_bytes([k[2], k[3], k[4], k[5]]);
                        assert!(w < WRITERS && n < KEYS_PER_WRITER);
                        prev = Some(k);
                        seen += 1;
                    }
                    scans += 1;
                }
                (scans, seen)
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let list = list.clone();
            std::thread::spawn(move || run_writer(&list, w, 0xBEEF + w as u64))
        })
        .collect();

    let expected: Vec<BTreeSet<Bytes>> = writers.into_iter().map(|h| h.join().unwrap()).collect();
    stop.store(true, Ordering::Release);
    for s in scanners {
        let (scans, _seen) = s.join().unwrap();
        assert!(scans > 0, "scanner never completed a pass");
    }

    // Per-writer residual sets must match exactly: key slices are
    // disjoint, so each writer's ops linearize independently.
    let final_keys: Vec<Bytes> = list.iter().collect();
    for (w, expected_set) in expected.iter().enumerate() {
        let got: Vec<&Bytes> = final_keys
            .iter()
            .filter(|k| u16::from_be_bytes([k[0], k[1]]) as usize == w)
            .collect();
        let expect: Vec<&Bytes> = expected_set.iter().collect();
        assert_eq!(got, expect, "writer {w} residual set diverged");
    }
    let total: usize = expected.iter().map(|e| e.len()).sum();
    assert_eq!(list.len(), total, "len counter diverged from contents");

    // The run must have exercised reclamation for real: tens of thousands
    // of removes ⇒ the epoch collector freed nodes while scans were live.
    drop(list);
    let after = contention_snapshot();
    assert!(
        after.reclaimed > before.reclaimed,
        "epoch collector never freed a node ({} -> {})",
        before.reclaimed,
        after.reclaimed
    );
    assert!(
        after.snips > before.snips,
        "no physical unlinks recorded — removes never completed cleanup"
    );
}

#[test]
fn reinsertion_races_do_not_lose_keys() {
    // Two threads fight over the *same* single key with opposite final
    // intents, many rounds; a third scans. Afterwards the key's presence
    // must match the winner of the last linearized op — which we can't
    // know — but every intermediate state must be internally consistent
    // (len matches membership) and the list must survive. This hammers
    // the mark/unlink/re-insert path where ABA and double-free bugs live.
    let list = Arc::new(SkipList::new());
    let k = Bytes::from_static(b"contended");
    let rounds = 40_000u32;

    let handles: Vec<_> = (0..2)
        .map(|i| {
            let list = list.clone();
            let k = k.clone();
            std::thread::spawn(move || {
                for r in 0..rounds {
                    if (r + i) % 2 == 0 {
                        list.insert(k.clone());
                    } else {
                        list.remove(&k);
                    }
                }
            })
        })
        .collect();
    let scanner = {
        let list = list.clone();
        std::thread::spawn(move || {
            for _ in 0..2_000 {
                let n = list.iter().count();
                assert!(n <= 1, "single-key list grew {n} entries");
            }
        })
    };
    for h in handles {
        h.join().unwrap();
    }
    scanner.join().unwrap();

    let members = list.iter().count();
    let len = list.len();
    assert_eq!(members, len, "len counter diverged");
    assert!(members <= 1);
    assert_eq!(list.contains(b"contended"), members == 1);
}
