//! Property tests for the lock manager: no incompatible grants ever
//! coexist, releases wake exactly the grantable waiters, the table drains
//! to empty, and the deadlock detector finds planted cycles.

use hcc_common::{ClientId, LockKey, Nanos, TxnId};
use hcc_locking::deadlock::find_cycle;
use hcc_locking::{AcquireOutcome, LockManager, LockMode};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet, VecDeque};

fn t(n: u32) -> TxnId {
    TxnId::new(ClientId(0), n)
}

proptest! {
    /// Random single-key-per-txn workloads: invariants hold after every
    /// step, and releasing everything empties the table.
    #[test]
    fn invariants_hold_under_random_traffic(
        script in proptest::collection::vec(
            (0u32..12, 0u64..6, proptest::bool::ANY, proptest::bool::ANY),
            1..200
        ),
    ) {
        let mut lm = LockManager::new();
        // Each txn may hold/wait at most one request at a time; track who
        // is active and who waits.
        let mut waiting: HashSet<TxnId> = HashSet::new();
        let mut live: HashSet<TxnId> = HashSet::new();

        for (txn_n, key, exclusive, release) in script {
            let txn = t(txn_n);
            if release {
                let woken = lm.release_all(txn);
                live.remove(&txn);
                waiting.remove(&txn);
                for w in woken {
                    waiting.remove(&w);
                }
            } else if !waiting.contains(&txn) {
                let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                match lm.acquire(txn, LockKey(key), mode, Nanos(0)) {
                    AcquireOutcome::Granted => { live.insert(txn); }
                    AcquireOutcome::Waiting => { waiting.insert(txn); live.insert(txn); }
                }
            }
            lm.check_invariants().map_err(TestCaseError::fail)?;
        }
        // Drain: releasing every live txn empties the lock table.
        // (Release in id order; woken txns hold their granted lock until
        // they are themselves released.)
        let mut all: Vec<TxnId> = live.into_iter().collect();
        all.sort();
        for txn in all {
            lm.release_all(txn);
            lm.check_invariants().map_err(TestCaseError::fail)?;
        }
        prop_assert_eq!(lm.table_len(), 0);
    }

    /// Plant a cycle of N transactions (each holds key_i, requests
    /// key_{i+1 mod N}); the detector must find it, and must find nothing
    /// for an acyclic chain of the same shape.
    #[test]
    fn detector_finds_planted_cycles(n in 2usize..8) {
        // Cyclic case.
        let mut lm = LockManager::new();
        for i in 0..n {
            assert_eq!(
                lm.acquire(t(i as u32), LockKey(i as u64), LockMode::Exclusive, Nanos(0)),
                AcquireOutcome::Granted
            );
        }
        for i in 0..n {
            let next = ((i + 1) % n) as u64;
            let out = lm.acquire(t(i as u32), LockKey(next), LockMode::Exclusive, Nanos(0));
            assert_eq!(out, AcquireOutcome::Waiting);
            let found = find_cycle(&lm, t(i as u32));
            if i + 1 < n {
                prop_assert!(found.is_none(), "premature cycle at {i}");
            } else {
                let cycle = found.expect("cycle must be detected on closing edge");
                prop_assert_eq!(cycle.len(), n);
            }
        }

        // Acyclic chain: t0 <- t1 <- ... <- t_{n-1} (each waits on the
        // previous one's key); no cycle anywhere.
        let mut lm = LockManager::new();
        for i in 0..n {
            lm.acquire(t(i as u32), LockKey(i as u64), LockMode::Exclusive, Nanos(0));
        }
        for i in 1..n {
            lm.acquire(t(i as u32), LockKey((i - 1) as u64), LockMode::Exclusive, Nanos(0));
            prop_assert!(find_cycle(&lm, t(i as u32)).is_none());
        }
    }

    /// FIFO fairness: waiters on one exclusive key are granted in arrival
    /// order as the lock is repeatedly released.
    #[test]
    fn fifo_grant_order(waiters in 2u32..20) {
        let mut lm = LockManager::new();
        lm.acquire(t(0), LockKey(1), LockMode::Exclusive, Nanos(0));
        let mut expect: VecDeque<TxnId> = VecDeque::new();
        for i in 1..=waiters {
            lm.acquire(t(i), LockKey(1), LockMode::Exclusive, Nanos(i as u64));
            expect.push_back(t(i));
        }
        let mut holder = t(0);
        while let Some(next) = expect.pop_front() {
            let woken = lm.release_all(holder);
            prop_assert_eq!(woken, vec![next]);
            holder = next;
        }
        lm.release_all(holder);
        prop_assert_eq!(lm.table_len(), 0);
    }

    /// Shared waiters behind one writer are granted together.
    #[test]
    fn readers_granted_as_group(readers in 2u32..16) {
        let mut lm = LockManager::new();
        lm.acquire(t(0), LockKey(9), LockMode::Exclusive, Nanos(0));
        let mut expected: Vec<TxnId> = Vec::new();
        for i in 1..=readers {
            lm.acquire(t(i), LockKey(9), LockMode::Shared, Nanos(0));
            expected.push(t(i));
        }
        let woken = lm.release_all(t(0));
        prop_assert_eq!(woken, expected);
        let mut counts: HashMap<bool, u32> = HashMap::new();
        for i in 1..=readers {
            *counts.entry(lm.holds(t(i), LockKey(9), LockMode::Shared)).or_default() += 1;
        }
        prop_assert_eq!(counts.get(&true).copied().unwrap_or(0), readers);
    }
}
