//! Shared lock-granule helpers for scan-capable engines.
//!
//! Range scans cannot pre-declare per-key locks — a per-key set cannot
//! name a row a concurrent transaction deletes (the delete-phantom the
//! serial oracle caught). Scan-capable engines therefore lock *stripes*
//! of `2^shift` adjacent keys: a scan takes shared locks on every stripe
//! overlapping its `[start, end)` range, point ops lock their key's
//! stripe, and membership changes conflict with any covering scan. Both
//! stripe-granularity engines (`hcc_core::testkit::TestEngine` and the
//! workloads' `MicroEngine`) build their lock sets through these helpers
//! so the two implementations cannot drift.

use crate::LockMode;
use hcc_common::LockKey;

/// Namespace bit for stripe lock keys, so a stripe granule can never
/// collide with a per-key granule of the same numeric value.
pub const STRIPE_NS: u64 = 1 << 63;

/// The stripe granule covering `key`.
#[inline]
pub fn stripe_key(key: u64, shift: u32) -> LockKey {
    LockKey(STRIPE_NS | (key >> shift))
}

/// Stripe granules covering `[start, end)`, ascending; empty when the
/// range is.
pub fn stripe_range(start: u64, end: u64, shift: u32) -> impl Iterator<Item = LockKey> {
    let stripes = if end > start {
        (start >> shift)..=((end - 1) >> shift)
    } else {
        #[allow(clippy::reversed_empty_ranges)]
        {
            1..=0
        }
    };
    stripes.map(move |s| LockKey(STRIPE_NS | s))
}

/// Push `(granule, mode)` onto a small pre-declared lock set, upgrading
/// to exclusive if the granule is already present.
pub fn merge_lock(locks: &mut Vec<(LockKey, LockMode)>, lk: LockKey, mode: LockMode) {
    match locks.iter_mut().find(|(l, _)| *l == lk) {
        Some((_, m)) => {
            if mode == LockMode::Exclusive {
                *m = LockMode::Exclusive;
            }
        }
        None => locks.push((lk, mode)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_ranges_cover_and_namespace() {
        let got: Vec<u64> = stripe_range(3, 40, 4).map(|k| k.0 & !STRIPE_NS).collect();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(stripe_range(8, 8, 4).count(), 0);
        assert_eq!(stripe_range(9, 3, 4).count(), 0, "inverted range is empty");
        assert_eq!(stripe_key(17, 4), LockKey(STRIPE_NS | 1));
    }

    #[test]
    fn merge_upgrades_but_never_downgrades() {
        let mut locks = Vec::new();
        merge_lock(&mut locks, LockKey(1), LockMode::Shared);
        merge_lock(&mut locks, LockKey(1), LockMode::Exclusive);
        merge_lock(&mut locks, LockKey(1), LockMode::Shared);
        assert_eq!(locks, vec![(LockKey(1), LockMode::Exclusive)]);
    }
}
