//! Deadlock detection on the waits-for graph.
//!
//! The paper (§4.3): "Our implementation uses cycle detection to handle
//! local deadlocks, and timeout to handle distributed deadlock. If a cycle
//! is found, it will prefer to kill single partition transactions to break
//! the cycle, as that will result in less wasted work."
//!
//! Detection runs when a transaction starts waiting: a DFS from the new
//! waiter over [`LockManager::blockers`] edges. Any cycle through the new
//! waiter is found (cycles cannot form without a new wait edge, so checking
//! on each block finds every local deadlock exactly when it forms).

use crate::manager::LockManager;
use hcc_common::FxHashSet;
use hcc_common::TxnId;

/// Find a waits-for cycle through `start`, if one exists. Returns the cycle
/// as a list of transactions (each waiting on the next, last waits on
/// first).
pub fn find_cycle(lm: &LockManager, start: TxnId) -> Option<Vec<TxnId>> {
    // Iterative DFS keeping the current path for cycle extraction.
    let mut path: Vec<TxnId> = vec![start];
    let mut iters: Vec<std::vec::IntoIter<TxnId>> = vec![lm.blockers(start).into_iter()];
    let mut on_path: FxHashSet<TxnId> = FxHashSet::from_iter([start]);
    let mut done: FxHashSet<TxnId> = FxHashSet::default();

    while let Some(it) = iters.last_mut() {
        match it.next() {
            Some(next) => {
                if next == start {
                    return Some(path.clone());
                }
                if on_path.contains(&next) {
                    // A cycle not through `start`; extract it anyway — it is
                    // a genuine deadlock that must be broken.
                    let pos = path.iter().position(|t| *t == next).unwrap();
                    return Some(path[pos..].to_vec());
                }
                if done.contains(&next) {
                    continue;
                }
                path.push(next);
                on_path.insert(next);
                iters.push(lm.blockers(next).into_iter());
            }
            None => {
                let finished = path.pop().unwrap();
                on_path.remove(&finished);
                done.insert(finished);
                iters.pop();
            }
        }
    }
    None
}

/// Choose which member of a deadlock cycle to abort.
///
/// Preference order, per the paper: a single-partition transaction first
/// (least wasted work); ties broken by the youngest (highest id), so the
/// oldest transactions make progress.
pub fn choose_victim(lm: &LockManager, cycle: &[TxnId]) -> TxnId {
    debug_assert!(!cycle.is_empty());
    let single_partition: Vec<TxnId> = cycle
        .iter()
        .copied()
        .filter(|t| !lm.is_multi_partition(*t))
        .collect();
    let pool = if single_partition.is_empty() {
        cycle
    } else {
        &single_partition[..]
    };
    *pool.iter().max().expect("cycle is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{AcquireOutcome, LockMode};
    use hcc_common::{ClientId, LockKey, Nanos};

    fn t(n: u32) -> TxnId {
        TxnId::new(ClientId(0), n)
    }

    fn k(n: u64) -> LockKey {
        LockKey(n)
    }

    const NOW: Nanos = Nanos(0);

    #[test]
    fn no_cycle_on_simple_wait() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), k(1), LockMode::Exclusive, NOW);
        lm.acquire(t(2), k(1), LockMode::Exclusive, NOW);
        assert!(find_cycle(&lm, t(2)).is_none());
    }

    #[test]
    fn detects_two_party_cycle() {
        let mut lm = LockManager::new();
        // t1 holds k1, t2 holds k2; then each wants the other's key.
        lm.acquire(t(1), k(1), LockMode::Exclusive, NOW);
        lm.acquire(t(2), k(2), LockMode::Exclusive, NOW);
        assert_eq!(
            lm.acquire(t(1), k(2), LockMode::Exclusive, NOW),
            AcquireOutcome::Waiting
        );
        assert!(find_cycle(&lm, t(1)).is_none(), "no cycle yet");
        assert_eq!(
            lm.acquire(t(2), k(1), LockMode::Exclusive, NOW),
            AcquireOutcome::Waiting
        );
        let cycle = find_cycle(&lm, t(2)).expect("deadlock");
        let mut c = cycle.clone();
        c.sort();
        assert_eq!(c, vec![t(1), t(2)]);
    }

    #[test]
    fn detects_three_party_cycle() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), k(1), LockMode::Exclusive, NOW);
        lm.acquire(t(2), k(2), LockMode::Exclusive, NOW);
        lm.acquire(t(3), k(3), LockMode::Exclusive, NOW);
        lm.acquire(t(1), k(2), LockMode::Exclusive, NOW);
        lm.acquire(t(2), k(3), LockMode::Exclusive, NOW);
        assert!(find_cycle(&lm, t(2)).is_none());
        lm.acquire(t(3), k(1), LockMode::Exclusive, NOW);
        let cycle = find_cycle(&lm, t(3)).expect("deadlock");
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn detects_upgrade_deadlock() {
        let mut lm = LockManager::new();
        // Classic: both hold Shared, both want Exclusive.
        lm.acquire(t(1), k(1), LockMode::Shared, NOW);
        lm.acquire(t(2), k(1), LockMode::Shared, NOW);
        assert_eq!(
            lm.acquire(t(1), k(1), LockMode::Exclusive, NOW),
            AcquireOutcome::Waiting
        );
        assert_eq!(
            lm.acquire(t(2), k(1), LockMode::Exclusive, NOW),
            AcquireOutcome::Waiting
        );
        let cycle = find_cycle(&lm, t(2)).expect("upgrade deadlock");
        let mut c = cycle;
        c.sort();
        assert_eq!(c, vec![t(1), t(2)]);
    }

    #[test]
    fn finds_cycle_not_through_start() {
        let mut lm = LockManager::new();
        // t1/t2 deadlock; t3 waits on t1 and the search starts from t3.
        lm.acquire(t(1), k(1), LockMode::Exclusive, NOW);
        lm.acquire(t(2), k(2), LockMode::Exclusive, NOW);
        lm.acquire(t(1), k(2), LockMode::Exclusive, NOW);
        lm.acquire(t(2), k(1), LockMode::Exclusive, NOW);
        lm.acquire(t(3), k(1), LockMode::Exclusive, NOW);
        let cycle = find_cycle(&lm, t(3)).expect("reachable deadlock");
        assert!(!cycle.contains(&t(3)), "t3 is not part of the cycle");
        let mut c = cycle;
        c.sort();
        assert_eq!(c, vec![t(1), t(2)]);
    }

    #[test]
    fn victim_prefers_single_partition() {
        let mut lm = LockManager::new();
        lm.register_txn(t(1), true);
        lm.register_txn(t(2), false);
        assert_eq!(choose_victim(&lm, &[t(1), t(2)]), t(2));
    }

    #[test]
    fn victim_falls_back_to_youngest_multi_partition() {
        let mut lm = LockManager::new();
        lm.register_txn(t(1), true);
        lm.register_txn(t(2), true);
        assert_eq!(choose_victim(&lm, &[t(1), t(2)]), t(2));
    }

    #[test]
    fn victim_prefers_youngest_single_partition() {
        let mut lm = LockManager::new();
        lm.register_txn(t(1), false);
        lm.register_txn(t(2), false);
        lm.register_txn(t(3), true);
        assert_eq!(choose_victim(&lm, &[t(1), t(2), t(3)]), t(2));
    }

    #[test]
    fn no_false_positives_on_diamond() {
        let mut lm = LockManager::new();
        // t2 and t3 both wait on t1 (shared holders would be fine; use X).
        lm.acquire(t(1), k(1), LockMode::Exclusive, NOW);
        lm.acquire(t(2), k(1), LockMode::Exclusive, NOW);
        lm.acquire(t(3), k(1), LockMode::Exclusive, NOW);
        assert!(find_cycle(&lm, t(2)).is_none());
        assert!(find_cycle(&lm, t(3)).is_none());
    }
}
