//! Single-threaded lock manager for *logical* concurrency (paper §4.3).
//!
//! Each partition runs one thread, so this lock manager needs no latches:
//! "Our system can simply lock a data item without having to worry about
//! another thread trying to concurrently lock the same item. The only type
//! of concurrency we are trying to enable is logical concurrency where a
//! new transaction can make progress only when the previous transaction is
//! blocked waiting for a network stall."
//!
//! Provides strict two-phase locking with shared/exclusive modes, FIFO wait
//! queues, lock upgrades, wait-for-graph cycle detection for local
//! deadlocks (preferring single-partition victims, "as that will result in
//! less wasted work"), and wait timeouts for distributed deadlocks.

pub mod deadlock;
pub mod granule;
pub mod manager;

pub use manager::{AcquireOutcome, LockManager, LockMode, LockStats};
