//! The lock table: grant groups, FIFO wait queues, upgrades, and release.

use hcc_common::{FxHashMap, LockKey, Nanos, TxnId};
use std::collections::VecDeque;

/// Shared (read) or exclusive (write) access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    Shared,
    Exclusive,
}

impl LockMode {
    #[inline]
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }

    /// True if holding `self` already satisfies a request for `want`.
    #[inline]
    pub fn covers(self, want: LockMode) -> bool {
        self == LockMode::Exclusive || want == LockMode::Shared
    }
}

/// Result of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// The lock is held; the caller may proceed.
    Granted,
    /// The request was queued; the caller must suspend the transaction.
    Waiting,
}

#[derive(Debug, Clone, Copy)]
struct QueuedRequest {
    txn: TxnId,
    mode: LockMode,
    /// Upgrade requests (holder of Shared wanting Exclusive) jump the queue
    /// and are flagged so grant logic treats the holder's existing share as
    /// its own.
    upgrade: bool,
    since: Nanos,
}

#[derive(Debug, Default)]
struct LockEntry {
    granted: Vec<(TxnId, LockMode)>,
    queue: VecDeque<QueuedRequest>,
}

impl LockEntry {
    fn holds(&self, txn: TxnId) -> Option<LockMode> {
        self.granted
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|(_, m)| *m)
    }

    /// Can `txn` acquire `mode` right now, given current holders?
    fn grantable(&self, txn: TxnId, mode: LockMode) -> bool {
        self.granted
            .iter()
            .all(|(t, m)| *t == txn || m.compatible(mode))
    }
}

/// Counters for the §5.6-style lock overhead breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    pub acquires: u64,
    pub immediate_grants: u64,
    pub waits: u64,
    pub upgrades: u64,
    pub releases: u64,
    pub deadlocks_detected: u64,
    pub timeouts: u64,
}

/// A strict two-phase-locking lock table for one single-threaded partition.
///
/// Invariants maintained:
/// * every granted group is mutually compatible;
/// * wait queues are FIFO except that upgrades go to the front;
/// * a transaction waits on at most one key at a time (execution within a
///   partition is serial, so a suspended transaction has exactly one
///   outstanding request).
#[derive(Debug, Default)]
pub struct LockManager {
    table: FxHashMap<LockKey, LockEntry>,
    /// Keys held per transaction, in acquisition order.
    held: FxHashMap<TxnId, Vec<LockKey>>,
    /// The single key each waiting transaction is queued on.
    waiting_on: FxHashMap<TxnId, LockKey>,
    /// Registered multi-partition transactions (victim selection prefers
    /// killing single-partition transactions).
    multi_partition: FxHashMap<TxnId, bool>,
    pub stats: LockStats,
}

impl LockManager {
    pub fn new() -> Self {
        Self::default()
    }

    /// Tell the lock manager whether `txn` is multi-partition (affects
    /// deadlock victim choice and timeout handling).
    pub fn register_txn(&mut self, txn: TxnId, multi_partition: bool) {
        self.multi_partition.insert(txn, multi_partition);
    }

    pub fn is_multi_partition(&self, txn: TxnId) -> bool {
        self.multi_partition.get(&txn).copied().unwrap_or(false)
    }

    /// Number of transactions currently holding or waiting for any lock.
    pub fn active_txns(&self) -> usize {
        self.multi_partition.len()
    }

    /// True if `txn` currently holds `key` in a mode covering `mode`.
    pub fn holds(&self, txn: TxnId, key: LockKey, mode: LockMode) -> bool {
        self.table
            .get(&key)
            .and_then(|e| e.holds(txn))
            .is_some_and(|m| m.covers(mode))
    }

    /// The key `txn` is blocked on, if any.
    pub fn waiting_on(&self, txn: TxnId) -> Option<LockKey> {
        self.waiting_on.get(&txn).copied()
    }

    /// Request `key` in `mode` for `txn` at time `now`.
    ///
    /// Returns [`AcquireOutcome::Waiting`] if the request was queued; the
    /// transaction must suspend until a later release returns it as
    /// runnable (see `release_all`). A transaction may not issue a new
    /// request while waiting.
    pub fn acquire(
        &mut self,
        txn: TxnId,
        key: LockKey,
        mode: LockMode,
        now: Nanos,
    ) -> AcquireOutcome {
        debug_assert!(
            !self.waiting_on.contains_key(&txn),
            "{txn} issued a lock request while already waiting"
        );
        self.stats.acquires += 1;
        let entry = self.table.entry(key).or_default();

        if let Some(held) = entry.holds(txn) {
            if held.covers(mode) {
                self.stats.immediate_grants += 1;
                return AcquireOutcome::Granted;
            }
            // Upgrade Shared → Exclusive.
            self.stats.upgrades += 1;
            if entry.granted.len() == 1 {
                // Sole holder: upgrade in place.
                entry.granted[0].1 = LockMode::Exclusive;
                self.stats.immediate_grants += 1;
                return AcquireOutcome::Granted;
            }
            // Other holders present: wait at the *front* of the queue.
            entry.queue.push_front(QueuedRequest {
                txn,
                mode: LockMode::Exclusive,
                upgrade: true,
                since: now,
            });
            self.waiting_on.insert(txn, key);
            self.stats.waits += 1;
            return AcquireOutcome::Waiting;
        }

        // FIFO fairness: only grant immediately if nothing is queued and
        // the request is compatible with every current holder.
        if entry.queue.is_empty() && entry.grantable(txn, mode) {
            entry.granted.push((txn, mode));
            self.held.entry(txn).or_default().push(key);
            self.stats.immediate_grants += 1;
            return AcquireOutcome::Granted;
        }

        entry.queue.push_back(QueuedRequest {
            txn,
            mode,
            upgrade: false,
            since: now,
        });
        self.waiting_on.insert(txn, key);
        self.stats.waits += 1;
        AcquireOutcome::Waiting
    }

    /// Release every lock `txn` holds (and any queued request it still
    /// has), returning the transactions whose queued requests were granted
    /// as a result, in grant order. The caller resumes those transactions.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<TxnId> {
        self.stats.releases += 1;
        let mut woken = Vec::new();

        // Drop a queued request if the txn was still waiting (abort path).
        if let Some(key) = self.waiting_on.remove(&txn) {
            if let Some(entry) = self.table.get_mut(&key) {
                entry.queue.retain(|q| q.txn != txn);
                // Removing a queue head may unblock followers.
                Self::promote(&mut self.table, &mut self.held, key, &mut woken);
            }
        }

        for key in self.held.remove(&txn).unwrap_or_default() {
            if let Some(entry) = self.table.get_mut(&key) {
                entry.granted.retain(|(t, _)| *t != txn);
                Self::promote(&mut self.table, &mut self.held, key, &mut woken);
            }
        }
        self.multi_partition.remove(&txn);

        // A transaction might appear once per key it was waiting on; since
        // each waits on one key, duplicates cannot occur, but keep the
        // contract tight.
        debug_assert!({
            let mut w = woken.clone();
            w.sort();
            w.dedup();
            w.len() == woken.len()
        });
        for t in &woken {
            self.waiting_on.remove(t);
        }
        woken
    }

    /// Grant queued requests at `key` that are now compatible, FIFO.
    fn promote(
        table: &mut FxHashMap<LockKey, LockEntry>,
        held: &mut FxHashMap<TxnId, Vec<LockKey>>,
        key: LockKey,
        woken: &mut Vec<TxnId>,
    ) {
        let Some(entry) = table.get_mut(&key) else {
            return;
        };
        while let Some(head) = entry.queue.front().copied() {
            let ok = if head.upgrade {
                // Upgrade: grantable when the upgrader is the sole holder.
                entry.granted.len() == 1 && entry.granted[0].0 == head.txn
            } else {
                entry.grantable(head.txn, head.mode)
            };
            if !ok {
                break;
            }
            entry.queue.pop_front();
            if head.upgrade {
                entry.granted[0].1 = LockMode::Exclusive;
            } else {
                entry.granted.push((head.txn, head.mode));
                held.entry(head.txn).or_default().push(key);
            }
            woken.push(head.txn);
        }
        if entry.granted.is_empty() && entry.queue.is_empty() {
            table.remove(&key);
        }
    }

    /// Transactions that block `waiter`: incompatible current holders of
    /// the key it waits on, plus incompatible requests queued ahead of it.
    /// This is the edge set of the waits-for graph.
    pub fn blockers(&self, waiter: TxnId) -> Vec<TxnId> {
        let Some(key) = self.waiting_on.get(&waiter) else {
            return Vec::new();
        };
        let Some(entry) = self.table.get(key) else {
            return Vec::new();
        };
        let my_pos = entry.queue.iter().position(|q| q.txn == waiter);
        let my_mode = my_pos
            .map(|i| entry.queue[i].mode)
            .unwrap_or(LockMode::Exclusive);
        let mut out: Vec<TxnId> = entry
            .granted
            .iter()
            .filter(|(t, m)| *t != waiter && !m.compatible(my_mode))
            .map(|(t, _)| *t)
            .collect();
        if let Some(pos) = my_pos {
            for q in entry.queue.iter().take(pos) {
                if q.txn != waiter && !(q.mode.compatible(my_mode)) {
                    out.push(q.txn);
                }
            }
        }
        out
    }

    /// Waiting transactions whose wait started more than `timeout` ago.
    /// Used for the distributed-deadlock defence: only multi-partition
    /// waits can participate in a distributed deadlock, but we report any
    /// expired wait and let the scheduler decide.
    pub fn expired_waits(&self, now: Nanos, timeout: Nanos) -> Vec<TxnId> {
        let mut out = Vec::new();
        for entry in self.table.values() {
            for q in &entry.queue {
                if now.saturating_sub(q.since) >= timeout {
                    out.push(q.txn);
                }
            }
        }
        // Lock-table iteration order is randomized; report victims in a
        // stable order so runs are deterministic.
        out.sort_unstable();
        out
    }

    /// All transactions currently waiting.
    pub fn waiters(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.waiting_on.keys().copied()
    }

    /// Total number of keys with any lock state (table size).
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Number of keys `txn` holds locks on.
    pub fn held_count(&self, txn: TxnId) -> usize {
        self.held.get(&txn).map_or(0, Vec::len)
    }

    /// Debug invariant check: every granted group mutually compatible, every
    /// waiter actually queued, `held` consistent with `table`.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (key, entry) in &self.table {
            for i in 0..entry.granted.len() {
                for j in (i + 1)..entry.granted.len() {
                    let (ta, ma) = entry.granted[i];
                    let (tb, mb) = entry.granted[j];
                    if ta == tb {
                        return Err(format!("{key}: {ta} granted twice"));
                    }
                    if !ma.compatible(mb) {
                        return Err(format!("{key}: incompatible grants {ta}/{tb}"));
                    }
                }
            }
            for q in &entry.queue {
                if self.waiting_on.get(&q.txn) != Some(key) {
                    return Err(format!("{key}: queued {} not in waiting_on", q.txn));
                }
            }
        }
        for (txn, keys) in &self.held {
            for key in keys {
                let ok = self.table.get(key).is_some_and(|e| e.holds(*txn).is_some());
                if !ok {
                    return Err(format!("{txn} claims {key} but table disagrees"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> TxnId {
        TxnId::new(hcc_common::ClientId(0), n)
    }

    fn k(n: u64) -> LockKey {
        LockKey(n)
    }

    const NOW: Nanos = Nanos(0);

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(t(1), k(1), LockMode::Shared, NOW),
            AcquireOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(2), k(1), LockMode::Shared, NOW),
            AcquireOutcome::Granted
        );
        lm.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_blocks_shared() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(t(1), k(1), LockMode::Exclusive, NOW),
            AcquireOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(2), k(1), LockMode::Shared, NOW),
            AcquireOutcome::Waiting
        );
        assert_eq!(lm.waiting_on(t(2)), Some(k(1)));
        lm.check_invariants().unwrap();
    }

    #[test]
    fn shared_blocks_exclusive() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(t(1), k(1), LockMode::Shared, NOW),
            AcquireOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(2), k(1), LockMode::Exclusive, NOW),
            AcquireOutcome::Waiting
        );
    }

    #[test]
    fn reentrant_acquire_is_granted() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(t(1), k(1), LockMode::Exclusive, NOW),
            AcquireOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(1), k(1), LockMode::Exclusive, NOW),
            AcquireOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(1), k(1), LockMode::Shared, NOW),
            AcquireOutcome::Granted
        );
        // Only one entry in held list per key.
        assert_eq!(lm.held_count(t(1)), 1);
    }

    #[test]
    fn release_wakes_fifo_order() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), k(1), LockMode::Exclusive, NOW);
        assert_eq!(
            lm.acquire(t(2), k(1), LockMode::Exclusive, NOW),
            AcquireOutcome::Waiting
        );
        assert_eq!(
            lm.acquire(t(3), k(1), LockMode::Shared, NOW),
            AcquireOutcome::Waiting
        );
        let woken = lm.release_all(t(1));
        // Only t2 can be granted (exclusive); t3 stays queued behind it.
        assert_eq!(woken, vec![t(2)]);
        assert!(lm.holds(t(2), k(1), LockMode::Exclusive));
        assert_eq!(lm.waiting_on(t(3)), Some(k(1)));
        let woken = lm.release_all(t(2));
        assert_eq!(woken, vec![t(3)]);
        lm.check_invariants().unwrap();
    }

    #[test]
    fn release_grants_multiple_compatible_readers() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), k(1), LockMode::Exclusive, NOW);
        lm.acquire(t(2), k(1), LockMode::Shared, NOW);
        lm.acquire(t(3), k(1), LockMode::Shared, NOW);
        let woken = lm.release_all(t(1));
        assert_eq!(woken, vec![t(2), t(3)]);
        assert!(lm.holds(t(2), k(1), LockMode::Shared));
        assert!(lm.holds(t(3), k(1), LockMode::Shared));
    }

    #[test]
    fn sole_holder_upgrades_in_place() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), k(1), LockMode::Shared, NOW);
        assert_eq!(
            lm.acquire(t(1), k(1), LockMode::Exclusive, NOW),
            AcquireOutcome::Granted
        );
        assert!(lm.holds(t(1), k(1), LockMode::Exclusive));
    }

    #[test]
    fn upgrade_waits_for_other_readers_then_jumps_queue() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), k(1), LockMode::Shared, NOW);
        lm.acquire(t(2), k(1), LockMode::Shared, NOW);
        // t3 queues for exclusive; t1 then requests upgrade and must go
        // ahead of t3.
        assert_eq!(
            lm.acquire(t(3), k(1), LockMode::Exclusive, NOW),
            AcquireOutcome::Waiting
        );
        assert_eq!(
            lm.acquire(t(1), k(1), LockMode::Exclusive, NOW),
            AcquireOutcome::Waiting
        );
        let woken = lm.release_all(t(2));
        assert_eq!(woken, vec![t(1)]);
        assert!(lm.holds(t(1), k(1), LockMode::Exclusive));
        assert_eq!(lm.waiting_on(t(3)), Some(k(1)));
    }

    #[test]
    fn fifo_prevents_barging_past_queue() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), k(1), LockMode::Shared, NOW);
        lm.acquire(t(2), k(1), LockMode::Exclusive, NOW); // queued
                                                          // A new shared request is compatible with the holder but must not
                                                          // barge ahead of the queued writer.
        assert_eq!(
            lm.acquire(t(3), k(1), LockMode::Shared, NOW),
            AcquireOutcome::Waiting
        );
    }

    #[test]
    fn abort_while_waiting_removes_queue_entry() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), k(1), LockMode::Exclusive, NOW);
        lm.acquire(t(2), k(1), LockMode::Exclusive, NOW);
        lm.acquire(t(3), k(1), LockMode::Exclusive, NOW);
        // t2 aborts while queued.
        let woken = lm.release_all(t(2));
        assert!(woken.is_empty());
        let woken = lm.release_all(t(1));
        assert_eq!(woken, vec![t(3)]);
    }

    #[test]
    fn blockers_reports_holders_and_queue_ahead() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), k(1), LockMode::Exclusive, NOW);
        lm.acquire(t(2), k(1), LockMode::Exclusive, NOW);
        lm.acquire(t(3), k(1), LockMode::Exclusive, NOW);
        let b2 = lm.blockers(t(2));
        assert_eq!(b2, vec![t(1)]);
        let mut b3 = lm.blockers(t(3));
        b3.sort();
        assert_eq!(b3, vec![t(1), t(2)]);
        assert!(lm.blockers(t(1)).is_empty());
    }

    #[test]
    fn expired_waits_respect_timestamps() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), k(1), LockMode::Exclusive, Nanos(0));
        lm.acquire(t(2), k(1), LockMode::Exclusive, Nanos(1_000));
        lm.acquire(t(3), k(1), LockMode::Exclusive, Nanos(900_000));
        let expired = lm.expired_waits(Nanos(1_001_000), Nanos(1_000_000));
        assert_eq!(expired, vec![t(2)]);
    }

    #[test]
    fn table_shrinks_when_empty() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), k(1), LockMode::Exclusive, NOW);
        lm.acquire(t(1), k(2), LockMode::Shared, NOW);
        assert_eq!(lm.table_len(), 2);
        lm.release_all(t(1));
        assert_eq!(lm.table_len(), 0);
        lm.check_invariants().unwrap();
    }

    #[test]
    fn stats_accumulate() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), k(1), LockMode::Exclusive, NOW);
        lm.acquire(t(2), k(1), LockMode::Exclusive, NOW);
        lm.release_all(t(1));
        assert_eq!(lm.stats.acquires, 2);
        assert_eq!(lm.stats.immediate_grants, 1);
        assert_eq!(lm.stats.waits, 1);
        assert_eq!(lm.stats.releases, 1);
    }

    #[test]
    fn register_and_query_multi_partition() {
        let mut lm = LockManager::new();
        lm.register_txn(t(1), true);
        lm.register_txn(t(2), false);
        assert!(lm.is_multi_partition(t(1)));
        assert!(!lm.is_multi_partition(t(2)));
        assert!(!lm.is_multi_partition(t(3)));
        assert_eq!(lm.active_txns(), 2);
        lm.release_all(t(1));
        assert_eq!(lm.active_txns(), 1);
    }
}
