//! End-to-end simulation tests on the microbenchmark: every scheme must
//! produce serializable histories (shadow replica ≡ primary state) and the
//! relative performance relationships of the paper must hold.

use hcc_common::{Nanos, Scheme, SystemConfig};
use hcc_sim::{SimConfig, Simulation};
use hcc_workloads::micro::{MicroConfig, MicroWorkload};

fn run(scheme: Scheme, mp: f64, mutate: impl FnOnce(&mut MicroConfig)) -> hcc_sim::SimReport {
    let (r, _, _, _) = run_full(scheme, mp, mutate);
    r
}

fn run_full(
    scheme: Scheme,
    mp: f64,
    mutate: impl FnOnce(&mut MicroConfig),
) -> (
    hcc_sim::SimReport,
    MicroWorkload,
    Vec<hcc_workloads::micro::MicroEngine>,
    Option<Vec<hcc_workloads::micro::MicroEngine>>,
) {
    let mut mc = MicroConfig {
        mp_fraction: mp,
        ..Default::default()
    };
    mutate(&mut mc);
    let system = SystemConfig::new(scheme)
        .with_partitions(mc.partitions)
        .with_clients(mc.clients);
    let cfg = SimConfig::new(system)
        .with_window(Nanos::from_millis(50), Nanos::from_millis(300))
        .with_shadow();
    let workload = MicroWorkload::new(mc);
    let build = {
        let w = MicroWorkload::new(mc);
        move |p| w.build_engine(p)
    };
    let sim = Simulation::new(cfg, workload, build);
    sim.run()
}

/// The simulation drains to quiescence after the window, so the shadow
/// replica (serial execution in commit order) must match the primary
/// bit-for-bit — this *is* the serializability check, and doubles as the
/// paper's primary/backup state equivalence.
fn assert_serializable(
    engines: &[hcc_workloads::micro::MicroEngine],
    shadow: &Option<Vec<hcc_workloads::micro::MicroEngine>>,
    label: &str,
) {
    let shadow = shadow.as_ref().expect("shadow enabled");
    for (i, (e, s)) in engines.iter().zip(shadow.iter()).enumerate() {
        assert_eq!(e.live_undo_buffers(), 0, "{label}: P{i} undo buffers leak");
        assert_eq!(
            e.fingerprint(),
            s.fingerprint(),
            "{label}: partition {i} diverged from its serial shadow"
        );
    }
}

#[test]
fn all_schemes_match_at_zero_mp() {
    // Paper Fig. 4: "the performance of locking is very close to the other
    // schemes at 0% multi-partition transactions".
    let b = run(Scheme::Blocking, 0.0, |_| {});
    let s = run(Scheme::Speculative, 0.0, |_| {});
    let l = run(Scheme::Locking, 0.0, |_| {});
    assert!(b.committed > 1000);
    let base = b.throughput_tps;
    for (name, r) in [("spec", &s), ("locking", &l)] {
        let ratio = r.throughput_tps / base;
        assert!(
            (0.97..=1.03).contains(&ratio),
            "{name}: {} vs {}",
            r.throughput_tps,
            base
        );
    }
    // All single-partition work rides the no-undo fast path.
    assert!(s.sched.fast_path > 0);
    assert!(l.sched.fast_path > 0);
    assert_eq!(l.sched.locks_waited, 0);
}

#[test]
fn speculation_dominates_blocking_at_moderate_mp() {
    // Paper Fig. 4: blocking degrades steeply; speculation parallels
    // locking with ~10% higher throughput below the coordinator bottleneck.
    let b = run(Scheme::Blocking, 0.2, |_| {});
    let s = run(Scheme::Speculative, 0.2, |_| {});
    let l = run(Scheme::Locking, 0.2, |_| {});
    assert!(
        s.throughput_tps > 1.2 * b.throughput_tps,
        "spec {} vs blocking {}",
        s.throughput_tps,
        b.throughput_tps
    );
    assert!(
        s.throughput_tps > l.throughput_tps,
        "spec {} vs locking {}",
        s.throughput_tps,
        l.throughput_tps
    );
    assert!(
        s.sched.speculative_executions > 0,
        "speculation actually used"
    );
}

#[test]
fn locking_wins_at_high_mp_due_to_coordinator_bottleneck() {
    // Paper Fig. 4: past ~50% MP the central coordinator saturates and
    // locking (client-coordinated) outperforms speculation.
    let s = run(Scheme::Speculative, 1.0, |_| {});
    let l = run(Scheme::Locking, 1.0, |_| {});
    assert!(
        l.throughput_tps > s.throughput_tps,
        "locking {} vs spec {}",
        l.throughput_tps,
        s.throughput_tps
    );
    assert!(
        s.coordinator_utilization > 0.95,
        "coordinator saturated: {}",
        s.coordinator_utilization
    );
}

#[test]
fn serializability_shadow_replica_matches_for_all_schemes() {
    for scheme in [
        Scheme::Blocking,
        Scheme::Speculative,
        Scheme::Locking,
        Scheme::Occ,
    ] {
        // Conflict-heavy mix with aborts to stress cascades.
        let (r, _, engines, shadow) = run_full(scheme, 0.3, |mc| {
            mc.abort_prob = 0.05;
            mc.clients = 10;
        });
        assert!(r.committed > 100, "{scheme}: {}", r.committed);
        assert_serializable(&engines, &shadow, scheme.name());
    }
}
