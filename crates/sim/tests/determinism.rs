//! The simulator is a pure function of (config, workload seed): identical
//! runs produce identical results, and different seeds differ. This is
//! what makes every figure in EXPERIMENTS.md exactly reproducible.

use hcc_common::{Nanos, Scheme, SystemConfig};
use hcc_sim::{SimConfig, Simulation};
use hcc_workloads::micro::{MicroConfig, MicroWorkload};

fn run(scheme: Scheme, seed: u64) -> (u64, u64, u64, Vec<u64>) {
    let micro = MicroConfig {
        mp_fraction: 0.3,
        abort_prob: 0.05,
        seed,
        ..Default::default()
    };
    let system = SystemConfig::new(scheme)
        .with_partitions(2)
        .with_clients(40)
        .with_seed(seed);
    let cfg = SimConfig::new(system).with_window(Nanos::from_millis(20), Nanos::from_millis(100));
    let builder = MicroWorkload::new(micro);
    let (r, _, engines, _) = Simulation::new(cfg, MicroWorkload::new(micro), move |p| {
        builder.build_engine(p)
    })
    .run();
    (
        r.committed,
        r.events_processed,
        r.user_aborts,
        engines.iter().map(|e| e.fingerprint()).collect(),
    )
}

/// Golden values for [`golden_fixed_seed_results_survive_fast_path_rewrite`].
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    committed: u64,
    user_aborts: u64,
    retries: u64,
    committed_mp: u64,
    /// Final primary-store fingerprint per partition (the shadow replica
    /// must match it too, which the test checks separately).
    fingerprints: [u64; 2],
    /// p50/p99/p999 of committed-transaction latency, in virtual
    /// nanoseconds — pins the whole latency *distribution* shape, proving
    /// the histogram is a deterministic function of the seed (the property
    /// the runtime's tail-latency tables inherit).
    latency_ns: [u64; 3],
}

/// Perf-neutrality guard for the PR 1 fast-path rewrite (and any future
/// hot-path work): for a fixed RNG seed the simulation must produce
/// *bit-identical* results — same committed/aborted/retry counts, same
/// final store state on every partition, and primary == shadow replica.
///
/// The constants were captured on the naive (std-hasher, allocating)
/// build via `cargo run -p hcc-bench --bin golden_capture`. An
/// optimization that changes them has changed scheduling semantics, not
/// just speed.
#[test]
fn golden_fixed_seed_results_survive_fast_path_rewrite() {
    let golden: [(Scheme, Golden); 4] = [
        (
            Scheme::Blocking,
            Golden {
                committed: 1233,
                user_aborts: 64,
                retries: 0,
                committed_mp: 369,
                fingerprints: [0xc3ff8d43e189e49e, 0xdabe674f6edfa9d0],
                latency_ns: [1_880_000, 2_640_000, 2_790_000],
            },
        ),
        (
            Scheme::Speculative,
            Golden {
                committed: 1664,
                user_aborts: 95,
                retries: 0,
                committed_mp: 490,
                fingerprints: [0x071a68d38466ab12, 0x2ab4536c52d32d43],
                latency_ns: [1_150_000, 4_650_000, 5_250_000],
            },
        ),
        (
            Scheme::Locking,
            Golden {
                committed: 1638,
                user_aborts: 93,
                retries: 0,
                committed_mp: 491,
                fingerprints: [0x4f5d0488ad7672dc, 0x6ee7ef7ba16eb8ab],
                latency_ns: [982_000, 5_670_000, 7_430_000],
            },
        ),
        (
            Scheme::Occ,
            Golden {
                committed: 1632,
                user_aborts: 90,
                retries: 0,
                committed_mp: 486,
                fingerprints: [0x1db00b865ea076f9, 0xcb7903ecf7feb066],
                latency_ns: [1_250_000, 3_710_000, 4_710_000],
            },
        ),
    ];
    for (scheme, expected) in golden {
        let micro = MicroConfig {
            mp_fraction: 0.3,
            abort_prob: 0.05,
            conflict_prob: 0.2,
            clients: 24,
            seed: 0xD5,
            ..Default::default()
        };
        let system = SystemConfig::new(scheme)
            .with_partitions(2)
            .with_clients(24)
            .with_seed(0xD5);
        let cfg = SimConfig::new(system)
            .with_window(Nanos::from_millis(20), Nanos::from_millis(100))
            .with_shadow();
        let builder = MicroWorkload::new(micro);
        let (r, _, engines, shadow) = Simulation::new(cfg, MicroWorkload::new(micro), move |p| {
            builder.build_engine(p)
        })
        .run();
        let shadow = shadow.expect("shadow enabled");
        let got = Golden {
            committed: r.committed,
            user_aborts: r.user_aborts,
            retries: r.retries,
            committed_mp: r.committed_mp,
            fingerprints: [engines[0].fingerprint(), engines[1].fingerprint()],
            latency_ns: {
                let lat = r.latency.summary();
                [lat.p50.0, lat.p99.0, lat.p999.0]
            },
        };
        assert_eq!(
            got, expected,
            "{scheme}: fixed-seed results changed — the rewrite altered semantics"
        );
        for (i, (e, s)) in engines.iter().zip(shadow.iter()).enumerate() {
            assert_eq!(
                e.fingerprint(),
                s.fingerprint(),
                "{scheme}: P{i} primary and shadow replica diverged"
            );
        }
        assert_eq!(
            r.sched.stray_decisions, 0,
            "{scheme}: stray decision in a healthy run"
        );
        assert_eq!(
            r.replication.replay_failures, 0,
            "{scheme}: replica replay must be clean"
        );
    }
}

/// Coordinator scale-out determinism: for each shard count the simulation
/// stays a pure function of the seed (bit-identical reruns), N = 1
/// reproduces the singleton's exact fingerprints (the golden test above
/// pins those), and different shard counts genuinely change the schedule
/// (different interleavings at the partitions) while committing the same
/// workload kinds.
#[test]
fn sharded_coordinators_are_deterministic_per_shard_count() {
    let run_n = |coordinators: u32| {
        let micro = MicroConfig {
            mp_fraction: 0.5,
            abort_prob: 0.05,
            clients: 24,
            seed: 0xC0,
            ..Default::default()
        };
        let system = SystemConfig::new(Scheme::Speculative)
            .with_partitions(2)
            .with_clients(24)
            .with_seed(0xC0)
            .with_coordinators(coordinators);
        let cfg = SimConfig::new(system)
            .with_window(Nanos::from_millis(20), Nanos::from_millis(100))
            .with_shadow();
        let builder = MicroWorkload::new(micro);
        let (r, _, engines, shadow) = Simulation::new(cfg, MicroWorkload::new(micro), move |p| {
            builder.build_engine(p)
        })
        .run();
        let shadow = shadow.expect("shadow enabled");
        for (i, (e, s)) in engines.iter().zip(shadow.iter()).enumerate() {
            assert_eq!(
                e.fingerprint(),
                s.fingerprint(),
                "N={coordinators}: P{i} primary and shadow replica diverged"
            );
        }
        assert_eq!(r.replication.replay_failures, 0, "N={coordinators}");
        (
            r.committed,
            r.user_aborts,
            r.events_processed,
            engines.iter().map(|e| e.fingerprint()).collect::<Vec<_>>(),
        )
    };
    let mut fingerprints = Vec::new();
    for n in [1u32, 2, 4] {
        let a = run_n(n);
        let b = run_n(n);
        assert_eq!(a, b, "N={n}: sharded run must be bit-deterministic");
        assert!(a.0 > 500, "N={n}: throughput collapsed ({})", a.0);
        fingerprints.push(a.3.clone());
    }
    assert_ne!(
        fingerprints[0], fingerprints[1],
        "different shard counts must explore different schedules"
    );
}

/// The `workers` knob sizes the *runtime's* reactor pool; the simulator
/// models partition/coordinator service times, not host threads, so the
/// knob must be completely invisible to it — same counts, same
/// fingerprints, and the same latency distribution (p50/p99/p999 in
/// virtual nanoseconds) at every setting. This is the sim half of the
/// vertical-scale contract: results are a function of (seed, workload),
/// never of how many cores the host happens to run the actors on.
#[test]
fn worker_knob_is_invisible_to_the_simulator() {
    let run_w = |workers: u32| {
        let micro = MicroConfig {
            mp_fraction: 0.3,
            abort_prob: 0.05,
            clients: 24,
            seed: 0xD5,
            ..Default::default()
        };
        let system = SystemConfig::new(Scheme::Speculative)
            .with_partitions(2)
            .with_clients(24)
            .with_seed(0xD5)
            .with_workers(workers);
        let cfg =
            SimConfig::new(system).with_window(Nanos::from_millis(20), Nanos::from_millis(100));
        let builder = MicroWorkload::new(micro);
        let (r, _, engines, _) = Simulation::new(cfg, MicroWorkload::new(micro), move |p| {
            builder.build_engine(p)
        })
        .run();
        let lat = r.latency.summary();
        (
            r.committed,
            r.user_aborts,
            r.events_processed,
            [lat.p50.0, lat.p99.0, lat.p999.0],
            engines.iter().map(|e| e.fingerprint()).collect::<Vec<_>>(),
        )
    };
    let baseline = run_w(0);
    for workers in [1u32, 2, 4, 8] {
        assert_eq!(
            run_w(workers),
            baseline,
            "workers={workers} leaked into the simulation"
        );
    }
}

#[test]
fn identical_seeds_produce_identical_runs() {
    for scheme in Scheme::ALL {
        let a = run(scheme, 99);
        let b = run(scheme, 99);
        assert_eq!(a, b, "{scheme}: simulation must be deterministic");
    }
}

#[test]
fn different_seeds_produce_different_histories() {
    let a = run(Scheme::Speculative, 1);
    let b = run(Scheme::Speculative, 2);
    assert_ne!(a.3, b.3, "different seeds must explore different histories");
}

#[test]
fn zero_mp_throughput_is_the_t_sp_bound() {
    // 2 partitions × (1 / 64 µs) = 31 250 tps; the simulator should land
    // within 2% (boundary effects only).
    let micro = MicroConfig::default();
    let system = SystemConfig::new(Scheme::Blocking)
        .with_partitions(2)
        .with_clients(40);
    let cfg = SimConfig::new(system).with_window(Nanos::from_millis(50), Nanos::from_millis(500));
    let builder = MicroWorkload::new(micro);
    let (r, _, _, _) = Simulation::new(cfg, MicroWorkload::new(micro), move |p| {
        builder.build_engine(p)
    })
    .run();
    let err = (r.throughput_tps - 31_250.0).abs() / 31_250.0;
    assert!(err < 0.02, "measured {} tps", r.throughput_tps);
    assert!(r.partition_utilization > 0.98, "partitions must saturate");
    assert!(
        r.coordinator_utilization < 0.01,
        "no MP work, no coordinator"
    );
}

#[test]
fn window_length_does_not_change_steady_state() {
    let micro = MicroConfig {
        mp_fraction: 0.2,
        ..Default::default()
    };
    let mut rates = Vec::new();
    for measure in [200u64, 600] {
        let system = SystemConfig::new(Scheme::Speculative)
            .with_partitions(2)
            .with_clients(40);
        let cfg = SimConfig::new(system)
            .with_window(Nanos::from_millis(100), Nanos::from_millis(measure));
        let builder = MicroWorkload::new(micro);
        let (r, _, _, _) = Simulation::new(cfg, MicroWorkload::new(micro), move |p| {
            builder.build_engine(p)
        })
        .run();
        rates.push(r.throughput_tps);
    }
    let diff = (rates[0] - rates[1]).abs() / rates[1];
    assert!(diff < 0.03, "window sensitivity: {rates:?}");
}
