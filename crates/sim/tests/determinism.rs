//! The simulator is a pure function of (config, workload seed): identical
//! runs produce identical results, and different seeds differ. This is
//! what makes every figure in EXPERIMENTS.md exactly reproducible.

use hcc_common::{Nanos, Scheme, SystemConfig};
use hcc_sim::{SimConfig, Simulation};
use hcc_workloads::micro::{MicroConfig, MicroWorkload};

fn run(scheme: Scheme, seed: u64) -> (u64, u64, u64, Vec<u64>) {
    let micro = MicroConfig {
        mp_fraction: 0.3,
        abort_prob: 0.05,
        seed,
        ..Default::default()
    };
    let system = SystemConfig::new(scheme)
        .with_partitions(2)
        .with_clients(40)
        .with_seed(seed);
    let cfg = SimConfig::new(system)
        .with_window(Nanos::from_millis(20), Nanos::from_millis(100));
    let builder = MicroWorkload::new(micro);
    let (r, _, engines, _) =
        Simulation::new(cfg, MicroWorkload::new(micro), move |p| builder.build_engine(p)).run();
    (
        r.committed,
        r.events_processed,
        r.user_aborts,
        engines.iter().map(|e| e.fingerprint()).collect(),
    )
}

#[test]
fn identical_seeds_produce_identical_runs() {
    for scheme in Scheme::ALL {
        let a = run(scheme, 99);
        let b = run(scheme, 99);
        assert_eq!(a, b, "{scheme}: simulation must be deterministic");
    }
}

#[test]
fn different_seeds_produce_different_histories() {
    let a = run(Scheme::Speculative, 1);
    let b = run(Scheme::Speculative, 2);
    assert_ne!(a.3, b.3, "different seeds must explore different histories");
}

#[test]
fn zero_mp_throughput_is_the_t_sp_bound() {
    // 2 partitions × (1 / 64 µs) = 31 250 tps; the simulator should land
    // within 2% (boundary effects only).
    let micro = MicroConfig::default();
    let system = SystemConfig::new(Scheme::Blocking)
        .with_partitions(2)
        .with_clients(40);
    let cfg = SimConfig::new(system)
        .with_window(Nanos::from_millis(50), Nanos::from_millis(500));
    let builder = MicroWorkload::new(micro);
    let (r, _, _, _) =
        Simulation::new(cfg, MicroWorkload::new(micro), move |p| builder.build_engine(p)).run();
    let err = (r.throughput_tps - 31_250.0).abs() / 31_250.0;
    assert!(err < 0.02, "measured {} tps", r.throughput_tps);
    assert!(r.partition_utilization > 0.98, "partitions must saturate");
    assert!(r.coordinator_utilization < 0.01, "no MP work, no coordinator");
}

#[test]
fn window_length_does_not_change_steady_state() {
    let micro = MicroConfig {
        mp_fraction: 0.2,
        ..Default::default()
    };
    let mut rates = Vec::new();
    for measure in [200u64, 600] {
        let system = SystemConfig::new(Scheme::Speculative)
            .with_partitions(2)
            .with_clients(40);
        let cfg = SimConfig::new(system)
            .with_window(Nanos::from_millis(100), Nanos::from_millis(measure));
        let builder = MicroWorkload::new(micro);
        let (r, _, _, _) =
            Simulation::new(cfg, MicroWorkload::new(micro), move |p| builder.build_engine(p))
                .run();
        rates.push(r.throughput_tps);
    }
    let diff = (rates[0] - rates[1]).abs() / rates[1];
    assert!(diff < 0.03, "window sensitivity: {rates:?}");
}
