//! Crash-point nemesis sweep for the durable command log (paper §3.3 +
//! group commit): kill the whole partition group at *every* commit index
//! k, recover each partition from its surviving log image alone, and prove
//! against a serial oracle that the recovered state is exactly the replay
//! of the longest durable prefix — no acked commit lost, nothing beyond
//! the durable watermark resurrected.
//!
//! The sweep is deterministic: the sim's virtual clock makes the k-th
//! appended commit record a pure function of (config, seed), so every run
//! of this test exercises the same crash points.

use hcc_common::{
    CommitRecord, DurabilityConfig, FxHashMap, Nanos, PartitionId, RetryConfig, Scheme,
    SystemConfig, TxnId,
};
use hcc_core::{recover_partition, ReplicaCore};
use hcc_sim::{CrashHarvest, SimConfig, Simulation};
use hcc_storage::FaultMode;
use hcc_workloads::micro::{MicroConfig, MicroEngine, MicroFragment, MicroWorkload};

const SCHEMES: [Scheme; 4] = [
    Scheme::Blocking,
    Scheme::Speculative,
    Scheme::Locking,
    Scheme::Occ,
];

fn micro(clients: u32) -> MicroConfig {
    MicroConfig {
        partitions: 2,
        clients,
        mp_fraction: 0.25,
        abort_prob: 0.05,
        seed: 0xC4A5,
        ..Default::default()
    }
}

fn sim(scheme: Scheme, clients: u32, dur: DurabilityConfig) -> Simulation<MicroWorkload> {
    let mc = micro(clients);
    let system = SystemConfig::new(scheme)
        .with_partitions(2)
        .with_clients(clients)
        .with_seed(0xC4A5)
        .with_durability(dur);
    let cfg = SimConfig::new(system).with_window(Nanos::from_micros(500), Nanos::from_millis(2));
    let builder = MicroWorkload::new(mc);
    Simulation::new(cfg, MicroWorkload::new(mc), move |p| {
        builder.build_engine(p)
    })
}

/// Serial oracle: replay `records` in order onto a birth-state engine.
fn serial_fingerprint(p: PartitionId, records: &[CommitRecord<MicroFragment>]) -> u64 {
    let mc = micro(1);
    let mut engine = MicroWorkload::new(mc).build_engine(p);
    let mut core = ReplicaCore::new();
    for r in records {
        core.apply(&mut engine, r).expect("serial oracle replay");
    }
    engine.fingerprint()
}

/// The recovery oracle for one crash harvest: recovery from the log image
/// alone must reproduce exactly the serial replay of the durable prefix,
/// and every result acked to a client pre-crash must be inside it.
fn check_harvest(scheme: Scheme, k: u64, h: &CrashHarvest<MicroEngine>, expect_torn: bool) {
    let mut saw_torn = false;
    for (pi, image) in h.images.iter().enumerate() {
        let p = PartitionId(pi as u32);
        let mc = micro(1);
        let snapshot = MicroWorkload::new(mc).build_engine(p);
        let out = recover_partition(snapshot, 0, image)
            .unwrap_or_else(|e| panic!("{scheme} k={k}: P{pi} recovery failed: {e}"));
        // The recovered log position is exactly the durable watermark:
        // nothing durable lost, nothing beyond it resurrected.
        assert_eq!(
            out.records_applied, h.durable[pi],
            "{scheme} k={k}: P{pi} replayed a different count than was durable"
        );
        assert_eq!(
            out.replica.watermark(),
            h.durable[pi],
            "{scheme} k={k}: P{pi}"
        );
        let durable_prefix = &h.history[pi][..h.durable[pi] as usize];
        assert_eq!(
            out.engine.fingerprint(),
            serial_fingerprint(p, durable_prefix),
            "{scheme} k={k}: P{pi} recovered state != serial replay of durable prefix"
        );
        saw_torn |= out.torn_tail;
    }
    if !expect_torn {
        assert!(
            !saw_torn,
            "{scheme} k={k}: torn tail without the torn-tail fault"
        );
    }

    // Every commit acked to a client pre-crash must be durable at every
    // partition it touched — the group-commit gate's whole promise.
    let mut positions: FxHashMap<TxnId, Vec<(usize, u64)>> = FxHashMap::default();
    for (pi, recs) in h.history.iter().enumerate() {
        for r in recs {
            positions.entry(r.txn).or_default().push((pi, r.seq));
        }
    }
    for txn in &h.acked {
        let at = positions
            .get(txn)
            .unwrap_or_else(|| panic!("{scheme} k={k}: acked {txn:?} has no commit record"));
        for (pi, seq) in at {
            assert!(
                *seq <= h.durable[*pi],
                "{scheme} k={k}: acked {txn:?} not durable at P{pi} (seq {seq} > {})",
                h.durable[*pi]
            );
        }
    }
}

/// The crash indices a sweep visits: every index when the log is short,
/// dense head plus strided tail when it is long (the head is where the
/// group-commit edge cases live: empty logs, first unsynced batch).
fn sweep_points(total: u64) -> Vec<u64> {
    let mut ks: Vec<u64> = (1..=total.min(24)).collect();
    if total > 24 {
        let stride = (total / 24).max(1);
        ks.extend((24..=total).step_by(stride as usize));
        ks.push(total);
    }
    ks.dedup();
    ks
}

#[test]
fn crash_at_every_commit_index_recovers_durable_prefix() {
    for scheme in SCHEMES {
        // Learn the run's total commit count, then sweep crash points.
        let full = sim(scheme, 12, DurabilityConfig::default()).run_to_crash(u64::MAX);
        assert!(!full.crashed, "{scheme}: full run must drain");
        assert!(
            full.appended > 30,
            "{scheme}: run too short to sweep ({} records)",
            full.appended
        );
        // The drained run is the k→∞ endpoint of the sweep: check it too.
        check_harvest(scheme, u64::MAX, &full, false);
        assert!(
            !full.acked.is_empty(),
            "{scheme}: a drained run must have acked commits"
        );
        for k in sweep_points(full.appended) {
            let h = sim(scheme, 12, DurabilityConfig::default()).run_to_crash(k);
            assert!(h.crashed, "{scheme}: crash point {k} not reached");
            check_harvest(scheme, k, &h, false);
        }
    }
}

/// Same sweep with the torn-tail fault armed: the crash image ends in a
/// half-written frame whenever unsynced records existed, and recovery
/// must silently discard it (never fail, never apply a partial record).
#[test]
fn torn_tail_is_discarded_at_every_crash_point() {
    let scheme = Scheme::Speculative;
    let full = sim(scheme, 12, DurabilityConfig::default()).run_to_crash(u64::MAX);
    let mut torn_seen = 0u64;
    for k in sweep_points(full.appended) {
        let mut s = sim(scheme, 12, DurabilityConfig::default());
        for p in 0..2 {
            s.set_log_fault(
                PartitionId(p),
                FaultMode {
                    torn_tail: true,
                    ..FaultMode::default()
                },
            );
        }
        let h = s.run_to_crash(k);
        assert!(h.crashed, "crash point {k} not reached");
        check_harvest(scheme, k, &h, true);
        for (pi, image) in h.images.iter().enumerate() {
            let p = PartitionId(pi as u32);
            let mc = micro(1);
            let out = recover_partition(MicroWorkload::new(mc).build_engine(p), 0, image).unwrap();
            torn_seen += u64::from(out.torn_tail);
        }
    }
    // A sweep over every commit boundary must hit unsynced batches.
    assert!(torn_seen > 0, "sweep never produced a torn tail");
}

/// The crash harness is bit-deterministic: same config, same seed, same
/// crash index → identical images, watermarks, and ack sets.
#[test]
fn crash_harvest_is_deterministic() {
    for scheme in [Scheme::Speculative, Scheme::Locking] {
        let a = sim(scheme, 12, DurabilityConfig::default()).run_to_crash(40);
        let b = sim(scheme, 12, DurabilityConfig::default()).run_to_crash(40);
        assert_eq!(a.crashed, b.crashed, "{scheme}");
        assert_eq!(a.images, b.images, "{scheme}: crash images diverged");
        assert_eq!(a.durable, b.durable, "{scheme}");
        assert_eq!(a.acked, b.acked, "{scheme}");
        assert_eq!(a.appended, b.appended, "{scheme}");
    }
}

/// A stalled log device must not wedge the commit chain: past the sync
/// deadline the partition aborts the held batch with the retryable
/// `LogStalled`, clients back off and retry, and the run drains.
#[test]
fn stalled_log_aborts_retryably_and_drains() {
    for scheme in [Scheme::Speculative, Scheme::Blocking] {
        let mc = micro(12);
        let system = SystemConfig::new(scheme)
            .with_partitions(2)
            .with_clients(12)
            .with_seed(0xC4A5)
            .with_durability(
                DurabilityConfig::default().with_sync_deadline(Some(Nanos::from_micros(800))),
            )
            .with_retry(RetryConfig::default().with_max_attempts(3));
        let cfg = SimConfig::new(system).with_window(Nanos::from_millis(2), Nanos::from_millis(8));
        let builder = MicroWorkload::new(mc);
        let mut s = Simulation::new(cfg, MicroWorkload::new(mc), move |p| {
            builder.build_engine(p)
        });
        // P0's device dies after 3 successful syncs; P1 stays healthy.
        s.set_log_fault(
            PartitionId(0),
            FaultMode {
                stall_syncs_after: Some(3),
                ..FaultMode::default()
            },
        );
        let (report, _, _, _) = s.run();
        assert!(
            report.durability.stalled_aborts > 0,
            "{scheme}: stall guard never fired"
        );
        assert!(
            report.backoff_retries > 0,
            "{scheme}: LogStalled aborts must be retried with backoff"
        );
        assert!(
            report.retry_exhausted > 0,
            "{scheme}: a permanently stalled log must exhaust retries"
        );
        // The healthy partition kept committing and syncing throughout.
        assert!(report.committed > 0, "{scheme}");
        assert!(report.durability.syncs > 3, "{scheme}");
    }
}
