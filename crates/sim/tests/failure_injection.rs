//! Partition-failure recovery (paper §3.3): multi-partition transactions
//! use undo buffers and 2PC so that "if the transaction causes one
//! partition to crash ..., other participants are able to recover and
//! continue processing transactions that do not depend on the failed
//! partition."

use hcc_common::{ClientId, Nanos, PartitionId, Scheme, SystemConfig, TxnId};
use hcc_core::{Request, RequestGenerator};
use hcc_sim::{SimConfig, Simulation};
use hcc_workloads::micro::{
    make_key, MicroConfig, MicroEngine, MicroFragment, MicroOp, MicroWorkload, SimpleMicroProcedure,
};

/// Clients 0..4 issue single-partition transactions on P0 only; client 5
/// issues two-partition transactions. Tracks outcomes per kind.
struct SplitWorkload {
    committed_sp: u64,
    aborted_mp: u64,
    committed_mp: u64,
    last_kind_mp: std::collections::HashMap<u32, bool>,
}

impl SplitWorkload {
    fn new() -> Self {
        SplitWorkload {
            committed_sp: 0,
            aborted_mp: 0,
            committed_mp: 0,
            last_kind_mp: std::collections::HashMap::new(),
        }
    }
}

impl RequestGenerator for SplitWorkload {
    type Engine = MicroEngine;

    fn next_request(&mut self, client: ClientId) -> Request<MicroFragment, Vec<u32>> {
        if client.0 < 5 {
            self.last_kind_mp.insert(client.0, false);
            Request::SinglePartition {
                partition: PartitionId(0),
                fragment: MicroFragment {
                    ops: (0..12)
                        .map(|i| MicroOp::Rmw(make_key(client.0, 0, i)))
                        .collect(),
                    fail: false,
                },
                can_abort: false,
            }
        } else {
            self.last_kind_mp.insert(client.0, true);
            Request::MultiPartition {
                procedure: Box::new(SimpleMicroProcedure {
                    fragments: vec![
                        (
                            PartitionId(0),
                            MicroFragment {
                                ops: (0..6)
                                    .map(|i| MicroOp::Rmw(make_key(client.0, 0, i)))
                                    .collect(),
                                fail: false,
                            },
                        ),
                        (
                            PartitionId(1),
                            MicroFragment {
                                ops: (0..6)
                                    .map(|i| MicroOp::Rmw(make_key(client.0, 1, i)))
                                    .collect(),
                                fail: false,
                            },
                        ),
                    ],
                }),
                can_abort: false,
            }
        }
    }

    fn on_result(&mut self, client: ClientId, _txn: TxnId, committed: bool) {
        match (self.last_kind_mp.get(&client.0), committed) {
            (Some(true), true) => self.committed_mp += 1,
            (Some(true), false) => self.aborted_mp += 1,
            (Some(false), true) => self.committed_sp += 1,
            _ => {}
        }
    }
}

fn run_split(
    scheme: Scheme,
    fail: Option<Nanos>,
) -> (hcc_sim::SimReport, SplitWorkload, Vec<MicroEngine>) {
    let system = SystemConfig::new(scheme).with_partitions(2).with_clients(6);
    let mut cfg =
        SimConfig::new(system).with_window(Nanos::from_millis(10), Nanos::from_millis(200));
    if let Some(at) = fail {
        cfg = cfg.with_partition_failure(at, PartitionId(1));
    }
    let (report, workload, engines, _) =
        Simulation::new(cfg, SplitWorkload::new(), |p| MicroEngine::load(p, 6, 24)).run();
    (report, workload, engines)
}

#[test]
fn surviving_partition_continues_after_peer_crash() {
    for scheme in [Scheme::Blocking, Scheme::Speculative] {
        let (_, control, _) = run_split(scheme, None);
        let fail_at = Nanos::from_millis(40);
        let (report, workload, engines) = run_split(scheme, Some(fail_at));

        // The crash happens ~19% into the run. Were the survivor to stop
        // with its peer, it could commit at most ~19% of the control run's
        // single-partition work; requiring 25% proves it kept processing
        // after the crash — at a degraded rate, since under blocking every
        // new multi-partition transaction stalls the survivor until the
        // coordinator's expiry fires (the cost §3.3 describes: recovery
        // beats blocking forever, but is not free).
        assert!(
            workload.committed_sp as f64 > 0.25 * control.committed_sp as f64,
            "{scheme}: survivor stopped with its peer ({} vs control {})",
            workload.committed_sp,
            control.committed_sp
        );

        // Multi-partition transactions touching the dead partition were
        // aborted by the coordinator's timeout (not stuck forever), and
        // the client kept submitting (each abort is a final result).
        assert!(
            workload.aborted_mp > 10,
            "{scheme}: stalled MP txns must expire ({} aborts)",
            workload.aborted_mp
        );
        assert!(
            workload.committed_mp > 0,
            "{scheme}: MP txns before the crash must have committed"
        );

        // 2PC safety: the surviving partition rolled back every expired
        // transaction — no undo buffers leak.
        assert_eq!(engines[0].live_undo_buffers(), 0, "{scheme}");
        assert!(report.committed > 0);
        // And in the control run, nothing was expired.
        assert_eq!(
            control.aborted_mp, 0,
            "{scheme}: control must not expire txns"
        );
    }
}

/// The replicated kill → promote → recover scenario (§3.3) in virtual
/// time: the primary dies mid-window, its replica takes over in place,
/// and the failed node rejoins from a snapshot ~30 virtual ms later while
/// the group keeps committing. Deterministic: two identical runs produce
/// identical histories, and the rejoined replica must converge with the
/// promoted primary by drain time — for all four schemes.
#[test]
fn sim_kill_promote_recover_converges_and_is_deterministic() {
    for scheme in [
        Scheme::Blocking,
        Scheme::Speculative,
        Scheme::Locking,
        Scheme::Occ,
    ] {
        let run_once = || {
            let micro = MicroConfig {
                mp_fraction: 0.2,
                abort_prob: 0.05,
                clients: 24,
                seed: 0xDEAD,
                ..Default::default()
            };
            let system = SystemConfig::new(scheme)
                .with_partitions(2)
                .with_clients(24)
                .with_seed(0xDEAD);
            let cfg = SimConfig::new(system)
                .with_window(Nanos::from_millis(20), Nanos::from_millis(150))
                .with_failover(
                    Nanos::from_millis(50),
                    PartitionId(1),
                    Nanos::from_millis(30),
                );
            let builder = MicroWorkload::new(micro);
            let (report, _, engines, replicas) =
                Simulation::new(cfg, MicroWorkload::new(micro), move |p| {
                    builder.build_engine(p)
                })
                .run();
            let replicas = replicas.expect("failover implies replicas");
            (
                report.committed,
                report.retries,
                report.replication,
                engines.iter().map(|e| e.fingerprint()).collect::<Vec<_>>(),
                replicas.iter().map(|e| e.fingerprint()).collect::<Vec<_>>(),
            )
        };
        let (committed, retries, repl, primaries, replicas) = run_once();
        assert!(
            committed > 500,
            "{scheme}: throughput collapsed: {committed}"
        );
        assert!(
            retries > 0,
            "{scheme}: the kill must bounce at least one in-flight txn"
        );
        assert_eq!(repl.promotions, 1, "{scheme}");
        assert_eq!(repl.recoveries, 1, "{scheme}");
        assert_eq!(
            repl.replay_failures, 0,
            "{scheme}: replicas must replay the commit log cleanly"
        );
        assert!(
            repl.time_to_recover().is_some(),
            "{scheme}: kill/rejoin timestamps recorded"
        );
        for (g, (p, r)) in primaries.iter().zip(replicas.iter()).enumerate() {
            assert_eq!(
                p, r,
                "{scheme}: group {g} recovered replica diverged from its primary"
            );
        }
        // Virtual time: a failover scenario is as deterministic as any
        // other simulation.
        let again = run_once();
        assert_eq!(
            (committed, retries, repl, primaries, replicas),
            again,
            "{scheme}: failover runs must be bit-deterministic"
        );
    }
}
#[test]
fn sim_failover_with_two_round_locking_txns_drains() {
    use hcc_common::{Nanos, PartitionId, Scheme, SystemConfig};
    use hcc_sim::{SimConfig, Simulation};
    use hcc_workloads::micro::{MicroConfig, MicroWorkload};
    for scheme in [Scheme::Locking, Scheme::Blocking, Scheme::Speculative] {
        for seed in [0x2A, 7, 99, 1234, 0xFEED] {
            let micro = MicroConfig {
                mp_fraction: 0.3,
                two_round: true,
                conflict_prob: 0.3,
                clients: 24,
                seed,
                ..Default::default()
            };
            let system = SystemConfig::new(scheme)
                .with_partitions(2)
                .with_clients(24)
                .with_seed(seed);
            let cfg = SimConfig::new(system)
                .with_window(Nanos::from_millis(20), Nanos::from_millis(120))
                .with_failover(
                    Nanos::from_millis(50),
                    PartitionId(1),
                    Nanos::from_millis(20),
                );
            let builder = MicroWorkload::new(micro);
            let (report, _, engines, replicas) =
                Simulation::new(cfg, MicroWorkload::new(micro), move |p| {
                    builder.build_engine(p)
                })
                .run();
            let replicas = replicas.unwrap();
            assert_eq!(report.replication.replay_failures, 0, "{scheme}");
            for (g, (p, r)) in engines.iter().zip(replicas.iter()).enumerate() {
                assert_eq!(
                    p.fingerprint(),
                    r.fingerprint(),
                    "{scheme}: group {g} diverged"
                );
            }
        }
    }
}
