//! Epoch-batched cross-shard sequencing (ISSUE 8): with `sequencing =
//! epoch[:N]` on, every coordinator shard accumulates its multi-partition
//! invocations into per-epoch logs and partitions dispatch round-0
//! fragments in the round-robin merge order of those logs — so
//! speculation chains legally span shards and the PR 4 retry storm
//! (`CrossCoordinator` expiry aborts on unaligned traffic) disappears.
//!
//! These tests pin the sim half of the contract: the retry-storm
//! regression, bit-determinism per epoch size, serial equivalence of the
//! sequenced execution, and failover mid-epoch.

use hcc_common::{Nanos, PartitionId, Scheme, SequencingConfig, SystemConfig};
use hcc_sim::{SimConfig, SimReport, Simulation};
use hcc_workloads::micro::{MicroConfig, MicroEngine, MicroWorkload};

const EPOCH64: SequencingConfig = SequencingConfig::Epoch { batch: 64 };

/// The PR 4 pain point: 8 partitions, 4 shards, *unaligned* clients
/// (`affinity_groups: 1`), half the traffic multi-partition.
fn unaligned_sharded(
    scheme: Scheme,
    sequencing: SequencingConfig,
    seed: u64,
) -> (SimReport, Vec<MicroEngine>, Option<Vec<MicroEngine>>) {
    let micro = MicroConfig {
        partitions: 8,
        clients: 128,
        mp_fraction: 0.5,
        affinity_groups: 1,
        seed,
        ..Default::default()
    };
    let system = SystemConfig::new(scheme)
        .with_partitions(8)
        .with_clients(128)
        .with_seed(seed)
        .with_coordinators(4)
        .with_sequencing(sequencing);
    let cfg = SimConfig::new(system)
        .with_window(Nanos::from_millis(30), Nanos::from_millis(150))
        .with_shadow();
    let builder = MicroWorkload::new(micro);
    let (r, _, engines, shadow) = Simulation::new(cfg, MicroWorkload::new(micro), move |p| {
        builder.build_engine(p)
    })
    .run();
    (r, engines, shadow)
}

/// Satellite (a): the retry-storm regression PR 4 measured. Sequencing
/// off, unaligned cross-shard chains are broken only by `lock_timeout`
/// expiry — retryable `CrossCoordinator` aborts in the hundreds. With
/// sequencing on they must be *zero* (the counter doubles as the assert:
/// the sim also debug-panics if one occurs while sequencing is active),
/// and the freed retry budget must show up as throughput.
#[test]
fn sequencing_eliminates_the_unaligned_retry_storm() {
    // All-MP unaligned traffic with a tight expiry (the default 20 ms
    // timeout outlives most stalls in a 150 ms window; 2 ms is the
    // retry-storm shape PR 4 measured, where merely-slow cross-shard
    // chains get expired and resubmitted over and over).
    let storm = |sequencing: SequencingConfig| {
        let micro = MicroConfig {
            partitions: 8,
            clients: 128,
            mp_fraction: 1.0,
            affinity_groups: 1,
            seed: 0x94,
            ..Default::default()
        };
        let mut system = SystemConfig::new(Scheme::Speculative)
            .with_partitions(8)
            .with_clients(128)
            .with_seed(0x94)
            .with_coordinators(4)
            .with_sequencing(sequencing);
        system.lock_timeout = Nanos::from_millis(2);
        let cfg =
            SimConfig::new(system).with_window(Nanos::from_millis(30), Nanos::from_millis(150));
        let builder = MicroWorkload::new(micro);
        let (r, _, _, _) = Simulation::new(cfg, MicroWorkload::new(micro), move |p| {
            builder.build_engine(p)
        })
        .run();
        r
    };
    let off = storm(SequencingConfig::Off);
    assert!(
        off.sequencer.cross_coord_aborts > 50,
        "baseline must reproduce the PR 4 retry storm (got {} aborts)",
        off.sequencer.cross_coord_aborts
    );
    assert!(off.retries > 50, "expiry aborts must drive client retries");
    assert_eq!(off.sequencer.epochs_closed, 0, "sequencer off must be idle");

    let on = storm(EPOCH64);
    assert_eq!(
        on.sequencer.cross_coord_aborts, 0,
        "sequencing on: the merged epoch order leaves nothing for expiry to break"
    );
    assert_eq!(on.retries, 0, "no expiry aborts, no retry storm");
    assert!(on.sequencer.epochs_closed > 0, "epochs must actually close");
    assert!(
        on.committed as f64 > 1.5 * off.committed as f64,
        "sequencing must unlock unaligned throughput ({} vs {} committed)",
        on.committed,
        off.committed
    );
}

/// Satellite (b): per-epoch stats are populated and self-consistent.
#[test]
fn epoch_stats_are_populated_and_consistent() {
    let (r, _, _) = unaligned_sharded(Scheme::Speculative, EPOCH64, 0x95);
    let s = &r.sequencer;
    assert!(s.epochs_closed > 0);
    assert!(s.batch_sum > 0);
    assert!(s.batch_max <= s.batch_sum);
    assert!(s.batch_max <= 64, "count boundary caps the batch");
    assert!(s.mean_batch() > 0.0 && s.mean_batch() <= 64.0);
    // Every close has a kind; count-closes are the remainder.
    assert!(s.forced_closes + s.age_closes <= s.epochs_closed);
    // Holds were recorded for the sequenced invocations.
    assert!(s.seq_hold.count() > 0, "seq_hold histogram must fill");
    // Healthy run: no failover, so no discarded logs or passthroughs.
    assert_eq!(s.logs_discarded, 0);
    assert_eq!(s.passthrough, 0);
}

/// Satellite (c): bit-determinism per epoch size — the sim stays a pure
/// function of (config, seed) at every batch boundary, and different
/// batch sizes genuinely change the schedule.
#[test]
fn sequencing_is_deterministic_per_epoch_size() {
    let digest = |r: &SimReport, engines: &[MicroEngine]| {
        let lat = r.latency.summary();
        let hold = r.sequencer.seq_hold.summary();
        (
            r.committed,
            r.events_processed,
            r.retries,
            r.sequencer.epochs_closed,
            r.sequencer.batch_sum,
            [lat.p50.0, lat.p99.0, lat.p999.0],
            [hold.p50.0, hold.p99.0],
            engines.iter().map(|e| e.fingerprint()).collect::<Vec<_>>(),
        )
    };
    let mut epochs_closed = Vec::new();
    for batch in [16u32, 64, 256] {
        let seq = SequencingConfig::Epoch { batch };
        let (ra, ea, _) = unaligned_sharded(Scheme::Speculative, seq, 0xC8);
        let (rb, eb, _) = unaligned_sharded(Scheme::Speculative, seq, 0xC8);
        assert_eq!(
            digest(&ra, &ea),
            digest(&rb, &eb),
            "batch={batch}: sequenced run must be bit-deterministic"
        );
        assert_eq!(ra.sequencer.cross_coord_aborts, 0, "batch={batch}");
        assert!(
            ra.sequencer.batch_max <= batch as u64,
            "batch={batch}: count boundary violated (max {})",
            ra.sequencer.batch_max
        );
        epochs_closed.push(ra.sequencer.epochs_closed);
    }
    // Closed-loop clients rarely fill big batches (age/cascade closes
    // dominate), but a smaller count boundary can only close *more*
    // epochs, never fewer.
    assert!(
        epochs_closed[0] >= epochs_closed[1] && epochs_closed[1] >= epochs_closed[2],
        "a smaller count boundary cannot close fewer epochs: {epochs_closed:?}"
    );
}

/// Satellite (c): the serial-equivalence oracle. The shadow replica
/// replays each partition's commit log one transaction at a time, in
/// log order — under sequencing, the order the epoch merge dispatched.
/// Primary == shadow on every partition therefore proves the sequenced
/// (speculative, cross-shard-chained) execution is equivalent to a
/// serial execution of the epoch order; a fragment lost, duplicated, or
/// dispatched out of merge order diverges the fingerprints.
#[test]
fn sequenced_execution_is_serial_equivalent_to_epoch_order() {
    for scheme in [Scheme::Blocking, Scheme::Speculative, Scheme::Occ] {
        let (r, engines, shadow) = unaligned_sharded(scheme, EPOCH64, 0xA1);
        let shadow = shadow.expect("shadow enabled");
        assert!(r.committed > 500, "{scheme}: throughput collapsed");
        assert_eq!(r.replication.replay_failures, 0, "{scheme}");
        assert_eq!(r.sequencer.cross_coord_aborts, 0, "{scheme}");
        for (i, (e, s)) in engines.iter().zip(shadow.iter()).enumerate() {
            assert_eq!(
                e.fingerprint(),
                s.fingerprint(),
                "{scheme}: P{i} diverged from the serial replay of its epoch order"
            );
        }
    }
}

/// The locking scheme orders multi-partition transactions client-side
/// (2PC from the client driver; no central dispatch to sequence), so the
/// knob is inert for it: the run must behave exactly as if sequencing
/// were off.
#[test]
fn locking_ignores_the_sequencing_knob() {
    let digest = |r: &SimReport, engines: &[MicroEngine]| {
        (
            r.committed,
            r.events_processed,
            engines.iter().map(|e| e.fingerprint()).collect::<Vec<_>>(),
        )
    };
    let (on, eon, _) = unaligned_sharded(Scheme::Locking, EPOCH64, 0xB2);
    let (off, eoff, _) = unaligned_sharded(Scheme::Locking, SequencingConfig::Off, 0xB2);
    assert_eq!(on.sequencer.epochs_closed, 0, "locking never sequences");
    assert_eq!(
        digest(&on, &eon),
        digest(&off, &eoff),
        "the sequencing knob must be invisible to the locking scheme"
    );
}

/// Satellite (c): failover mid-epoch. A primary dies while epochs are in
/// flight; the promoted backup starts from a fresh (unsynced) epoch gate,
/// discards stale logs from the old membership era, and the shards bounce
/// their buffered (un-dispatched) invocations back to the clients as
/// retryable aborts — so every unclosed epoch's transactions are retried
/// in the new era and no acknowledged commit is lost (promoted replica ==
/// recovered replica == serial replay of its log).
#[test]
fn failover_mid_epoch_retries_unclosed_work_without_losing_commits() {
    for scheme in [Scheme::Blocking, Scheme::Speculative] {
        let run_once = || {
            let micro = MicroConfig {
                partitions: 4,
                clients: 48,
                mp_fraction: 0.5,
                abort_prob: 0.05,
                affinity_groups: 1,
                seed: 0xF8,
                ..Default::default()
            };
            let system = SystemConfig::new(scheme)
                .with_partitions(4)
                .with_clients(48)
                .with_seed(0xF8)
                .with_coordinators(2)
                .with_sequencing(EPOCH64);
            let cfg = SimConfig::new(system)
                .with_window(Nanos::from_millis(20), Nanos::from_millis(150))
                .with_failover(
                    Nanos::from_millis(50),
                    PartitionId(1),
                    Nanos::from_millis(30),
                );
            let builder = MicroWorkload::new(micro);
            let (report, _, engines, replicas) =
                Simulation::new(cfg, MicroWorkload::new(micro), move |p| {
                    builder.build_engine(p)
                })
                .run();
            let replicas = replicas.expect("failover implies replicas");
            (
                report.committed,
                report.retries,
                report.replication,
                report.sequencer.clone(),
                engines.iter().map(|e| e.fingerprint()).collect::<Vec<_>>(),
                replicas.iter().map(|e| e.fingerprint()).collect::<Vec<_>>(),
            )
        };
        let (committed, retries, repl, seq, primaries, replicas) = run_once();
        assert!(committed > 500, "{scheme}: throughput collapsed");
        assert!(
            retries > 0,
            "{scheme}: the kill must bounce the unclosed epoch's txns for retry"
        );
        assert_eq!(repl.promotions, 1, "{scheme}");
        assert_eq!(repl.recoveries, 1, "{scheme}");
        assert_eq!(repl.replay_failures, 0, "{scheme}");
        assert!(seq.epochs_closed > 0, "{scheme}");
        // No acked commit lost: the recovered node replays to exactly the
        // promoted primary's state on every group.
        for (g, (p, r)) in primaries.iter().zip(replicas.iter()).enumerate() {
            assert_eq!(p, r, "{scheme}: group {g} diverged across the failover");
        }
        // Mid-epoch failover is the one legal source of discarded logs /
        // passthrough admissions — and still never a CrossCoordinator
        // abort (the bounced invocations carry PartitionFailed).
        assert_eq!(seq.cross_coord_aborts, 0, "{scheme}");
        // Deterministic, like every other failover scenario.
        let again = run_once();
        assert_eq!(
            (committed, retries, primaries, replicas),
            (again.0, again.1, again.4, again.5),
            "{scheme}: mid-epoch failover must be bit-deterministic"
        );
    }
}

/// Satellite (b): golden fixed-seed values with sequencing *on* — the
/// counterpart of `determinism.rs::golden_fixed_seed_results_survive_
/// fast_path_rewrite` (which pins the sequencing-off defaults). Pins
/// counts, per-partition fingerprints, the full latency-quantile shape,
/// and the epoch stats. Captured via `cargo run -p hcc-bench --bin
/// golden_capture`; a change means sequencing semantics moved, not just
/// speed.
#[derive(Debug, PartialEq)]
struct SeqGolden {
    committed: u64,
    user_aborts: u64,
    retries: u64,
    committed_mp: u64,
    fingerprints: [u64; 4],
    latency_ns: [u64; 3],
    epochs_closed: u64,
    batch_sum: u64,
    batch_max: u64,
    /// p50/p99 of the submission → epoch-close hold time.
    hold_ns: [u64; 2],
}

#[test]
fn golden_fixed_seed_with_sequencing_on() {
    let golden: [(Scheme, SeqGolden); 3] = [
        (
            Scheme::Blocking,
            SeqGolden {
                committed: 1345,
                user_aborts: 60,
                retries: 0,
                committed_mp: 524,
                fingerprints: [
                    0xbf712aabffdb60be,
                    0xa6f43318179aca12,
                    0x138b5595156840ac,
                    0x48668900cf6767fa,
                ],
                latency_ns: [2_300_000, 3_410_000, 3_670_000],
                epochs_closed: 520,
                batch_sum: 665,
                batch_max: 7,
                hold_ns: [200_000, 256_000],
            },
        ),
        (
            Scheme::Speculative,
            SeqGolden {
                committed: 1961,
                user_aborts: 100,
                retries: 0,
                committed_mp: 769,
                fingerprints: [
                    0x4daf3ea33a9ab426,
                    0xe78230f9c56e37f6,
                    0x269cfab11aced782,
                    0x38620889835e3a6e,
                ],
                latency_ns: [1_360_000, 4_220_000, 4_710_000],
                epochs_closed: 394,
                batch_sum: 998,
                batch_max: 11,
                hold_ns: [188_000, 472_000],
            },
        ),
        (
            Scheme::Occ,
            SeqGolden {
                committed: 1236,
                user_aborts: 53,
                retries: 0,
                committed_mp: 480,
                fingerprints: [
                    0x06be8838c7131720,
                    0xdf8bce381a303706,
                    0xc464a16099d5cff4,
                    0x549c45fb666b6b2c,
                ],
                latency_ns: [2_470_000, 4_070_000, 4_600_000],
                epochs_closed: 394,
                batch_sum: 611,
                batch_max: 7,
                hold_ns: [200_000, 323_000],
            },
        ),
    ];
    for (scheme, expected) in golden {
        let micro = MicroConfig {
            partitions: 4,
            mp_fraction: 0.4,
            abort_prob: 0.05,
            conflict_prob: 0.2,
            clients: 32,
            seed: 0xE8,
            ..Default::default()
        };
        let system = SystemConfig::new(scheme)
            .with_partitions(4)
            .with_clients(32)
            .with_seed(0xE8)
            .with_coordinators(2)
            .with_sequencing(EPOCH64);
        let cfg = SimConfig::new(system)
            .with_window(Nanos::from_millis(20), Nanos::from_millis(100))
            .with_shadow();
        let builder = MicroWorkload::new(micro);
        let (r, _, engines, shadow) = Simulation::new(cfg, MicroWorkload::new(micro), move |p| {
            builder.build_engine(p)
        })
        .run();
        let shadow = shadow.expect("shadow enabled");
        let lat = r.latency.summary();
        let hold = r.sequencer.seq_hold.summary();
        let got = SeqGolden {
            committed: r.committed,
            user_aborts: r.user_aborts,
            retries: r.retries,
            committed_mp: r.committed_mp,
            fingerprints: [
                engines[0].fingerprint(),
                engines[1].fingerprint(),
                engines[2].fingerprint(),
                engines[3].fingerprint(),
            ],
            latency_ns: [lat.p50.0, lat.p99.0, lat.p999.0],
            epochs_closed: r.sequencer.epochs_closed,
            batch_sum: r.sequencer.batch_sum,
            batch_max: r.sequencer.batch_max,
            hold_ns: [hold.p50.0, hold.p99.0],
        };
        assert_eq!(
            got, expected,
            "{scheme}: fixed-seed sequenced results changed — semantics moved"
        );
        assert_eq!(r.sequencer.cross_coord_aborts, 0, "{scheme}");
        for (i, (e, s)) in engines.iter().zip(shadow.iter()).enumerate() {
            assert_eq!(
                e.fingerprint(),
                s.fingerprint(),
                "{scheme}: P{i} primary and shadow replica diverged"
            );
        }
    }
}

/// SP traffic never touches the sequencer: at `mp_fraction = 0` the knob
/// must not change committed state, count, or a single latency quantile.
/// (`events_processed` is deliberately not compared: the off baseline
/// arms the cross-shard expiry timers sequencing replaces, and those
/// timer events are bookkeeping, not schedule.)
#[test]
fn single_partition_traffic_bypasses_the_sequencer() {
    let run_sp = |sequencing: SequencingConfig| {
        let micro = MicroConfig {
            partitions: 4,
            clients: 64,
            mp_fraction: 0.0,
            seed: 0x51,
            ..Default::default()
        };
        let system = SystemConfig::new(Scheme::Speculative)
            .with_partitions(4)
            .with_clients(64)
            .with_seed(0x51)
            .with_coordinators(4)
            .with_sequencing(sequencing);
        let cfg =
            SimConfig::new(system).with_window(Nanos::from_millis(20), Nanos::from_millis(100));
        let builder = MicroWorkload::new(micro);
        let (r, _, engines, _) = Simulation::new(cfg, MicroWorkload::new(micro), move |p| {
            builder.build_engine(p)
        })
        .run();
        let lat = r.latency.summary();
        (
            r.committed,
            [lat.p50.0, lat.p99.0, lat.p999.0],
            engines.iter().map(|e| e.fingerprint()).collect::<Vec<_>>(),
        )
    };
    let off = run_sp(SequencingConfig::Off);
    let on = run_sp(EPOCH64);
    assert_eq!(off, on, "SP-only traffic must be unaffected by sequencing");
}
