//! Property-based recovery oracle: for *random* workload mixes, group
//! commit settings, crash indices, and schemes, recovery from the
//! surviving log image must always equal the serial replay of the exact
//! durable prefix — with or without a torn tail — and must never lose a
//! commit that was acked to a client.
//!
//! The crash-sweep test walks every commit boundary of one fixed
//! workload; this one walks random points of random workloads, which is
//! where unmodeled interactions (mp fraction × batch size × crash index)
//! would hide.

use hcc_common::{
    CommitRecord, DurabilityConfig, FxHashMap, Nanos, PartitionId, Scheme, SystemConfig, TxnId,
};
use hcc_core::{recover_partition, ReplicaCore};
use hcc_sim::{SimConfig, Simulation};
use hcc_storage::FaultMode;
use hcc_workloads::micro::{MicroConfig, MicroFragment, MicroWorkload};
use proptest::prelude::*;

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Blocking),
        Just(Scheme::Speculative),
        Just(Scheme::Locking),
        Just(Scheme::Occ),
    ]
}

#[derive(Debug, Clone)]
struct Case {
    scheme: Scheme,
    mp_fraction: f64,
    abort_prob: f64,
    seed: u64,
    interval_us: u64,
    max_batch: u64,
    crash_at: u64,
    torn: bool,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        (
            scheme_strategy(),
            prop_oneof![Just(0.0), Just(0.1), Just(0.3), Just(0.6)],
            prop_oneof![Just(0.0), Just(0.05), Just(0.15)],
            any::<u16>(),
        ),
        (
            100u64..2000,
            prop_oneof![Just(1u64), Just(4), Just(16), Just(64)],
            1u64..150,
            any::<bool>(),
        ),
    )
        .prop_map(
            |(
                (scheme, mp_fraction, abort_prob, seed),
                (interval_us, max_batch, crash_at, torn),
            )| {
                Case {
                    scheme,
                    mp_fraction,
                    abort_prob,
                    seed: u64::from(seed),
                    interval_us,
                    max_batch,
                    crash_at,
                    torn,
                }
            },
        )
}

fn serial_fingerprint(
    mc: MicroConfig,
    p: PartitionId,
    records: &[CommitRecord<MicroFragment>],
) -> u64 {
    let mut engine = MicroWorkload::new(mc).build_engine(p);
    let mut core = ReplicaCore::new();
    for r in records {
        core.apply(&mut engine, r).expect("serial oracle replay");
    }
    engine.fingerprint()
}

fn check(case: &Case) -> Result<(), TestCaseError> {
    let mc = MicroConfig {
        partitions: 2,
        clients: 8,
        mp_fraction: case.mp_fraction,
        abort_prob: case.abort_prob,
        seed: case.seed,
        ..Default::default()
    };
    let system = SystemConfig::new(case.scheme)
        .with_partitions(2)
        .with_clients(8)
        .with_seed(case.seed)
        .with_durability(
            DurabilityConfig::default()
                .with_interval(Nanos::from_micros(case.interval_us))
                .with_max_batch(case.max_batch),
        );
    let cfg = SimConfig::new(system).with_window(Nanos::from_micros(400), Nanos::from_micros(1500));
    let builder = MicroWorkload::new(mc);
    let mut sim = Simulation::new(cfg, MicroWorkload::new(mc), move |p| {
        builder.build_engine(p)
    });
    if case.torn {
        for p in 0..2 {
            sim.set_log_fault(
                PartitionId(p),
                FaultMode {
                    torn_tail: true,
                    ..FaultMode::default()
                },
            );
        }
    }
    let h = sim.run_to_crash(case.crash_at);

    for (pi, image) in h.images.iter().enumerate() {
        let p = PartitionId(pi as u32);
        let snapshot = MicroWorkload::new(mc).build_engine(p);
        let out = recover_partition(snapshot, 0, image)
            .map_err(|e| TestCaseError::fail(format!("P{pi} recovery failed: {e}")))?;
        prop_assert_eq!(
            out.records_applied,
            h.durable[pi],
            "P{} replayed a different count than was durable",
            pi
        );
        prop_assert_eq!(out.replica.watermark(), h.durable[pi]);
        if !case.torn {
            prop_assert!(!out.torn_tail, "torn tail without the fault armed");
        }
        let prefix = &h.history[pi][..h.durable[pi] as usize];
        prop_assert_eq!(
            out.engine.fingerprint(),
            serial_fingerprint(mc, p, prefix),
            "P{}: recovered state != serial replay of the durable prefix",
            pi
        );
    }

    // No acked commit may be lost: every partition-touch of an acked
    // transaction lies inside that partition's durable prefix.
    let mut positions: FxHashMap<TxnId, Vec<(usize, u64)>> = FxHashMap::default();
    for (pi, recs) in h.history.iter().enumerate() {
        for r in recs {
            positions.entry(r.txn).or_default().push((pi, r.seq));
        }
    }
    for txn in &h.acked {
        let at = positions
            .get(txn)
            .ok_or_else(|| TestCaseError::fail(format!("acked {txn:?} has no commit record")))?;
        for (pi, seq) in at {
            prop_assert!(
                *seq <= h.durable[*pi],
                "acked {:?} not durable at P{} (seq {} > {})",
                txn,
                pi,
                seq,
                h.durable[*pi]
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        .. ProptestConfig::default()
    })]

    /// Recovery ≡ serial replay of the durable prefix, for any mix, any
    /// group-commit shape, any crash point, torn or clean.
    #[test]
    fn recovery_equals_durable_prefix(case in case_strategy()) {
        check(&case)?;
    }
}
