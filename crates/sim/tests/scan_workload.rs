//! Scan-heavy fragments through the simulator: determinism, the paper's
//! §5 fragment-length trade-off, and §3.3 recovery with the ordered
//! index populated.

use hcc_common::{Nanos, PartitionId, Scheme, SystemConfig};
use hcc_sim::{SimConfig, Simulation};
use hcc_workloads::ycsb::{ycsb_key, YcsbEConfig, YcsbEWorkload};

fn scan_cfg(scan_len: u32, mp: f64, seed: u64) -> YcsbEConfig {
    YcsbEConfig {
        partitions: 2,
        clients: 24,
        keys_per_partition: 2048,
        theta: 0.8,
        scan_fraction: 0.75,
        insert_fraction: 0.15,
        delete_fraction: 0.05,
        scan_len,
        mp_fraction: mp,
        seed,
    }
}

struct ScanRun {
    committed: u64,
    events: u64,
    throughput: f64,
    fingerprints: Vec<u64>,
    ordered_fingerprints: Vec<u64>,
}

fn run_scan(scheme: Scheme, scan_len: u32, mp: f64, seed: u64, shadow: bool) -> ScanRun {
    let yc = scan_cfg(scan_len, mp, seed);
    let system = SystemConfig::new(scheme)
        .with_partitions(yc.partitions)
        .with_clients(yc.clients)
        .with_seed(seed);
    let mut cfg =
        SimConfig::new(system).with_window(Nanos::from_millis(20), Nanos::from_millis(120));
    if shadow {
        cfg = cfg.with_shadow();
    }
    let builder = YcsbEWorkload::new(yc);
    let (r, _, engines, shadows) = Simulation::new(cfg, YcsbEWorkload::new(yc), move |p| {
        builder.build_engine(p)
    })
    .run();
    if let Some(shadows) = &shadows {
        for (i, (p, s)) in engines.iter().zip(shadows.iter()).enumerate() {
            assert_eq!(
                p.ordered_fingerprint(),
                s.ordered_fingerprint(),
                "{scheme}: P{i} shadow's ordered view diverged"
            );
        }
    }
    for (i, e) in engines.iter().enumerate() {
        e.check_ordered_invariants()
            .unwrap_or_else(|e| panic!("{scheme}: P{i} ordered index inconsistent: {e}"));
        assert_eq!(e.live_undo_buffers(), 0, "{scheme}: P{i} leaked undo");
    }
    assert_eq!(r.sched.stray_decisions, 0, "{scheme}");
    ScanRun {
        committed: r.committed,
        events: r.events_processed,
        throughput: r.throughput_tps,
        fingerprints: engines.iter().map(|e| e.fingerprint()).collect(),
        ordered_fingerprints: engines.iter().map(|e| e.ordered_fingerprint()).collect(),
    }
}

/// Every scheme commits scan-heavy work, stays bit-deterministic per
/// seed, and keeps the shadow replica's ordered view identical to the
/// primary's (the serializability cross-check extended to scans).
#[test]
fn scan_heavy_mix_is_deterministic_for_all_schemes() {
    for scheme in [
        Scheme::Blocking,
        Scheme::Speculative,
        Scheme::Locking,
        Scheme::Occ,
    ] {
        let a = run_scan(scheme, 24, 0.3, 0xE5, true);
        let b = run_scan(scheme, 24, 0.3, 0xE5, true);
        assert!(a.committed > 300, "{scheme}: only {}", a.committed);
        assert_eq!(a.committed, b.committed, "{scheme}");
        assert_eq!(a.events, b.events, "{scheme}");
        assert_eq!(a.fingerprints, b.fingerprints, "{scheme}");
        assert_eq!(a.ordered_fingerprints, b.ordered_fingerprints, "{scheme}");
        let c = run_scan(scheme, 24, 0.3, 0xE6, true);
        assert_ne!(
            a.fingerprints, c.fingerprints,
            "{scheme}: different seeds must differ"
        );
    }
}

/// The paper's §5 claim reproduced on scans: fragment *length* is what
/// separates the schemes. At a fixed multi-partition fraction, longer
/// scans stretch every 2PC stall relative to useful work — blocking
/// wastes the whole stall, speculation hides it — so the
/// speculation/blocking throughput ratio must *grow* with scan length.
#[test]
fn longer_scans_widen_the_blocking_vs_speculation_gap() {
    let ratio = |len: u32| {
        let b = run_scan(Scheme::Blocking, len, 0.5, 0x5CA, false).throughput;
        let s = run_scan(Scheme::Speculative, len, 0.5, 0x5CA, false).throughput;
        (s / b, b, s)
    };
    let (short_ratio, sb, ss) = ratio(4);
    let (long_ratio, lb, ls) = ratio(96);
    assert!(
        long_ratio > short_ratio,
        "gap must widen with scan length: len=4 → {short_ratio:.3} \
         ({sb:.0} vs {ss:.0} tps), len=96 → {long_ratio:.3} ({lb:.0} vs {ls:.0} tps)"
    );
    assert!(
        long_ratio > 1.1,
        "speculation must clearly beat blocking on long scans (ratio {long_ratio:.3})"
    );
}

/// §3.3 recovery with the ordered index populated (ISSUE 5 satellite):
/// kill a primary mid-scan-heavy-run, promote its backup, rejoin the
/// dead node from a committed-state snapshot — and require the recovered
/// replica's *ordered iteration* (not just its row set) to match the
/// primary's, on both partitions, with the index internally consistent.
#[test]
fn recovery_rejoin_preserves_the_ordered_index() {
    let yc = scan_cfg(16, 0.25, 0xFA57);
    let system = SystemConfig::new(Scheme::Speculative)
        .with_partitions(2)
        .with_clients(24)
        .with_seed(0xFA57);
    let cfg = SimConfig::new(system)
        .with_window(Nanos::from_millis(20), Nanos::from_millis(120))
        .with_failover(
            Nanos::from_millis(40),
            PartitionId(1),
            Nanos::from_millis(20),
        );
    let builder = YcsbEWorkload::new(yc);
    let (r, _, engines, replicas) = Simulation::new(cfg, YcsbEWorkload::new(yc), move |p| {
        builder.build_engine(p)
    })
    .run();
    assert_eq!(r.replication.promotions, 1);
    assert_eq!(r.replication.recoveries, 1);
    assert_eq!(r.replication.replay_failures, 0);
    let replicas = replicas.expect("failover runs keep replicas");
    for (i, (p, b)) in engines.iter().zip(replicas.iter()).enumerate() {
        assert!(b.scans_enabled(), "P{i}: recovered replica lost scan mode");
        b.check_ordered_invariants()
            .unwrap_or_else(|e| panic!("P{i}: recovered index inconsistent: {e}"));
        assert_eq!(p.fingerprint(), b.fingerprint(), "P{i}: row sets diverged");
        assert_eq!(
            p.ordered_fingerprint(),
            b.ordered_fingerprint(),
            "P{i}: recovered replica's ordered iteration diverged from the primary"
        );
        // And the scannable views agree row-for-row on a wide range.
        let lo = ycsb_key(i as u32, 0);
        let hi = ycsb_key(i as u32, u32::MAX as u64);
        assert_eq!(p.scan_values(lo, hi), b.scan_values(lo, hi), "P{i}");
    }
}
