//! Event queue plumbing.

use hcc_common::{
    ClientId, CoordinatorId, CoordinatorRef, Decision, FragmentResponse, FragmentTask, Nanos,
    PartitionId, Scheme, TxnId,
};
use hcc_core::coordinator::PeerNote;
use hcc_core::{EpochLog, ExecutionEngine, Procedure};
use std::cmp::Ordering;

/// A message delivered to a partition. The decision's second field is the
/// coordinator (central shard or client driver) expecting an ack for a
/// processed commit (in-doubt tracking / durable release; `None`
/// otherwise).
pub enum PartIn<F> {
    Fragment(FragmentTask<F>),
    Decision(Decision, Option<CoordinatorRef>),
    /// A closed sequencing epoch log from a coordinator shard (sequencing
    /// runs only).
    EpochLog(EpochLog),
}

/// A message delivered to one central coordinator shard.
pub enum CoordIn<E: ExecutionEngine> {
    Invoke {
        txn: TxnId,
        client: ClientId,
        procedure: Box<dyn Procedure<E::Fragment, E::Output>>,
        can_abort: bool,
    },
    Response(FragmentResponse<E::Output>),
    /// Periodic maintenance: expire transactions stalled on a failed
    /// participant.
    Tick,
    /// The control plane reported a failover: the partition now answers to
    /// a promoted backup under this epoch. Abort in-flight transactions
    /// touching it; re-deliver unacknowledged commits.
    RoutingUpdate {
        partition: PartitionId,
        epoch: u32,
    },
    /// A partition processed a commit decision (in-doubt tracking).
    DecisionAck {
        txn: TxnId,
        partition: PartitionId,
    },
    /// A peer shard closed a sequencing epoch (cascade-close input).
    EpochLog(EpochLog),
    /// A peer shard decided one of its transactions (cross-shard
    /// dependency settling under sequencing).
    PeerNote(PeerNote),
}

/// A message delivered to a client.
pub enum ClientIn<R> {
    /// Final transaction result (from a partition, the central
    /// coordinator, or the client's own transaction driver).
    Result {
        txn: TxnId,
        result: hcc_common::TxnResult<R>,
    },
    /// A fragment response for a client-coordinated transaction (locking).
    FragResponse(FragmentResponse<R>),
}

/// Everything that can happen in the simulation.
pub enum Ev<E: ExecutionEngine> {
    ToPartition {
        p: PartitionId,
        msg: PartIn<E::Fragment>,
    },
    ToCoordinator {
        k: CoordinatorId,
        msg: CoordIn<E>,
    },
    ToClient {
        c: ClientId,
        msg: ClientIn<E::Output>,
    },
    /// Scheduler maintenance (lock-wait timeout scan).
    Tick {
        p: PartitionId,
    },
    /// Group-commit flush deadline for partition `p`'s durable log: the
    /// oldest unsynced record has waited a full group-commit interval.
    SyncDue {
        p: PartitionId,
    },
    /// A previously issued log sync for partition `p` completes
    /// (`DurabilityConfig::sync_latency` after it was issued).
    SyncDone {
        p: PartitionId,
    },
    /// Stall-guard check: if partition `p`'s oldest unsynced append is
    /// still not durable past the sync deadline, the in-flight batch is
    /// aborted with `LogStalled`.
    StallCheck {
        p: PartitionId,
    },
    /// Sequencing age-boundary check for shard `k`: close its open epoch
    /// if the oldest buffered invocation has waited `max_delay`. One-shot:
    /// armed when a shard's buffer becomes non-empty, disarmed (by the
    /// per-shard `flush_at` guard) when the epoch closes earlier for
    /// another reason.
    EpochClose {
        k: CoordinatorId,
    },
    /// Observational marker (adaptive runs): partition `p` completed a
    /// live scheme swap at this point of the event stream. Handling it is
    /// a no-op — its purpose is to make switch points part of the totally
    /// ordered, deterministic event sequence, so two runs that switch at
    /// different times cannot silently interleave the same way.
    // The fields exist to be *carried* (they shape heap identity and
    // debug output), not to be read by the dispatch no-op.
    #[allow(dead_code)]
    SchemeSwitch {
        p: PartitionId,
        epoch: u32,
        scheme: Scheme,
    },
    /// Failover injection: kill p's primary and promote its replica.
    Kill {
        p: PartitionId,
    },
    /// The killed node rejoins from a snapshot of the live replica (§3.3).
    Rejoin {
        p: PartitionId,
    },
    /// Several deliveries sharing one arrival time, dispatched in order.
    ///
    /// One handler invocation often emits a burst of messages that all
    /// arrive together (fragment fan-out, decision fan-out); carrying the
    /// burst as one heap entry costs one push/pop instead of N. Ordering
    /// is unchanged: members were pushed with consecutive sequence
    /// numbers, so nothing could have sorted between them anyway. Never
    /// nested.
    Batch(Vec<Ev<E>>),
}

/// Heap entry ordered by (time, sequence); the sequence number makes the
/// run a total order, hence deterministic.
pub struct HeapItem<E: ExecutionEngine> {
    pub at: Nanos,
    pub seq: u64,
    pub ev: Ev<E>,
}

impl<E: ExecutionEngine> PartialEq for HeapItem<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E: ExecutionEngine> Eq for HeapItem<E> {}

impl<E: ExecutionEngine> PartialOrd for HeapItem<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E: ExecutionEngine> Ord for HeapItem<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}
