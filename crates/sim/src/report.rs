//! Results of a simulation run.

use hcc_common::stats::{
    AdaptiveStats, DurabilityCounters, LatencyHistogram, ReplicationCounters, SchedulerCounters,
    SequencerStats,
};
use hcc_common::Nanos;
use hcc_core::coordinator::CoordCounters;

/// Everything measured during the measurement window of one run.
pub struct SimReport {
    /// Transactions completed (committed) during the window.
    pub committed: u64,
    /// Final user aborts during the window (completed, not retried).
    pub user_aborts: u64,
    /// Scheduling-abort retries during the window (deadlock, timeout).
    pub retries: u64,
    /// Retries (whole run) that waited out a capped-exponential backoff
    /// delay first — infrastructure aborts (`PartitionFailed`,
    /// `CrossCoordinator`, `LogStalled`) under `RetryConfig`.
    pub backoff_retries: u64,
    /// Requests abandoned after `RetryConfig::max_attempts` consecutive
    /// retryable aborts (whole run; reported to clients as final aborts).
    pub retry_exhausted: u64,
    /// Durable command-log counters (whole run; all zero when
    /// `SystemConfig::durability` is off).
    pub durability: DurabilityCounters,
    /// Committed multi-partition transactions during the window.
    pub committed_mp: u64,
    /// Committed transactions ÷ window length.
    pub throughput_tps: f64,
    /// End-to-end latency of committed transactions (submission of the
    /// first attempt → result).
    pub latency: LatencyHistogram,
    /// Scheduler counters summed over partitions (whole run, not just the
    /// window).
    pub sched: SchedulerCounters,
    /// Central coordinator counters (whole run).
    pub coord: CoordCounters,
    /// Replication counters (whole run). `replay_failures` must be 0 in a
    /// healthy replicated run; failover runs also report the promotion,
    /// recovery, and crash/rejoin timestamps.
    pub replication: ReplicationCounters,
    /// Epoch-sequencing counters (whole run; all zero when
    /// `SystemConfig::sequencing` is off, except `cross_coord_aborts`,
    /// which counts `CrossCoordinator` expiry aborts in any mode).
    pub sequencer: SequencerStats,
    /// Adaptive scheme-selection statistics (whole run; all zero/empty
    /// when `SystemConfig::adaptive` is off).
    pub adaptive: AdaptiveStats,
    /// Virtual time simulated.
    pub simulated: Nanos,
    /// Wall-clock events processed (sanity/perf diagnostics).
    pub events_processed: u64,
    /// Fraction of virtual time each partition spent busy during the
    /// window (mean across partitions).
    pub partition_utilization: f64,
    /// Fraction of virtual time the coordinator spent busy in the window.
    pub coordinator_utilization: f64,
}

impl SimReport {
    /// Measured multi-partition fraction of completed transactions.
    pub fn mp_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.committed_mp as f64 / self.committed as f64
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{:.0} tps ({} committed, {} user aborts, {} retries, mp {:.1}%, {}, part util {:.0}%, coord util {:.0}%)",
            self.throughput_tps,
            self.committed,
            self.user_aborts,
            self.retries,
            self.mp_fraction() * 100.0,
            self.latency.summary(),
            self.partition_utilization * 100.0,
            self.coordinator_utilization * 100.0,
        )
    }
}
