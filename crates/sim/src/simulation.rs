//! The simulation driver: actors, routing, time accounting, metrics.

use crate::event::{ClientIn, CoordIn, Ev, HeapItem, PartIn};
use crate::report::SimReport;
use hcc_common::stats::{LatencyHistogram, ReplicationCounters, SchedulerCounters};
use hcc_common::{
    AbortReason, ClientId, CoordinatorId, CoordinatorRef, FragmentTask, FxHashSet, Nanos,
    PartitionId, Scheme, SystemConfig, TxnId, TxnResult,
};
use hcc_core::client::{ClientCore, NextAction, PendingRequest};
use hcc_core::coordinator::{CoordCounters, CoordOut, Coordinator};
use hcc_core::membership::MembershipCore;
use hcc_core::replica::{failover_bounce, FailoverBounce, ReplicaCore, ReplicationSession};
use hcc_core::txn_driver::TxnDriver;
use hcc_core::{
    make_scheduler, ExecutionEngine, Outbox, PartitionOut, Request, RequestGenerator, Scheduler,
};
use std::collections::BinaryHeap;

/// Simulation parameters: the system under test plus the measurement
/// protocol (the paper uses 15 s warm-up and 60 s measurement; scaled-down
/// virtual windows give the same steady-state numbers in a fraction of the
/// host time, and the bench harness verifies window-insensitivity).
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub system: SystemConfig,
    pub warmup: Nanos,
    pub measure: Nanos,
    /// Maintain a backup replica per partition through the shared
    /// `ReplicaCore` — commit-order log shipping replayed in sequence,
    /// exposed for state comparison (the paper's §3.2 backups; comparing
    /// primary and replica doubles as a serializability check).
    pub shadow_replica: bool,
    /// Fault injection: at the given time, the partition crashes — it
    /// silently drops every message from then on (§3.3's failure model:
    /// "the transaction causes one partition to crash or the network
    /// splits during execution").
    pub fail_partition: Option<(Nanos, PartitionId)>,
    /// When set, the central coordinator aborts transactions pending
    /// longer than this (the 2PC recovery path for participant failure).
    pub coordinator_timeout: Option<Nanos>,
    /// Replicated fault injection (requires `shadow_replica`): kill the
    /// primary at the given time — its backup is promoted in place
    /// (in-flight transactions bounce with `PartitionFailed`) — and after
    /// `rejoin_delay` the failed node rejoins §3.3-style from a snapshot
    /// of the new primary's committed state, catching up from the log.
    pub failover: Option<SimFailover>,
}

/// Parameters of a simulated kill → promote → recover scenario.
#[derive(Debug, Clone, Copy)]
pub struct SimFailover {
    pub at: Nanos,
    pub partition: PartitionId,
    /// Virtual time between the kill and the failed node's rejoin.
    pub rejoin_delay: Nanos,
}

impl SimConfig {
    pub fn new(system: SystemConfig) -> Self {
        SimConfig {
            system,
            warmup: Nanos::from_millis(200),
            measure: Nanos::from_millis(1000),
            shadow_replica: false,
            fail_partition: None,
            coordinator_timeout: None,
            failover: None,
        }
    }

    /// Crash `partition` at time `at` and enable coordinator expiry of
    /// stalled transactions.
    pub fn with_partition_failure(mut self, at: Nanos, partition: PartitionId) -> Self {
        self.fail_partition = Some((at, partition));
        self.coordinator_timeout = Some(Nanos::from_millis(2));
        self
    }

    pub fn with_window(mut self, warmup: Nanos, measure: Nanos) -> Self {
        self.warmup = warmup;
        self.measure = measure;
        self
    }

    pub fn with_shadow(mut self) -> Self {
        self.shadow_replica = true;
        self
    }

    /// Kill `partition`'s primary at `at`, promote its replica, and
    /// rejoin the failed node `rejoin_delay` later (enables the replica).
    pub fn with_failover(mut self, at: Nanos, partition: PartitionId, rejoin_delay: Nanos) -> Self {
        self.shadow_replica = true;
        self.failover = Some(SimFailover {
            at,
            partition,
            rejoin_delay,
        });
        self
    }
}

struct SimClient<E: ExecutionEngine> {
    core: ClientCore,
    pending: Option<PendingRequest<E::Fragment, E::Output>>,
    driver: TxnDriver<E::Fragment, E::Output>,
    current_txn: Option<TxnId>,
    current_is_mp: bool,
    submitted_at: Nanos,
    busy: Nanos,
    /// Consecutive `CrossCoordinator` bounces of the current request (for
    /// retry backoff; reset on a final outcome).
    cross_retries: u32,
}

/// Base backoff before retrying a `CrossCoordinator` bounce. Instant
/// retries livelock in virtual time: every bounced client re-collides
/// with the same still-active cross-shard chain in lockstep. Backing off
/// a few chain-lifetimes (and staggering clients deterministically)
/// spreads the retries so the chains can drain. Scaled by the attempt
/// count, capped at 8×.
const CROSS_RETRY_BACKOFF: Nanos = Nanos(150_000);

/// One run of the system under a workload. Deterministic given the config
/// and workload seed.
pub struct Simulation<W: RequestGenerator> {
    cfg: SimConfig,
    workload: W,
    queue: BinaryHeap<HeapItem<W::Engine>>,
    seq: u64,
    now: Nanos,

    engines: Vec<W::Engine>,
    scheds: Vec<Box<dyn Scheduler<W::Engine>>>,
    part_busy: Vec<Nanos>,
    part_busy_in_window: Vec<u64>,
    tick_pending: Vec<bool>,

    /// Coordinator shards; clients are statically partitioned across them
    /// (`SystemConfig::coordinator_of`). One shard reproduces the paper.
    coords: Vec<
        Coordinator<
            <W::Engine as ExecutionEngine>::Fragment,
            <W::Engine as ExecutionEngine>::Output,
        >,
    >,
    coord_busy: Vec<Nanos>,
    coord_busy_in_window: Vec<u64>,
    /// The control-plane membership/epoch authority (failover mode).
    membership: MembershipCore,
    /// Per partition: transactions the promoted primary applied during its
    /// backup past — the exactly-once guard for in-doubt commit
    /// redelivery (empty until a kill).
    promoted_applied: Vec<FxHashSet<TxnId>>,

    // Reused hot-path buffers: one event in steady state allocates
    // nothing — scheduler outputs, coordinator outputs, and same-time
    // delivery batches all recycle their backing storage.
    outbox: Outbox<<W::Engine as ExecutionEngine>::Output>,
    out_scratch: Vec<PartitionOut<<W::Engine as ExecutionEngine>::Output>>,
    coord_out: Vec<
        CoordOut<<W::Engine as ExecutionEngine>::Fragment, <W::Engine as ExecutionEngine>::Output>,
    >,
    batch_pool: Vec<Vec<Ev<W::Engine>>>,

    clients: Vec<SimClient<W::Engine>>,

    /// Backup replicas (replay position + engine) per partition, through
    /// the shared `ReplicaCore`. A slot is `None` between a kill and the
    /// node's rejoin.
    replicas: Option<Vec<Option<(ReplicaCore, W::Engine)>>>,
    /// Primary-side replication sessions (in-flight fragment buffers +
    /// commit-order sequencer), one per partition.
    sessions: Vec<ReplicationSession<<W::Engine as ExecutionEngine>::Fragment>>,
    /// Replication counters folded from retired replicas/sessions (live
    /// replica counters merge in at report time).
    repl: ReplicationCounters,
    /// Scheduler counters of schedulers retired by a failover (the dead
    /// primary's pre-crash work must still be reported).
    sched_retired: SchedulerCounters,

    /// After the measurement window the simulation *drains*: clients stop
    /// issuing new requests and all in-flight transactions complete, so
    /// final primary and shadow states are comparable.
    draining: bool,

    // Metrics.
    window_start: Nanos,
    window_end: Nanos,
    committed: u64,
    committed_mp: u64,
    user_aborts: u64,
    retries: u64,
    latency: LatencyHistogram,
    events: u64,
}

impl<W: RequestGenerator> Simulation<W>
where
    W::Engine: 'static,
{
    /// Build a simulation: `build_engine` constructs each partition's
    /// loaded engine (and the shadow copy when enabled).
    pub fn new(
        cfg: SimConfig,
        workload: W,
        build_engine: impl Fn(PartitionId) -> W::Engine,
    ) -> Self {
        let n = cfg.system.partitions as usize;
        let engines: Vec<W::Engine> = (0..n)
            .map(|p| build_engine(PartitionId(p as u32)))
            .collect();
        let replicas = cfg.shadow_replica.then(|| {
            (0..n)
                .map(|p| Some((ReplicaCore::new(), build_engine(PartitionId(p as u32)))))
                .collect()
        });
        if let Some(f) = cfg.failover {
            assert!(
                cfg.shadow_replica && f.partition.as_usize() < n,
                "failover requires a replica to promote"
            );
        }
        // `with_partition_failure` models an unreplicated crash whose
        // stalled transactions are finally aborted (RemoteAbort); with
        // sharded coordinators the same expiry path must instead issue
        // retryable CrossCoordinator aborts for cross-shard waiters. The
        // two semantics cannot share one timeout, so the combination is
        // rejected rather than silently mis-aborting healthy waiters.
        assert!(
            cfg.coordinator_timeout.is_none() || cfg.system.coordinators <= 1,
            "partition-failure injection (coordinator_timeout) is a              single-coordinator scenario"
        );
        let scheds = (0..n)
            .map(|p| make_scheduler::<W::Engine>(&cfg.system, PartitionId(p as u32)))
            .collect();
        let clients = (0..cfg.system.clients)
            .map(|c| SimClient {
                core: ClientCore::new(ClientId(c)),
                pending: None,
                driver: TxnDriver::new(cfg.system.costs, ClientId(c)),
                current_txn: None,
                current_is_mp: false,
                submitted_at: Nanos::ZERO,
                busy: Nanos::ZERO,
                cross_retries: 0,
            })
            .collect();
        let window_start = cfg.warmup;
        let window_end = cfg.warmup + cfg.measure;
        let shards = cfg.system.coordinators.max(1) as usize;
        // In-doubt commit tracking (decision acks + redelivery) only
        // matters when a failover can strand a decision; keeping it off
        // otherwise keeps the no-failure event stream (and the golden
        // determinism values) untouched.
        let track_in_doubt = cfg.failover.is_some();
        Simulation {
            coords: (0..shards)
                .map(|k| {
                    Coordinator::shard(cfg.system.costs, CoordinatorId(k as u32), track_in_doubt)
                })
                .collect(),
            coord_busy: vec![Nanos::ZERO; shards],
            coord_busy_in_window: vec![0; shards],
            membership: MembershipCore::new(),
            promoted_applied: (0..n).map(|_| FxHashSet::default()).collect(),
            outbox: Outbox::new(cfg.system.costs),
            out_scratch: Vec::new(),
            coord_out: Vec::new(),
            batch_pool: Vec::new(),
            cfg,
            workload,
            queue: BinaryHeap::new(),
            seq: 0,
            now: Nanos::ZERO,
            engines,
            scheds,
            part_busy: vec![Nanos::ZERO; n],
            part_busy_in_window: vec![0; n],
            tick_pending: vec![false; n],
            clients,
            replicas,
            draining: false,
            sessions: (0..n).map(|_| ReplicationSession::new()).collect(),
            repl: ReplicationCounters::default(),
            sched_retired: SchedulerCounters::default(),
            window_start,
            window_end,
            committed: 0,
            committed_mp: 0,
            user_aborts: 0,
            retries: 0,
            latency: LatencyHistogram::default(),
            events: 0,
        }
    }

    fn push(&mut self, at: Nanos, ev: Ev<W::Engine>) {
        self.seq += 1;
        self.queue.push(HeapItem {
            at,
            seq: self.seq,
            ev,
        });
    }

    fn one_way(&self) -> Nanos {
        self.cfg.system.network.one_way
    }

    /// Coordinator expiry policy: the participant-failure recovery path
    /// (explicit `coordinator_timeout`, final `RemoteAbort`) or — with
    /// sharded coordinators — the cross-shard distributed-deadlock breaker
    /// (`lock_timeout`, retryable `CrossCoordinator`), mirroring §4.3's
    /// timeout-based resolution under locking. `None` for the paper's
    /// singleton, whose global dispatch order cannot deadlock.
    fn coord_expiry(&self) -> Option<(Nanos, AbortReason)> {
        if let Some(t) = self.cfg.coordinator_timeout {
            Some((t, AbortReason::RemoteAbort))
        } else if self.coords.len() > 1 {
            Some((self.cfg.system.lock_timeout, AbortReason::CrossCoordinator))
        } else {
            None
        }
    }

    /// Account busy time clipped to the measurement window.
    fn window_overlap(&self, start: Nanos, end: Nanos) -> u64 {
        let s = start.max(self.window_start);
        let e = end.min(self.window_end);
        e.0.saturating_sub(s.0)
    }

    /// Dispatch a request for client `c` at local time `at`.
    fn dispatch(&mut self, c: usize, at: Nanos) {
        let pending = self.clients[c].pending.as_ref().expect("pending request");
        let req = pending.to_request();
        let txn = self.clients[c].core.next_txn_id();
        self.clients[c].current_txn = Some(txn);
        let one_way = self.one_way();
        let client_id = ClientId(c as u32);
        match req {
            Request::SinglePartition {
                partition,
                fragment,
                can_abort,
            } => {
                self.clients[c].current_is_mp = false;
                let task = FragmentTask {
                    txn,
                    coordinator: CoordinatorRef::Client(client_id),
                    client: client_id,
                    fragment,
                    multi_partition: false,
                    last_fragment: true,
                    round: 0,
                    can_abort,
                };
                self.push(
                    at + one_way,
                    Ev::ToPartition {
                        p: partition,
                        msg: PartIn::Fragment(task),
                    },
                );
            }
            Request::MultiPartition {
                procedure,
                can_abort,
            } => {
                self.clients[c].current_is_mp = true;
                match self.cfg.system.scheme {
                    Scheme::Locking => {
                        // Client-coordinated 2PC (§4.3).
                        debug_assert!(self.coord_out.is_empty());
                        let mut out = std::mem::take(&mut self.coord_out);
                        self.clients[c]
                            .driver
                            .begin(txn, procedure, can_abort, &mut out);
                        self.coord_out = out;
                        let cpu = self.clients[c].driver.take_cpu();
                        let start = at.max(self.clients[c].busy);
                        self.clients[c].busy = start + cpu;
                        let depart = self.clients[c].busy;
                        self.route_coord_out(depart, Some(c));
                    }
                    _ => {
                        let k = self.cfg.system.coordinator_of(client_id);
                        self.push(
                            at + one_way,
                            Ev::ToCoordinator {
                                k,
                                msg: CoordIn::Invoke {
                                    txn,
                                    client: client_id,
                                    procedure,
                                    can_abort,
                                },
                            },
                        );
                    }
                }
            }
        }
    }

    /// Route the coordinator (or client-driver) outputs accumulated in
    /// `self.coord_out`. `from_client` is the index of the driving client
    /// for locking-mode self-results. Consecutive messages sharing an
    /// arrival time travel as one heap entry (see [`Ev::Batch`]).
    fn route_coord_out(&mut self, depart: Nanos, from_client: Option<usize>) {
        let one_way = self.one_way();
        let mut msgs = std::mem::take(&mut self.coord_out);
        let mut group: Vec<Ev<W::Engine>> = self.batch_pool.pop().unwrap_or_default();
        let mut group_at = Nanos::ZERO;
        for o in msgs.drain(..) {
            let (at, ev) = match o {
                CoordOut::Fragment(p, task) => (
                    depart + one_way,
                    Ev::ToPartition {
                        p,
                        msg: PartIn::Fragment(task),
                    },
                ),
                CoordOut::Decision(p, d, ack_to) => (
                    depart + one_way,
                    Ev::ToPartition {
                        p,
                        msg: PartIn::Decision(d, ack_to),
                    },
                ),
                CoordOut::ClientResult {
                    client,
                    txn,
                    result,
                } => {
                    // From the central coordinator this crosses the
                    // network; from a client's own driver it is local.
                    let delay = if from_client.is_some() {
                        Nanos::ZERO
                    } else {
                        one_way
                    };
                    (
                        depart + delay,
                        Ev::ToClient {
                            c: client,
                            msg: ClientIn::Result { txn, result },
                        },
                    )
                }
            };
            if at != group_at && !group.is_empty() {
                self.flush_group(group_at, &mut group);
            }
            group_at = at;
            group.push(ev);
        }
        if !group.is_empty() {
            self.flush_group(group_at, &mut group);
        }
        self.batch_pool.push(group);
        self.coord_out = msgs;
    }

    /// Push a group of same-arrival events: single events go straight to
    /// the heap, bursts go as one [`Ev::Batch`]. `group` is left empty
    /// (its storage recycled through the batch pool for bursts).
    fn flush_group(&mut self, at: Nanos, group: &mut Vec<Ev<W::Engine>>) {
        if group.len() == 1 {
            let ev = group.pop().expect("non-empty group");
            self.push(at, ev);
        } else {
            let burst = std::mem::replace(group, self.batch_pool.pop().unwrap_or_default());
            self.push(at, Ev::Batch(burst));
        }
    }

    /// Record a delivered fragment for replication (latest per round wins —
    /// a squashed continuation is superseded by its re-sent version).
    fn record_fragment(
        &mut self,
        p: usize,
        task: &FragmentTask<<W::Engine as ExecutionEngine>::Fragment>,
    ) {
        if self.replicas.is_some() {
            self.sessions[p].record_fragment(task);
        }
    }

    /// The transaction committed at partition `p`: ship its commit record
    /// and replay it on the replica through the shared `ReplicaCore` —
    /// the paper's backup execution, with sequence-checked replay whose
    /// failures land in the replication counters instead of an assert.
    /// Replay is virtually instantaneous: the sim models the backup
    /// round-trip as added result latency (see `handle_partition`), not
    /// as replica compute.
    fn replica_commit(&mut self, p: usize, txn: TxnId) {
        let Some(replicas) = self.replicas.as_mut() else {
            return;
        };
        let Some(record) = self.sessions[p].on_commit(txn) else {
            return;
        };
        self.repl.records_shipped += 1;
        // Between a kill and the rejoin the slot is empty: the record is
        // logged (seq advances) with no live consumer.
        if let Some((core, engine)) = replicas[p].as_mut() {
            let _ = core.apply(engine, &record);
        }
    }

    fn replica_abort(&mut self, p: usize, txn: TxnId) {
        if self.replicas.is_some() {
            self.sessions[p].on_abort(txn);
        }
    }

    /// Handle the partition scheduler outputs accumulated in
    /// `self.out_scratch`: route messages, apply shadow commits for
    /// single-partition results. Every message arrives `one_way` after
    /// `depart`, so a multi-message burst travels as one heap entry.
    fn route_partition_out(&mut self, p: usize, depart: Nanos) {
        let one_way = self.one_way();
        let arrival = depart + one_way;
        let mut msgs = std::mem::take(&mut self.out_scratch);
        let mut group: Vec<Ev<W::Engine>> = self.batch_pool.pop().unwrap_or_default();
        for m in msgs.drain(..) {
            let ev = match m {
                PartitionOut::ToClient {
                    client,
                    txn,
                    result,
                } => {
                    match &result {
                        TxnResult::Committed(_) => self.replica_commit(p, txn),
                        TxnResult::Aborted(_) => self.replica_abort(p, txn),
                    }
                    Ev::ToClient {
                        c: client,
                        msg: ClientIn::Result { txn, result },
                    }
                }
                PartitionOut::ToCoordinator { dest, response } => match dest {
                    CoordinatorRef::Central(k) => Ev::ToCoordinator {
                        k,
                        msg: CoordIn::Response(response),
                    },
                    CoordinatorRef::Client(cid) => Ev::ToClient {
                        c: cid,
                        msg: ClientIn::FragResponse(response),
                    },
                },
            };
            group.push(ev);
        }
        if !group.is_empty() {
            self.flush_group(arrival, &mut group);
        }
        self.batch_pool.push(group);
        self.out_scratch = msgs;
    }

    fn handle_partition(
        &mut self,
        p: PartitionId,
        msg: PartIn<<W::Engine as ExecutionEngine>::Fragment>,
        at: Nanos,
    ) {
        // A crashed partition drops everything on the floor.
        if let Some((when, failed)) = self.cfg.fail_partition {
            if p == failed && at >= when {
                return;
            }
        }
        let pi = p.as_usize();
        let start = at.max(self.part_busy[pi]);
        debug_assert!(self.outbox.messages.is_empty() && self.outbox.cpu == Nanos::ZERO);
        // A processed commit decision is acknowledged to the shard that
        // asked (in-doubt tracking) — unless it was *stray* (a transaction
        // that died with a crashed predecessor), which must stay in doubt
        // so the redelivery machinery can close the window.
        let mut ack: Option<(CoordinatorId, TxnId)> = None;
        match msg {
            PartIn::Fragment(task) => {
                // Exactly-once guard for in-doubt redelivery: a promoted
                // primary that already applied this transaction as a
                // backup acks the commit instead of re-executing it.
                if task.multi_partition && self.promoted_applied[pi].contains(&task.txn) {
                    if let CoordinatorRef::Central(k) = task.coordinator {
                        self.push(
                            at + self.one_way(),
                            Ev::ToCoordinator {
                                k,
                                msg: CoordIn::DecisionAck {
                                    txn: task.txn,
                                    partition: p,
                                },
                            },
                        );
                    }
                    return;
                }
                self.record_fragment(pi, &task);
                self.scheds[pi].on_fragment(task, &mut self.engines[pi], start, &mut self.outbox);
            }
            PartIn::Decision(d, ack_to) => {
                if d.commit {
                    self.replica_commit(pi, d.txn);
                } else {
                    self.replica_abort(pi, d.txn);
                }
                let strays_before = self.scheds[pi].counters().stray_decisions;
                self.scheds[pi].on_decision(d, &mut self.engines[pi], start, &mut self.outbox);
                if let Some(k) = ack_to {
                    if d.commit && self.scheds[pi].counters().stray_decisions == strays_before {
                        ack = Some((k, d.txn));
                    }
                }
            }
        }
        // Drain the (recycled) outbox into the scratch buffer.
        let cpu = self.outbox.take_into(&mut self.out_scratch);
        let end = start + cpu;
        self.part_busy[pi] = end;
        self.part_busy_in_window[pi] += self.window_overlap(start, end);
        // Replication: result-bearing messages wait for backup acks (one
        // round trip to the backups), overlapped with execution (§3.2).
        let depart = if self.cfg.system.replication > 1 {
            end.max(at + Nanos(2 * self.one_way().0))
        } else {
            end
        };
        if let Some((k, txn)) = ack {
            self.push(
                depart + self.one_way(),
                Ev::ToCoordinator {
                    k,
                    msg: CoordIn::DecisionAck { txn, partition: p },
                },
            );
        }
        self.route_partition_out(pi, depart);
        // Locking needs periodic timeout scans while work is outstanding.
        if self.cfg.system.scheme == Scheme::Locking
            && !self.tick_pending[pi]
            && !self.scheds[pi].is_idle()
        {
            self.tick_pending[pi] = true;
            let delay = Nanos(self.cfg.system.lock_timeout.0 / 4).max(Nanos(1));
            self.push(end + delay, Ev::Tick { p });
        }
    }

    fn handle_tick(&mut self, p: PartitionId, at: Nanos) {
        let pi = p.as_usize();
        self.tick_pending[pi] = false;
        let start = at.max(self.part_busy[pi]);
        debug_assert!(self.outbox.messages.is_empty() && self.outbox.cpu == Nanos::ZERO);
        let next = self.scheds[pi].on_tick(&mut self.engines[pi], start, &mut self.outbox);
        let cpu = self.outbox.take_into(&mut self.out_scratch);
        let end = start + cpu;
        self.part_busy[pi] = end;
        self.part_busy_in_window[pi] += self.window_overlap(start, end);
        self.route_partition_out(pi, end);
        if let Some(delay) = next {
            self.tick_pending[pi] = true;
            self.push(end + delay, Ev::Tick { p });
        }
    }

    fn handle_coordinator(&mut self, k: CoordinatorId, msg: CoordIn<W::Engine>, at: Nanos) {
        let ki = k.as_usize();
        let start = at.max(self.coord_busy[ki]);
        debug_assert!(self.coord_out.is_empty());
        let mut out = std::mem::take(&mut self.coord_out);
        match msg {
            CoordIn::Invoke {
                txn,
                client,
                procedure,
                can_abort,
            } => self.coords[ki].on_invoke_at(txn, client, procedure, can_abort, start, &mut out),
            CoordIn::Response(r) => self.coords[ki].on_response(r, &mut out),
            CoordIn::RoutingUpdate { partition, epoch } => {
                let _ = self.coords[ki].on_partition_failed(partition, epoch, &mut out);
            }
            CoordIn::DecisionAck { txn, partition } => {
                self.coords[ki].on_decision_ack(txn, partition);
            }
            CoordIn::Tick => {
                if let Some((timeout, reason)) = self.coord_expiry() {
                    self.coords[ki].expire_stalled(start, timeout, reason, &mut out);
                    // Tick until the window closes, then once more per
                    // pending txn during the drain (bounded, so the drain
                    // terminates).
                    if start < self.window_end || self.coords[ki].pending() > 0 {
                        self.push(
                            start + Nanos(timeout.0 / 2).max(Nanos(1)),
                            Ev::ToCoordinator {
                                k,
                                msg: CoordIn::Tick,
                            },
                        );
                    }
                }
            }
        }
        self.coord_out = out;
        let cpu = self.coords[ki].take_cpu();
        let end = start + cpu;
        self.coord_busy[ki] = end;
        self.coord_busy_in_window[ki] += self.window_overlap(start, end);
        self.route_coord_out(end, None);
    }

    fn handle_client(
        &mut self,
        c: ClientId,
        msg: ClientIn<<W::Engine as ExecutionEngine>::Output>,
        at: Nanos,
    ) {
        let ci = c.as_usize();
        match msg {
            ClientIn::Result { txn, result } => {
                debug_assert_eq!(self.clients[ci].current_txn, Some(txn), "stray result");
                let in_window = at >= self.window_start && at < self.window_end;
                match self.clients[ci].core.on_result(&result) {
                    NextAction::Retry => {
                        if in_window {
                            self.retries += 1;
                        }
                        if !self.draining {
                            let when = if matches!(
                                &result,
                                TxnResult::Aborted(AbortReason::CrossCoordinator)
                            ) {
                                let c = &mut self.clients[ci];
                                c.cross_retries = (c.cross_retries + 1).min(8);
                                // Deterministic per-client stagger breaks
                                // the retry lockstep.
                                at + Nanos(
                                    CROSS_RETRY_BACKOFF.0 * c.cross_retries as u64
                                        + (ci as u64 % 5) * 17_000,
                                )
                            } else {
                                at
                            };
                            self.dispatch(ci, when);
                        }
                    }
                    NextAction::NewRequest => {
                        if in_window {
                            match &result {
                                TxnResult::Committed(_) => {
                                    self.committed += 1;
                                    if self.clients[ci].current_is_mp {
                                        self.committed_mp += 1;
                                    }
                                    self.latency
                                        .record(at.saturating_sub(self.clients[ci].submitted_at));
                                }
                                TxnResult::Aborted(_) => self.user_aborts += 1,
                            }
                        }
                        self.clients[ci].cross_retries = 0;
                        self.workload.on_result(c, txn, result.is_committed());
                        if !self.draining {
                            let req = self.workload.next_request(c);
                            self.clients[ci].pending = Some(PendingRequest::from_request(&req));
                            self.clients[ci].submitted_at = at;
                            self.dispatch(ci, at);
                        }
                    }
                }
            }
            ClientIn::FragResponse(r) => {
                let start = at.max(self.clients[ci].busy);
                debug_assert!(self.coord_out.is_empty());
                let mut out = std::mem::take(&mut self.coord_out);
                self.clients[ci].driver.on_response(r, &mut out);
                self.coord_out = out;
                let cpu = self.clients[ci].driver.take_cpu();
                self.clients[ci].busy = start + cpu;
                let depart = self.clients[ci].busy;
                self.route_coord_out(depart, Some(ci));
            }
        }
    }

    /// Kill `p`'s primary: promote its replica in place (the partition's
    /// address now answers to the promoted node), bounce every in-flight
    /// transaction with `PartitionFailed` (the runtime's crash bounce),
    /// notify the coordinator (the failure detector), and schedule the
    /// dead node's §3.3 rejoin.
    fn handle_kill(&mut self, p: PartitionId, at: Nanos) {
        let pi = p.as_usize();
        let one_way = self.one_way();
        let replicas = self.replicas.as_mut().expect("failover requires replicas");
        let (mut core, replica_engine) = replicas[pi].take().expect("replica alive at kill");
        self.promoted_applied[pi] = core.take_applied_txns();
        // Promote: the replica engine (exactly the committed prefix of the
        // commit log) becomes the primary; the dead node's engine and
        // scheduler state are lost — but its counters still describe real
        // pre-crash work, so fold them in before discarding.
        // The promoted node resumes the log at the replica's watermark —
        // no sequence gap.
        self.engines[pi] = replica_engine;
        let dead_sched = std::mem::replace(
            &mut self.scheds[pi],
            make_scheduler::<W::Engine>(&self.cfg.system, p),
        );
        self.sched_retired.merge(&dead_sched.counters());
        self.part_busy[pi] = at;
        self.repl.merge(&core.counters);
        self.repl.promotions += 1;
        self.repl.failed_at_ns = at.0;
        let mut old_session = std::mem::replace(
            &mut self.sessions[pi],
            ReplicationSession::resume_from(core.watermark()),
        );
        for (txn, frags) in old_session.take_in_flight() {
            let Some(bounce) = failover_bounce(p, txn, &frags) else {
                continue;
            };
            self.repl.failover_bounces += 1;
            let ev = match bounce {
                FailoverBounce::ToClient { client } => Ev::ToClient {
                    c: client,
                    msg: ClientIn::Result {
                        txn,
                        result: TxnResult::Aborted(AbortReason::PartitionFailed),
                    },
                },
                FailoverBounce::ToCoordinator { dest, response } => match dest {
                    CoordinatorRef::Central(k) => Ev::ToCoordinator {
                        k,
                        msg: CoordIn::Response(response),
                    },
                    CoordinatorRef::Client(c) => Ev::ToClient {
                        c,
                        msg: ClientIn::FragResponse(response),
                    },
                },
            };
            self.push(at + one_way, ev);
        }
        // The control plane decides the promotion and fans the
        // epoch-stamped update out to every coordinator shard.
        let up = self.membership.on_primary_failed(p);
        for ki in 0..self.coords.len() {
            self.push(
                at + one_way,
                Ev::ToCoordinator {
                    k: CoordinatorId(ki as u32),
                    msg: CoordIn::RoutingUpdate {
                        partition: p,
                        epoch: up.epoch,
                    },
                },
            );
        }
        let delay = self
            .cfg
            .failover
            .expect("kill implies failover")
            .rejoin_delay;
        self.push(at + delay, Ev::Rejoin { p });
    }

    /// The failed node rejoins: install a snapshot of the live primary's
    /// committed state at the current log position, then catch up from
    /// the log (§3.3) while the group keeps processing.
    fn handle_rejoin(&mut self, p: PartitionId, at: Nanos) {
        let pi = p.as_usize();
        let snapshot = self.engines[pi].snapshot();
        let mut core = ReplicaCore::new();
        core.reset_to(self.sessions[pi].shipped());
        core.counters.snapshots_served += 1;
        let replicas = self.replicas.as_mut().expect("failover requires replicas");
        debug_assert!(replicas[pi].is_none(), "rejoin of a live replica");
        replicas[pi] = Some((core, snapshot));
        self.repl.recoveries += 1;
        self.repl.recovered_at_ns = at.0;
    }

    fn dispatch_event(&mut self, ev: Ev<W::Engine>, at: Nanos) {
        self.events += 1;
        match ev {
            Ev::ToPartition { p, msg } => self.handle_partition(p, msg, at),
            Ev::ToCoordinator { k, msg } => self.handle_coordinator(k, msg, at),
            Ev::ToClient { c, msg } => self.handle_client(c, msg, at),
            Ev::Tick { p } => self.handle_tick(p, at),
            Ev::Kill { p } => self.handle_kill(p, at),
            Ev::Rejoin { p } => self.handle_rejoin(p, at),
            Ev::Batch(_) => unreachable!("batches are never nested"),
        }
    }

    /// Run to the end of the measurement window and report.
    pub fn run(mut self) -> (SimReport, W, Vec<W::Engine>, Option<Vec<W::Engine>>) {
        if self.coord_expiry().is_some() {
            for ki in 0..self.coords.len() {
                self.push(
                    Nanos(1),
                    Ev::ToCoordinator {
                        k: CoordinatorId(ki as u32),
                        msg: CoordIn::Tick,
                    },
                );
            }
        }
        if let Some(f) = self.cfg.failover {
            self.push(f.at, Ev::Kill { p: f.partition });
        }
        // Kick off every client at t = 0.
        for c in 0..self.clients.len() {
            let req = self.workload.next_request(ClientId(c as u32));
            self.clients[c].pending = Some(PendingRequest::from_request(&req));
            self.clients[c].submitted_at = Nanos::ZERO;
            self.dispatch(c, Nanos::ZERO);
        }

        let end = self.window_end;
        // Hard stop far beyond the window: if in-flight work has not
        // drained by then, something is livelocked (a bug tests should
        // catch, not hang on).
        let drain_deadline = Nanos(end.0 + end.0 + Nanos::from_secs(10).0);
        while let Some(item) = self.queue.pop() {
            if item.at >= end {
                self.draining = true;
            }
            if item.at >= drain_deadline {
                panic!("simulation failed to drain: event at {}", item.at);
            }
            self.now = item.at;
            match item.ev {
                Ev::Batch(mut evs) => {
                    for ev in evs.drain(..) {
                        self.dispatch_event(ev, item.at);
                    }
                    self.batch_pool.push(evs);
                }
                ev => self.dispatch_event(ev, item.at),
            }
        }
        if cfg!(debug_assertions) {
            for (p, s) in self.scheds.iter().enumerate() {
                // A crashed partition keeps whatever was in flight.
                let failed = matches!(self.cfg.fail_partition, Some((_, fp)) if fp.as_usize() == p);
                assert!(
                    failed || s.is_idle(),
                    "P{p} scheduler not idle after drain (counters: {:?})",
                    s.counters()
                );
            }
        }

        let mut sched = self.sched_retired;
        for s in &self.scheds {
            sched.merge(&s.counters());
        }
        let mut replication = self.repl;
        let replicas = self.replicas.map(|groups| {
            groups
                .into_iter()
                .map(|slot| {
                    let (core, engine) = slot.expect("replica alive at end of run");
                    replication.merge(&core.counters);
                    engine
                })
                .collect::<Vec<_>>()
        });
        let window = self.cfg.measure.as_secs_f64();
        let n = self.engines.len() as f64;
        let mut coord = CoordCounters::default();
        for c in &self.coords {
            coord.merge(&c.counters);
        }
        let shards = self.coords.len() as f64;
        let report = SimReport {
            committed: self.committed,
            user_aborts: self.user_aborts,
            retries: self.retries,
            committed_mp: self.committed_mp,
            throughput_tps: self.committed as f64 / window,
            latency: self.latency,
            sched,
            coord,
            replication,
            simulated: end,
            events_processed: self.events,
            partition_utilization: self
                .part_busy_in_window
                .iter()
                .map(|&b| b as f64 / self.cfg.measure.0 as f64)
                .sum::<f64>()
                / n,
            coordinator_utilization: self
                .coord_busy_in_window
                .iter()
                .map(|&b| b as f64 / self.cfg.measure.0 as f64)
                .sum::<f64>()
                / shards,
        };
        (report, self.workload, self.engines, replicas)
    }
}

/// Convenience: run a microbenchmark- or TPC-C-style workload where the
/// workload itself knows how to build engines.
pub fn run_with<W, B>(cfg: SimConfig, workload: W, build: B) -> SimReport
where
    W: RequestGenerator,
    W::Engine: 'static,
    B: Fn(PartitionId) -> W::Engine,
{
    Simulation::new(cfg, workload, build).run().0
}
