//! The simulation driver: actors, routing, time accounting, metrics.

use crate::event::{ClientIn, CoordIn, Ev, HeapItem, PartIn};
use crate::report::SimReport;
use hcc_common::codec::encode_to_vec;
use hcc_common::stats::{
    AdaptiveStats, DurabilityCounters, LatencyHistogram, ReplicationCounters, SchedulerCounters,
    SequencerStats,
};
use hcc_common::{
    AbortReason, ClientId, CommitRecord, CoordinatorId, CoordinatorRef, FragmentTask, FxHashMap,
    FxHashSet, Nanos, PartitionId, Scheme, SchemeSwitch, SystemConfig, TxnId, TxnResult,
};
use hcc_core::client::{ClientCore, NextAction, PendingRequest};
use hcc_core::coordinator::{CoordCounters, CoordOut, Coordinator};
use hcc_core::membership::MembershipCore;
use hcc_core::replica::{failover_bounce, FailoverBounce, ReplicaCore, ReplicationSession};
use hcc_core::txn_driver::TxnDriver;
use hcc_core::{
    broadcast_dests, make_scheduler, make_scheduler_resumed, Admit, CloseKind, ClosedEpoch,
    EpochLogDest, ExecutionEngine, FlushDecision, GroupCommit, Outbox, PartitionOut,
    PartitionSequencer, Request, RequestGenerator, Scheduler, ShardSequencer,
};
use hcc_storage::{DurableLog, FaultMode, MemLog};
use std::collections::BinaryHeap;

/// Simulation parameters: the system under test plus the measurement
/// protocol (the paper uses 15 s warm-up and 60 s measurement; scaled-down
/// virtual windows give the same steady-state numbers in a fraction of the
/// host time, and the bench harness verifies window-insensitivity).
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub system: SystemConfig,
    pub warmup: Nanos,
    pub measure: Nanos,
    /// Maintain a backup replica per partition through the shared
    /// `ReplicaCore` — commit-order log shipping replayed in sequence,
    /// exposed for state comparison (the paper's §3.2 backups; comparing
    /// primary and replica doubles as a serializability check).
    pub shadow_replica: bool,
    /// Fault injection: at the given time, the partition crashes — it
    /// silently drops every message from then on (§3.3's failure model:
    /// "the transaction causes one partition to crash or the network
    /// splits during execution").
    pub fail_partition: Option<(Nanos, PartitionId)>,
    /// When set, the central coordinator aborts transactions pending
    /// longer than this (the 2PC recovery path for participant failure).
    pub coordinator_timeout: Option<Nanos>,
    /// Replicated fault injection (requires `shadow_replica`): kill the
    /// primary at the given time — its backup is promoted in place
    /// (in-flight transactions bounce with `PartitionFailed`) — and after
    /// `rejoin_delay` the failed node rejoins §3.3-style from a snapshot
    /// of the new primary's committed state, catching up from the log.
    pub failover: Option<SimFailover>,
}

/// Parameters of a simulated kill → promote → recover scenario.
#[derive(Debug, Clone, Copy)]
pub struct SimFailover {
    pub at: Nanos,
    pub partition: PartitionId,
    /// Virtual time between the kill and the failed node's rejoin.
    pub rejoin_delay: Nanos,
}

impl SimConfig {
    pub fn new(system: SystemConfig) -> Self {
        SimConfig {
            system,
            warmup: Nanos::from_millis(200),
            measure: Nanos::from_millis(1000),
            shadow_replica: false,
            fail_partition: None,
            coordinator_timeout: None,
            failover: None,
        }
    }

    /// Crash `partition` at time `at` and enable coordinator expiry of
    /// stalled transactions.
    pub fn with_partition_failure(mut self, at: Nanos, partition: PartitionId) -> Self {
        self.fail_partition = Some((at, partition));
        self.coordinator_timeout = Some(Nanos::from_millis(2));
        self
    }

    pub fn with_window(mut self, warmup: Nanos, measure: Nanos) -> Self {
        self.warmup = warmup;
        self.measure = measure;
        self
    }

    pub fn with_shadow(mut self) -> Self {
        self.shadow_replica = true;
        self
    }

    /// Kill `partition`'s primary at `at`, promote its replica, and
    /// rejoin the failed node `rejoin_delay` later (enables the replica).
    pub fn with_failover(mut self, at: Nanos, partition: PartitionId, rejoin_delay: Nanos) -> Self {
        self.shadow_replica = true;
        self.failover = Some(SimFailover {
            at,
            partition,
            rejoin_delay,
        });
        self
    }
}

struct SimClient<E: ExecutionEngine> {
    core: ClientCore,
    pending: Option<PendingRequest<E::Fragment, E::Output>>,
    driver: TxnDriver<E::Fragment, E::Output>,
    current_txn: Option<TxnId>,
    current_is_mp: bool,
    submitted_at: Nanos,
    busy: Nanos,
}

/// Durability gate verdict for a committed result (see
/// [`Simulation::durability_gate`]).
enum DurGate {
    /// Every participant record is durable: release the result.
    Deliver,
    /// Some record is appended but not yet synced (or not yet appended):
    /// park the result until the sync completes.
    Hold,
    /// A record was abandoned (append failed, or its batch stall-aborted):
    /// bounce the result with the retryable `LogStalled`.
    Bounce,
}

/// One run of the system under a workload. Deterministic given the config
/// and workload seed.
pub struct Simulation<W: RequestGenerator> {
    cfg: SimConfig,
    workload: W,
    queue: BinaryHeap<HeapItem<W::Engine>>,
    seq: u64,
    now: Nanos,

    engines: Vec<W::Engine>,
    scheds: Vec<Box<dyn Scheduler<W::Engine>>>,
    part_busy: Vec<Nanos>,
    part_busy_in_window: Vec<u64>,
    tick_pending: Vec<bool>,

    /// Coordinator shards; clients are statically partitioned across them
    /// (`SystemConfig::coordinator_of`). One shard reproduces the paper.
    coords: Vec<
        Coordinator<
            <W::Engine as ExecutionEngine>::Fragment,
            <W::Engine as ExecutionEngine>::Output,
        >,
    >,
    coord_busy: Vec<Nanos>,
    coord_busy_in_window: Vec<u64>,
    /// The control-plane membership/epoch authority (failover mode).
    membership: MembershipCore,

    // --- Epoch sequencing (SystemConfig::sequencing) ---------------------
    /// Per coordinator shard: the invocation buffer + epoch-log emitter.
    /// `None` when sequencing is off (every path below is then inert,
    /// keeping the default event stream untouched).
    shard_seq: Option<
        Vec<
            ShardSequencer<
                <W::Engine as ExecutionEngine>::Fragment,
                <W::Engine as ExecutionEngine>::Output,
            >,
        >,
    >,
    /// Per partition: the round-robin epoch merge + admission gate.
    part_seq: Option<Vec<PartitionSequencer<<W::Engine as ExecutionEngine>::Fragment>>>,
    /// Per shard: the (era, epoch) an `Ev::EpochClose` age timer was armed
    /// for — a close in the meantime advances the pair, disarming it.
    seq_armed: Vec<Option<(u32, u64)>>,
    /// Sim-level sequencer counters (cross-coordinator aborts observed,
    /// sequencers retired by failover); live stats merge in at report time.
    seq_stats: SequencerStats,
    /// Per partition: transactions the promoted primary applied during its
    /// backup past — the exactly-once guard for in-doubt commit
    /// redelivery (empty until a kill).
    promoted_applied: Vec<FxHashSet<TxnId>>,

    // Reused hot-path buffers: one event in steady state allocates
    // nothing — scheduler outputs, coordinator outputs, and same-time
    // delivery batches all recycle their backing storage.
    outbox: Outbox<<W::Engine as ExecutionEngine>::Output>,
    out_scratch: Vec<PartitionOut<<W::Engine as ExecutionEngine>::Output>>,
    coord_out: Vec<
        CoordOut<<W::Engine as ExecutionEngine>::Fragment, <W::Engine as ExecutionEngine>::Output>,
    >,
    batch_pool: Vec<Vec<Ev<W::Engine>>>,

    clients: Vec<SimClient<W::Engine>>,

    /// Backup replicas (replay position + engine) per partition, through
    /// the shared `ReplicaCore`. A slot is `None` between a kill and the
    /// node's rejoin.
    replicas: Option<Vec<Option<(ReplicaCore, W::Engine)>>>,
    /// Primary-side replication sessions (in-flight fragment buffers +
    /// commit-order sequencer), one per partition.
    sessions: Vec<ReplicationSession<<W::Engine as ExecutionEngine>::Fragment>>,
    /// Replication counters folded from retired replicas/sessions (live
    /// replica counters merge in at report time).
    repl: ReplicationCounters,
    /// Scheduler counters of schedulers retired by a failover (the dead
    /// primary's pre-crash work must still be reported).
    sched_retired: SchedulerCounters,

    /// After the measurement window the simulation *drains*: clients stop
    /// issuing new requests and all in-flight transactions complete, so
    /// final primary and shadow states are comparable.
    draining: bool,

    // --- Durability (SystemConfig::durability) ---------------------------
    /// Durable command log + group-commit policy per partition. `None`
    /// when durability is off (every path below is then inert, keeping
    /// the golden event stream untouched).
    logs: Option<Vec<(MemLog, GroupCommit)>>,
    /// Whether a group-commit flush deadline event is already queued.
    sync_due_pending: Vec<bool>,
    /// Participants of each in-flight transaction, from delivered
    /// fragments (the sim is omniscient: it knows which partitions must
    /// log a record before the result may be released).
    txn_parts: FxHashMap<TxnId, Vec<usize>>,
    /// Log record seqs appended so far per in-flight transaction.
    txn_seqs: FxHashMap<TxnId, Vec<(usize, u64)>>,
    /// Committed results parked until every participant record is durable.
    parked: FxHashMap<TxnId, (ClientId, TxnResult<<W::Engine as ExecutionEngine>::Output>)>,
    /// Transactions whose log append failed (write-fault injection);
    /// their committed result bounces with `LogStalled`.
    append_failed: FxHashSet<TxnId>,
    /// Per partition: records at or below this seq that are not durable
    /// were abandoned by a stall abort — results depending on them bounce
    /// instead of parking forever.
    abandoned_below: Vec<u64>,
    /// Sim-side durability counters (parked results, gate-time bounces);
    /// group-commit counters merge in at report time.
    dur: DurabilityCounters,
    /// Crash harness: freeze the event loop right after the k-th commit
    /// record (globally) is appended.
    crash_at_append: Option<u64>,
    appended_total: u64,
    crashed: bool,
    /// Pre-crash commit-record history per partition (crash harness only).
    history: Option<Vec<Vec<CommitRecord<<W::Engine as ExecutionEngine>::Fragment>>>>,
    /// Committed results actually released to clients (crash harness only).
    acked: Vec<TxnId>,

    // Metrics.
    window_start: Nanos,
    window_end: Nanos,
    committed: u64,
    committed_mp: u64,
    user_aborts: u64,
    retries: u64,
    latency: LatencyHistogram,
    events: u64,
}

impl<W: RequestGenerator> Simulation<W>
where
    W::Engine: 'static,
{
    /// Build a simulation: `build_engine` constructs each partition's
    /// loaded engine (and the shadow copy when enabled).
    pub fn new(
        cfg: SimConfig,
        workload: W,
        build_engine: impl Fn(PartitionId) -> W::Engine,
    ) -> Self {
        // Loud startup validation (ISSUE 10): incompatible knob
        // combinations must fail here, not half-work silently.
        if let Err(e) = cfg.system.validate() {
            panic!("invalid SystemConfig: {e}");
        }
        let n = cfg.system.partitions as usize;
        let engines: Vec<W::Engine> = (0..n)
            .map(|p| build_engine(PartitionId(p as u32)))
            .collect();
        let replicas = cfg.shadow_replica.then(|| {
            (0..n)
                .map(|p| Some((ReplicaCore::new(), build_engine(PartitionId(p as u32)))))
                .collect()
        });
        if let Some(f) = cfg.failover {
            assert!(
                cfg.shadow_replica && f.partition.as_usize() < n,
                "failover requires a replica to promote"
            );
        }
        // `with_partition_failure` models an unreplicated crash whose
        // stalled transactions are finally aborted (RemoteAbort); with
        // sharded coordinators the same expiry path must instead issue
        // retryable CrossCoordinator aborts for cross-shard waiters. The
        // two semantics cannot share one timeout, so the combination is
        // rejected rather than silently mis-aborting healthy waiters.
        assert!(
            cfg.coordinator_timeout.is_none() || cfg.system.coordinators <= 1,
            "partition-failure injection (coordinator_timeout) is a              single-coordinator scenario"
        );
        let scheds = (0..n)
            .map(|p| make_scheduler::<W::Engine>(&cfg.system, PartitionId(p as u32)))
            .collect();
        let clients = (0..cfg.system.clients)
            .map(|c| SimClient {
                core: ClientCore::with_retry(ClientId(c), cfg.system.retry),
                pending: None,
                driver: TxnDriver::new(cfg.system.costs, ClientId(c)),
                current_txn: None,
                current_is_mp: false,
                submitted_at: Nanos::ZERO,
                busy: Nanos::ZERO,
            })
            .collect();
        let window_start = cfg.warmup;
        let window_end = cfg.warmup + cfg.measure;
        let shards = cfg.system.coordinators.max(1) as usize;
        // In-doubt commit tracking (decision acks + redelivery) only
        // matters when a failover can strand a decision; keeping it off
        // otherwise keeps the no-failure event stream (and the golden
        // determinism values) untouched.
        let track_in_doubt = cfg.failover.is_some();
        let durability = cfg.system.durability;
        let seq_on = cfg.system.sequencing_active();
        let mut coords: Vec<_> = (0..shards)
            .map(|k| Coordinator::shard(cfg.system.costs, CoordinatorId(k as u32), track_in_doubt))
            .collect();
        if seq_on && shards > 1 {
            // Under sequencing, speculation chains legally span shards;
            // each shard broadcasts its commit/abort decisions so peers
            // can settle cross-shard dependencies.
            for (k, coord) in coords.iter_mut().enumerate() {
                let peers = (0..shards)
                    .filter(|&j| j != k)
                    .map(|j| CoordinatorId(j as u32))
                    .collect();
                coord.set_peer_broadcast(peers);
            }
        }
        Simulation {
            coords,
            shard_seq: seq_on.then(|| {
                (0..shards)
                    .map(|k| {
                        ShardSequencer::new(CoordinatorId(k as u32), cfg.system.sequencing.batch())
                    })
                    .collect()
            }),
            part_seq: seq_on.then(|| {
                (0..n)
                    .map(|p| PartitionSequencer::new(PartitionId(p as u32), shards as u32))
                    .collect()
            }),
            seq_armed: vec![None; shards],
            seq_stats: SequencerStats::default(),
            coord_busy: vec![Nanos::ZERO; shards],
            coord_busy_in_window: vec![0; shards],
            membership: MembershipCore::new(),
            promoted_applied: (0..n).map(|_| FxHashSet::default()).collect(),
            outbox: Outbox::new(cfg.system.costs),
            out_scratch: Vec::new(),
            coord_out: Vec::new(),
            batch_pool: Vec::new(),
            cfg,
            workload,
            queue: BinaryHeap::new(),
            seq: 0,
            now: Nanos::ZERO,
            engines,
            scheds,
            part_busy: vec![Nanos::ZERO; n],
            part_busy_in_window: vec![0; n],
            tick_pending: vec![false; n],
            clients,
            replicas,
            draining: false,
            logs: durability.map(|d| {
                (0..n)
                    .map(|_| (MemLog::new(), GroupCommit::new(d)))
                    .collect()
            }),
            sync_due_pending: vec![false; n],
            txn_parts: FxHashMap::default(),
            txn_seqs: FxHashMap::default(),
            parked: FxHashMap::default(),
            append_failed: FxHashSet::default(),
            abandoned_below: vec![0; n],
            dur: DurabilityCounters::default(),
            crash_at_append: None,
            appended_total: 0,
            crashed: false,
            history: None,
            acked: Vec::new(),
            sessions: (0..n).map(|_| ReplicationSession::new()).collect(),
            repl: ReplicationCounters::default(),
            sched_retired: SchedulerCounters::default(),
            window_start,
            window_end,
            committed: 0,
            committed_mp: 0,
            user_aborts: 0,
            retries: 0,
            latency: LatencyHistogram::default(),
            events: 0,
        }
    }

    fn push(&mut self, at: Nanos, ev: Ev<W::Engine>) {
        self.seq += 1;
        self.queue.push(HeapItem {
            at,
            seq: self.seq,
            ev,
        });
    }

    fn one_way(&self) -> Nanos {
        self.cfg.system.network.one_way
    }

    /// Coordinator expiry policy: the participant-failure recovery path
    /// (explicit `coordinator_timeout`, final `RemoteAbort`) or — with
    /// sharded coordinators — the cross-shard distributed-deadlock breaker
    /// (`lock_timeout`, retryable `CrossCoordinator`), mirroring §4.3's
    /// timeout-based resolution under locking. `None` for the paper's
    /// singleton, whose global dispatch order cannot deadlock.
    /// With sequencing on the cross-shard breaker is off by design: the
    /// merged epoch order leaves no out-of-order waits for expiry to
    /// break, so `CrossCoordinator` aborts must not occur at all.
    fn coord_expiry(&self) -> Option<(Nanos, AbortReason)> {
        if let Some(t) = self.cfg.coordinator_timeout {
            Some((t, AbortReason::RemoteAbort))
        } else if self.coords.len() > 1 && !self.cfg.system.sequencing_active() {
            Some((self.cfg.system.lock_timeout, AbortReason::CrossCoordinator))
        } else {
            None
        }
    }

    /// Account busy time clipped to the measurement window.
    fn window_overlap(&self, start: Nanos, end: Nanos) -> u64 {
        let s = start.max(self.window_start);
        let e = end.min(self.window_end);
        e.0.saturating_sub(s.0)
    }

    /// Dispatch a request for client `c` at local time `at`.
    fn dispatch(&mut self, c: usize, at: Nanos) {
        let pending = self.clients[c].pending.as_ref().expect("pending request");
        let req = pending.to_request();
        let txn = self.clients[c].core.next_txn_id();
        self.clients[c].current_txn = Some(txn);
        let one_way = self.one_way();
        let client_id = ClientId(c as u32);
        match req {
            Request::SinglePartition {
                partition,
                fragment,
                can_abort,
            } => {
                self.clients[c].current_is_mp = false;
                let task = FragmentTask {
                    txn,
                    coordinator: CoordinatorRef::Client(client_id),
                    client: client_id,
                    fragment,
                    multi_partition: false,
                    last_fragment: true,
                    round: 0,
                    can_abort,
                };
                self.push(
                    at + one_way,
                    Ev::ToPartition {
                        p: partition,
                        msg: PartIn::Fragment(task),
                    },
                );
            }
            Request::MultiPartition {
                procedure,
                can_abort,
            } => {
                self.clients[c].current_is_mp = true;
                // Client-coordinated 2PC is the locking scheme's protocol
                // (§4.3) — but under adaptive selection a partition's
                // scheme can change between rounds, so every MP
                // transaction routes through the central coordinator,
                // which is scheme-agnostic.
                let client_2pc =
                    self.cfg.system.scheme == Scheme::Locking && !self.cfg.system.adaptive.is_on();
                match client_2pc {
                    true => {
                        // Client-coordinated 2PC (§4.3).
                        debug_assert!(self.coord_out.is_empty());
                        let mut out = std::mem::take(&mut self.coord_out);
                        self.clients[c]
                            .driver
                            .begin(txn, procedure, can_abort, &mut out);
                        self.coord_out = out;
                        let cpu = self.clients[c].driver.take_cpu();
                        let start = at.max(self.clients[c].busy);
                        self.clients[c].busy = start + cpu;
                        let depart = self.clients[c].busy;
                        self.route_coord_out(depart, Some(c));
                    }
                    _ => {
                        let k = self.cfg.system.coordinator_of(client_id);
                        self.push(
                            at + one_way,
                            Ev::ToCoordinator {
                                k,
                                msg: CoordIn::Invoke {
                                    txn,
                                    client: client_id,
                                    procedure,
                                    can_abort,
                                },
                            },
                        );
                    }
                }
            }
        }
    }

    /// Route the coordinator (or client-driver) outputs accumulated in
    /// `self.coord_out`. `from_client` is the index of the driving client
    /// for locking-mode self-results. Consecutive messages sharing an
    /// arrival time travel as one heap entry (see [`Ev::Batch`]).
    fn route_coord_out(&mut self, depart: Nanos, from_client: Option<usize>) {
        let one_way = self.one_way();
        let mut msgs = std::mem::take(&mut self.coord_out);
        let mut group: Vec<Ev<W::Engine>> = self.batch_pool.pop().unwrap_or_default();
        let mut group_at = Nanos::ZERO;
        for o in msgs.drain(..) {
            let (at, ev) = match o {
                CoordOut::Fragment(p, task) => (
                    depart + one_way,
                    Ev::ToPartition {
                        p,
                        msg: PartIn::Fragment(task),
                    },
                ),
                CoordOut::Decision(p, d, ack_to) => (
                    depart + one_way,
                    Ev::ToPartition {
                        p,
                        msg: PartIn::Decision(d, ack_to),
                    },
                ),
                CoordOut::ClientResult {
                    client,
                    txn,
                    result,
                } => {
                    // From the central coordinator this crosses the
                    // network; from a client's own driver it is local.
                    let delay = if from_client.is_some() {
                        Nanos::ZERO
                    } else {
                        one_way
                    };
                    (
                        depart + delay,
                        Ev::ToClient {
                            c: client,
                            msg: ClientIn::Result { txn, result },
                        },
                    )
                }
                CoordOut::PeerNote(k, note) => (
                    depart + one_way,
                    Ev::ToCoordinator {
                        k,
                        msg: CoordIn::PeerNote(note),
                    },
                ),
                CoordOut::EpochLog(dest, log) => match dest {
                    EpochLogDest::Partition(p) => (
                        depart + one_way,
                        Ev::ToPartition {
                            p,
                            msg: PartIn::EpochLog(log),
                        },
                    ),
                    EpochLogDest::Shard(k) => (
                        depart + one_way,
                        Ev::ToCoordinator {
                            k,
                            msg: CoordIn::EpochLog(log),
                        },
                    ),
                },
            };
            if at != group_at && !group.is_empty() {
                self.flush_group(group_at, &mut group);
            }
            group_at = at;
            group.push(ev);
        }
        if !group.is_empty() {
            self.flush_group(group_at, &mut group);
        }
        self.batch_pool.push(group);
        self.coord_out = msgs;
    }

    /// Push a group of same-arrival events: single events go straight to
    /// the heap, bursts go as one [`Ev::Batch`]. `group` is left empty
    /// (its storage recycled through the batch pool for bursts).
    fn flush_group(&mut self, at: Nanos, group: &mut Vec<Ev<W::Engine>>) {
        if group.len() == 1 {
            let ev = group.pop().expect("non-empty group");
            self.push(at, ev);
        } else {
            let burst = std::mem::replace(group, self.batch_pool.pop().unwrap_or_default());
            self.push(at, Ev::Batch(burst));
        }
    }

    /// Record a delivered fragment for replication (latest per round wins —
    /// a squashed continuation is superseded by its re-sent version).
    fn record_fragment(
        &mut self,
        p: usize,
        task: &FragmentTask<<W::Engine as ExecutionEngine>::Fragment>,
    ) {
        if self.replicas.is_some() || self.logs.is_some() {
            self.sessions[p].record_fragment(task);
        }
        if self.logs.is_some() {
            // Omniscient participant tracking: the result gate knows which
            // partitions must append (and sync) a record for this
            // transaction before its committed result may be released.
            let parts = self.txn_parts.entry(task.txn).or_default();
            if !parts.contains(&p) {
                parts.push(p);
            }
        }
    }

    /// The transaction committed at partition `p`: ship its commit record
    /// and replay it on the replica through the shared `ReplicaCore` —
    /// the paper's backup execution, with sequence-checked replay whose
    /// failures land in the replication counters instead of an assert.
    /// Replay is virtually instantaneous: the sim models the backup
    /// round-trip as added result latency (see `handle_partition`), not
    /// as replica compute.
    fn replica_commit(&mut self, p: usize, txn: TxnId, at: Nanos) {
        if self.replicas.is_none() && self.logs.is_none() {
            return;
        }
        let Some(record) = self.sessions[p].on_commit(txn) else {
            return;
        };
        self.repl.records_shipped += 1;
        // Between a kill and the rejoin the slot is empty: the record is
        // logged (seq advances) with no live consumer.
        if let Some(replicas) = self.replicas.as_mut() {
            if let Some((core, engine)) = replicas[p].as_mut() {
                let _ = core.apply(engine, &record);
            }
        }
        self.log_append(p, txn, &record, at);
    }

    fn replica_abort(&mut self, p: usize, txn: TxnId) {
        if self.replicas.is_some() || self.logs.is_some() {
            self.sessions[p].on_abort(txn);
        }
    }

    /// Adaptive runs: collect scheme-swap notes produced by the scheduler
    /// call that just returned. Each note is stamped onto the partition's
    /// replication session (the next commit record carries it, so a
    /// promoted backup resumes in the same scheme at the same point of the
    /// commit order) and recorded as an observational event in the
    /// deterministic total order.
    fn drain_switch_notes(&mut self, pi: usize, p: PartitionId, at: Nanos) {
        if !self.cfg.system.adaptive.is_on() {
            return;
        }
        for note in self.scheds[pi].take_switch_notes() {
            let sw = SchemeSwitch {
                epoch: note.epoch,
                scheme: note.scheme,
            };
            self.sessions[pi].mark_scheme_switch(sw);
            self.push(
                at,
                Ev::SchemeSwitch {
                    p,
                    epoch: note.epoch,
                    scheme: note.scheme,
                },
            );
        }
    }

    /// Append a commit record to partition `p`'s durable command log:
    /// group-commit bookkeeping, crash-harness accounting, and sync
    /// scheduling. The record's seq in the log equals its replication
    /// session seq (both are dense from 1, in the same append order).
    fn log_append(
        &mut self,
        p: usize,
        txn: TxnId,
        record: &CommitRecord<<W::Engine as ExecutionEngine>::Fragment>,
        at: Nanos,
    ) {
        if self.logs.is_none() || self.crashed {
            return;
        }
        let appended = {
            let log = &mut self.logs.as_mut().expect("checked above")[p].0;
            log.append(&encode_to_vec(record))
        };
        let seq = match appended {
            Ok(seq) => seq,
            Err(_) => {
                // Write-fault injection: the record never made it into the
                // log; the committed result bounces with `LogStalled`.
                self.append_failed.insert(txn);
                return;
            }
        };
        self.txn_seqs.entry(txn).or_default().push((p, seq));
        self.appended_total += 1;
        if let Some(h) = self.history.as_mut() {
            h[p].push(record.clone());
        }
        if self.crash_at_append == Some(self.appended_total) {
            // The whole partition group is killed at this commit index:
            // the event loop freezes and only the durable log survives.
            self.crashed = true;
            return;
        }
        match self.logs.as_mut().expect("checked above")[p]
            .1
            .on_append(at)
        {
            FlushDecision::SyncNow => self.issue_sync(p, at),
            FlushDecision::None => self.schedule_sync_due(p, at),
        }
    }

    /// Schedule the group-commit flush deadline for partition `p` (at most
    /// one outstanding per partition).
    fn schedule_sync_due(&mut self, p: usize, at: Nanos) {
        if self.sync_due_pending[p] {
            return;
        }
        let Some(deadline) = self.logs.as_ref().expect("durability on")[p]
            .1
            .flush_deadline()
        else {
            return;
        };
        self.sync_due_pending[p] = true;
        self.push(
            deadline.max(at),
            Ev::SyncDue {
                p: PartitionId(p as u32),
            },
        );
    }

    /// Issue a log sync for partition `p`; it completes `sync_latency`
    /// later ([`Ev::SyncDone`]).
    fn issue_sync(&mut self, p: usize, at: Nanos) {
        let latency = {
            let gc = &mut self.logs.as_mut().expect("durability on")[p].1;
            gc.on_sync_issued(at);
            gc.config().sync_latency
        };
        self.push(
            at + latency,
            Ev::SyncDone {
                p: PartitionId(p as u32),
            },
        );
    }

    fn handle_sync_due(&mut self, p: PartitionId, at: Nanos) {
        let pi = p.as_usize();
        self.sync_due_pending[pi] = false;
        if self.logs.is_none() {
            return;
        }
        match self.logs.as_mut().expect("checked above")[pi].1.poll(at) {
            FlushDecision::SyncNow => self.issue_sync(pi, at),
            // Batch drained early (size-triggered sync) or restarted:
            // re-arm for the current deadline, if any.
            FlushDecision::None => self.schedule_sync_due(pi, at),
        }
    }

    fn handle_sync_done(&mut self, p: PartitionId, at: Nanos) {
        let pi = p.as_usize();
        if self.logs.is_none() {
            return;
        }
        let synced = {
            let (log, gc) = &mut self.logs.as_mut().expect("checked above")[pi];
            match log.sync() {
                Ok(_) => {
                    gc.on_synced();
                    true
                }
                Err(_) => false,
            }
        };
        if synced {
            // Records appended while the sync was in flight start a new
            // batch; re-arm its flush deadline.
            self.schedule_sync_due(pi, at);
            self.release_parked(at);
        } else {
            // Stalled (or failing) device: arm the stall guard. When it
            // fires, the batch aborts instead of wedging its clients.
            if let Some(d) = self.logs.as_ref().expect("checked above")[pi]
                .1
                .stall_deadline()
            {
                self.push(d.max(at), Ev::StallCheck { p });
            }
        }
    }

    /// Release every parked result whose participant records are all
    /// durable now.
    fn release_parked(&mut self, at: Nanos) {
        if self.parked.is_empty() {
            return;
        }
        let mut ready: Vec<TxnId> = self
            .parked
            .keys()
            .filter(|t| matches!(self.durability_gate(**t), DurGate::Deliver))
            .copied()
            .collect();
        ready.sort_unstable();
        for t in ready {
            let (c, result) = self.parked.remove(&t).expect("filtered above");
            self.push(
                at,
                Ev::ToClient {
                    c,
                    msg: ClientIn::Result { txn: t, result },
                },
            );
        }
    }

    fn handle_stall_check(&mut self, p: PartitionId, at: Nanos) {
        let pi = p.as_usize();
        let (durable, appended) = {
            let Some(logs) = self.logs.as_ref() else {
                return;
            };
            if !logs[pi].1.stalled(at) {
                return;
            }
            (logs[pi].0.durable(), logs[pi].0.appended())
        };
        // Everything appended so far but not durable is abandoned: parked
        // results waiting on those records bounce with the retryable
        // `LogStalled` instead of wedging (results may reach the gate
        // *after* this sweep — `abandoned_below` catches those).
        self.abandoned_below[pi] = appended;
        let mut victims: Vec<TxnId> = self
            .parked
            .keys()
            .filter(|t| {
                self.txn_seqs
                    .get(t)
                    .is_some_and(|v| v.iter().any(|(q, s)| *q == pi && *s > durable))
            })
            .copied()
            .collect();
        victims.sort_unstable();
        let n = victims.len() as u64;
        for t in victims {
            let (c, _) = self.parked.remove(&t).expect("filtered above");
            self.push(
                at,
                Ev::ToClient {
                    c,
                    msg: ClientIn::Result {
                        txn: t,
                        result: TxnResult::Aborted(AbortReason::LogStalled),
                    },
                },
            );
        }
        self.logs.as_mut().expect("checked above")[pi]
            .1
            .on_stall_abort(n);
    }

    /// What the durability gate says about releasing `txn`'s committed
    /// result right now.
    fn durability_gate(&self, txn: TxnId) -> DurGate {
        let Some(logs) = self.logs.as_ref() else {
            return DurGate::Deliver;
        };
        if self.append_failed.contains(&txn) {
            return DurGate::Bounce;
        }
        let Some(parts) = self.txn_parts.get(&txn) else {
            return DurGate::Deliver;
        };
        let seqs = self.txn_seqs.get(&txn);
        if seqs.map_or(0, Vec::len) < parts.len() {
            // Some participants have not even appended yet (client-driven
            // 2PC delivers the self-result before the decisions land).
            return DurGate::Hold;
        }
        let mut hold = false;
        for (p, s) in seqs.expect("nonempty above") {
            if *s > logs[*p].0.durable() {
                if *s <= self.abandoned_below[*p] {
                    return DurGate::Bounce;
                }
                hold = true;
            }
        }
        if hold {
            DurGate::Hold
        } else {
            DurGate::Deliver
        }
    }

    /// Handle the partition scheduler outputs accumulated in
    /// `self.out_scratch`: route messages, apply shadow commits for
    /// single-partition results. Every message arrives `one_way` after
    /// `depart`, so a multi-message burst travels as one heap entry.
    fn route_partition_out(&mut self, p: usize, depart: Nanos) {
        let one_way = self.one_way();
        let arrival = depart + one_way;
        let mut msgs = std::mem::take(&mut self.out_scratch);
        let mut group: Vec<Ev<W::Engine>> = self.batch_pool.pop().unwrap_or_default();
        for m in msgs.drain(..) {
            let ev = match m {
                PartitionOut::ToClient {
                    client,
                    txn,
                    result,
                } => {
                    match &result {
                        TxnResult::Committed(_) => self.replica_commit(p, txn, depart),
                        TxnResult::Aborted(_) => self.replica_abort(p, txn),
                    }
                    Ev::ToClient {
                        c: client,
                        msg: ClientIn::Result { txn, result },
                    }
                }
                PartitionOut::ToCoordinator { dest, response } => match dest {
                    CoordinatorRef::Central(k) => Ev::ToCoordinator {
                        k,
                        msg: CoordIn::Response(response),
                    },
                    CoordinatorRef::Client(cid) => Ev::ToClient {
                        c: cid,
                        msg: ClientIn::FragResponse(response),
                    },
                },
            };
            group.push(ev);
        }
        if !group.is_empty() {
            self.flush_group(arrival, &mut group);
        }
        self.batch_pool.push(group);
        self.out_scratch = msgs;
    }

    fn handle_partition(
        &mut self,
        p: PartitionId,
        msg: PartIn<<W::Engine as ExecutionEngine>::Fragment>,
        at: Nanos,
    ) {
        // A crashed partition drops everything on the floor.
        if let Some((when, failed)) = self.cfg.fail_partition {
            if p == failed && at >= when {
                return;
            }
        }
        let pi = p.as_usize();
        let start = at.max(self.part_busy[pi]);
        debug_assert!(self.outbox.messages.is_empty() && self.outbox.cpu == Nanos::ZERO);
        // A processed commit decision is acknowledged to the shard that
        // asked (in-doubt tracking) — unless it was *stray* (a transaction
        // that died with a crashed predecessor), which must stay in doubt
        // so the redelivery machinery can close the window.
        let mut ack: Option<(CoordinatorRef, TxnId)> = None;
        match msg {
            PartIn::Fragment(task) => {
                // Exactly-once guard for in-doubt redelivery: a promoted
                // primary that already applied this transaction as a
                // backup acks the commit instead of re-executing it.
                if task.multi_partition && self.promoted_applied[pi].contains(&task.txn) {
                    if let CoordinatorRef::Central(k) = task.coordinator {
                        self.push(
                            at + self.one_way(),
                            Ev::ToCoordinator {
                                k,
                                msg: CoordIn::DecisionAck {
                                    txn: task.txn,
                                    partition: p,
                                },
                            },
                        );
                    }
                    return;
                }
                // Sequencing gate: centrally coordinated MP round-0
                // fragments dispatch in merged epoch order; a fragment
                // ahead of its turn is held until its predecessors arrive.
                if self.part_seq.is_some() && PartitionSequencer::gates(&task) {
                    let admit = self.part_seq.as_mut().expect("checked")[pi].on_mp_fragment(task);
                    match admit {
                        Admit::Deliver(tasks) => {
                            for t in tasks {
                                self.record_fragment(pi, &t);
                                self.scheds[pi].on_fragment(
                                    t,
                                    &mut self.engines[pi],
                                    start,
                                    &mut self.outbox,
                                );
                            }
                        }
                        Admit::Held => {}
                    }
                } else {
                    self.record_fragment(pi, &task);
                    self.scheds[pi].on_fragment(
                        task,
                        &mut self.engines[pi],
                        start,
                        &mut self.outbox,
                    );
                }
            }
            PartIn::EpochLog(log) => {
                if let Some(seqs) = self.part_seq.as_mut() {
                    let released = seqs[pi].on_log(log);
                    for t in released {
                        self.record_fragment(pi, &t);
                        self.scheds[pi].on_fragment(
                            t,
                            &mut self.engines[pi],
                            start,
                            &mut self.outbox,
                        );
                    }
                }
            }
            PartIn::Decision(d, ack_to) => {
                if d.commit {
                    self.replica_commit(pi, d.txn, start);
                } else {
                    self.replica_abort(pi, d.txn);
                }
                let strays_before = self.scheds[pi].counters().stray_decisions;
                self.scheds[pi].on_decision(d, &mut self.engines[pi], start, &mut self.outbox);
                if let Some(k) = ack_to {
                    if d.commit && self.scheds[pi].counters().stray_decisions == strays_before {
                        ack = Some((k, d.txn));
                    }
                }
            }
        }
        // Adaptive runs: a scheme swap may have completed inside the
        // scheduler call above. Stamp it into the replication stream (so
        // backups promote into the same scheme at the same point of the
        // commit order) and into the event log (so the switch is part of
        // the deterministic total order) *before* this event's outgoing
        // messages ship.
        self.drain_switch_notes(pi, p, start);
        // Drain the (recycled) outbox into the scratch buffer.
        let cpu = self.outbox.take_into(&mut self.out_scratch);
        let end = start + cpu;
        self.part_busy[pi] = end;
        self.part_busy_in_window[pi] += self.window_overlap(start, end);
        // Replication: result-bearing messages wait for backup acks (one
        // round trip to the backups), overlapped with execution (§3.2).
        let depart = if self.cfg.system.replication > 1 {
            end.max(at + Nanos(2 * self.one_way().0))
        } else {
            end
        };
        if let Some((to, txn)) = ack {
            match to {
                CoordinatorRef::Central(k) => self.push(
                    depart + self.one_way(),
                    Ev::ToCoordinator {
                        k,
                        msg: CoordIn::DecisionAck { txn, partition: p },
                    },
                ),
                // The sim gates result release omnisciently (see
                // `durability_gate`) rather than through client-driver
                // acks, so a client ack address never occurs here.
                CoordinatorRef::Client(_) => {
                    debug_assert!(false, "sim coordinators never demand client acks")
                }
            }
        }
        self.route_partition_out(pi, depart);
        // Locking needs periodic timeout scans while work is outstanding —
        // and an adaptive partition can be (or become) Locking at any time.
        if (self.cfg.system.scheme == Scheme::Locking || self.cfg.system.adaptive.is_on())
            && !self.tick_pending[pi]
            && !self.scheds[pi].is_idle()
        {
            self.tick_pending[pi] = true;
            let delay = Nanos(self.cfg.system.lock_timeout.0 / 4).max(Nanos(1));
            self.push(end + delay, Ev::Tick { p });
        }
    }

    fn handle_tick(&mut self, p: PartitionId, at: Nanos) {
        let pi = p.as_usize();
        self.tick_pending[pi] = false;
        let start = at.max(self.part_busy[pi]);
        debug_assert!(self.outbox.messages.is_empty() && self.outbox.cpu == Nanos::ZERO);
        let next = self.scheds[pi].on_tick(&mut self.engines[pi], start, &mut self.outbox);
        self.drain_switch_notes(pi, p, start);
        let cpu = self.outbox.take_into(&mut self.out_scratch);
        let end = start + cpu;
        self.part_busy[pi] = end;
        self.part_busy_in_window[pi] += self.window_overlap(start, end);
        self.route_partition_out(pi, end);
        if let Some(delay) = next {
            self.tick_pending[pi] = true;
            self.push(end + delay, Ev::Tick { p });
        }
    }

    fn handle_coordinator(&mut self, k: CoordinatorId, msg: CoordIn<W::Engine>, at: Nanos) {
        let ki = k.as_usize();
        let start = at.max(self.coord_busy[ki]);
        debug_assert!(self.coord_out.is_empty());
        let mut out = std::mem::take(&mut self.coord_out);
        match msg {
            CoordIn::Invoke {
                txn,
                client,
                procedure,
                can_abort,
            } => {
                if self.shard_seq.is_some() {
                    // Buffer into the open epoch; dispatch happens when
                    // the epoch closes (count here, age via EpochClose,
                    // cascade via a peer's log).
                    let (was_empty, closed) = {
                        let seqs = self.shard_seq.as_mut().expect("checked");
                        let was_empty = seqs[ki].is_empty();
                        (
                            was_empty,
                            seqs[ki].push(txn, client, procedure, can_abort, start),
                        )
                    };
                    if let Some(closed) = closed {
                        self.emit_closed(ki, closed, start, &mut out);
                    } else if was_empty {
                        let seqs = self.shard_seq.as_ref().expect("checked");
                        self.seq_armed[ki] = Some((seqs[ki].era(), seqs[ki].open_epoch()));
                        let delay = self.cfg.system.sequencing.max_delay();
                        self.push(start + delay, Ev::EpochClose { k });
                    }
                } else {
                    self.coords[ki].on_invoke_at(txn, client, procedure, can_abort, start, &mut out)
                }
            }
            CoordIn::Response(r) => self.coords[ki].on_response(r, &mut out),
            CoordIn::RoutingUpdate { partition, epoch } => {
                let _ = self.coords[ki].on_partition_failed(partition, epoch, &mut out);
                if let Some(shard_seq) = self.shard_seq.as_mut() {
                    // Membership changed: end the era. The open epoch dies
                    // with it — buffered invocations bounce to their
                    // clients for a retry in the new era, and an era-end
                    // marker tells every partition where the merge stops.
                    let (marker, bounced) = shard_seq[ki].on_era_change();
                    let partitions = self.cfg.system.partitions;
                    let shards = self.coords.len() as u32;
                    let mut fanout = 0u64;
                    for dest in broadcast_dests(partitions, shards, k) {
                        out.push(CoordOut::EpochLog(dest, marker.clone()));
                        fanout += 1;
                    }
                    self.coords[ki].charge_extra_msgs(fanout);
                    for inv in bounced {
                        out.push(CoordOut::ClientResult {
                            client: inv.client,
                            txn: inv.txn,
                            result: TxnResult::Aborted(AbortReason::PartitionFailed),
                        });
                    }
                }
            }
            CoordIn::EpochLog(log) => {
                if self.shard_seq.is_some() {
                    let closed =
                        self.shard_seq.as_mut().expect("checked")[ki].on_peer_log(&log, start);
                    for c in closed {
                        self.emit_closed(ki, c, start, &mut out);
                    }
                }
            }
            CoordIn::PeerNote(note) => self.coords[ki].on_peer_decision(note, &mut out),
            CoordIn::DecisionAck { txn, partition } => {
                self.coords[ki].on_decision_ack(txn, partition, &mut out);
            }
            CoordIn::Tick => {
                if let Some((timeout, reason)) = self.coord_expiry() {
                    self.coords[ki].expire_stalled(start, timeout, reason, &mut out);
                    // Tick until the window closes, then once more per
                    // pending txn during the drain (bounded, so the drain
                    // terminates).
                    if start < self.window_end || self.coords[ki].pending() > 0 {
                        self.push(
                            start + Nanos(timeout.0 / 2).max(Nanos(1)),
                            Ev::ToCoordinator {
                                k,
                                msg: CoordIn::Tick,
                            },
                        );
                    }
                }
            }
        }
        self.coord_out = out;
        let cpu = self.coords[ki].take_cpu();
        let end = start + cpu;
        self.coord_busy[ki] = end;
        self.coord_busy_in_window[ki] += self.window_overlap(start, end);
        self.route_coord_out(end, None);
    }

    /// Emit a closed epoch from shard `ki`: broadcast its log to every
    /// partition and peer shard *before* dispatching the epoch's
    /// invocations, so per-link FIFO delivery lands each log ahead of the
    /// round-0 fragments it orders (same arrival batch, earlier slots).
    fn emit_closed(
        &mut self,
        ki: usize,
        closed: ClosedEpoch<
            <W::Engine as ExecutionEngine>::Fragment,
            <W::Engine as ExecutionEngine>::Output,
        >,
        now: Nanos,
        out: &mut Vec<
            CoordOut<
                <W::Engine as ExecutionEngine>::Fragment,
                <W::Engine as ExecutionEngine>::Output,
            >,
        >,
    ) {
        let partitions = self.cfg.system.partitions;
        let shards = self.coords.len() as u32;
        let mut fanout = 0u64;
        for dest in broadcast_dests(partitions, shards, CoordinatorId(ki as u32)) {
            out.push(CoordOut::EpochLog(dest, closed.log.clone()));
            fanout += 1;
        }
        self.coords[ki].charge_extra_msgs(fanout);
        for inv in closed.invokes {
            self.coords[ki].on_invoke_at(
                inv.txn,
                inv.client,
                inv.procedure,
                inv.can_abort,
                now,
                out,
            );
        }
    }

    /// Age-boundary close for shard `k`. One-shot: armed when the shard's
    /// buffer became non-empty; the recorded (era, epoch) disarms the
    /// timer if that epoch already closed for another reason.
    fn handle_epoch_close(&mut self, k: CoordinatorId, at: Nanos) {
        let ki = k.as_usize();
        let armed = self.seq_armed[ki].take();
        let Some(seqs) = self.shard_seq.as_ref() else {
            return;
        };
        if armed != Some((seqs[ki].era(), seqs[ki].open_epoch())) || seqs[ki].is_empty() {
            return;
        }
        let start = at.max(self.coord_busy[ki]);
        debug_assert!(self.coord_out.is_empty());
        let mut out = std::mem::take(&mut self.coord_out);
        let closed = self.shard_seq.as_mut().expect("checked")[ki].close(start, CloseKind::Age);
        self.emit_closed(ki, closed, start, &mut out);
        self.coord_out = out;
        let cpu = self.coords[ki].take_cpu();
        let end = start + cpu;
        self.coord_busy[ki] = end;
        self.coord_busy_in_window[ki] += self.window_overlap(start, end);
        self.route_coord_out(end, None);
    }

    fn handle_client(
        &mut self,
        c: ClientId,
        msg: ClientIn<<W::Engine as ExecutionEngine>::Output>,
        at: Nanos,
    ) {
        let ci = c.as_usize();
        match msg {
            ClientIn::Result { txn, mut result } => {
                debug_assert_eq!(self.clients[ci].current_txn, Some(txn), "stray result");
                if matches!(result, TxnResult::Aborted(AbortReason::CrossCoordinator)) {
                    // Satellite assert (ISSUE 8): under sequencing the
                    // merged epoch order leaves nothing for cross-shard
                    // expiry to break — such an abort is a protocol bug.
                    self.seq_stats.cross_coord_aborts += 1;
                    debug_assert!(
                        !self.cfg.system.sequencing_active(),
                        "CrossCoordinator abort while sequencing is on"
                    );
                }
                // Durability gate: a committed result is released only
                // once every participant's commit record is durable. The
                // release (or the stall-guard bounce) re-delivers through
                // this same path.
                if result.is_committed() && self.logs.is_some() {
                    match self.durability_gate(txn) {
                        DurGate::Deliver => {}
                        DurGate::Hold => {
                            self.dur.results_held += 1;
                            self.parked.insert(txn, (c, result));
                            return;
                        }
                        DurGate::Bounce => {
                            self.append_failed.remove(&txn);
                            self.dur.stalled_aborts += 1;
                            result = TxnResult::Aborted(AbortReason::LogStalled);
                        }
                    }
                }
                if self.logs.is_some() {
                    // Either outcome ends this transaction id (retries use
                    // a fresh one): drop its gate bookkeeping.
                    self.txn_parts.remove(&txn);
                    self.txn_seqs.remove(&txn);
                    if self.history.is_some() && result.is_committed() {
                        self.acked.push(txn);
                    }
                }
                let in_window = at >= self.window_start && at < self.window_end;
                match self.clients[ci].core.on_result(&result) {
                    // Infrastructure aborts (CrossCoordinator,
                    // PartitionFailed, LogStalled) come back with a capped
                    // exponential backoff computed by `ClientCore`;
                    // scheduling aborts retry immediately (`after` = 0).
                    // Instant retries of cross-shard bounces livelock in
                    // virtual time — the jittered backoff breaks the
                    // lockstep.
                    NextAction::Retry { after } => {
                        if in_window {
                            self.retries += 1;
                        }
                        if !self.draining {
                            self.dispatch(ci, at + after);
                        }
                    }
                    NextAction::NewRequest => {
                        if in_window {
                            match &result {
                                TxnResult::Committed(_) => {
                                    self.committed += 1;
                                    if self.clients[ci].current_is_mp {
                                        self.committed_mp += 1;
                                    }
                                    self.latency
                                        .record(at.saturating_sub(self.clients[ci].submitted_at));
                                }
                                TxnResult::Aborted(_) => self.user_aborts += 1,
                            }
                        }
                        self.workload.on_result(c, txn, result.is_committed());
                        if !self.draining {
                            let req = self.workload.next_request(c);
                            self.clients[ci].pending = Some(PendingRequest::from_request(&req));
                            self.clients[ci].submitted_at = at;
                            self.dispatch(ci, at);
                        }
                    }
                }
            }
            ClientIn::FragResponse(r) => {
                let start = at.max(self.clients[ci].busy);
                debug_assert!(self.coord_out.is_empty());
                let mut out = std::mem::take(&mut self.coord_out);
                self.clients[ci].driver.on_response(r, &mut out);
                self.coord_out = out;
                let cpu = self.clients[ci].driver.take_cpu();
                self.clients[ci].busy = start + cpu;
                let depart = self.clients[ci].busy;
                self.route_coord_out(depart, Some(ci));
            }
        }
    }

    /// Kill `p`'s primary: promote its replica in place (the partition's
    /// address now answers to the promoted node), bounce every in-flight
    /// transaction with `PartitionFailed` (the runtime's crash bounce),
    /// notify the coordinator (the failure detector), and schedule the
    /// dead node's §3.3 rejoin.
    fn handle_kill(&mut self, p: PartitionId, at: Nanos) {
        let pi = p.as_usize();
        let one_way = self.one_way();
        let replicas = self.replicas.as_mut().expect("failover requires replicas");
        let (mut core, replica_engine) = replicas[pi].take().expect("replica alive at kill");
        self.promoted_applied[pi] = core.take_applied_txns();
        // Promote: the replica engine (exactly the committed prefix of the
        // commit log) becomes the primary; the dead node's engine and
        // scheduler state are lost — but its counters still describe real
        // pre-crash work, so fold them in before discarding.
        // The promoted node resumes the log at the replica's watermark —
        // no sequence gap.
        self.engines[pi] = replica_engine;
        // The promoted node resumes in whatever scheme the commit log says
        // was in force at the watermark (adaptive runs; `None` otherwise),
        // so failover lands in the same scheme at the same transition
        // epoch as the dead primary's last shipped switch.
        let dead_sched = std::mem::replace(
            &mut self.scheds[pi],
            make_scheduler_resumed::<W::Engine>(&self.cfg.system, p, core.scheme_switch()),
        );
        self.sched_retired.merge(&dead_sched.counters());
        // The dead primary's sequencing state (merge position, held
        // fragments) is lost with it; the promoted node starts unsynced
        // and joins the merge at the first complete post-failover era.
        if let Some(seqs) = self.part_seq.as_mut() {
            let shards = self.coords.len() as u32;
            let old = std::mem::replace(&mut seqs[pi], PartitionSequencer::promoted(p, shards));
            self.seq_stats.merge(old.stats());
        }
        self.part_busy[pi] = at;
        self.repl.merge(&core.counters);
        self.repl.promotions += 1;
        self.repl.failed_at_ns = at.0;
        let mut old_session = std::mem::replace(
            &mut self.sessions[pi],
            ReplicationSession::resume_from(core.watermark()),
        );
        for (txn, frags) in old_session.take_in_flight() {
            let Some(bounce) = failover_bounce(p, txn, &frags) else {
                continue;
            };
            self.repl.failover_bounces += 1;
            let ev = match bounce {
                FailoverBounce::ToClient { client } => Ev::ToClient {
                    c: client,
                    msg: ClientIn::Result {
                        txn,
                        result: TxnResult::Aborted(AbortReason::PartitionFailed),
                    },
                },
                FailoverBounce::ToCoordinator { dest, response } => match dest {
                    CoordinatorRef::Central(k) => Ev::ToCoordinator {
                        k,
                        msg: CoordIn::Response(response),
                    },
                    CoordinatorRef::Client(c) => Ev::ToClient {
                        c,
                        msg: ClientIn::FragResponse(response),
                    },
                },
            };
            self.push(at + one_way, ev);
        }
        // The control plane decides the promotion and fans the
        // epoch-stamped update out to every coordinator shard.
        let up = self.membership.on_primary_failed(p);
        for ki in 0..self.coords.len() {
            self.push(
                at + one_way,
                Ev::ToCoordinator {
                    k: CoordinatorId(ki as u32),
                    msg: CoordIn::RoutingUpdate {
                        partition: p,
                        epoch: up.epoch,
                    },
                },
            );
        }
        let delay = self
            .cfg
            .failover
            .expect("kill implies failover")
            .rejoin_delay;
        self.push(at + delay, Ev::Rejoin { p });
    }

    /// The failed node rejoins: install a snapshot of the live primary's
    /// committed state at the current log position, then catch up from
    /// the log (§3.3) while the group keeps processing.
    fn handle_rejoin(&mut self, p: PartitionId, at: Nanos) {
        let pi = p.as_usize();
        let snapshot = self.engines[pi].snapshot();
        let mut core = ReplicaCore::new();
        core.reset_to(self.sessions[pi].shipped());
        core.counters.snapshots_served += 1;
        let replicas = self.replicas.as_mut().expect("failover requires replicas");
        debug_assert!(replicas[pi].is_none(), "rejoin of a live replica");
        replicas[pi] = Some((core, snapshot));
        self.repl.recoveries += 1;
        self.repl.recovered_at_ns = at.0;
    }

    fn dispatch_event(&mut self, ev: Ev<W::Engine>, at: Nanos) {
        self.events += 1;
        match ev {
            Ev::ToPartition { p, msg } => self.handle_partition(p, msg, at),
            Ev::ToCoordinator { k, msg } => self.handle_coordinator(k, msg, at),
            Ev::ToClient { c, msg } => self.handle_client(c, msg, at),
            Ev::Tick { p } => self.handle_tick(p, at),
            Ev::SyncDue { p } => self.handle_sync_due(p, at),
            Ev::SyncDone { p } => self.handle_sync_done(p, at),
            Ev::StallCheck { p } => self.handle_stall_check(p, at),
            Ev::EpochClose { k } => self.handle_epoch_close(k, at),
            // Observational marker only — the swap already happened inside
            // the scheduler; this entry just pins it in the event order.
            Ev::SchemeSwitch { .. } => {}
            Ev::Kill { p } => self.handle_kill(p, at),
            Ev::Rejoin { p } => self.handle_rejoin(p, at),
            Ev::Batch(_) => unreachable!("batches are never nested"),
        }
    }

    /// Kick off the clients and drain the event queue — to completion, or
    /// until the crash harness freezes the group.
    fn event_loop(&mut self) {
        if self.coord_expiry().is_some() {
            for ki in 0..self.coords.len() {
                self.push(
                    Nanos(1),
                    Ev::ToCoordinator {
                        k: CoordinatorId(ki as u32),
                        msg: CoordIn::Tick,
                    },
                );
            }
        }
        if let Some(f) = self.cfg.failover {
            self.push(f.at, Ev::Kill { p: f.partition });
        }
        // Kick off every client at t = 0.
        for c in 0..self.clients.len() {
            let req = self.workload.next_request(ClientId(c as u32));
            self.clients[c].pending = Some(PendingRequest::from_request(&req));
            self.clients[c].submitted_at = Nanos::ZERO;
            self.dispatch(c, Nanos::ZERO);
        }

        let end = self.window_end;
        // Hard stop far beyond the window: if in-flight work has not
        // drained by then, something is livelocked (a bug tests should
        // catch, not hang on).
        let drain_deadline = Nanos(end.0 + end.0 + Nanos::from_secs(10).0);
        while let Some(item) = self.queue.pop() {
            if self.crashed {
                // Crash-point harness: the whole group died mid-run. The
                // queue's undelivered events (including unreleased
                // results) die with it; only the durable logs survive.
                return;
            }
            if item.at >= end {
                self.draining = true;
            }
            if item.at >= drain_deadline {
                panic!("simulation failed to drain: event at {}", item.at);
            }
            self.now = item.at;
            match item.ev {
                Ev::Batch(mut evs) => {
                    for ev in evs.drain(..) {
                        self.dispatch_event(ev, item.at);
                    }
                    self.batch_pool.push(evs);
                }
                ev => self.dispatch_event(ev, item.at),
            }
        }
    }

    /// Run to the end of the measurement window and report.
    pub fn run(mut self) -> (SimReport, W, Vec<W::Engine>, Option<Vec<W::Engine>>) {
        self.event_loop();
        if cfg!(debug_assertions) {
            for (p, s) in self.scheds.iter().enumerate() {
                // A crashed partition keeps whatever was in flight.
                let failed = matches!(self.cfg.fail_partition, Some((_, fp)) if fp.as_usize() == p);
                assert!(
                    failed || s.is_idle(),
                    "P{p} scheduler not idle after drain (counters: {:?})",
                    s.counters()
                );
            }
        }

        let mut sched = self.sched_retired;
        let mut adaptive = AdaptiveStats::default();
        for s in &self.scheds {
            sched.merge(&s.counters());
            if let Some(a) = s.adaptive_stats(self.now) {
                adaptive.merge(&a);
            }
        }
        let mut replication = self.repl;
        let replicas = self.replicas.map(|groups| {
            groups
                .into_iter()
                .map(|slot| {
                    let (core, engine) = slot.expect("replica alive at end of run");
                    replication.merge(&core.counters);
                    engine
                })
                .collect::<Vec<_>>()
        });
        let window = self.cfg.measure.as_secs_f64();
        let n = self.engines.len() as f64;
        let mut coord = CoordCounters::default();
        for c in &self.coords {
            coord.merge(&c.counters);
        }
        let shards = self.coords.len() as f64;
        let mut durability = self.dur;
        if let Some(logs) = &self.logs {
            for (_, gc) in logs {
                durability.merge(&gc.counters);
            }
        }
        let (mut backoff_retries, mut retry_exhausted) = (0u64, 0u64);
        for c in &self.clients {
            backoff_retries += c.core.stats.backoff_retries;
            retry_exhausted += c.core.stats.retry_exhausted;
        }
        let mut sequencer = self.seq_stats.clone();
        if let Some(seqs) = &self.shard_seq {
            for s in seqs {
                sequencer.merge(s.stats());
            }
        }
        if let Some(seqs) = &self.part_seq {
            for s in seqs {
                sequencer.merge(s.stats());
            }
        }
        let report = SimReport {
            committed: self.committed,
            user_aborts: self.user_aborts,
            retries: self.retries,
            backoff_retries,
            retry_exhausted,
            durability,
            committed_mp: self.committed_mp,
            throughput_tps: self.committed as f64 / window,
            latency: self.latency,
            sched,
            coord,
            replication,
            sequencer,
            adaptive,
            simulated: self.window_end,
            events_processed: self.events,
            partition_utilization: self
                .part_busy_in_window
                .iter()
                .map(|&b| b as f64 / self.cfg.measure.0 as f64)
                .sum::<f64>()
                / n,
            coordinator_utilization: self
                .coord_busy_in_window
                .iter()
                .map(|&b| b as f64 / self.cfg.measure.0 as f64)
                .sum::<f64>()
                / shards,
        };
        (report, self.workload, self.engines, replicas)
    }

    /// Inject a fault into partition `p`'s durable log (durability runs
    /// only): torn tail, stalled syncs, or failing appends.
    pub fn set_log_fault(&mut self, p: PartitionId, fault: FaultMode) {
        self.logs.as_mut().expect("durability is on")[p.as_usize()]
            .0
            .fault = fault;
    }

    /// Crash-point harness: run normally until the `crash_at`-th commit
    /// record (counted globally across partitions) is appended, then kill
    /// the whole partition group on the spot — the event loop freezes,
    /// every in-flight message (including unreleased results) is lost,
    /// and only the durable logs survive. Returns what a recovery (and
    /// its oracle) needs: the per-partition crash images, the durable
    /// watermarks, the full pre-crash commit history, and the set of
    /// results that were actually released to clients.
    ///
    /// Deterministic: the same config and seed crash at the same state
    /// for every `crash_at`, so a sweep over k = 1..N exercises every
    /// commit boundary.
    pub fn run_to_crash(mut self, crash_at: u64) -> CrashHarvest<W::Engine> {
        assert!(
            self.logs.is_some(),
            "run_to_crash requires SystemConfig::durability"
        );
        let n = self.engines.len();
        self.crash_at_append = Some(crash_at);
        self.history = Some((0..n).map(|_| Vec::new()).collect());
        self.event_loop();
        let mut logs = self.logs.take().expect("asserted above");
        CrashHarvest {
            crashed: self.crashed,
            images: logs.iter_mut().map(|(l, _)| l.crash_image()).collect(),
            durable: logs.iter().map(|(l, _)| l.durable()).collect(),
            history: self.history.take().expect("set above"),
            acked: std::mem::take(&mut self.acked),
            appended: self.appended_total,
        }
    }
}

/// What survives a whole-group crash at a commit index (see
/// [`Simulation::run_to_crash`]).
pub struct CrashHarvest<E: ExecutionEngine> {
    /// Whether the crash point was actually reached (false: the run
    /// drained with fewer than `crash_at` commit records).
    pub crashed: bool,
    /// Per partition: the log image recovery reads — the durable prefix,
    /// plus (with the torn-tail fault) a half-written trailing frame.
    pub images: Vec<Vec<u8>>,
    /// Per partition: records durable at the crash point.
    pub durable: Vec<u64>,
    /// Per partition: every commit record appended pre-crash, in order
    /// (the oracle's reference for what each durable prefix replays to).
    pub history: Vec<Vec<CommitRecord<E::Fragment>>>,
    /// Transactions whose committed results were released to clients
    /// pre-crash. Recovery must preserve every one of them.
    pub acked: Vec<TxnId>,
    /// Total commit records appended across partitions when the sim froze.
    pub appended: u64,
}

/// Convenience: run a microbenchmark- or TPC-C-style workload where the
/// workload itself knows how to build engines.
pub fn run_with<W, B>(cfg: SimConfig, workload: W, build: B) -> SimReport
where
    W: RequestGenerator,
    W::Engine: 'static,
    B: Fn(PartitionId) -> W::Engine,
{
    Simulation::new(cfg, workload, build).run().0
}
