//! Deterministic discrete-event simulator for the `hcc` system.
//!
//! Reproduces the paper's testbed — single-threaded partitions, a central
//! coordinator, closed-loop clients, a switched network — as actors on a
//! virtual clock. **Only time is modeled**: every transaction really
//! executes against real storage through the real schedulers from
//! `hcc-core`, so correctness properties (serializability, 2PC atomicity,
//! TPC-C consistency) are checked on exactly the code the benchmarks
//! measure.
//!
//! Time accounting: each actor has a busy-until clock. A message delivered
//! at `t` starts processing at `max(t, busy)`; the handler's virtual CPU
//! (from the calibrated [`hcc_common::CostModel`]) advances the clock, and
//! output messages depart then, arriving `one_way` later. Per-link FIFO is
//! preserved (constant latency + monotone departure times + a global
//! tie-break sequence), which the speculation protocol relies on.
//!
//! The simulator can also maintain a **backup replica** per partition
//! through the shared `hcc_core::replica::ReplicaCore` — commit-order log
//! shipping replayed in sequence, exactly like the paper's backups ("the
//! backups execute the transactions in the sequential order received from
//! the primary") and exactly like the live runtime's. Comparing primary
//! and replica state at the end doubles as a serializability check: the
//! replica *is* the serial execution in commit order. With
//! [`SimConfig::with_failover`] the same kill → promote → §3.3-recover
//! scenario the runtime drives in real time runs here in virtual time,
//! bit-deterministically.

// Associated-type generics make some signatures long; aliases would
// obscure more than they clarify here.
#![allow(clippy::type_complexity)]

mod event;
mod report;
mod simulation;

pub use report::SimReport;
pub use simulation::{run_with, CrashHarvest, SimConfig, SimFailover, Simulation};
