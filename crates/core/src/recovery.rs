//! Crash recovery from the durable command log (paper §3.3).
//!
//! A partition that lost its whole replica group restarts from two durable
//! artifacts: a state **snapshot** taken at a known log position (possibly
//! the empty birth state at position 0) and the **command log** of
//! [`CommitRecord`]s appended after it. Recovery is pure replay: decode the
//! log's frames, discard a torn tail (a crash mid-append leaves a partial
//! frame — [`decode_frames`] stops at the first invalid one), and re-execute
//! every record past the snapshot watermark through the same
//! [`ReplicaCore`] path a live backup uses. Command logging re-runs the
//! transaction logic itself rather than shipping physical after-images —
//! the paper's argument for why it pairs with deterministic stored
//! procedures.
//!
//! Partitions' logs are independent (each partition orders only its own
//! commits), so [`recover_partitions_parallel`] replays them on one OS
//! thread per partition — recovery time is the *longest* partition log, not
//! the sum.
//!
//! What recovery guarantees (and tests assert, crash point by crash point):
//!
//! * every transaction whose commit record was **synced** before the crash
//!   is recovered — and clients were only ever acked after the sync, so no
//!   acked commit is lost;
//! * a record appended but not synced may or may not survive (its bytes
//!   were in OS buffers); if its frame is torn it is discarded, and its
//!   client — never acked — retries;
//! * replay is idempotent from the snapshot watermark: records at or below
//!   it are skipped by sequence number, not re-applied.

use crate::engine::ExecutionEngine;
use crate::replica::{ReplayError, ReplicaCore};
use hcc_common::codec::decode_exact;
use hcc_common::{CommitRecord, PartitionId};
use hcc_storage::decode_frames;

/// Why a log could not be replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryError {
    /// A frame passed its checksum but its payload is not a decodable
    /// commit record — a logic bug or version skew, never a torn write.
    CorruptRecord { index: usize },
    /// A record decoded but could not be applied (sequence gap against the
    /// snapshot watermark, or a fragment that failed to re-execute).
    Replay(ReplayError),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::CorruptRecord { index } => {
                write!(f, "log record {index} passed checksum but failed to decode")
            }
            RecoveryError::Replay(e) => write!(f, "replay failed: {e}"),
        }
    }
}

impl From<ReplayError> for RecoveryError {
    fn from(e: ReplayError) -> Self {
        RecoveryError::Replay(e)
    }
}

/// A recovered partition: the rebuilt engine and how it got there.
#[derive(Debug)]
pub struct RecoveryOutcome<E> {
    /// The engine, snapshot state plus every surviving logged commit.
    pub engine: E,
    /// The replay core; its watermark is the recovered log position — the
    /// sequence a promoted [`ReplicationSession`](crate::ReplicationSession)
    /// resumes from.
    pub replica: ReplicaCore,
    /// Commit records applied (excludes snapshot-covered duplicates).
    pub records_applied: u64,
    /// Whether a torn/corrupt tail was found and discarded.
    pub torn_tail: bool,
}

/// Rebuild one partition from `snapshot` (its state at log position
/// `snapshot_seq`; use a birth-state engine and 0 to recover from the log
/// alone) plus the raw bytes of its command log.
pub fn recover_partition<E: ExecutionEngine>(
    snapshot: E,
    snapshot_seq: u64,
    log_image: &[u8],
) -> Result<RecoveryOutcome<E>, RecoveryError> {
    let mut engine = snapshot;
    let mut replica = ReplicaCore::new();
    replica.reset_to(snapshot_seq);
    let (payloads, torn_tail) = decode_frames(log_image);
    let mut records_applied = 0;
    for (index, payload) in payloads.iter().enumerate() {
        let record: CommitRecord<E::Fragment> =
            decode_exact(payload).ok_or(RecoveryError::CorruptRecord { index })?;
        if record.seq > replica.watermark() {
            records_applied += 1;
        }
        replica.apply(&mut engine, &record)?;
    }
    Ok(RecoveryOutcome {
        engine,
        replica,
        records_applied,
        torn_tail,
    })
}

/// One partition's recovery inputs for [`recover_partitions_parallel`].
pub struct PartitionLog<E> {
    pub partition: PartitionId,
    /// Snapshot engine (birth state for log-only recovery).
    pub snapshot: E,
    /// Log position the snapshot was taken at (0 for birth state).
    pub snapshot_seq: u64,
    /// Raw byte image of the partition's command log.
    pub log_image: Vec<u8>,
}

/// Replay every partition's log concurrently, one OS thread each (partition
/// logs are independent — this is the parallel-replay half of §3.3). Results
/// come back in input order; the first failing partition aborts the whole
/// recovery with its error.
pub fn recover_partitions_parallel<E>(
    parts: Vec<PartitionLog<E>>,
) -> Result<Vec<(PartitionId, RecoveryOutcome<E>)>, (PartitionId, RecoveryError)>
where
    E: ExecutionEngine + Send,
    E::Fragment: Send,
{
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|p| {
                scope.spawn(move || {
                    (
                        p.partition,
                        recover_partition(p.snapshot, p.snapshot_seq, &p.log_image),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("recovery thread panicked"))
            .collect::<Vec<_>>()
    });
    outcomes
        .into_iter()
        .map(|(pid, res)| match res {
            Ok(out) => Ok((pid, out)),
            Err(e) => Err((pid, e)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::ReplicationSession;
    use crate::testkit::{TestEngine, TestFragment};
    use hcc_common::codec::encode_to_vec;
    use hcc_common::{ClientId, CoordinatorId, CoordinatorRef, FragmentTask, TxnId};
    use hcc_storage::{DurableLog, FaultMode, MemLog};

    fn task(txn: TxnId, frag: TestFragment) -> FragmentTask<TestFragment> {
        FragmentTask {
            txn,
            coordinator: CoordinatorRef::Central(CoordinatorId(0)),
            client: ClientId(0),
            fragment: frag,
            multi_partition: false,
            last_fragment: true,
            round: 0,
            can_abort: false,
        }
    }

    fn txid(n: u32) -> TxnId {
        TxnId::new(ClientId(0), n)
    }

    /// Run `n` increment transactions through a session + log, return the
    /// log and the live engine for comparison.
    fn build_log(n: u32) -> (MemLog, TestEngine) {
        let mut session: ReplicationSession<TestFragment> = ReplicationSession::new();
        let mut log = MemLog::new();
        let mut live = TestEngine::new();
        for i in 0..n {
            let t = task(txid(i), TestFragment::add(u64::from(i % 4), 1));
            live.execute(txid(i), &t.fragment, false);
            live.forget(txid(i));
            session.record_fragment(&t);
            let rec = session.on_commit(txid(i)).unwrap();
            log.append(&encode_to_vec(&rec)).unwrap();
        }
        log.sync().unwrap();
        (log, live)
    }

    #[test]
    fn log_only_recovery_rebuilds_state() {
        let (mut log, live) = build_log(20);
        let out = recover_partition(TestEngine::new(), 0, &log.crash_image()).unwrap();
        assert_eq!(out.records_applied, 20);
        assert_eq!(out.replica.watermark(), 20);
        assert!(!out.torn_tail);
        assert_eq!(out.engine.fingerprint(), live.fingerprint());
    }

    #[test]
    fn snapshot_plus_suffix_skips_covered_records() {
        let (mut log, live) = build_log(10);
        // Build the snapshot by replaying the first 6 records.
        let image = log.crash_image();
        let snap = recover_partition(TestEngine::new(), 0, &log.prefix_image(6)).unwrap();
        let out = recover_partition(snap.engine, 6, &image).unwrap();
        assert_eq!(out.records_applied, 4, "first 6 are snapshot-covered");
        assert_eq!(out.replica.watermark(), 10);
        assert_eq!(out.engine.fingerprint(), live.fingerprint());
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let mut session: ReplicationSession<TestFragment> = ReplicationSession::new();
        let mut log = MemLog::with_fault(FaultMode {
            torn_tail: true,
            ..FaultMode::default()
        });
        for i in 0..5 {
            let t = task(txid(i), TestFragment::add(1, 1));
            session.record_fragment(&t);
            let rec = session.on_commit(txid(i)).unwrap();
            log.append(&encode_to_vec(&rec)).unwrap();
            if i == 3 {
                log.sync().unwrap();
            }
        }
        // Crash with record 5 unsynced: the image ends mid-frame.
        let out = recover_partition(TestEngine::new(), 0, &log.crash_image()).unwrap();
        assert!(out.torn_tail);
        assert_eq!(out.records_applied, 4);
        assert_eq!(out.replica.watermark(), 4);
    }

    #[test]
    fn corrupt_payload_is_an_error() {
        let mut log = MemLog::new();
        log.append(b"not a commit record").unwrap();
        log.sync().unwrap();
        let err = recover_partition(TestEngine::new(), 0, &log.crash_image()).unwrap_err();
        assert_eq!(err, RecoveryError::CorruptRecord { index: 0 });
    }

    #[test]
    fn parallel_recovery_matches_serial() {
        let inputs: Vec<PartitionLog<TestEngine>> = (0..4)
            .map(|p| {
                let (mut log, _) = build_log(5 + p * 3);
                PartitionLog {
                    partition: PartitionId(p),
                    snapshot: TestEngine::new(),
                    snapshot_seq: 0,
                    log_image: log.crash_image(),
                }
            })
            .collect();
        let serial: Vec<_> = (0..4u32)
            .map(|p| {
                let (mut log, _) = build_log(5 + p * 3);
                recover_partition(TestEngine::new(), 0, &log.crash_image())
                    .unwrap()
                    .engine
                    .fingerprint()
            })
            .collect();
        let parallel = recover_partitions_parallel(inputs).unwrap();
        for (i, (pid, out)) in parallel.iter().enumerate() {
            assert_eq!(*pid, PartitionId(i as u32));
            assert_eq!(out.engine.fingerprint(), serial[i]);
        }
    }
}
