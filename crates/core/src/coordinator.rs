//! A central coordinator shard (paper §3.3) with speculative-result
//! handling (§4.2.2).
//!
//! Multi-partition transactions under the blocking and speculative schemes
//! flow through a central coordinator, which assigns them a global order
//! (their dispatch order), drives their rounds, and runs two-phase commit
//! with the prepare piggybacked on the final round's fragments. The paper
//! evaluates a single coordinator process; here the coordinator is
//! **sharded**: clients are statically partitioned across N shards
//! (`client % N`), each shard an independent [`Coordinator`] with its own
//! 2PC and speculation-chain state. Shards never talk to each other —
//! §4.2.2's dependency chains are only valid within one shard, and
//! partitions enforce that by blocking a multi-partition arrival behind a
//! different shard's chain (see `speculative.rs`); the shards break
//! residual cross-partition deadlocks by expiring stalled transactions
//! ([`Coordinator::expire_stalled`] with the retryable
//! `CrossCoordinator`).
//!
//! # Membership updates and the 2PC in-doubt window
//!
//! Failover membership/epochs are owned by the separate control-plane
//! [`crate::membership::MembershipCore`]; every shard consumes its
//! epoch-stamped updates via [`Coordinator::on_partition_failed`], aborting
//! in-flight transactions that touched the dead node.
//!
//! A commit decision still in flight to a dying primary is the classic 2PC
//! in-doubt window: under commit-order log shipping the transaction's
//! fragments died with the node, so without help the promoted backup would
//! resolve it as "never happened" while the other participants keep it.
//! The shard closes that window with **commit acknowledgements**: when
//! in-doubt tracking is on (failover runs), it retains every committed
//! multi-partition transaction's dispatched fragments until each
//! participant acks the commit decision
//! ([`Coordinator::on_decision_ack`]); a membership update re-delivers the
//! unacknowledged fragments to the promoted primary, which re-executes
//! them, votes, and is answered with the (already global) commit.
//!
//! # Speculative results
//!
//! Partitions may return results tagged `depends_on = (T, attempt)`: the
//! result is only valid if execution attempt `attempt` of transaction `T`
//! at that partition commits. The coordinator *settles* a response before
//! using it:
//!
//! * no dependency → settled;
//! * dependency committed with the same per-partition attempt → settled;
//! * dependency aborted, or committed under a different attempt → the
//!   response is **stale** (its execution was squashed); discard it and
//!   wait for the partition's re-sent response;
//! * dependency still undecided → hold.
//!
//! Rounds only advance on fully settled responses, and commit/abort
//! decisions are only taken on settled votes. This makes cascading aborts
//! safe without any round rewinding: nothing downstream ever consumes data
//! that can later be invalidated.
//!
//! The coordinator's CPU cost per message is what limits speculation at
//! high multi-partition fractions (paper §5.1: "the central coordinator
//! uses 100% of the CPU and cannot handle more messages").

use crate::procedure::{Procedure, RoundOutputs, Step};
use crate::sequencer::{EpochLog, EpochLogDest};
use hcc_common::{
    AbortReason, ClientId, CoordinatorId, CoordinatorRef, CostModel, Decision, FragmentResponse,
    FragmentTask, FxHashMap, FxHashSet, Nanos, PartitionId, TxnId, TxnResult, Vote,
};
use std::collections::VecDeque;

/// A decision notification broadcast to peer coordinator shards when
/// cross-shard sequencing is on: sequenced speculation chains legally span
/// shards, so a shard can hold a response whose `depends_on` names a
/// *peer's* transaction — it settles that dependency from these notes
/// (fed into [`Coordinator::on_peer_decision`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerNote {
    pub txn: TxnId,
    pub commit: bool,
    /// Per-partition committed execution attempts (empty for aborts) —
    /// the same record the deciding shard keeps for its own dependency
    /// validation.
    pub attempts: Vec<(PartitionId, u32)>,
}

/// Messages emitted by the coordinator, routed by the driver.
#[derive(Debug)]
pub enum CoordOut<F, R> {
    Fragment(PartitionId, FragmentTask<F>),
    /// A 2PC decision for a participant. The third field is the
    /// coordinator (central shard or client driver) that wants a
    /// [`Coordinator::on_decision_ack`] back once the partition has
    /// processed a *commit* — in-doubt tracking for failover runs, and
    /// result-holding for durability runs; `None` for aborts and runs
    /// with neither.
    Decision(PartitionId, Decision, Option<CoordinatorRef>),
    ClientResult {
        client: ClientId,
        txn: TxnId,
        result: TxnResult<R>,
    },
    /// A decision notification for a peer shard (sequencing runs only;
    /// see [`PeerNote`]).
    PeerNote(CoordinatorId, PeerNote),
    /// A closed sequencing epoch log for a partition or a peer shard
    /// (sequencing runs only). Emitted by the driver-owned
    /// [`crate::sequencer::ShardSequencer`], not by the [`Coordinator`]
    /// state machine itself — it rides `CoordOut` so the drivers' existing
    /// routing (and its cost accounting and FIFO ordering) applies.
    EpochLog(EpochLogDest, EpochLog),
}

/// Counters for coordinator behaviour (saturation analysis, tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct CoordCounters {
    pub invocations: u64,
    pub responses: u64,
    pub stale_responses_discarded: u64,
    pub commits: u64,
    pub aborts: u64,
    pub messages_sent: u64,
    pub rounds_dispatched: u64,
    /// Transactions aborted because a participant's primary failed
    /// (failover; the clients transparently retry them).
    pub failover_aborts: u64,
    /// Commit-decision acknowledgements received (in-doubt tracking).
    pub decision_acks: u64,
    /// Committed results parked until every participant acknowledged the
    /// commit decision (durable-release mode).
    pub results_held: u64,
    /// In-doubt committed transactions re-delivered to a promoted primary
    /// after a failover (the 2PC in-doubt window being closed).
    pub in_doubt_redeliveries: u64,
    /// Re-delivered commits the new primary executed and was told to
    /// commit — the window actually closed, not just attempted.
    pub in_doubt_commits_recovered: u64,
}

impl CoordCounters {
    /// Fold another shard's counters in (drivers aggregate across shards).
    pub fn merge(&mut self, o: &CoordCounters) {
        self.invocations += o.invocations;
        self.responses += o.responses;
        self.stale_responses_discarded += o.stale_responses_discarded;
        self.commits += o.commits;
        self.aborts += o.aborts;
        self.messages_sent += o.messages_sent;
        self.rounds_dispatched += o.rounds_dispatched;
        self.failover_aborts += o.failover_aborts;
        self.decision_acks += o.decision_acks;
        self.results_held += o.results_held;
        self.in_doubt_redeliveries += o.in_doubt_redeliveries;
        self.in_doubt_commits_recovered += o.in_doubt_commits_recovered;
    }
}

struct MpTxn<F, R> {
    client: ClientId,
    procedure: Box<dyn Procedure<F, R>>,
    can_abort: bool,
    /// When the transaction was invoked (for participant-failure expiry).
    started: Nanos,
    /// Settled outputs of completed rounds.
    settled_rounds: Vec<RoundOutputs<R>>,
    /// Participants of the current round.
    participants: Vec<PartitionId>,
    /// All partitions that have ever been sent a fragment (abort targets).
    /// A transaction touches a handful of partitions, so a linear-scanned
    /// `Vec` beats a hash set here (and iterates deterministically).
    dispatched: Vec<PartitionId>,
    /// Latest response per participant for the current round, keyed
    /// linearly by partition for the same reason.
    responses: Vec<(PartitionId, FragmentResponse<R>)>,
    /// Every dispatched fragment, retained for in-doubt redelivery after a
    /// failover. Empty unless in-doubt tracking is on.
    sent: Vec<(PartitionId, FragmentTask<F>)>,
    round: u32,
    is_final: bool,
}

impl<F, R> MpTxn<F, R> {
    #[inline]
    fn response(&self, p: PartitionId) -> &FragmentResponse<R> {
        &self
            .responses
            .iter()
            .find(|(q, _)| *q == p)
            .expect("response present for participant")
            .1
    }

    /// Insert or overwrite the response from `resp.partition`.
    fn set_response(&mut self, resp: FragmentResponse<R>) {
        match self
            .responses
            .iter_mut()
            .find(|(q, _)| *q == resp.partition)
        {
            Some(slot) => slot.1 = resp,
            None => self.responses.push((resp.partition, resp)),
        }
    }

    fn note_dispatched(&mut self, p: PartitionId) {
        if !self.dispatched.contains(&p) {
            self.dispatched.push(p);
        }
    }
}

/// How many decided transactions to remember for dependency validation.
/// In-flight dependencies only reference recently decided transactions
/// (the window is bounded by network latency × throughput); 1 << 16 is
/// orders of magnitude beyond that for any configuration we run.
const HISTORY_LIMIT: usize = 1 << 16;

/// A committed multi-partition transaction whose commit decision has not
/// yet been acknowledged by every participant — the 2PC in-doubt window.
struct InDoubt<F, R> {
    /// Participants that have not acked the commit decision yet.
    unacked: Vec<PartitionId>,
    /// Every fragment dispatched to any participant, in dispatch order,
    /// for redelivery to a promoted primary. Empty unless in-doubt
    /// tracking (failover) is on.
    tasks: Vec<(PartitionId, FragmentTask<F>)>,
    /// The client result, parked until the window closes (durable-release
    /// mode: participants ack only once the commit record is durable, so
    /// releasing here means the commit survives a whole-group crash).
    held: Option<(ClientId, TxnResult<R>)>,
}

/// An in-doubt commit re-delivered to a promoted primary: the shard waits
/// for the new primary's vote and answers it with the (already decided)
/// commit. The vote may carry a speculative dependency on the new
/// primary's chain, so it settles through the normal dependency check; a
/// held vote is parked here until the dependency decides.
///
/// Multi-round transactions are re-driven **round by round** — the next
/// retained round ships when the previous round's response arrives, just
/// like the original dispatch. Sending every round up front would race
/// the scheduler's stale-continuation drop (a round > 0 fragment for a
/// transaction still queued unexecuted is discarded).
struct Redelivery<R> {
    partition: PartitionId,
    parked: Option<FragmentResponse<R>>,
    /// Highest (round, attempt) redelivered so far, for the round-driven
    /// re-drive (a squash resend carries a new attempt and needs its
    /// continuation re-sent).
    sent: (u32, u32),
}

/// The coordinator state machine.
///
/// Constructed as [`Coordinator::central`] for the shared central
/// coordinator (blocking and speculative schemes) or as
/// [`Coordinator::client_driver`] for a client coordinating its own
/// multi-partition transactions (locking scheme, §4.3 — which "sends
/// multi-partition transactions directly to the partitions, without going
/// through the central coordinator"). The logic is identical; only the
/// `coordinator` field stamped on outgoing fragments and the per-message
/// CPU cost differ.
pub struct Coordinator<F, R> {
    /// Who we are, as named in outgoing fragment tasks.
    coord_ref: CoordinatorRef,
    /// CPU charged per message handled.
    per_msg: Nanos,
    txns: FxHashMap<TxnId, MpTxn<F, R>>,
    /// Per committed transaction: the execution attempt committed at each
    /// partition (for dependency validation).
    committed: FxHashMap<TxnId, Vec<(PartitionId, u32)>>,
    aborted: FxHashSet<TxnId>,
    history_order: VecDeque<TxnId>,
    /// Scratch buffer for the sorted settle sweep (reused across calls).
    scan: Vec<TxnId>,
    /// Membership epochs *applied* from the control plane's updates
    /// (`MembershipCore` is the authority; this is the shard's view).
    /// Absent = epoch 0 (the initial primary).
    epochs: FxHashMap<PartitionId, u32>,
    /// Transactions aborted by a failover (or timeout expiry) whose
    /// not-yet-executed participants still owe a response; their eventual
    /// (now moot) vote is answered with a presumed-abort decision. The
    /// value records the partitions already sent the abort, so a squashed
    /// re-execution's second response never draws a duplicate decision
    /// (which the partition, having already aborted, could only count as
    /// a stray). GC'd with the history.
    failover_aborted: FxHashMap<TxnId, Vec<PartitionId>>,
    /// Whether to retain dispatched fragments and demand commit-decision
    /// acks — the machinery that closes the 2PC in-doubt window. Enabled
    /// by drivers for runs with failure injection; off otherwise so the
    /// hot path pays nothing for it.
    track_in_doubt: bool,
    /// Whether committed results are parked until every participant acks
    /// its commit decision. Durability runs enable this so a client never
    /// observes a commit that is not yet in every participant's durable
    /// log (partitions defer the ack until the record is synced).
    hold_results: bool,
    /// Committed transactions awaiting commit-decision acks.
    in_doubt: FxHashMap<TxnId, InDoubt<F, R>>,
    /// In-doubt commits re-delivered to a promoted primary, awaiting its
    /// re-vote.
    redeliveries: FxHashMap<TxnId, Redelivery<R>>,
    /// Peer shards to notify of every decision ([`PeerNote`]); non-empty
    /// only when cross-shard sequencing is on and there is more than one
    /// shard.
    peer_shards: Vec<CoordinatorId>,
    pub counters: CoordCounters,
    /// Virtual CPU consumed since the last drain.
    cpu: Nanos,
}

impl<F: Clone + std::fmt::Debug, R: Clone + std::fmt::Debug> Coordinator<F, R> {
    /// The paper's singleton central coordinator: shard 0 of 1, no
    /// in-doubt tracking.
    pub fn central(costs: CostModel) -> Self {
        Self::shard(costs, CoordinatorId(0), false)
    }

    /// One coordinator shard of N, optionally tracking in-doubt commits
    /// (failover runs).
    pub fn shard(costs: CostModel, id: CoordinatorId, track_in_doubt: bool) -> Self {
        let per_msg = costs.coord_per_msg;
        let mut c = Self::with_ref(costs, CoordinatorRef::Central(id), per_msg);
        c.track_in_doubt = track_in_doubt;
        c
    }

    /// A client acting as its own coordinator (locking scheme).
    pub fn client_driver(costs: CostModel, client: ClientId) -> Self {
        let per_msg = costs.client_per_msg;
        Self::with_ref(costs, CoordinatorRef::Client(client), per_msg)
    }

    fn with_ref(_costs: CostModel, coord_ref: CoordinatorRef, per_msg: Nanos) -> Self {
        Coordinator {
            coord_ref,
            per_msg,
            txns: FxHashMap::default(),
            committed: FxHashMap::default(),
            aborted: FxHashSet::default(),
            history_order: VecDeque::new(),
            scan: Vec::new(),
            epochs: FxHashMap::default(),
            failover_aborted: FxHashMap::default(),
            track_in_doubt: false,
            hold_results: false,
            in_doubt: FxHashMap::default(),
            redeliveries: FxHashMap::default(),
            peer_shards: Vec::new(),
            counters: CoordCounters::default(),
            cpu: Nanos::ZERO,
        }
    }

    /// Enable (or disable) durable result release: committed results are
    /// parked in the in-doubt window and emitted only once every
    /// participant has acknowledged its commit decision.
    pub fn set_hold_results(&mut self, on: bool) {
        self.hold_results = on;
    }

    /// Enable decision broadcast to peer shards (sequencing runs): every
    /// commit/abort this shard takes is also emitted as a
    /// [`CoordOut::PeerNote`] to each listed peer, so their dependency
    /// checks can settle cross-shard speculation chains.
    pub fn set_peer_broadcast(&mut self, mut peers: Vec<CoordinatorId>) {
        peers.sort_unstable();
        self.peer_shards = peers;
    }

    /// Whether this coordinator demands commit-decision acks at all.
    #[inline]
    fn wants_acks(&self) -> bool {
        self.track_in_doubt || self.hold_results
    }

    /// Build the decision message for one participant, requesting an ack
    /// for tracked commits.
    fn decision_out(&self, p: PartitionId, txn: TxnId, commit: bool) -> CoordOut<F, R> {
        let ack_to = (commit && self.wants_acks()).then_some(self.coord_ref);
        CoordOut::Decision(p, Decision { txn, commit }, ack_to)
    }

    pub fn pending(&self) -> usize {
        self.txns.len()
    }

    /// Drain accumulated virtual CPU (drivers advance the coordinator's
    /// busy-clock by this much).
    pub fn take_cpu(&mut self) -> Nanos {
        std::mem::replace(&mut self.cpu, Nanos::ZERO)
    }

    fn charge_msgs(&mut self, n: u64) {
        self.cpu += Nanos(self.per_msg.0 * n);
        self.counters.messages_sent += n;
    }

    /// Charge `n` driver-emitted messages (epoch-log broadcast fan-out) to
    /// this shard's clock and message counter. The sequencing layer lives
    /// in the driver, but its traffic is still this coordinator's work.
    pub fn charge_extra_msgs(&mut self, n: u64) {
        self.charge_msgs(n);
    }

    /// A client submitted a multi-partition transaction.
    pub fn on_invoke(
        &mut self,
        txn: TxnId,
        client: ClientId,
        procedure: Box<dyn Procedure<F, R>>,
        can_abort: bool,
        out: &mut Vec<CoordOut<F, R>>,
    ) {
        self.on_invoke_at(txn, client, procedure, can_abort, Nanos::ZERO, out)
    }

    /// As [`on_invoke`](Coordinator::on_invoke), with an explicit clock
    /// reading so stalled transactions can be expired later.
    pub fn on_invoke_at(
        &mut self,
        txn: TxnId,
        client: ClientId,
        procedure: Box<dyn Procedure<F, R>>,
        can_abort: bool,
        now: Nanos,
        out: &mut Vec<CoordOut<F, R>>,
    ) {
        self.counters.invocations += 1;
        self.cpu += self.per_msg; // receive cost
        let step = procedure.step(&[]);
        let mut entry = MpTxn {
            client,
            procedure,
            can_abort,
            started: now,
            settled_rounds: Vec::new(),
            participants: Vec::new(),
            dispatched: Vec::new(),
            responses: Vec::new(),
            sent: Vec::new(),
            round: 0,
            is_final: false,
        };
        match step {
            Step::Round {
                fragments,
                is_final,
            } => {
                debug_assert!(!fragments.is_empty(), "empty round-0 for {txn}");
                entry.is_final = is_final;
                entry.participants = fragments.iter().map(|(p, _)| *p).collect();
                for i in 0..entry.participants.len() {
                    let p = entry.participants[i];
                    entry.note_dispatched(p);
                }
                let n = fragments.len() as u64;
                for (pid, fragment) in fragments {
                    let task = FragmentTask {
                        txn,
                        coordinator: self.coord_ref,
                        client,
                        fragment,
                        multi_partition: true,
                        last_fragment: is_final,
                        round: 0,
                        can_abort,
                    };
                    if self.track_in_doubt {
                        entry.sent.push((pid, task.clone()));
                    }
                    out.push(CoordOut::Fragment(pid, task));
                }
                self.charge_msgs(n);
                self.txns.insert(txn, entry);
            }
            Step::Finish(_) => {
                debug_assert!(false, "procedure with no work: {txn}");
            }
        }
    }

    /// A partition responded to a fragment.
    pub fn on_response(&mut self, resp: FragmentResponse<R>, out: &mut Vec<CoordOut<F, R>>) {
        self.counters.responses += 1;
        self.cpu += self.per_msg;
        let Some(t) = self.txns.get_mut(&resp.txn) else {
            // Transaction already decided (e.g. vote-abort raced with a
            // held speculative response released later). Ignore — unless
            // it was aborted by a failover before this participant ever
            // executed it: its abort decision was deliberately withheld
            // (a decision for a never-executed transaction would be
            // unintelligible to the partition), so answer the vote with
            // presumed-abort now that the transaction is live there.
            if let Some(sent) = self.failover_aborted.get_mut(&resp.txn) {
                if sent.contains(&resp.partition) {
                    // This partition was already sent the abort; a second
                    // response can only be a squashed re-execution that
                    // raced with the in-flight decision. The decision will
                    // (or did) kill the transaction there — answering
                    // again would deliver an unintelligible duplicate.
                    self.counters.stale_responses_discarded += 1;
                    return;
                }
                sent.push(resp.partition);
                out.push(CoordOut::Decision(
                    resp.partition,
                    Decision {
                        txn: resp.txn,
                        commit: false,
                    },
                    None,
                ));
                self.charge_msgs(1);
                return;
            }
            // An in-doubt commit re-delivered to a promoted primary: the
            // re-execution's vote-bearing response is answered with the
            // (already decided) commit once it settles.
            if let Some(rd) = self.redeliveries.get(&resp.txn) {
                if resp.partition == rd.partition {
                    if resp.vote.is_some() {
                        let completed = self.settle_redelivery(resp, out);
                        if completed {
                            // Dependents holding on the redelivery can
                            // settle now.
                            self.progress(out);
                        }
                    } else {
                        // Intermediate round of a multi-round redelivery:
                        // re-drive the next retained round (once per
                        // (round, attempt) — a squash re-executes earlier
                        // rounds under a new attempt and discards parked
                        // continuations, so those need re-sending too).
                        self.redrive_next_round(resp, out);
                    }
                }
            }
            return;
        };
        if resp.round != t.round {
            // A failover bounce is a failure *notification*, not a vote:
            // the dying node stamps it with whatever round it recorded
            // first, which for a multi-round transaction can trail the
            // coordinator's current round. Discarding it as stale would
            // leave the transaction waiting forever on a dead node — abort
            // it regardless of round.
            if matches!(resp.payload, Err(AbortReason::PartitionFailed)) {
                self.counters.failover_aborts += 1;
                self.finish_failover(resp.txn, out);
                return;
            }
            // A response for an earlier round can arrive after a squash
            // (the partition re-executed round 0 while we already hold
            // settled round-0 data that... cannot happen: settling requires
            // commitment of the dependency, after which the execution is
            // never squashed). Treat as stale defensively.
            debug_assert!(resp.round <= t.round, "response from the future");
            self.counters.stale_responses_discarded += 1;
            return;
        }
        let txn = resp.txn;
        t.set_response(resp);
        // Fast path: every other pending transaction is quiescent (the
        // last settle sweep left them unable to act, and nothing has
        // changed for them since), so the full sorted sweep of the settle
        // loop is only needed once *this* transaction is **decided** —
        // only a commit/abort mutates the settle state other transactions
        // read. A round advance dispatches fragments but settles nothing,
        // so sweeping after it would provably find no work. Equivalent to
        // sweeping everything, minus the provable no-ops.
        if self.progress_one(txn, out) == Progress::Decided {
            // Finish what would have been the first full sweep: the
            // transactions sorted after this one, evaluated against the
            // new state — then iterate to fixpoint over ALL ids (a
            // smaller-id transaction may be waiting on this decision).
            self.scan.clear();
            let mut scan = std::mem::take(&mut self.scan);
            scan.extend(self.txns.keys().copied().filter(|t| *t > txn));
            scan.sort_unstable();
            for t in &scan {
                self.progress_one(*t, out);
            }
            self.scan = scan;
            self.progress(out);
        }
    }

    /// Dependency validity of one response.
    fn settled(&self, resp: &FragmentResponse<R>) -> Settle {
        match resp.depends_on {
            None => Settle::Settled,
            Some(dep) => {
                // A dependency on a transaction being *re-delivered* at
                // this partition must hold until the redelivery completes:
                // the global commit record predates the re-execution, so
                // settling against it would commit the dependent before
                // its predecessor is locally decided (breaking the
                // commit-at-head order at the promoted primary).
                if dep.txn != resp.txn
                    && self
                        .redeliveries
                        .get(&dep.txn)
                        .is_some_and(|rd| rd.partition == resp.partition)
                {
                    return Settle::Hold;
                }
                if let Some(attempts) = self.committed.get(&dep.txn) {
                    let committed_attempt = attempts
                        .iter()
                        .find(|(p, _)| *p == resp.partition)
                        .map(|(_, a)| *a);
                    if committed_attempt == Some(dep.attempt) {
                        Settle::Settled
                    } else {
                        Settle::Stale
                    }
                } else if self.aborted.contains(&dep.txn) {
                    Settle::Stale
                } else {
                    // Undecided (pending) or beyond the history window; the
                    // window is far larger than any in-flight horizon, so
                    // this is a pending transaction: hold.
                    Settle::Hold
                }
            }
        }
    }

    /// Try to advance every pending transaction (a commit/abort can settle
    /// other transactions' responses, so this loops to fixpoint).
    fn progress(&mut self, out: &mut Vec<CoordOut<F, R>>) {
        loop {
            // Only decisions mutate the state `settled()` reads, so only
            // they warrant another sweep.
            let mut decided = false;
            // Sorted sweep: the emission order of coordinator messages
            // must be a pure function of the run (determinism guarantee),
            // never of map iteration order. The id buffer is recycled
            // across calls.
            self.scan.clear();
            let mut scan = std::mem::take(&mut self.scan);
            scan.extend(self.txns.keys().copied());
            scan.sort_unstable();
            for txn in &scan {
                decided |= self.progress_one(*txn, out) == Progress::Decided;
            }
            self.scan = scan;
            // Decisions taken during the sweep may have settled a parked
            // redelivery vote — and a *completed* redelivery unblocks
            // dependents holding on it, so it warrants another sweep too.
            let redelivered = self.recheck_redeliveries(out);
            if !decided && !redelivered {
                return;
            }
        }
    }

    /// Ship the next retained round of a re-delivered multi-round
    /// transaction in response to the previous round's (voteless)
    /// response.
    fn redrive_next_round(&mut self, resp: FragmentResponse<R>, out: &mut Vec<CoordOut<F, R>>) {
        let txn = resp.txn;
        let next = (resp.round + 1, resp.attempt);
        let Some(rd) = self.redeliveries.get_mut(&txn) else {
            return;
        };
        if rd.sent >= next {
            return;
        }
        let Some(entry) = self.in_doubt.get(&txn) else {
            return;
        };
        let task = entry
            .tasks
            .iter()
            .find(|(p, t)| *p == resp.partition && t.round == next.0)
            .map(|(_, t)| t.clone());
        let Some(task) = task else {
            return;
        };
        rd.sent = next;
        out.push(CoordOut::Fragment(resp.partition, task));
        self.charge_msgs(1);
    }

    /// Answer a settled re-delivered vote with the already-global commit;
    /// park a held one until its dependency decides. Returns true when
    /// the redelivery completed (its entry was removed), which unblocks
    /// dependents holding on it.
    fn settle_redelivery(
        &mut self,
        resp: FragmentResponse<R>,
        out: &mut Vec<CoordOut<F, R>>,
    ) -> bool {
        let txn = resp.txn;
        match self.settled(&resp) {
            Settle::Settled => {
                // The new primary re-executed the committed work. A commit
                // vote closes the window; an abort vote means the
                // re-execution failed against the promoted state — answer
                // abort so the scheduler stays sane (counted implicitly by
                // `in_doubt_redeliveries - in_doubt_commits_recovered`).
                let commit = resp.vote == Some(Vote::Commit);
                out.push(self.decision_out(resp.partition, txn, commit));
                self.charge_msgs(1);
                if commit {
                    self.counters.in_doubt_commits_recovered += 1;
                    // The committed execution at this partition is now the
                    // *re-execution*: post-crash transactions chain on its
                    // attempt, so the dependency-validation record must
                    // name it (the pre-crash attempt died with the old
                    // primary).
                    if let Some(attempts) = self.committed.get_mut(&txn) {
                        match attempts.iter_mut().find(|(p, _)| *p == resp.partition) {
                            Some(slot) => slot.1 = resp.attempt,
                            None => attempts.push((resp.partition, resp.attempt)),
                        }
                    }
                }
                self.redeliveries.remove(&txn);
                return true;
            }
            Settle::Hold => {
                if let Some(rd) = self.redeliveries.get_mut(&txn) {
                    rd.parked = Some(resp);
                }
            }
            Settle::Stale => {
                // The re-execution was squashed; the partition re-sends a
                // fresh vote.
                self.counters.stale_responses_discarded += 1;
            }
        }
        false
    }

    /// Re-evaluate parked redelivery votes after decisions changed the
    /// settle state; returns true if any redelivery completed.
    fn recheck_redeliveries(&mut self, out: &mut Vec<CoordOut<F, R>>) -> bool {
        if self.redeliveries.is_empty() {
            return false;
        }
        let mut any = false;
        let mut parked: Vec<TxnId> = self
            .redeliveries
            .iter()
            .filter(|(_, rd)| rd.parked.is_some())
            .map(|(t, _)| *t)
            .collect();
        parked.sort_unstable();
        for txn in parked {
            let Some(rd) = self.redeliveries.get_mut(&txn) else {
                continue;
            };
            let Some(resp) = rd.parked.take() else {
                continue;
            };
            any |= self.settle_redelivery(resp, out);
        }
        any
    }

    /// A participant acknowledged processing a commit decision: its share
    /// of the transaction is durably in its replica group's log, so it
    /// leaves the in-doubt window. In durable-release mode the final ack
    /// emits the parked client result.
    pub fn on_decision_ack(
        &mut self,
        txn: TxnId,
        partition: PartitionId,
        out: &mut Vec<CoordOut<F, R>>,
    ) {
        self.counters.decision_acks += 1;
        self.cpu += self.per_msg;
        if let Some(d) = self.in_doubt.get_mut(&txn) {
            d.unacked.retain(|p| *p != partition);
            if d.unacked.is_empty() {
                let entry = self.in_doubt.remove(&txn).expect("present above");
                if let Some((client, result)) = entry.held {
                    out.push(CoordOut::ClientResult {
                        client,
                        txn,
                        result,
                    });
                    self.charge_msgs(1);
                }
            }
        }
        // An ack also cancels a pending redelivery to that partition: the
        // partition provably has the commit (e.g. the promoted primary's
        // exactly-once guard recognized an already-replicated record).
        if self
            .redeliveries
            .get(&txn)
            .is_some_and(|rd| rd.partition == partition)
        {
            self.redeliveries.remove(&txn);
        }
    }

    /// Advance one transaction as far as its settled responses allow.
    fn progress_one(&mut self, txn: TxnId, out: &mut Vec<CoordOut<F, R>>) -> Progress {
        let Some(t) = self.txns.get(&txn) else {
            return Progress::None;
        };
        if t.responses.len() < t.participants.len() {
            return Progress::None;
        }
        // Classify responses. (`Vec::new` does not allocate until first
        // push, so the stale list is free on the common all-settled path.)
        let mut stale: Vec<PartitionId> = Vec::new();
        let mut all_settled = true;
        for p in &t.participants {
            let resp = t.response(*p);
            match self.settled(resp) {
                Settle::Settled => {}
                Settle::Hold => all_settled = false,
                Settle::Stale => stale.push(*p),
            }
        }
        if !stale.is_empty() {
            // Drop the stale responses (their executions were squashed);
            // the partitions re-send fresh ones.
            let t = self.txns.get_mut(&txn).unwrap();
            for p in stale {
                if let Some(i) = t.responses.iter().position(|(q, _)| *q == p) {
                    t.responses.swap_remove(i);
                }
            }
            self.counters.stale_responses_discarded += 1;
            return Progress::None;
        }
        if !all_settled {
            return Progress::None;
        }

        // All settled: abort if any participant failed or voted abort.
        let abort_reason = t.participants.iter().find_map(|p| {
            let resp = t.response(*p);
            match (&resp.payload, resp.vote) {
                (Err(r), _) => Some(*r),
                (_, Some(Vote::Abort(r))) => Some(r),
                _ => None,
            }
        });
        if let Some(reason) = abort_reason {
            if reason == AbortReason::PartitionFailed {
                // A participant's node died under this transaction (its
                // bounce carried the abort vote). Other participants may
                // hold the transaction *queued, unexecuted* — take the
                // failover path, which defers their abort to a
                // presumed-abort reply.
                self.counters.failover_aborts += 1;
                self.finish_failover(txn, out);
            } else {
                self.finish(txn, Err(reason), out);
            }
            return Progress::Decided;
        }

        let t = self.txns.get_mut(&txn).unwrap();
        if t.is_final {
            debug_assert!(t
                .participants
                .iter()
                .all(|p| t.response(*p).vote == Some(Vote::Commit)));
            self.finish(txn, Ok(()), out);
            return Progress::Decided;
        }

        // Settle this round and dispatch the next.
        let outputs = RoundOutputs {
            by_partition: t
                .participants
                .iter()
                .map(|p| {
                    (
                        *p,
                        t.response(*p).payload.clone().expect("settled Ok response"),
                    )
                })
                .collect(),
        };
        t.settled_rounds.push(outputs);
        t.responses.clear();
        t.round += 1;
        let step = t.procedure.step(&t.settled_rounds);
        match step {
            Step::Round {
                fragments,
                is_final,
            } => {
                // Participant sets must not shrink in later rounds: the 2PC
                // prepare rides the final round, so every participant must
                // appear there (procedures pad with no-op fragments if
                // needed).
                debug_assert!(
                    fragments
                        .iter()
                        .all(|(p, _)| t.dispatched.contains(p) || t.round > 0),
                    "new participants joining mid-transaction"
                );
                t.is_final = is_final;
                t.participants = fragments.iter().map(|(p, _)| *p).collect();
                for i in 0..t.participants.len() {
                    let p = t.participants[i];
                    t.note_dispatched(p);
                }
                let round = t.round;
                let client = t.client;
                let can_abort = t.can_abort;
                let n = fragments.len() as u64;
                self.counters.rounds_dispatched += 1;
                let mut sent: Vec<(PartitionId, FragmentTask<F>)> = Vec::new();
                for (pid, fragment) in fragments {
                    let task = FragmentTask {
                        txn,
                        coordinator: self.coord_ref,
                        client,
                        fragment,
                        multi_partition: true,
                        last_fragment: is_final,
                        round,
                        can_abort,
                    };
                    if self.track_in_doubt {
                        sent.push((pid, task.clone()));
                    }
                    out.push(CoordOut::Fragment(pid, task));
                }
                if !sent.is_empty() {
                    self.txns
                        .get_mut(&txn)
                        .expect("dispatching known txn")
                        .sent
                        .append(&mut sent);
                }
                self.charge_msgs(n);
                Progress::Dispatched
            }
            Step::Finish(_) => {
                debug_assert!(false, "procedure finished without a final round: {txn}");
                Progress::None
            }
        }
    }

    /// Decide a transaction: send decisions to every dispatched partition
    /// and the result to the client; record history for dependency checks.
    fn finish(
        &mut self,
        txn: TxnId,
        outcome: Result<(), AbortReason>,
        out: &mut Vec<CoordOut<F, R>>,
    ) {
        let mut t = self.txns.remove(&txn).expect("finishing known txn");
        let commit = outcome.is_ok();
        let mut msgs = 0u64;
        let mut participants: Vec<PartitionId> = t.dispatched.clone();
        participants.sort_unstable();
        if commit && self.wants_acks() {
            // The transaction enters the 2PC in-doubt window until every
            // participant acks its commit decision.
            self.in_doubt.insert(
                txn,
                InDoubt {
                    unacked: participants.clone(),
                    tasks: std::mem::take(&mut t.sent),
                    held: None,
                },
            );
        }
        for p in participants {
            out.push(self.decision_out(p, txn, commit));
            msgs += 1;
        }
        let result = if commit {
            self.counters.commits += 1;
            // Record per-partition committed attempts.
            let attempts: Vec<(PartitionId, u32)> =
                t.responses.iter().map(|(p, r)| (*p, r.attempt)).collect();
            self.committed.insert(txn, attempts);
            self.history_order.push_back(txn);
            // Final result from the procedure.
            let outputs = RoundOutputs {
                by_partition: t
                    .participants
                    .iter()
                    .map(|p| {
                        (
                            *p,
                            t.response(*p)
                                .payload
                                .clone()
                                .expect("committed response is Ok"),
                        )
                    })
                    .collect(),
            };
            t.settled_rounds.push(outputs);
            match t.procedure.step(&t.settled_rounds) {
                Step::Finish(r) => TxnResult::Committed(r),
                Step::Round { .. } => {
                    debug_assert!(false, "procedure wants a round after final");
                    TxnResult::Aborted(AbortReason::User)
                }
            }
        } else {
            self.counters.aborts += 1;
            self.aborted.insert(txn);
            self.history_order.push_back(txn);
            TxnResult::Aborted(outcome.unwrap_err())
        };
        if commit && self.hold_results {
            // Durable release: park the committed result until every
            // participant acks (i.e. has the record durably logged).
            let entry = self.in_doubt.get_mut(&txn).expect("inserted above");
            entry.held = Some((t.client, result));
            self.counters.results_held += 1;
        } else {
            out.push(CoordOut::ClientResult {
                client: t.client,
                txn,
                result,
            });
            msgs += 1;
        }
        msgs += self.notify_peers(txn, commit, out);
        self.charge_msgs(msgs);
        self.gc();
    }

    /// Broadcast this decision to peer shards (sequencing runs; no-op
    /// otherwise). Returns the number of messages emitted.
    fn notify_peers(&mut self, txn: TxnId, commit: bool, out: &mut Vec<CoordOut<F, R>>) -> u64 {
        if self.peer_shards.is_empty() {
            return 0;
        }
        let attempts = if commit {
            self.committed.get(&txn).cloned().unwrap_or_default()
        } else {
            Vec::new()
        };
        let peers = std::mem::take(&mut self.peer_shards);
        for k in &peers {
            out.push(CoordOut::PeerNote(
                *k,
                PeerNote {
                    txn,
                    commit,
                    attempts: attempts.clone(),
                },
            ));
        }
        let n = peers.len() as u64;
        self.peer_shards = peers;
        n
    }

    /// A peer shard decided one of its transactions ([`PeerNote`]): fold
    /// the outcome into this shard's dependency-validation history so
    /// responses holding on the peer's transaction can settle.
    pub fn on_peer_decision(&mut self, note: PeerNote, out: &mut Vec<CoordOut<F, R>>) {
        self.cpu += self.per_msg;
        if note.commit {
            self.committed.entry(note.txn).or_insert(note.attempts);
        } else {
            self.aborted.insert(note.txn);
        }
        self.history_order.push_back(note.txn);
        self.gc();
        self.progress(out);
    }

    /// Abort transactions that have been pending longer than `timeout`,
    /// reporting `reason` to their clients — the recovery path for
    /// participant failure (§3.3, with the final `RemoteAbort`) and the
    /// distributed-deadlock breaker for cross-shard waits (with the
    /// retryable `CrossCoordinator`). Uses presumed-abort semantics:
    /// decisions go only to participants that have *executed* (responded);
    /// the rest are answered with presumed-abort when their response
    /// eventually arrives — a stalled transaction's fragment may still be
    /// queued unexecuted at a participant, where an eager decision would
    /// be an unintelligible stray. Returns the transactions aborted.
    pub fn expire_stalled(
        &mut self,
        now: Nanos,
        timeout: Nanos,
        reason: AbortReason,
        out: &mut Vec<CoordOut<F, R>>,
    ) -> Vec<TxnId> {
        let mut stalled: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, t)| now.saturating_sub(t.started) >= timeout)
            .map(|(id, _)| *id)
            .collect();
        stalled.sort_unstable();
        for txn in &stalled {
            self.finish_failover_with(*txn, reason, out);
        }
        if !stalled.is_empty() && self.recheck_redeliveries(out) {
            self.progress(out);
        }
        stalled
    }

    /// Apply a control-plane membership update: the failed group's primary
    /// is gone and a backup was promoted (`MembershipCore` is the
    /// authority; `epoch` is its stamp). The shard aborts every in-flight
    /// transaction that was dispatched to the failed partition (§3.3:
    /// in-progress multi-partition transactions touching it are aborted so
    /// the surviving participants can roll back and continue; the aborts
    /// are [`AbortReason::PartitionFailed`], which clients transparently
    /// retry against the promoted backup). Returns the aborted
    /// transactions, in id order.
    ///
    /// Transactions already *decided* are handled through the in-doubt
    /// machinery instead: any committed transaction whose commit decision
    /// the failed partition never acked has its fragments re-delivered to
    /// the promoted primary (the emitted `CoordOut::Fragment`s route
    /// through the flipped membership table), closing the classic 2PC
    /// in-doubt window.
    pub fn on_partition_failed(
        &mut self,
        failed: PartitionId,
        epoch: u32,
        out: &mut Vec<CoordOut<F, R>>,
    ) -> Vec<TxnId> {
        self.cpu += self.per_msg;
        self.epochs.insert(failed, epoch);
        let mut doomed: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, t)| t.dispatched.contains(&failed))
            .map(|(id, _)| *id)
            .collect();
        doomed.sort_unstable();
        for txn in &doomed {
            self.counters.failover_aborts += 1;
            self.finish_failover(*txn, out);
        }
        // Close the in-doubt window: re-deliver unacknowledged commits.
        if self.track_in_doubt {
            let mut in_doubt: Vec<TxnId> = self
                .in_doubt
                .iter()
                .filter(|(_, d)| d.unacked.contains(&failed))
                .map(|(t, _)| *t)
                .collect();
            in_doubt.sort_unstable();
            for txn in in_doubt {
                let entry = self.in_doubt.get(&txn).expect("filtered above");
                // Round-driven re-drive: ship only the transaction's
                // first round here; later rounds follow its responses.
                let first = entry
                    .tasks
                    .iter()
                    .filter(|(p, _)| *p == failed)
                    .map(|(_, t)| t)
                    .min_by_key(|t| t.round)
                    .cloned();
                let Some(task) = first else {
                    continue;
                };
                let first_round = task.round;
                out.push(CoordOut::Fragment(failed, task));
                self.charge_msgs(1);
                self.counters.in_doubt_redeliveries += 1;
                self.redeliveries.insert(
                    txn,
                    Redelivery {
                        partition: failed,
                        parked: None,
                        sent: (first_round, 0),
                    },
                );
            }
        }
        if self.recheck_redeliveries(out) {
            self.progress(out);
        }
        doomed
    }

    /// Abort one transaction killed by a failover. Unlike a normal abort,
    /// some participants may never have *executed* the transaction (its
    /// fragment is still queued behind other work) — a decision for it
    /// would be unintelligible to their scheduler, so decisions go only to
    /// participants that responded in some round; the rest are answered
    /// with presumed-abort when their response eventually arrives (see
    /// [`Coordinator::on_response`]).
    fn finish_failover(&mut self, txn: TxnId, out: &mut Vec<CoordOut<F, R>>) {
        self.finish_failover_with(txn, AbortReason::PartitionFailed, out)
    }

    /// As [`finish_failover`](Self::finish_failover) with an explicit
    /// client-visible abort reason (timeout expiry reuses the machinery).
    fn finish_failover_with(
        &mut self,
        txn: TxnId,
        reason: AbortReason,
        out: &mut Vec<CoordOut<F, R>>,
    ) {
        let t = self.txns.remove(&txn).expect("aborting known txn");
        let mut executed: Vec<PartitionId> = t.responses.iter().map(|(p, _)| *p).collect();
        for round in &t.settled_rounds {
            for (p, _) in &round.by_partition {
                if !executed.contains(p) {
                    executed.push(*p);
                }
            }
        }
        executed.sort_unstable();
        let mut msgs = 0u64;
        for p in &executed {
            out.push(CoordOut::Decision(
                *p,
                Decision { txn, commit: false },
                None,
            ));
            msgs += 1;
        }
        self.counters.aborts += 1;
        self.aborted.insert(txn);
        self.failover_aborted.insert(txn, executed);
        self.history_order.push_back(txn);
        out.push(CoordOut::ClientResult {
            client: t.client,
            txn,
            result: TxnResult::Aborted(reason),
        });
        msgs += 1;
        msgs += self.notify_peers(txn, false, out);
        self.charge_msgs(msgs);
        self.gc();
    }

    /// The shard's applied membership epoch for a replica group (0 = never
    /// failed over).
    pub fn epoch(&self, p: PartitionId) -> u32 {
        self.epochs.get(&p).copied().unwrap_or(0)
    }

    /// Committed transactions still awaiting commit-decision acks (tests,
    /// diagnostics).
    pub fn in_doubt_len(&self) -> usize {
        self.in_doubt.len()
    }

    fn gc(&mut self) {
        while self.history_order.len() > HISTORY_LIMIT {
            if let Some(old) = self.history_order.pop_front() {
                self.committed.remove(&old);
                self.aborted.remove(&old);
                self.failover_aborted.remove(&old);
                self.in_doubt.remove(&old);
                self.redeliveries.remove(&old);
            }
        }
    }
}

enum Settle {
    Settled,
    Hold,
    Stale,
}

/// What [`Coordinator::progress_one`] did for one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Progress {
    /// Nothing to do (waiting, held, or stale).
    None,
    /// Dispatched the next round — settles nothing for other transactions.
    Dispatched,
    /// Committed or aborted — may settle other transactions' responses.
    Decided,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{SimpleMpProcedure, SwapProcedure, TestFragment, TestOutput};

    fn txid(n: u32) -> TxnId {
        TxnId::new(ClientId(n), 0)
    }

    fn coord() -> Coordinator<TestFragment, TestOutput> {
        Coordinator::central(CostModel::default())
    }

    fn simple_proc() -> Box<dyn Procedure<TestFragment, TestOutput>> {
        Box::new(SimpleMpProcedure {
            fragments: vec![
                (PartitionId(0), TestFragment::add(1, 1)),
                (PartitionId(1), TestFragment::add(2, 1)),
            ],
        })
    }

    fn ok_response(
        txn: TxnId,
        p: u32,
        round: u32,
        vote: Option<Vote>,
        dep: Option<hcc_common::SpecDep>,
    ) -> FragmentResponse<TestOutput> {
        FragmentResponse {
            txn,
            partition: PartitionId(p),
            round,
            attempt: 0,
            payload: Ok(vec![(1, 1)]),
            vote,
            depends_on: dep,
        }
    }

    #[test]
    fn simple_mp_commits_after_both_votes() {
        let mut c = coord();
        let mut out = Vec::new();
        c.on_invoke(txid(1), ClientId(1), simple_proc(), false, &mut out);
        // Two fragments dispatched, prepare piggybacked.
        let frags: Vec<_> = out
            .iter()
            .filter(|o| matches!(o, CoordOut::Fragment(_, t) if t.last_fragment))
            .collect();
        assert_eq!(frags.len(), 2);
        out.clear();

        c.on_response(
            ok_response(txid(1), 0, 0, Some(Vote::Commit), None),
            &mut out,
        );
        assert!(out.is_empty(), "no decision on partial votes");
        c.on_response(
            ok_response(txid(1), 1, 0, Some(Vote::Commit), None),
            &mut out,
        );
        let decisions = out
            .iter()
            .filter(|o| matches!(o, CoordOut::Decision(_, d, _) if d.commit))
            .count();
        assert_eq!(decisions, 2);
        assert!(out.iter().any(|o| matches!(
            o,
            CoordOut::ClientResult {
                result: TxnResult::Committed(_),
                ..
            }
        )));
        assert_eq!(c.counters.commits, 1);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn abort_vote_aborts_everywhere() {
        let mut c = coord();
        let mut out = Vec::new();
        c.on_invoke(txid(1), ClientId(1), simple_proc(), false, &mut out);
        out.clear();
        c.on_response(
            ok_response(txid(1), 0, 0, Some(Vote::Commit), None),
            &mut out,
        );
        let mut bad = ok_response(txid(1), 1, 0, None, None);
        bad.payload = Err(AbortReason::User);
        bad.vote = Some(Vote::Abort(AbortReason::User));
        c.on_response(bad, &mut out);
        let aborts = out
            .iter()
            .filter(|o| matches!(o, CoordOut::Decision(_, d, _) if !d.commit))
            .count();
        assert_eq!(aborts, 2, "both participants told to abort");
        assert!(out.iter().any(|o| matches!(
            o,
            CoordOut::ClientResult {
                result: TxnResult::Aborted(AbortReason::User),
                ..
            }
        )));
        assert_eq!(c.counters.aborts, 1);
    }

    #[test]
    fn two_round_swap_drives_rounds() {
        let mut c = coord();
        let mut out = Vec::new();
        c.on_invoke(
            txid(1),
            ClientId(1),
            Box::new(SwapProcedure {
                p1: PartitionId(0),
                key1: 1,
                p2: PartitionId(1),
                key2: 2,
            }),
            false,
            &mut out,
        );
        // Round 0: reads, no prepare.
        assert!(out.iter().all(|o| match o {
            CoordOut::Fragment(_, t) => !t.last_fragment && t.round == 0,
            _ => false,
        }));
        out.clear();

        let mut r0p0 = ok_response(txid(1), 0, 0, None, None);
        r0p0.payload = Ok(vec![(1, 5)]);
        let mut r0p1 = ok_response(txid(1), 1, 0, None, None);
        r0p1.payload = Ok(vec![(2, 17)]);
        c.on_response(r0p0, &mut out);
        c.on_response(r0p1, &mut out);
        // Round 1 dispatched with prepare.
        let round1: Vec<_> = out
            .iter()
            .filter_map(|o| match o {
                CoordOut::Fragment(p, t) => Some((*p, t.round, t.last_fragment)),
                _ => None,
            })
            .collect();
        assert_eq!(round1.len(), 2);
        assert!(round1.iter().all(|(_, r, last)| *r == 1 && *last));
        out.clear();

        c.on_response(
            ok_response(txid(1), 0, 1, Some(Vote::Commit), None),
            &mut out,
        );
        c.on_response(
            ok_response(txid(1), 1, 1, Some(Vote::Commit), None),
            &mut out,
        );
        assert_eq!(c.counters.commits, 1);
        assert!(out
            .iter()
            .any(|o| matches!(o, CoordOut::Decision(_, d, _) if d.commit)));
    }

    #[test]
    fn speculative_response_waits_for_dependency() {
        let mut c = coord();
        let mut out = Vec::new();
        // A then C, chained at partition 0.
        c.on_invoke(txid(1), ClientId(1), simple_proc(), false, &mut out);
        c.on_invoke(txid(2), ClientId(2), simple_proc(), false, &mut out);
        out.clear();

        // C's responses arrive first (speculative at P0 on A).
        let dep = hcc_common::SpecDep {
            txn: txid(1),
            attempt: 0,
        };
        c.on_response(
            ok_response(txid(2), 0, 0, Some(Vote::Commit), Some(dep)),
            &mut out,
        );
        c.on_response(
            ok_response(txid(2), 1, 0, Some(Vote::Commit), None),
            &mut out,
        );
        assert!(out.is_empty(), "C held: A undecided");

        // A commits.
        c.on_response(
            ok_response(txid(1), 0, 0, Some(Vote::Commit), None),
            &mut out,
        );
        c.on_response(
            ok_response(txid(1), 1, 0, Some(Vote::Commit), None),
            &mut out,
        );
        // Both A and C decided now (C settles once A commits).
        assert_eq!(c.counters.commits, 2);
        let c_decisions = out
            .iter()
            .filter(|o| matches!(o, CoordOut::Decision(_, d, _) if d.txn == txid(2) && d.commit))
            .count();
        assert_eq!(c_decisions, 2);
    }

    #[test]
    fn stale_dependent_response_is_discarded_on_abort() {
        let mut c = coord();
        let mut out = Vec::new();
        c.on_invoke(txid(1), ClientId(1), simple_proc(), false, &mut out);
        c.on_invoke(txid(2), ClientId(2), simple_proc(), false, &mut out);
        out.clear();

        // C speculated on A at both partitions.
        let dep = hcc_common::SpecDep {
            txn: txid(1),
            attempt: 0,
        };
        c.on_response(
            ok_response(txid(2), 0, 0, Some(Vote::Commit), Some(dep)),
            &mut out,
        );
        c.on_response(
            ok_response(txid(2), 1, 0, Some(Vote::Commit), Some(dep)),
            &mut out,
        );

        // A aborts (user abort at P0).
        let mut bad = ok_response(txid(1), 0, 0, None, None);
        bad.payload = Err(AbortReason::User);
        bad.vote = Some(Vote::Abort(AbortReason::User));
        c.on_response(bad, &mut out);
        c.on_response(
            ok_response(txid(1), 1, 0, Some(Vote::Commit), None),
            &mut out,
        );
        assert_eq!(c.counters.aborts, 1);
        // C must NOT be decided on its stale responses.
        assert_eq!(c.counters.commits, 0);
        assert_eq!(c.pending(), 1);
        out.clear();

        // Fresh (re-executed) responses arrive with attempt 1, no deps.
        let mut f0 = ok_response(txid(2), 0, 0, Some(Vote::Commit), None);
        f0.attempt = 1;
        let mut f1 = ok_response(txid(2), 1, 0, Some(Vote::Commit), None);
        f1.attempt = 1;
        c.on_response(f0, &mut out);
        c.on_response(f1, &mut out);
        assert_eq!(c.counters.commits, 1);
        assert!(out.iter().any(|o| matches!(
            o,
            CoordOut::ClientResult { txn, result: TxnResult::Committed(_), .. } if *txn == txid(2)
        )));
    }

    #[test]
    fn dependency_on_wrong_attempt_is_stale() {
        let mut c = coord();
        let mut out = Vec::new();
        c.on_invoke(txid(1), ClientId(1), simple_proc(), false, &mut out);
        c.on_invoke(txid(2), ClientId(2), simple_proc(), false, &mut out);
        out.clear();

        // A commits at attempt 1 (it was squashed once by an earlier abort
        // we don't model here).
        let mut a0 = ok_response(txid(1), 0, 0, Some(Vote::Commit), None);
        a0.attempt = 1;
        let mut a1 = ok_response(txid(1), 1, 0, Some(Vote::Commit), None);
        a1.attempt = 1;
        c.on_response(a0, &mut out);
        c.on_response(a1, &mut out);
        assert_eq!(c.counters.commits, 1);
        out.clear();

        // C's stale response depends on A attempt 0 — the squashed one.
        let dep = hcc_common::SpecDep {
            txn: txid(1),
            attempt: 0,
        };
        c.on_response(
            ok_response(txid(2), 0, 0, Some(Vote::Commit), Some(dep)),
            &mut out,
        );
        c.on_response(
            ok_response(txid(2), 1, 0, Some(Vote::Commit), None),
            &mut out,
        );
        assert_eq!(c.counters.commits, 1, "stale C not committed");
        assert!(c.counters.stale_responses_discarded > 0);

        // Fresh C depending on the committed attempt goes through.
        let dep1 = hcc_common::SpecDep {
            txn: txid(1),
            attempt: 1,
        };
        let mut f0 = ok_response(txid(2), 0, 0, Some(Vote::Commit), Some(dep1));
        f0.attempt = 1;
        c.on_response(f0, &mut out);
        assert_eq!(c.counters.commits, 2);
    }

    #[test]
    fn charges_cpu_per_message() {
        let mut c = coord();
        let mut out = Vec::new();
        c.on_invoke(txid(1), ClientId(1), simple_proc(), false, &mut out);
        let cpu = c.take_cpu();
        // 1 receive + 2 fragment sends.
        assert_eq!(cpu, Nanos(CostModel::default().coord_per_msg.0 * 3));
        assert_eq!(c.take_cpu(), Nanos::ZERO);
    }

    #[test]
    fn duplicate_and_late_responses_are_harmless() {
        let mut c = coord();
        let mut out = Vec::new();
        c.on_invoke(txid(1), ClientId(1), simple_proc(), false, &mut out);
        out.clear();
        c.on_response(
            ok_response(txid(1), 0, 0, Some(Vote::Commit), None),
            &mut out,
        );
        // Duplicate of the same response: overwrites, no decision yet.
        c.on_response(
            ok_response(txid(1), 0, 0, Some(Vote::Commit), None),
            &mut out,
        );
        assert!(out.is_empty());
        c.on_response(
            ok_response(txid(1), 1, 0, Some(Vote::Commit), None),
            &mut out,
        );
        assert_eq!(c.counters.commits, 1);
        out.clear();
        // A response arriving after the decision (e.g. a held speculative
        // result released late) is ignored.
        c.on_response(
            ok_response(txid(1), 1, 0, Some(Vote::Commit), None),
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(c.counters.commits, 1);
    }

    #[test]
    fn expire_stalled_aborts_only_old_transactions() {
        let mut c = coord();
        let mut out = Vec::new();
        c.on_invoke_at(
            txid(1),
            ClientId(1),
            simple_proc(),
            false,
            Nanos(0),
            &mut out,
        );
        c.on_invoke_at(
            txid(2),
            ClientId(2),
            simple_proc(),
            false,
            Nanos(5_000_000),
            &mut out,
        );
        out.clear();
        let aborted = c.expire_stalled(
            Nanos(6_000_000),
            Nanos(2_000_000),
            AbortReason::RemoteAbort,
            &mut out,
        );
        assert_eq!(aborted, vec![txid(1)], "only the stalled txn expires");
        assert_eq!(c.pending(), 1);
        assert!(out.iter().any(|o| matches!(
            o,
            CoordOut::ClientResult {
                result: TxnResult::Aborted(AbortReason::RemoteAbort),
                ..
            }
        )));
        // Presumed-abort semantics: no participant has *responded* yet
        // (their fragments may still be queued unexecuted), so no eager
        // decisions — a late vote is answered with presumed abort.
        let aborts = out
            .iter()
            .filter(|o| matches!(o, CoordOut::Decision(_, d, _) if !d.commit && d.txn == txid(1)))
            .count();
        assert_eq!(aborts, 0, "no decisions to never-executed participants");
        out.clear();
        c.on_response(
            ok_response(txid(1), 0, 0, Some(Vote::Commit), None),
            &mut out,
        );
        assert!(
            out.iter().any(|o| matches!(
                o,
                CoordOut::Decision(p, d, _) if !d.commit && d.txn == txid(1) && *p == PartitionId(0)
            )),
            "late vote answered with presumed abort"
        );
    }

    #[test]
    fn partition_failure_aborts_involved_txns_and_bumps_epoch() {
        let mut c = coord();
        let mut out = Vec::new();
        // txn 1 touches P0+P1, txn 2 touches P2+P3 only.
        c.on_invoke(txid(1), ClientId(1), simple_proc(), false, &mut out);
        c.on_invoke(
            txid(2),
            ClientId(2),
            Box::new(SimpleMpProcedure {
                fragments: vec![
                    (PartitionId(2), TestFragment::add(1, 1)),
                    (PartitionId(3), TestFragment::add(2, 1)),
                ],
            }),
            false,
            &mut out,
        );
        out.clear();
        assert_eq!(c.epoch(PartitionId(1)), 0);
        let aborted = c.on_partition_failed(PartitionId(1), 1, &mut out);
        assert_eq!(c.epoch(PartitionId(1)), 1);
        assert_eq!(aborted, vec![txid(1)], "only the involved txn dies");
        assert_eq!(c.pending(), 1, "txn 2 survives");
        assert_eq!(c.counters.failover_aborts, 1);
        assert!(out.iter().any(|o| matches!(
            o,
            CoordOut::ClientResult {
                result: TxnResult::Aborted(AbortReason::PartitionFailed),
                ..
            }
        )));
        // Neither participant has *executed* txn 1 (no responses yet), so
        // no decision fans out — a decision for a never-executed
        // transaction would be unintelligible to a partition scheduler.
        let aborts = out
            .iter()
            .filter(|o| matches!(o, CoordOut::Decision(_, d, _) if !d.commit))
            .count();
        assert_eq!(aborts, 0);
        out.clear();
        // When the late vote eventually arrives (the fragment was queued
        // behind other work), it is answered with presumed-abort.
        c.on_response(
            ok_response(txid(1), 0, 0, Some(Vote::Commit), None),
            &mut out,
        );
        assert!(
            out.iter().any(|o| matches!(
                o,
                CoordOut::Decision(p, d, _) if !d.commit && d.txn == txid(1) && *p == PartitionId(0)
            )),
            "late response from a failover-aborted txn gets presumed-abort"
        );
    }

    #[test]
    fn partition_failure_sends_decisions_to_executed_participants() {
        let mut c = coord();
        let mut out = Vec::new();
        c.on_invoke(txid(1), ClientId(1), simple_proc(), false, &mut out);
        out.clear();
        // P0 executed and voted; P1 never responded.
        c.on_response(
            ok_response(txid(1), 0, 0, Some(Vote::Commit), None),
            &mut out,
        );
        let aborted = c.on_partition_failed(PartitionId(1), 1, &mut out);
        assert_eq!(aborted, vec![txid(1)]);
        let decisions: Vec<u32> = out
            .iter()
            .filter_map(|o| match o {
                CoordOut::Decision(p, d, _) if !d.commit => Some(p.0),
                _ => None,
            })
            .collect();
        assert_eq!(decisions, vec![0], "only the executed participant");
    }

    #[test]
    fn decisions_are_emitted_in_stable_partition_order() {
        // Determinism: the decision fan-out must not depend on HashSet
        // iteration order.
        for _ in 0..5 {
            let mut c = coord();
            let mut out = Vec::new();
            c.on_invoke(txid(1), ClientId(1), simple_proc(), false, &mut out);
            out.clear();
            c.on_response(
                ok_response(txid(1), 0, 0, Some(Vote::Commit), None),
                &mut out,
            );
            c.on_response(
                ok_response(txid(1), 1, 0, Some(Vote::Commit), None),
                &mut out,
            );
            let order: Vec<u32> = out
                .iter()
                .filter_map(|o| match o {
                    CoordOut::Decision(p, ..) => Some(p.0),
                    _ => None,
                })
                .collect();
            assert_eq!(order, vec![0, 1]);
        }
    }

    fn tracking_shard() -> Coordinator<TestFragment, TestOutput> {
        Coordinator::shard(CostModel::default(), CoordinatorId(0), true)
    }

    /// Drive one simple MP transaction to commit on a tracking shard.
    fn commit_one(c: &mut Coordinator<TestFragment, TestOutput>, n: u32) {
        let mut out = Vec::new();
        c.on_invoke(txid(n), ClientId(n), simple_proc(), false, &mut out);
        c.on_response(
            ok_response(txid(n), 0, 0, Some(Vote::Commit), None),
            &mut out,
        );
        c.on_response(
            ok_response(txid(n), 1, 0, Some(Vote::Commit), None),
            &mut out,
        );
        assert!(out.iter().any(|o| matches!(
            o,
            CoordOut::Decision(_, d, Some(_)) if d.commit && d.txn == txid(n)
        )));
    }

    #[test]
    fn commit_acks_resolve_the_in_doubt_window() {
        let mut c = tracking_shard();
        commit_one(&mut c, 1);
        assert_eq!(c.in_doubt_len(), 1, "committed but unacked");
        c.on_decision_ack(txid(1), PartitionId(0), &mut Vec::new());
        assert_eq!(c.in_doubt_len(), 1, "one participant still unacked");
        c.on_decision_ack(txid(1), PartitionId(1), &mut Vec::new());
        assert_eq!(c.in_doubt_len(), 0);
        assert_eq!(c.counters.decision_acks, 2);
    }

    #[test]
    fn unacked_commit_is_redelivered_after_failover_and_recommitted() {
        let mut c = tracking_shard();
        commit_one(&mut c, 1);
        c.on_decision_ack(txid(1), PartitionId(0), &mut Vec::new());
        // P1's primary dies holding the unacked commit decision.
        let mut out = Vec::new();
        let aborted = c.on_partition_failed(PartitionId(1), 1, &mut out);
        assert!(aborted.is_empty(), "nothing in flight to abort");
        let redelivered: Vec<_> = out
            .iter()
            .filter_map(|o| match o {
                CoordOut::Fragment(p, t) => Some((*p, t.txn)),
                _ => None,
            })
            .collect();
        assert_eq!(
            redelivered,
            vec![(PartitionId(1), txid(1))],
            "the in-doubt fragment goes back to the (promoted) partition"
        );
        assert_eq!(c.counters.in_doubt_redeliveries, 1);
        out.clear();

        // The promoted primary re-executes and votes; the shard answers
        // with the already-global commit.
        c.on_response(
            ok_response(txid(1), 1, 0, Some(Vote::Commit), None),
            &mut out,
        );
        assert!(
            out.iter().any(|o| matches!(
                o,
                CoordOut::Decision(p, d, Some(_)) if d.commit && d.txn == txid(1) && *p == PartitionId(1)
            )),
            "re-vote answered with commit"
        );
        assert_eq!(c.counters.in_doubt_commits_recovered, 1);
        // The fresh ack finally closes the window.
        c.on_decision_ack(txid(1), PartitionId(1), &mut Vec::new());
        assert_eq!(c.in_doubt_len(), 0);
    }

    #[test]
    fn redelivered_vote_with_pending_dependency_parks_until_it_decides() {
        let mut c = tracking_shard();
        commit_one(&mut c, 1);
        let mut out = Vec::new();
        c.on_partition_failed(PartitionId(1), 1, &mut out);
        out.clear();
        // A fresh transaction reaches the promoted primary and executes
        // ahead of the redelivered fragment in its speculation chain.
        c.on_invoke(txid(2), ClientId(2), simple_proc(), false, &mut out);
        out.clear();
        // The re-vote speculates on the (undecided) txn 2: must hold.
        let dep = hcc_common::SpecDep {
            txn: txid(2),
            attempt: 0,
        };
        c.on_response(
            ok_response(txid(1), 1, 0, Some(Vote::Commit), Some(dep)),
            &mut out,
        );
        assert!(
            !out.iter()
                .any(|o| matches!(o, CoordOut::Decision(_, d, _) if d.txn == txid(1))),
            "held vote must not be answered yet"
        );
        out.clear();
        // txn 2 commits -> the parked vote settles -> commit re-delivered.
        c.on_response(
            ok_response(txid(2), 0, 0, Some(Vote::Commit), None),
            &mut out,
        );
        c.on_response(
            ok_response(txid(2), 1, 0, Some(Vote::Commit), None),
            &mut out,
        );
        assert!(
            out.iter().any(|o| matches!(
                o,
                CoordOut::Decision(p, d, _) if d.commit && d.txn == txid(1) && *p == PartitionId(1)
            )),
            "parked re-vote answered once its dependency committed"
        );
        assert_eq!(c.counters.in_doubt_commits_recovered, 1);
    }

    #[test]
    fn untracked_coordinator_emits_no_acks_and_retains_nothing() {
        let mut c = coord();
        let mut out = Vec::new();
        c.on_invoke(txid(1), ClientId(1), simple_proc(), false, &mut out);
        c.on_response(
            ok_response(txid(1), 0, 0, Some(Vote::Commit), None),
            &mut out,
        );
        c.on_response(
            ok_response(txid(1), 1, 0, Some(Vote::Commit), None),
            &mut out,
        );
        assert!(out.iter().all(|o| match o {
            CoordOut::Decision(_, _, ack) => ack.is_none(),
            _ => true,
        }));
        assert_eq!(c.in_doubt_len(), 0);
    }

    #[test]
    fn history_gc_bounded() {
        let mut c = coord();
        let mut out = Vec::new();
        for i in 0..(HISTORY_LIMIT as u32 + 10) {
            let txn = TxnId::new(ClientId(7), i);
            c.on_invoke(txn, ClientId(7), simple_proc(), false, &mut out);
            c.on_response(ok_response(txn, 0, 0, Some(Vote::Commit), None), &mut out);
            c.on_response(ok_response(txn, 1, 0, Some(Vote::Commit), None), &mut out);
            out.clear();
        }
        assert!(c.committed.len() <= HISTORY_LIMIT);
        assert_eq!(c.pending(), 0);
    }
}
