//! The paper's contribution: low-overhead concurrency control for
//! partitioned main-memory databases, as runtime-agnostic state machines.
//!
//! Three schedulers implement the three schemes compared in the paper:
//!
//! * [`blocking::BlockingScheduler`] — §4.1, Figure 2: one transaction at a
//!   time; queue everything else.
//! * [`speculative::SpeculativeScheduler`] — §4.2, Figure 3: execute queued
//!   transactions speculatively while a multi-partition transaction waits
//!   for two-phase commit, assuming every pair of concurrent transactions
//!   conflicts; cascade aborts.
//! * [`locking_sched::LockingScheduler`] — §4.3: strict two-phase locking
//!   with a single-threaded lock manager, a no-lock fast path when no
//!   multi-partition transaction is active, cycle detection for local
//!   deadlocks and timeouts for distributed ones.
//!
//! Plus the [`occ::OccScheduler`] extension sketched in §5.7.
//!
//! The [`coordinator::Coordinator`] implements the central coordinator of
//! §3.3 with the speculative-result handling of §4.2.2, and
//! [`txn_driver::TxnDriver`] the client-side two-phase commit used by the
//! locking scheme (§4.3 sends multi-partition transactions directly to
//! partitions).
//!
//! None of these types know about threads, channels, clocks, or sockets:
//! they consume protocol events and emit protocol messages through an
//! [`outbox::Outbox`], and are driven by `hcc-sim` (discrete-event
//! simulation) and `hcc-runtime` (OS threads + channels) identically.

// Associated-type generics make some signatures long; aliases would
// obscure more than they clarify here.
#![allow(clippy::type_complexity)]

pub mod adaptive;
pub mod blocking;
pub mod client;
pub mod coordinator;
pub mod engine;
pub mod group_commit;
pub mod locking_sched;
pub mod membership;
pub mod occ;
pub mod oracle;
pub mod outbox;
pub mod procedure;
pub mod recovery;
pub mod replica;
pub mod scheduler;
pub mod sequencer;
pub mod speculative;
pub mod testkit;
pub mod txn_driver;

pub use adaptive::{AdaptiveScheduler, AnySched};
pub use engine::{ExecOutcome, ExecutionEngine};
pub use group_commit::{FlushDecision, GroupCommit};
pub use membership::{MembershipCore, MembershipUpdate};
pub use outbox::{Outbox, PartitionOut};
pub use procedure::{Procedure, Request, RequestGenerator, RoundOutputs, Step};
pub use recovery::{
    recover_partition, recover_partitions_parallel, PartitionLog, RecoveryError, RecoveryOutcome,
};
pub use replica::{AckTracker, ReplayError, ReplicaCore, ReplicationSession};
pub use scheduler::{
    make_scheduler, make_scheduler_resumed, make_scheduler_send, make_scheduler_send_resumed,
    Scheduler,
};
pub use sequencer::{
    broadcast_dests, Admit, CloseKind, ClosedEpoch, EpochLog, EpochLogDest, PartitionSequencer,
    PendingInvoke, ShardSequencer,
};
