//! Epoch-batched deterministic cross-shard sequencing (ISSUE 8).
//!
//! With sharded coordinators, §4.2.2's dependency chains are only valid
//! within one shard: unaligned multi-partition traffic degrades into
//! blocking waits and retryable `CrossCoordinator` expiry aborts because
//! no global dispatch order exists across shards. This module supplies
//! that order, Calvin/STAR style, with no extra consensus hop:
//!
//! * Each coordinator shard runs a [`ShardSequencer`]: multi-partition
//!   invocations accumulate in the current **epoch**'s local log and are
//!   dispatched together when the epoch closes — on a count boundary
//!   (`SequencingConfig::Epoch { batch }`), an age boundary
//!   (`SequencingConfig::max_delay`), or a cascade (a peer shard closed
//!   the same epoch, see below). The closed [`EpochLog`] is broadcast to
//!   every partition and every peer shard *before* the round-0 fragments
//!   of its transactions, on the same FIFO links.
//! * Each partition primary runs a [`PartitionSequencer`]: it collects
//!   the per-shard logs and admits multi-partition round-0 fragments in
//!   the **round-robin interleave** of the per-shard logs (epoch by
//!   epoch, shard 0..N within an epoch). The merge rule *is* the global
//!   order — every partition computes the same interleave locally.
//!
//! Because a shard emits each log entry's fragments at the same instant
//! as the log itself, every admitted transaction's fragment is already in
//! flight when its log arrives: admission only ever waits on *arrival
//! interleaving*, never on execution, so holds are brief and can never
//! deadlock. And because all partitions admit in one global order, the
//! cross-shard wait cycles that §4.2.2 had to break by expiry cannot form
//! — speculation chains legally span coordinator shards.
//!
//! Single-partition transactions never touch any of this: they are sent
//! directly to their partition, exactly as before.
//!
//! # Cascade closes
//!
//! The round-robin merge needs a log from *every* shard for an epoch
//! before that epoch can dispatch, so an idle shard would stall the
//! world. Instead, logs are also broadcast shard→shard: a shard that
//! receives a peer's log for an epoch at or beyond its own open epoch
//! force-closes its epochs up to the peer's (possibly empty — an empty
//! log is a first-class message). Closes are monotone, so the cascade
//! terminates, and a shard that is *ahead* simply ignores peer logs for
//! epochs it already closed.
//!
//! # Failover: eras
//!
//! Sequencing state cannot survive a partition failover — the promoted
//! backup has never seen the logs its predecessor merged. The layer
//! resets by **era**: every shard counts the membership updates it has
//! consumed; on each update it bounces its still-buffered (unsequenced)
//! invocations back to their clients with a retryable abort, emits an
//! `era_end` marker log, and restarts epoch numbering in the next era.
//! Surviving partitions drain the old era completely (the markers close
//! every gap) and then advance. A promoted primary starts **unsynced**:
//! it buffers logs until it has seen every shard's `era_end` marker —
//! proof, by link FIFO-ness, that it will see the *whole* next era — and
//! joins at that era's epoch 0, discarding anything older. Fragments
//! with no matching log entry (in-doubt redeliveries, discarded-era
//! stragglers) pass straight through: redeliveries are already globally
//! committed, and stragglers all touched the failed partition, so the
//! membership update is already aborting them at their shard.

use hcc_common::stats::SequencerStats;
use hcc_common::{
    ClientId, CoordinatorId, CoordinatorRef, FragmentTask, FxHashMap, FxHashSet, Nanos,
    PartitionId, TxnId,
};
use std::collections::VecDeque;

use crate::procedure::Procedure;

/// One shard's log for one closed epoch, broadcast to every partition and
/// every peer shard. Deliberately payload-free (transaction ids and
/// participant sets only) so it is cheap to clone and fits any driver's
/// message enum without generics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochLog {
    pub shard: CoordinatorId,
    /// Sequencing era = membership updates consumed by the shard.
    pub era: u32,
    /// Epoch number within the era (restarts at 0 each era).
    pub epoch: u64,
    /// The shard's multi-partition arrivals for this epoch, in arrival
    /// order, with their round-0 participant sets.
    pub entries: Vec<(TxnId, Vec<PartitionId>)>,
    /// True for the marker a shard emits when a membership update ends
    /// its era: "this shard has no epochs >= `epoch` in era `era`".
    /// Marker logs carry no entries.
    pub era_end: bool,
}

/// Where a [`ShardSequencer`] output log should be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochLogDest {
    Partition(PartitionId),
    Shard(CoordinatorId),
}

/// A buffered multi-partition invocation, held until its epoch closes.
pub struct PendingInvoke<F, R> {
    pub txn: TxnId,
    pub client: ClientId,
    pub procedure: Box<dyn Procedure<F, R>>,
    pub can_abort: bool,
    pub enqueued_at: Nanos,
    /// Round-0 participants, peeked via [`Procedure::participants`] (the
    /// procedure is pure, so the later dispatch sees the same set).
    pub participants: Vec<PartitionId>,
}

impl<F, R> std::fmt::Debug for PendingInvoke<F, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingInvoke")
            .field("txn", &self.txn)
            .field("client", &self.client)
            .field("participants", &self.participants)
            .finish()
    }
}

/// A closed epoch: the log to broadcast, then the invocations to dispatch
/// (in log order, *after* the log, on the same links).
pub struct ClosedEpoch<F, R> {
    pub log: EpochLog,
    pub invokes: Vec<PendingInvoke<F, R>>,
}

/// Why an epoch closed (statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseKind {
    /// The count boundary: `batch` invocations accumulated.
    Count,
    /// The age boundary: the oldest buffered invocation exceeded
    /// `SequencingConfig::max_delay`.
    Age,
    /// A peer shard's log for this epoch (or a later one) arrived.
    Cascade,
}

/// Per-coordinator-shard sequencing state: buffers multi-partition
/// invocations into the open epoch and closes epochs deterministically.
pub struct ShardSequencer<F, R> {
    shard: CoordinatorId,
    batch: u32,
    era: u32,
    /// The open (not yet closed) epoch number.
    epoch: u64,
    buf: Vec<PendingInvoke<F, R>>,
    stats: SequencerStats,
}

impl<F, R> ShardSequencer<F, R> {
    pub fn new(shard: CoordinatorId, batch: u32) -> Self {
        ShardSequencer {
            shard,
            batch: batch.max(1),
            era: 0,
            epoch: 0,
            buf: Vec::new(),
            stats: SequencerStats::default(),
        }
    }

    pub fn shard(&self) -> CoordinatorId {
        self.shard
    }

    /// Current sequencing era (= membership updates consumed).
    pub fn era(&self) -> u32 {
        self.era
    }

    /// The open (not yet closed) epoch number within the current era.
    /// Together with [`ShardSequencer::era`] this identifies the epoch an
    /// age-close timer was armed for — a close in the meantime advances
    /// it, invalidating the timer.
    pub fn open_epoch(&self) -> u64 {
        self.epoch
    }

    /// True when no invocation is buffered (drivers schedule an age-close
    /// exactly when a push makes this transition false).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Submission time of the oldest buffered invocation (age-close checks).
    pub fn oldest_enqueued_at(&self) -> Option<Nanos> {
        self.buf.first().map(|p| p.enqueued_at)
    }

    /// Buffer one multi-partition invocation; closes and returns the open
    /// epoch when the count boundary is reached.
    pub fn push(
        &mut self,
        txn: TxnId,
        client: ClientId,
        procedure: Box<dyn Procedure<F, R>>,
        can_abort: bool,
        now: Nanos,
    ) -> Option<ClosedEpoch<F, R>> {
        let participants = procedure.participants();
        self.buf.push(PendingInvoke {
            txn,
            client,
            procedure,
            can_abort,
            enqueued_at: now,
            participants,
        });
        (self.buf.len() >= self.batch as usize).then(|| self.close(now, CloseKind::Count))
    }

    /// Close the open epoch (possibly empty) and advance to the next.
    pub fn close(&mut self, now: Nanos, kind: CloseKind) -> ClosedEpoch<F, R> {
        let invokes = std::mem::take(&mut self.buf);
        self.stats.epochs_closed += 1;
        self.stats.batch_sum += invokes.len() as u64;
        self.stats.batch_max = self.stats.batch_max.max(invokes.len() as u64);
        match kind {
            CloseKind::Count => {}
            CloseKind::Age => self.stats.age_closes += 1,
            CloseKind::Cascade => self.stats.forced_closes += 1,
        }
        for p in &invokes {
            self.stats
                .seq_hold
                .record(now.saturating_sub(p.enqueued_at));
        }
        let log = EpochLog {
            shard: self.shard,
            era: self.era,
            epoch: self.epoch,
            entries: invokes
                .iter()
                .map(|p| (p.txn, p.participants.clone()))
                .collect(),
            era_end: false,
        };
        self.epoch += 1;
        ClosedEpoch { log, invokes }
    }

    /// A peer shard's log arrived: force-close our epochs up to and
    /// including the peer's, so the partitions' round-robin merge can
    /// advance past us even when we are idle. Ignores logs from other
    /// eras (eras re-synchronize via the membership updates every shard
    /// consumes) and epochs we already closed.
    pub fn on_peer_log(&mut self, log: &EpochLog, now: Nanos) -> Vec<ClosedEpoch<F, R>> {
        let mut closed = Vec::new();
        if log.era == self.era {
            while self.epoch <= log.epoch {
                closed.push(self.close(now, CloseKind::Cascade));
            }
        }
        closed
    }

    /// A membership update ended the current era: every still-buffered
    /// invocation is returned for the driver to bounce back to its client
    /// with a retryable abort (the old order can no longer be completed),
    /// an `era_end` marker log is returned for broadcast, and epoch
    /// numbering restarts in the next era.
    pub fn on_era_change(&mut self) -> (EpochLog, Vec<PendingInvoke<F, R>>) {
        let bounced = std::mem::take(&mut self.buf);
        let marker = EpochLog {
            shard: self.shard,
            era: self.era,
            epoch: self.epoch,
            entries: Vec::new(),
            era_end: true,
        };
        self.era += 1;
        self.epoch = 0;
        (marker, bounced)
    }

    pub fn stats(&self) -> &SequencerStats {
        &self.stats
    }

    pub fn stats_mut(&mut self) -> &mut SequencerStats {
        &mut self.stats
    }
}

/// All destinations of a closed log: every partition, then every peer
/// shard (broadcast fan-out for the drivers). A free function so drivers
/// can call it without naming the sequencer's engine type parameters.
pub fn broadcast_dests(
    partitions: u32,
    shards: u32,
    me: CoordinatorId,
) -> impl Iterator<Item = EpochLogDest> {
    (0..partitions)
        .map(|p| EpochLogDest::Partition(PartitionId(p)))
        .chain(
            (0..shards)
                .filter(move |k| *k != me.0)
                .map(|k| EpochLogDest::Shard(CoordinatorId(k))),
        )
}

/// What a partition should do with a multi-partition round-0 fragment.
#[derive(Debug)]
pub enum Admit<F> {
    /// Deliver these fragments to the scheduler now, in this order (the
    /// arrived fragment and/or previously held fragments its admission
    /// unblocked).
    Deliver(Vec<FragmentTask<F>>),
    /// The fragment is sequenced behind earlier entries whose fragments
    /// have not arrived yet; it is held inside the sequencer.
    Held,
}

/// Per-partition-primary sequencing state: merges the per-shard epoch
/// logs into the global round-robin order and admits multi-partition
/// round-0 fragments in exactly that order.
pub struct PartitionSequencer<F> {
    me: PartitionId,
    shards: u32,
    /// False for a freshly promoted primary until it has observed every
    /// shard's `era_end` marker (the proof it will see a complete era).
    synced: bool,
    era: u32,
    /// Next epoch to merge within the current era.
    epoch: u64,
    /// Buffered logs keyed by (era, epoch, shard).
    logs: FxHashMap<(u32, u64, u32), Vec<(TxnId, Vec<PartitionId>)>>,
    /// Era-end markers: (era, shard) → first epoch that does *not* exist.
    ends: FxHashMap<(u32, u32), u64>,
    /// Merged global admission order, restricted to entries touching us.
    admission: VecDeque<TxnId>,
    /// The admission set, for O(1) membership tests.
    queued: FxHashSet<TxnId>,
    /// Transactions named (for us) in a buffered log whose epoch has not
    /// merged yet — their fragments are held, not passed through.
    pending: FxHashSet<TxnId>,
    /// Fragments that arrived before their turn in the admission order.
    held: FxHashMap<TxnId, FragmentTask<F>>,
    stats: SequencerStats,
}

impl<F> PartitionSequencer<F> {
    /// A primary alive since the start of the run: in sync by definition.
    pub fn new(me: PartitionId, shards: u32) -> Self {
        PartitionSequencer {
            me,
            shards: shards.max(1),
            synced: true,
            era: 0,
            epoch: 0,
            logs: FxHashMap::default(),
            ends: FxHashMap::default(),
            admission: VecDeque::new(),
            queued: FxHashSet::default(),
            pending: FxHashSet::default(),
            held: FxHashMap::default(),
            stats: SequencerStats::default(),
        }
    }

    /// A freshly promoted primary: unsynced until every shard's era ends.
    pub fn promoted(me: PartitionId, shards: u32) -> Self {
        let mut s = Self::new(me, shards);
        s.synced = false;
        s
    }

    /// Does the sequencer gate this fragment at all? Only centrally
    /// coordinated multi-partition round-0 fragments are sequenced:
    /// single-partition work bypasses the layer entirely, later rounds
    /// are ordered by their round-0 admission, and the locking scheme's
    /// client-driven fragments never appear in any shard's log.
    #[inline]
    pub fn gates(task: &FragmentTask<F>) -> bool {
        task.multi_partition
            && task.round == 0
            && matches!(task.coordinator, CoordinatorRef::Central(_))
    }

    /// An epoch log (or era-end marker) arrived from a shard. Returns any
    /// held fragments newly released (admitted by the merge, or orphaned
    /// by an era discard at sync), in admission order.
    pub fn on_log(&mut self, log: EpochLog) -> Vec<FragmentTask<F>> {
        let mut deliver = Vec::new();
        if log.era < self.era || (log.era == self.era && !log.era_end && log.epoch < self.epoch) {
            // Stale: an era (or epoch) we already merged past. Only
            // possible around failovers.
            if !log.entries.is_empty() {
                self.stats.logs_discarded += 1;
            }
            return deliver;
        }
        if log.era_end {
            self.ends.insert((log.era, log.shard.0), log.epoch);
        } else {
            for (txn, participants) in &log.entries {
                if participants.contains(&self.me) {
                    self.pending.insert(*txn);
                }
            }
            self.logs
                .insert((log.era, log.epoch, log.shard.0), log.entries);
        }
        if !self.synced {
            self.try_sync(&mut deliver);
            if !self.synced {
                return deliver;
            }
        }
        self.merge_ready(&mut deliver);
        deliver
    }

    /// A promoted primary syncs once every shard has ended an era on its
    /// link: everything after a shard's `era_end` marker is, by link
    /// FIFO-ness, a complete view of that shard's later eras, so the
    /// merge can join at the era after the latest marker. Buffered logs
    /// from older eras are discarded, and any fragments held for their
    /// entries are released out-of-band (their transactions all touched
    /// this failed partition, so the membership update is already
    /// aborting them at their shards — executing them is moot but safe).
    fn try_sync(&mut self, deliver: &mut Vec<FragmentTask<F>>) {
        let mut start = 0u32;
        for s in 0..self.shards {
            match self
                .ends
                .iter()
                .filter(|((_, shard), _)| *shard == s)
                .map(|((era, _), _)| *era)
                .max()
            {
                Some(e) => start = start.max(e + 1),
                None => return, // this shard's era has not ended yet
            }
        }
        self.synced = true;
        self.era = start;
        self.epoch = 0;
        let me = self.me;
        // Sorted sweep: the release order of orphaned held fragments is
        // part of the driver's event stream (determinism guarantee).
        let mut stale: Vec<(u32, u64, u32)> = self
            .logs
            .keys()
            .filter(|(era, _, _)| *era < start)
            .copied()
            .collect();
        stale.sort_unstable();
        for key in stale {
            let entries = self.logs.remove(&key).expect("key from the map");
            if !entries.is_empty() {
                self.stats.logs_discarded += 1;
            }
            for (txn, participants) in entries {
                if participants.contains(&me) {
                    self.pending.remove(&txn);
                    if let Some(task) = self.held.remove(&txn) {
                        self.stats.passthrough += 1;
                        deliver.push(task);
                    }
                }
            }
        }
        self.ends.retain(|(era, _), _| *era >= start);
    }

    /// Merge every epoch that has a log (or a past-the-end marker) from
    /// all shards, appending entries that touch us to the admission
    /// order; advance eras once exhausted; release newly admissible held
    /// fragments.
    fn merge_ready(&mut self, deliver: &mut Vec<FragmentTask<F>>) {
        loop {
            let ended = |ends: &FxHashMap<(u32, u32), u64>, era: u32, s: u32, e: u64| -> bool {
                ends.get(&(era, s)).is_some_and(|&end| e >= end)
            };
            // Era exhausted once every shard has ended it at or before
            // the merge point: restart numbering in the next era. (Checked
            // *before* the merge step — an all-past-the-end epoch would
            // otherwise merge as empty forever.)
            let exhausted = (0..self.shards).all(|s| ended(&self.ends, self.era, s, self.epoch));
            if exhausted {
                let era = self.era;
                self.ends.retain(|(e, _), _| *e != era);
                self.era += 1;
                self.epoch = 0;
                continue;
            }
            let ready = (0..self.shards).all(|s| {
                self.logs.contains_key(&(self.era, self.epoch, s))
                    || ended(&self.ends, self.era, s, self.epoch)
            });
            if !ready {
                break;
            }
            for s in 0..self.shards {
                if let Some(entries) = self.logs.remove(&(self.era, self.epoch, s)) {
                    for (txn, participants) in entries {
                        if participants.contains(&self.me) {
                            self.pending.remove(&txn);
                            self.admission.push_back(txn);
                            self.queued.insert(txn);
                        }
                    }
                }
            }
            self.epoch += 1;
        }
        self.release_held(deliver);
    }

    /// Pop every admission-order head whose fragment is already here.
    fn release_held(&mut self, deliver: &mut Vec<FragmentTask<F>>) {
        while let Some(front) = self.admission.front() {
            match self.held.remove(front) {
                Some(task) => {
                    self.queued.remove(front);
                    self.admission.pop_front();
                    deliver.push(task);
                }
                None => break,
            }
        }
    }

    /// A centrally coordinated multi-partition round-0 fragment arrived
    /// (the caller has already checked [`PartitionSequencer::gates`]).
    pub fn on_mp_fragment(&mut self, task: FragmentTask<F>) -> Admit<F> {
        if self.admission.front() == Some(&task.txn) {
            self.queued.remove(&task.txn);
            self.admission.pop_front();
            let mut deliver = vec![task];
            self.release_held(&mut deliver);
            return Admit::Deliver(deliver);
        }
        if self.queued.contains(&task.txn) || self.pending.contains(&task.txn) {
            // Sequenced behind earlier entries (or behind an epoch still
            // waiting for a peer shard's log): hold until its turn.
            self.held.insert(task.txn, task);
            return Admit::Held;
        }
        // No log entry at all: an in-doubt redelivery or a straggler
        // whose era this (promoted) primary discarded. Both are safe to
        // run immediately — redeliveries are already globally committed,
        // and stragglers are being aborted at their shard by the same
        // membership update that reset us.
        self.stats.passthrough += 1;
        Admit::Deliver(vec![task])
    }

    /// Transactions admitted to the order but not yet delivered (their
    /// fragments still in flight).
    pub fn backlog(&self) -> usize {
        self.admission.len()
    }

    pub fn stats(&self) -> &SequencerStats {
        &self.stats
    }

    pub fn stats_mut(&mut self) -> &mut SequencerStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{SimpleMpProcedure, TestFragment, TestOutput};

    fn txid(n: u32) -> TxnId {
        TxnId::new(ClientId(n), 0)
    }

    fn proc_for(parts: &[u32]) -> Box<dyn Procedure<TestFragment, TestOutput>> {
        Box::new(SimpleMpProcedure {
            fragments: parts
                .iter()
                .map(|p| (PartitionId(*p), TestFragment::default()))
                .collect(),
        })
    }

    fn task(n: u32, shard: u32) -> FragmentTask<TestFragment> {
        FragmentTask {
            txn: txid(n),
            coordinator: CoordinatorRef::Central(CoordinatorId(shard)),
            client: ClientId(n),
            fragment: TestFragment::default(),
            multi_partition: true,
            last_fragment: true,
            round: 0,
            can_abort: false,
        }
    }

    fn log(shard: u32, era: u32, epoch: u64, txns: &[u32]) -> EpochLog {
        EpochLog {
            shard: CoordinatorId(shard),
            era,
            epoch,
            entries: txns
                .iter()
                .map(|n| (txid(*n), vec![PartitionId(0), PartitionId(1)]))
                .collect(),
            era_end: false,
        }
    }

    fn end(shard: u32, era: u32, epoch: u64) -> EpochLog {
        EpochLog {
            shard: CoordinatorId(shard),
            era,
            epoch,
            entries: Vec::new(),
            era_end: true,
        }
    }

    #[test]
    fn shard_closes_on_count_boundary() {
        let mut s = ShardSequencer::new(CoordinatorId(0), 2);
        assert!(s
            .push(txid(1), ClientId(1), proc_for(&[0, 1]), false, Nanos(10))
            .is_none());
        let closed = s
            .push(txid(2), ClientId(2), proc_for(&[1, 2]), false, Nanos(20))
            .expect("second push hits the batch boundary");
        assert_eq!(closed.log.epoch, 0);
        assert_eq!(closed.log.entries.len(), 2);
        assert_eq!(closed.log.entries[0].0, txid(1));
        assert_eq!(
            closed.log.entries[1].1,
            vec![PartitionId(1), PartitionId(2)]
        );
        assert_eq!(closed.invokes.len(), 2);
        assert!(s.is_empty());
        assert_eq!(s.stats().epochs_closed, 1);
        assert_eq!(s.stats().batch_sum, 2);
        assert_eq!(s.stats().batch_max, 2);
        assert_eq!(s.stats().seq_hold.count(), 2);
        // Next close is epoch 1.
        let next = s.close(Nanos(30), CloseKind::Age);
        assert_eq!(next.log.epoch, 1);
        assert_eq!(s.stats().age_closes, 1);
    }

    #[test]
    fn peer_log_cascades_through_empty_epochs() {
        let mut s = ShardSequencer::new(CoordinatorId(1), 64);
        s.push(txid(7), ClientId(7), proc_for(&[0]), false, Nanos(5));
        // Peer closed epoch 2; we must close 0 (our one entry), 1, 2.
        let closed = s.on_peer_log(&log(0, 0, 2, &[99]), Nanos(9));
        assert_eq!(closed.len(), 3);
        assert_eq!(closed[0].log.epoch, 0);
        assert_eq!(closed[0].invokes.len(), 1);
        assert!(closed[1].invokes.is_empty() && closed[2].invokes.is_empty());
        assert_eq!(s.stats().forced_closes, 3);
        // Already past epoch 2: the same peer log is a no-op now.
        assert!(s.on_peer_log(&log(0, 0, 2, &[99]), Nanos(10)).is_empty());
        // Logs from another era are ignored.
        assert!(s.on_peer_log(&log(0, 3, 9, &[99]), Nanos(11)).is_empty());
    }

    #[test]
    fn era_change_bounces_buffer_and_restarts_epochs() {
        let mut s: ShardSequencer<TestFragment, TestOutput> =
            ShardSequencer::new(CoordinatorId(0), 64);
        s.close(Nanos(1), CloseKind::Age); // epoch 0 closed
        s.push(txid(3), ClientId(3), proc_for(&[0, 1]), false, Nanos(2));
        let (marker, bounced) = s.on_era_change();
        assert!(marker.era_end);
        assert_eq!(marker.era, 0);
        assert_eq!(marker.epoch, 1, "open epoch at the era end");
        assert!(marker.entries.is_empty());
        assert_eq!(bounced.len(), 1);
        assert_eq!(bounced[0].txn, txid(3));
        // New era starts at epoch 0.
        let c = s.close(Nanos(4), CloseKind::Age);
        assert_eq!((c.log.era, c.log.epoch), (1, 0));
    }

    #[test]
    fn broadcast_dests_cover_partitions_and_peers() {
        let dests: Vec<_> = broadcast_dests(2, 3, CoordinatorId(1)).collect();
        assert_eq!(
            dests,
            vec![
                EpochLogDest::Partition(PartitionId(0)),
                EpochLogDest::Partition(PartitionId(1)),
                EpochLogDest::Shard(CoordinatorId(0)),
                EpochLogDest::Shard(CoordinatorId(2)),
            ]
        );
    }

    #[test]
    fn partition_admits_round_robin_interleave() {
        let mut p = PartitionSequencer::new(PartitionId(0), 2);
        // Epoch 0: shard 0 logs [1, 2], shard 1 logs [3]. Global order:
        // 1, 2, 3 (shard 0 first within the epoch).
        assert!(p.on_log(log(1, 0, 0, &[3])).is_empty());
        assert!(p.on_log(log(0, 0, 0, &[1, 2])).is_empty());
        assert_eq!(p.backlog(), 3);
        // Fragments arrive out of order: 3 first — held.
        assert!(matches!(p.on_mp_fragment(task(3, 1)), Admit::Held));
        // 2 — held (1 is the head).
        assert!(matches!(p.on_mp_fragment(task(2, 0)), Admit::Held));
        // 1 — delivered, and releases 2 then 3.
        match p.on_mp_fragment(task(1, 0)) {
            Admit::Deliver(tasks) => {
                let order: Vec<_> = tasks.iter().map(|t| t.txn).collect();
                assert_eq!(order, vec![txid(1), txid(2), txid(3)]);
            }
            _ => panic!("head fragment must deliver"),
        }
        assert_eq!(p.backlog(), 0);
        assert_eq!(p.stats().passthrough, 0);
    }

    #[test]
    fn fragment_ahead_of_peer_log_is_held_not_passed_through() {
        let mut p = PartitionSequencer::new(PartitionId(0), 2);
        // Shard 0's log and fragment arrive; shard 1's epoch-0 log is
        // still in flight. The fragment must wait (its entry is pending,
        // not merged), otherwise it would execute out of global order.
        assert!(p.on_log(log(0, 0, 0, &[1])).is_empty());
        assert!(matches!(p.on_mp_fragment(task(1, 0)), Admit::Held));
        // Shard 1's (empty) log completes the epoch and releases it.
        let released = p.on_log(log(1, 0, 0, &[]));
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].txn, txid(1));
        assert_eq!(p.stats().passthrough, 0);
    }

    #[test]
    fn entries_for_other_partitions_are_skipped() {
        let mut p: PartitionSequencer<TestFragment> = PartitionSequencer::new(PartitionId(5), 1);
        // Entries touch partitions 0 and 1 only.
        assert!(p.on_log(log(0, 0, 0, &[1, 2])).is_empty());
        assert_eq!(p.backlog(), 0);
    }

    #[test]
    fn unknown_transaction_passes_through() {
        // An in-doubt redelivery names a transaction no current log
        // mentions: it must run immediately.
        let mut p = PartitionSequencer::new(PartitionId(0), 1);
        match p.on_mp_fragment(task(42, 0)) {
            Admit::Deliver(t) => assert_eq!(t[0].txn, txid(42)),
            _ => panic!("unknown transactions pass through"),
        }
        assert_eq!(p.stats().passthrough, 1);
    }

    #[test]
    fn era_end_markers_drain_and_advance_eras() {
        let mut p = PartitionSequencer::new(PartitionId(0), 2);
        // Shard 0 closes epoch 0 with an entry, then its era ends at 1;
        // shard 1 was idle: era ends at 0.
        assert!(p.on_log(log(0, 0, 0, &[1])).is_empty());
        assert!(p.on_log(end(1, 0, 0)).is_empty());
        // Epoch 0 merges: shard 1 is past-the-end → empty.
        assert_eq!(p.backlog(), 1);
        assert!(p.on_log(end(0, 0, 1)).is_empty());
        // Era 0 exhausted; era 1 epoch 0 from both shards merges next.
        assert!(p.on_log(log(0, 1, 0, &[2])).is_empty());
        assert!(p.on_log(log(1, 1, 0, &[3])).is_empty());
        assert_eq!(p.backlog(), 3);
        match p.on_mp_fragment(task(1, 0)) {
            Admit::Deliver(t) => assert_eq!(t.len(), 1),
            _ => panic!(),
        }
    }

    #[test]
    fn promoted_primary_syncs_at_first_complete_era() {
        let mut p = PartitionSequencer::promoted(PartitionId(0), 2);
        // Old-era straggler log: buffered, then discarded at sync.
        assert!(p.on_log(log(0, 0, 7, &[9])).is_empty());
        // Its fragment is held while the log is pending...
        assert!(matches!(p.on_mp_fragment(task(9, 0)), Admit::Held));
        // ...and released out-of-band when sync discards its era.
        assert!(p.on_log(end(0, 0, 8)).is_empty());
        let released = p.on_log(end(1, 0, 3));
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].txn, txid(9));
        assert_eq!(p.stats().logs_discarded, 1);
        assert_eq!(p.stats().passthrough, 1);
        // Era 1 merges normally.
        p.on_log(log(0, 1, 0, &[11]));
        p.on_log(log(1, 1, 0, &[]));
        assert_eq!(p.backlog(), 1);
        match p.on_mp_fragment(task(11, 0)) {
            Admit::Deliver(t) => assert_eq!(t[0].txn, txid(11)),
            _ => panic!("post-sync traffic must sequence normally"),
        }
    }

    #[test]
    fn unsynced_primary_buffers_new_era_logs() {
        let mut p: PartitionSequencer<TestFragment> =
            PartitionSequencer::promoted(PartitionId(0), 1);
        // New-era log arrives before the old era's marker: buffered.
        assert!(p.on_log(log(0, 1, 0, &[5])).is_empty());
        assert_eq!(p.backlog(), 0, "unsynced: nothing admitted");
        // Marker arrives: sync at era 1 and merge the buffered log.
        assert!(p.on_log(end(0, 0, 4)).is_empty());
        assert_eq!(p.backlog(), 1);
    }

    #[test]
    fn gates_only_central_mp_round_zero() {
        let mut t = task(1, 0);
        assert!(PartitionSequencer::gates(&t));
        t.round = 1;
        assert!(!PartitionSequencer::gates(&t));
        t.round = 0;
        t.multi_partition = false;
        assert!(!PartitionSequencer::gates(&t));
        t.multi_partition = true;
        t.coordinator = CoordinatorRef::Client(ClientId(3));
        assert!(!PartitionSequencer::gates(&t), "locking MP is not gated");
    }

    #[test]
    fn merge_is_deterministic_under_arrival_permutations() {
        // Same logs in two arrival orders → same admission order.
        let logs = [
            log(0, 0, 0, &[1]),
            log(1, 0, 0, &[2, 3]),
            log(0, 0, 1, &[4]),
            log(1, 0, 1, &[]),
        ];
        let admitted = |order: &[usize]| {
            let mut p = PartitionSequencer::new(PartitionId(0), 2);
            for &i in order {
                p.on_log(logs[i].clone());
            }
            let mut seen = Vec::new();
            for n in [1u32, 2, 3, 4] {
                if let Admit::Deliver(ts) = p.on_mp_fragment(task(n, 0)) {
                    seen.extend(ts.iter().map(|t| t.txn));
                }
            }
            seen
        };
        let a = admitted(&[0, 1, 2, 3]);
        let b = admitted(&[3, 2, 1, 0]);
        assert_eq!(a, b);
        assert_eq!(a, vec![txid(1), txid(2), txid(3), txid(4)]);
    }
}
