//! The scheduler interface every concurrency control scheme implements.

use crate::engine::ExecutionEngine;
use crate::outbox::Outbox;
use hcc_common::stats::{AdaptiveStats, SchedulerCounters, SwitchRecord};
use hcc_common::{Decision, FragmentTask, Nanos, Scheme, SchemeSwitch, SystemConfig};

/// A concurrency control scheme for one partition, driven by events.
///
/// All methods receive `now` (virtual or wall time, in nanoseconds) for
/// timeout bookkeeping, and an [`Outbox`] into which they emit messages and
/// CPU charges. Schedulers never block: a fragment that cannot run yet is
/// queued internally.
pub trait Scheduler<E: ExecutionEngine> {
    /// A transaction fragment arrived (from a client or a coordinator).
    fn on_fragment(
        &mut self,
        task: FragmentTask<E::Fragment>,
        engine: &mut E,
        now: Nanos,
        out: &mut Outbox<E::Output>,
    );

    /// A two-phase-commit decision arrived from the coordinator.
    fn on_decision(
        &mut self,
        decision: Decision,
        engine: &mut E,
        now: Nanos,
        out: &mut Outbox<E::Output>,
    );

    /// Periodic maintenance (the locking scheme checks lock-wait timeouts
    /// here). Returns the delay until the scheduler next wants a tick, or
    /// `None` if it has no timers pending.
    fn on_tick(&mut self, engine: &mut E, now: Nanos, out: &mut Outbox<E::Output>)
        -> Option<Nanos>;

    /// Aggregated counters (merged across partitions by the driver).
    fn counters(&self) -> SchedulerCounters;

    /// True when no transaction is active, queued, or awaiting a decision.
    fn is_idle(&self) -> bool;

    /// Adaptive-controller statistics (ISSUE 10), closed out at `now` so
    /// the final residency segment is included. `None` for every concrete
    /// scheme — only the [`crate::adaptive::AdaptiveScheduler`] wrapper
    /// reports.
    fn adaptive_stats(&self, now: Nanos) -> Option<AdaptiveStats> {
        let _ = now;
        None
    }

    /// Drain the scheme switches performed since the last drain. Drivers
    /// call this after every event batch and stamp the records into the
    /// next commit record, so replicas (and a promoted backup) follow the
    /// primary through the same transitions. Empty for every concrete
    /// scheme.
    fn take_switch_notes(&mut self) -> Vec<SwitchRecord> {
        Vec::new()
    }
}

/// One source of truth for scheduler construction: both `make_scheduler`
/// variants expand this, differing only in the trait object's `Send`
/// bound (a type position a generic function can't abstract over).
macro_rules! build_scheduler {
    ($config:expr, $me:expr, $resume:expr) => {
        if $config.adaptive.is_on() {
            // ISSUE 10: `scheme` is only the starting point — wrap it in
            // the adaptive controller, which re-plans live from observed
            // statistics (and resumes its predecessor's scheme/epoch
            // after a promotion).
            Box::new(crate::adaptive::AdaptiveScheduler::new(
                $config, $me, $resume,
            ))
        } else {
            match $config.scheme {
                Scheme::Blocking => {
                    let mut s = crate::blocking::BlockingScheduler::new($me, $config.costs);
                    s.set_sequenced($config.sequencing_active());
                    Box::new(s)
                }
                Scheme::Speculative => {
                    let mut s = crate::speculative::SpeculativeScheduler::new(
                        $me,
                        $config.costs,
                        $config.max_speculation_depth,
                    );
                    s.set_local_only($config.local_speculation_only);
                    s.set_sequenced($config.sequencing_active());
                    Box::new(s)
                }
                Scheme::Locking => Box::new(crate::locking_sched::LockingScheduler::new(
                    $me,
                    $config.costs,
                    $config.lock_timeout,
                )),
                Scheme::Occ => Box::new(crate::occ::OccScheduler::new($me, $config.costs)),
            }
        }
    };
}

/// Construct the scheduler selected by `config.scheme` for partition `me`.
pub fn make_scheduler<E: ExecutionEngine + 'static>(
    config: &SystemConfig,
    me: hcc_common::PartitionId,
) -> Box<dyn Scheduler<E>> {
    build_scheduler!(config, me, None)
}

/// As [`make_scheduler`], but resuming from the last [`SchemeSwitch`] a
/// replica applied — what a promoted backup passes so it continues in the
/// scheme (and at the transition epoch) its failed primary had reached.
/// Ignored unless adaptive selection is on (the scheme is static then).
pub fn make_scheduler_resumed<E: ExecutionEngine + 'static>(
    config: &SystemConfig,
    me: hcc_common::PartitionId,
    resume: Option<SchemeSwitch>,
) -> Box<dyn Scheduler<E>> {
    build_scheduler!(config, me, resume)
}

/// As [`make_scheduler`], but a `Send` trait object, for drivers that move
/// partition state machines across threads (the live runtime's backends).
pub fn make_scheduler_send<E>(
    config: &SystemConfig,
    me: hcc_common::PartitionId,
) -> Box<dyn Scheduler<E> + Send>
where
    E: ExecutionEngine + Send + 'static,
    E::Fragment: Send,
    E::Output: Send,
{
    build_scheduler!(config, me, None)
}

/// [`make_scheduler_resumed`], `Send` variant (see [`make_scheduler_send`]).
pub fn make_scheduler_send_resumed<E>(
    config: &SystemConfig,
    me: hcc_common::PartitionId,
    resume: Option<SchemeSwitch>,
) -> Box<dyn Scheduler<E> + Send>
where
    E: ExecutionEngine + Send + 'static,
    E::Fragment: Send,
    E::Output: Send,
{
    build_scheduler!(config, me, resume)
}
