//! Group-commit batching policy for the durable command log (paper §2.3:
//! "transactions are committed in batches ... the log is synced once per
//! batch, amortizing the disk latency over the group").
//!
//! The policy is a pure state machine shared by both drivers: it watches
//! appends accumulate and decides *when* the log should be synced — when the
//! batch fills ([`DurabilityConfig::max_batch`]) or when the oldest unsynced
//! record has waited [`DurabilityConfig::group_commit_interval`]. The driver
//! owns the [`DurableLog`](hcc_storage::DurableLog) itself and performs the
//! sync; results for records in the batch are parked until the sync
//! completes (clients only see a commit once it is durable).
//!
//! The **stall guard** is the robustness half: a log whose sync does not
//! complete within [`DurabilityConfig::sync_deadline`] must not wedge every
//! client parked behind it. When [`GroupCommit::stalled`] fires, the driver
//! aborts the in-flight batch with the retryable
//! [`AbortReason::LogStalled`](hcc_common::AbortReason::LogStalled) instead
//! of holding results forever. The records may still be on disk (append
//! succeeded, sync never confirmed), so a stalled-batch abort is the one
//! place the system chooses at-least-once over exactly-once: a retried
//! transaction re-executes under a fresh transaction id.

use hcc_common::stats::DurabilityCounters;
use hcc_common::{DurabilityConfig, Nanos};

/// What the driver should do with the log right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushDecision {
    /// Keep accumulating; nothing to do.
    None,
    /// Sync the log now (batch full or interval elapsed).
    SyncNow,
}

/// Group-commit batching state for one partition's command log.
#[derive(Debug)]
pub struct GroupCommit {
    cfg: DurabilityConfig,
    /// Records appended since the last completed sync.
    pending: u64,
    /// When the oldest unsynced record was appended.
    first_pending_at: Option<Nanos>,
    /// When the in-flight sync was issued (`None` if no sync outstanding).
    sync_issued_at: Option<Nanos>,
    pub counters: DurabilityCounters,
}

impl GroupCommit {
    pub fn new(cfg: DurabilityConfig) -> Self {
        GroupCommit {
            cfg,
            pending: 0,
            first_pending_at: None,
            sync_issued_at: None,
            counters: DurabilityCounters::default(),
        }
    }

    pub fn config(&self) -> &DurabilityConfig {
        &self.cfg
    }

    /// Records appended but not yet durable.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// A commit record was appended at `now`. Returns [`FlushDecision::SyncNow`]
    /// when the batch is full.
    pub fn on_append(&mut self, now: Nanos) -> FlushDecision {
        self.pending += 1;
        self.counters.records_appended += 1;
        if self.first_pending_at.is_none() {
            self.first_pending_at = Some(now);
        }
        if self.pending >= self.cfg.max_batch && self.sync_issued_at.is_none() {
            FlushDecision::SyncNow
        } else {
            FlushDecision::None
        }
    }

    /// Time-based poll (the driver's flush tick). Returns
    /// [`FlushDecision::SyncNow`] when the oldest unsynced record has waited
    /// a full group-commit interval and no sync is already in flight.
    pub fn poll(&mut self, now: Nanos) -> FlushDecision {
        match self.first_pending_at {
            Some(first)
                if self.sync_issued_at.is_none()
                    && now >= first + self.cfg.group_commit_interval =>
            {
                FlushDecision::SyncNow
            }
            _ => FlushDecision::None,
        }
    }

    /// When the next flush tick is needed (`None` when nothing is pending or
    /// a sync is already in flight). Drivers with timer wheels schedule a
    /// tick here; drivers with periodic ticks just call [`poll`](Self::poll).
    pub fn flush_deadline(&self) -> Option<Nanos> {
        match (self.first_pending_at, self.sync_issued_at) {
            (Some(first), None) => Some(first + self.cfg.group_commit_interval),
            _ => None,
        }
    }

    /// The driver issued a sync at `now` (it may complete asynchronously).
    pub fn on_sync_issued(&mut self, now: Nanos) {
        self.sync_issued_at = Some(now);
    }

    /// The sync completed: the batch is durable.
    pub fn on_synced(&mut self) {
        self.counters.syncs += 1;
        self.pending = 0;
        self.first_pending_at = None;
        self.sync_issued_at = None;
    }

    /// Absolute deadline after which the in-flight batch counts as stalled
    /// (`None` when the stall guard is disabled or nothing is pending).
    /// Measured from the *oldest unsynced append*, not the sync issue time,
    /// so a sync that is never issued (driver wedged) also trips it.
    pub fn stall_deadline(&self) -> Option<Nanos> {
        let deadline = self.cfg.sync_deadline?;
        Some(self.first_pending_at? + deadline)
    }

    /// Has the in-flight batch stalled past the sync deadline?
    pub fn stalled(&self, now: Nanos) -> bool {
        matches!(self.stall_deadline(), Some(d) if now >= d)
    }

    /// The driver gave up on the batch: `aborted` parked results were
    /// bounced with `LogStalled`. The batch slate is wiped so the log can
    /// accept new appends (the underlying records stay in the file — they
    /// are simply never acknowledged).
    pub fn on_stall_abort(&mut self, aborted: u64) {
        self.counters.stalled_aborts += aborted;
        self.pending = 0;
        self.first_pending_at = None;
        self.sync_issued_at = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DurabilityConfig {
        DurabilityConfig::default()
            .with_interval(Nanos::from_micros(500))
            .with_max_batch(4)
            .with_sync_deadline(Some(Nanos::from_millis(10)))
    }

    #[test]
    fn batch_fills_then_syncs() {
        let mut gc = GroupCommit::new(cfg());
        let t = Nanos::from_micros(1);
        assert_eq!(gc.on_append(t), FlushDecision::None);
        assert_eq!(gc.on_append(t), FlushDecision::None);
        assert_eq!(gc.on_append(t), FlushDecision::None);
        assert_eq!(gc.on_append(t), FlushDecision::SyncNow);
        gc.on_sync_issued(t);
        // More appends while a sync is in flight never double-issue.
        assert_eq!(gc.on_append(t), FlushDecision::None);
        gc.on_synced();
        assert_eq!(gc.counters.syncs, 1);
        assert_eq!(gc.counters.records_appended, 5);
    }

    #[test]
    fn interval_elapses_for_partial_batch() {
        let mut gc = GroupCommit::new(cfg());
        let t0 = Nanos::from_micros(100);
        gc.on_append(t0);
        assert_eq!(gc.poll(t0 + Nanos::from_micros(499)), FlushDecision::None);
        assert_eq!(gc.flush_deadline(), Some(t0 + Nanos::from_micros(500)));
        assert_eq!(
            gc.poll(t0 + Nanos::from_micros(500)),
            FlushDecision::SyncNow
        );
        gc.on_sync_issued(t0 + Nanos::from_micros(500));
        assert_eq!(gc.flush_deadline(), None, "sync in flight");
        gc.on_synced();
        assert_eq!(gc.poll(t0 + Nanos::from_millis(5)), FlushDecision::None);
    }

    #[test]
    fn stall_guard_measures_from_first_append() {
        let mut gc = GroupCommit::new(cfg());
        let t0 = Nanos::from_micros(7);
        gc.on_append(t0);
        assert!(!gc.stalled(t0 + Nanos::from_millis(9)));
        assert!(gc.stalled(t0 + Nanos::from_millis(10)));
        gc.on_stall_abort(1);
        assert_eq!(gc.counters.stalled_aborts, 1);
        assert!(!gc.stalled(t0 + Nanos::from_millis(20)), "slate wiped");
        assert_eq!(gc.pending(), 0);
    }

    #[test]
    fn stall_guard_can_be_disabled() {
        let mut gc = GroupCommit::new(cfg().with_sync_deadline(None));
        gc.on_append(Nanos::ZERO);
        assert!(!gc.stalled(Nanos::from_secs(100)));
        assert_eq!(gc.stall_deadline(), None);
    }
}
