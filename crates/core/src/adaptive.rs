//! Live per-partition scheme switching driven by the §5.7/§6 model — the
//! paper's closed loop.
//!
//! §5.7 observes that the best concurrency control scheme depends on the
//! workload ("a database system could measure these statistics and use
//! this model to select the best scheme") and §6 gives the model. This
//! module is that sentence as code: [`AdaptiveScheduler`] wraps one of the
//! four concrete schedulers, measures the statistics the model needs over
//! sliding windows of transaction *outcomes*, asks
//! [`hcc_model::recommend`] for the winner, and — with hysteresis, so a
//! noisy window cannot thrash — performs a live swap:
//!
//! 1. **Decide.** A window closes every `window` outcomes
//!    (commits + aborts, a deterministic event count — never wall time,
//!    which would differ between the simulator and the live runtime). The
//!    window's [`SchedulerCounters`] delta yields the observed
//!    multi-partition fraction, abort rate, conflict rate, multi-round
//!    share and mean fragment cost; the model's verdict must beat the
//!    incumbent by `margin` for [`AdaptiveConfig::CONSECUTIVE_WINDOWS`]
//!    windows in a row before a switch is scheduled.
//! 2. **Quiesce.** New transactions (round-0 fragments) are held in the
//!    wrapper; in-flight rounds and 2PC decisions pass through, so every
//!    speculation chain resolves and every prepared transaction gets its
//!    decision. The held work never deadlocks the drain: nothing the
//!    inner scheduler is waiting for depends on admitting a new
//!    transaction.
//! 3. **Swap.** The moment the inner scheduler reports
//!    [`Scheduler::is_idle`], its counters are folded into the wrapper's
//!    running total, the new scheme's scheduler is built, the transition
//!    epoch is bumped, a [`SwitchRecord`] is queued for the driver (which
//!    ships it to replicas inside the commit log, so failover lands in
//!    the same scheme at the same epoch), and the held fragments replay
//!    in arrival order.
//!
//! Everything here is event-driven and deterministic: the same event
//! sequence produces the same windows, the same verdicts and the same
//! switch points in the simulator and in both runtime backends.

use crate::engine::ExecutionEngine;
use crate::outbox::Outbox;
use crate::scheduler::Scheduler;
use hcc_common::stats::{AdaptiveStats, SchedulerCounters, SwitchRecord};
use hcc_common::{
    AdaptiveConfig, Decision, FragmentTask, Nanos, PartitionId, Scheme, SchemeSwitch, SystemConfig,
};
use hcc_model::{recommend, ModelParams, WorkloadProfile};
use std::collections::VecDeque;

/// The four concrete schedulers as one sum type, so the wrapper can swap
/// between them without boxing (and stays `Send` whenever they are).
pub enum AnySched<E: ExecutionEngine> {
    Blocking(crate::blocking::BlockingScheduler<E>),
    Speculative(crate::speculative::SpeculativeScheduler<E>),
    Locking(crate::locking_sched::LockingScheduler<E>),
    Occ(crate::occ::OccScheduler<E>),
}

impl<E: ExecutionEngine> AnySched<E> {
    /// Build the scheduler for `scheme` with the same knobs
    /// `make_scheduler` would apply (sequencing is mutually exclusive
    /// with adaptive, so the sequenced flags are always off here).
    pub fn build(config: &SystemConfig, me: PartitionId, scheme: Scheme) -> Self {
        match scheme {
            Scheme::Blocking => {
                let mut s = crate::blocking::BlockingScheduler::new(me, config.costs);
                s.set_sequenced(config.sequencing_active());
                AnySched::Blocking(s)
            }
            Scheme::Speculative => {
                let mut s = crate::speculative::SpeculativeScheduler::new(
                    me,
                    config.costs,
                    config.max_speculation_depth,
                );
                s.set_local_only(config.local_speculation_only);
                s.set_sequenced(config.sequencing_active());
                AnySched::Speculative(s)
            }
            Scheme::Locking => AnySched::Locking(crate::locking_sched::LockingScheduler::new(
                me,
                config.costs,
                config.lock_timeout,
            )),
            Scheme::Occ => AnySched::Occ(crate::occ::OccScheduler::new(me, config.costs)),
        }
    }
}

macro_rules! delegate {
    ($self:expr, $inner:pat => $body:expr) => {
        match $self {
            AnySched::Blocking($inner) => $body,
            AnySched::Speculative($inner) => $body,
            AnySched::Locking($inner) => $body,
            AnySched::Occ($inner) => $body,
        }
    };
}

impl<E: ExecutionEngine> Scheduler<E> for AnySched<E> {
    fn on_fragment(
        &mut self,
        task: FragmentTask<E::Fragment>,
        engine: &mut E,
        now: Nanos,
        out: &mut Outbox<E::Output>,
    ) {
        delegate!(self, s => s.on_fragment(task, engine, now, out))
    }

    fn on_decision(
        &mut self,
        decision: Decision,
        engine: &mut E,
        now: Nanos,
        out: &mut Outbox<E::Output>,
    ) {
        delegate!(self, s => s.on_decision(decision, engine, now, out))
    }

    fn on_tick(
        &mut self,
        engine: &mut E,
        now: Nanos,
        out: &mut Outbox<E::Output>,
    ) -> Option<Nanos> {
        delegate!(self, s => s.on_tick(engine, now, out))
    }

    fn counters(&self) -> SchedulerCounters {
        delegate!(self, s => s.counters())
    }

    fn is_idle(&self) -> bool {
        delegate!(self, s => s.is_idle())
    }
}

/// The adaptive controller for one partition. See the module docs for the
/// decide → quiesce → swap protocol.
pub struct AdaptiveScheduler<E: ExecutionEngine> {
    me: PartitionId,
    config: SystemConfig,
    inner: AnySched<E>,
    scheme: Scheme,
    /// Dense transition counter: 0 = the initial scheme, bumped at every
    /// swap. Replicas assert failover parity on (epoch, scheme).
    epoch: u32,
    margin: f64,
    window: u64,
    /// Counters of every retired inner scheduler, so [`Self::counters`]
    /// is monotonic across swaps (the fresh inner restarts from zero).
    retired: SchedulerCounters,
    /// Cumulative snapshot at the open of the current window.
    win_start: SchedulerCounters,
    /// Last conflict-rate estimate from a scheme that could observe one
    /// (blocking observes nothing about conflicts, so it reuses this).
    last_conflict: f64,
    /// Scheme the model proposed last window, and for how many
    /// consecutive windows — the hysteresis state.
    streak_for: Option<Scheme>,
    streak: u32,
    /// Set while quiescing: the scheme to swap to once the inner drains.
    target: Option<Scheme>,
    quiesce_from: Nanos,
    /// Round-0 fragments held during the quiesce, replayed after the swap.
    held: VecDeque<FragmentTask<E::Fragment>>,
    /// Switches not yet drained by the driver (stamped into the commit
    /// log so replicas follow).
    notes: Vec<SwitchRecord>,
    stats: AdaptiveStats,
    /// Start of the current scheme's residency segment.
    residency_mark: Nanos,
    params: ModelParams,
}

impl<E: ExecutionEngine> AdaptiveScheduler<E> {
    /// Build the controller. `resume` carries the last applied
    /// [`SchemeSwitch`] when a backup is promoted mid-run: the new
    /// primary starts in the scheme (and at the epoch) its predecessor
    /// had reached, which is what makes failover land deterministically.
    pub fn new(config: &SystemConfig, me: PartitionId, resume: Option<SchemeSwitch>) -> Self {
        let (margin, window) = match config.adaptive {
            AdaptiveConfig::Model { margin, window } => (margin, window as u64),
            AdaptiveConfig::Off => (AdaptiveConfig::DEFAULT_MARGIN, u64::MAX),
        };
        let (scheme, epoch) = match resume {
            Some(sw) => (sw.scheme, sw.epoch),
            None => (config.scheme, 0),
        };
        AdaptiveScheduler {
            me,
            config: config.clone(),
            inner: AnySched::build(config, me, scheme),
            scheme,
            epoch,
            margin,
            window: window.max(1),
            retired: SchedulerCounters::default(),
            win_start: SchedulerCounters::default(),
            last_conflict: 0.0,
            streak_for: None,
            streak: 0,
            target: None,
            quiesce_from: Nanos::ZERO,
            held: VecDeque::new(),
            notes: Vec::new(),
            stats: AdaptiveStats::default(),
            residency_mark: Nanos::ZERO,
            params: ModelParams::paper_table2(),
        }
    }

    /// The scheme currently executing (or being switched away from).
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Current transition epoch (0 until the first swap).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    fn cumulative(&self) -> SchedulerCounters {
        let mut c = self.retired;
        c.merge(&self.inner.counters());
        c
    }

    /// The model's §6 parameters, rescaled so `t_sp` matches the mean
    /// fragment cost observed this window (the network stall `t_mpN` is
    /// not CPU and stays fixed).
    fn scaled_params(&self, d: &SchedulerCounters) -> ModelParams {
        let base = self.params;
        if d.fragments_executed == 0 || d.execution_ns == 0 {
            return base;
        }
        let mean_frag = d.execution_ns as f64 / d.fragments_executed as f64;
        let scale = mean_frag / base.t_sp.0 as f64;
        if !scale.is_finite() || scale <= 0.0 {
            return base;
        }
        let t_mp_c = Nanos((base.t_mp_c.0 as f64 * scale) as u64);
        ModelParams {
            t_sp: Nanos(mean_frag as u64),
            t_sp_s: Nanos((base.t_sp_s.0 as f64 / base.t_sp.0 as f64 * mean_frag) as u64),
            t_mp: base.t_mp_n() + t_mp_c,
            t_mp_c,
            locking_overhead: base.locking_overhead,
        }
    }

    /// Translate a window's counter delta into the statistics the model
    /// consumes — exactly what §5.7 says a deployment "could measure".
    fn profile(&mut self, d: &SchedulerCounters) -> WorkloadProfile {
        let outcomes = d.outcomes().max(1) as f64;
        let mp_fraction = d.committed_mp as f64 / d.committed.max(1) as f64;
        let abort_rate = d.aborted as f64 / outcomes;
        // Conflict proxy: lock-wait ratio under locking; squash ratio
        // under the speculating schemes (exact under OCC's precise
        // validation, pessimistic under §4.2's assume-all rule); blocking
        // observes nothing and reuses the last estimate.
        let conflict_rate = match self.scheme {
            Scheme::Locking => {
                let total = d.locks_waited + d.locks_granted_immediately;
                if total > 0 {
                    d.locks_waited as f64 / total as f64
                } else {
                    self.last_conflict
                }
            }
            Scheme::Speculative | Scheme::Occ => {
                (d.squashed_executions as f64 / (d.speculative_executions + 1) as f64).min(1.0)
            }
            Scheme::Blocking => self.last_conflict,
        };
        self.last_conflict = conflict_rate;
        // Multi-round share: fragments beyond one per transaction are
        // extra rounds, attributable to multi-partition transactions
        // (squashed re-executions excluded — they are wasted work, not
        // rounds).
        let net_frags = d.fragments_executed.saturating_sub(d.squashed_executions);
        let extra = net_frags.saturating_sub(d.outcomes());
        let multi_round_fraction = if d.committed_mp == 0 {
            0.0
        } else {
            (extra as f64 / d.committed_mp as f64).clamp(0.0, 1.0)
        };
        // Under adaptive, every multi-partition transaction routes
        // through the central coordinator (a partition's scheme can
        // change mid-transaction, so clients cannot run scheme-specific
        // 2PC); ~8 coordinator messages per MP transaction.
        let coord_cost_per_mp_secs = 8.0 * self.config.costs.coord_per_msg.as_secs_f64();
        WorkloadProfile {
            mp_fraction,
            abort_rate,
            conflict_rate,
            multi_round_fraction,
            coord_cost_per_mp_secs,
        }
    }

    /// Close the window if enough outcomes accumulated, score it, and
    /// arm a quiesce when the hysteresis threshold is crossed.
    fn maybe_plan(&mut self, now: Nanos) {
        let cum = self.cumulative();
        let d = cum.delta_since(&self.win_start);
        if d.outcomes() < self.window {
            return;
        }
        self.win_start = cum;
        self.stats.windows_evaluated += 1;
        let params = self.scaled_params(&d);
        let profile = self.profile(&d);
        let rec = recommend(&params, &profile);
        let winner = rec.as_scheme();
        if winner == self.scheme
            || rec.score_of(winner) < (1.0 + self.margin) * rec.score_of(self.scheme)
        {
            self.streak_for = None;
            self.streak = 0;
            return;
        }
        if self.streak_for == Some(winner) {
            self.streak += 1;
        } else {
            self.streak_for = Some(winner);
            self.streak = 1;
        }
        if self.streak >= AdaptiveConfig::CONSECUTIVE_WINDOWS {
            self.streak_for = None;
            self.streak = 0;
            self.target = Some(winner);
            self.quiesce_from = now;
        }
    }

    fn swap(&mut self, to: Scheme, engine: &mut E, now: Nanos, out: &mut Outbox<E::Output>) {
        debug_assert!(self.inner.is_idle());
        self.retired.merge(&self.inner.counters());
        self.stats.residency_ns[self.scheme as usize] +=
            now.0.saturating_sub(self.residency_mark.0);
        self.residency_mark = now;
        self.stats
            .quiesce_stall
            .record(Nanos(now.0.saturating_sub(self.quiesce_from.0)));
        self.epoch += 1;
        self.scheme = to;
        self.inner = AnySched::build(&self.config, self.me, to);
        self.target = None;
        self.stats.switches += 1;
        let record = SwitchRecord {
            partition: self.me.0,
            epoch: self.epoch,
            scheme: to,
            at_ns: now.0,
        };
        self.stats.switch_log.push(record);
        self.notes.push(record);
        // The fresh inner counts from zero; open a fresh window so rates
        // reflect the new scheme only.
        self.win_start = self.cumulative();
        // Replay the held transactions in arrival order.
        while let Some(task) = self.held.pop_front() {
            self.inner.on_fragment(task, engine, now, out);
        }
    }

    /// Runs after every delegated event: completes a pending swap the
    /// moment the drain finishes, otherwise evaluates the window. Both
    /// are functions of the event sequence alone — deterministic.
    fn after_event(&mut self, engine: &mut E, now: Nanos, out: &mut Outbox<E::Output>) {
        match self.target {
            Some(to) => {
                if self.inner.is_idle() {
                    self.swap(to, engine, now, out);
                }
            }
            None => self.maybe_plan(now),
        }
    }
}

impl<E: ExecutionEngine> Scheduler<E> for AdaptiveScheduler<E> {
    fn on_fragment(
        &mut self,
        task: FragmentTask<E::Fragment>,
        engine: &mut E,
        now: Nanos,
        out: &mut Outbox<E::Output>,
    ) {
        // Quiescing: hold new transactions, pass later rounds through —
        // an in-flight transaction's next round is something the drain
        // *waits for*, so holding it would deadlock the swap.
        if self.target.is_some() && task.round == 0 {
            self.stats.held_fragments += 1;
            self.held.push_back(task);
        } else {
            self.inner.on_fragment(task, engine, now, out);
        }
        self.after_event(engine, now, out);
    }

    fn on_decision(
        &mut self,
        decision: Decision,
        engine: &mut E,
        now: Nanos,
        out: &mut Outbox<E::Output>,
    ) {
        self.inner.on_decision(decision, engine, now, out);
        self.after_event(engine, now, out);
    }

    fn on_tick(
        &mut self,
        engine: &mut E,
        now: Nanos,
        out: &mut Outbox<E::Output>,
    ) -> Option<Nanos> {
        let next = self.inner.on_tick(engine, now, out);
        self.after_event(engine, now, out);
        next
    }

    fn counters(&self) -> SchedulerCounters {
        self.cumulative()
    }

    fn is_idle(&self) -> bool {
        self.inner.is_idle() && self.held.is_empty()
    }

    fn adaptive_stats(&self, now: Nanos) -> Option<AdaptiveStats> {
        let mut stats = self.stats.clone();
        // Close the open residency segment so the report covers the
        // whole run.
        stats.residency_ns[self.scheme as usize] += now.0.saturating_sub(self.residency_mark.0);
        Some(stats)
    }

    fn take_switch_notes(&mut self) -> Vec<SwitchRecord> {
        std::mem::take(&mut self.notes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{TestEngine, TestFragment};
    use hcc_common::{ClientId, CoordinatorId, CoordinatorRef, CostModel, TxnId};

    fn sp_task(txn: u32, frag: TestFragment) -> FragmentTask<TestFragment> {
        FragmentTask {
            txn: TxnId::new(ClientId(1), txn),
            coordinator: CoordinatorRef::Client(ClientId(1)),
            client: ClientId(1),
            fragment: frag,
            multi_partition: false,
            last_fragment: true,
            round: 0,
            can_abort: false,
        }
    }

    fn mp_task(txn: u32, frag: TestFragment) -> FragmentTask<TestFragment> {
        FragmentTask {
            txn: TxnId::new(ClientId(9), txn),
            coordinator: CoordinatorRef::Central(CoordinatorId(0)),
            client: ClientId(9),
            fragment: frag,
            multi_partition: true,
            last_fragment: true,
            round: 0,
            can_abort: false,
        }
    }

    fn decision(txn: u32, commit: bool) -> Decision {
        Decision {
            txn: TxnId::new(ClientId(9), txn),
            commit,
        }
    }

    fn adaptive_config(initial: Scheme, margin: f64, window: u32) -> SystemConfig {
        SystemConfig::new(initial).with_adaptive(AdaptiveConfig::Model { margin, window })
    }

    fn setup(
        cfg: &SystemConfig,
    ) -> (
        AdaptiveScheduler<TestEngine>,
        TestEngine,
        Outbox<Vec<(u64, i64)>>,
    ) {
        (
            AdaptiveScheduler::new(cfg, PartitionId(0), None),
            TestEngine::with_data(&[(1, 100), (2, 200)]),
            Outbox::new(CostModel::default()),
        )
    }

    #[test]
    fn delegates_and_accumulates_counters() {
        let cfg = adaptive_config(Scheme::Blocking, 0.15, 256);
        let (mut s, mut e, mut out) = setup(&cfg);
        for i in 1..=5 {
            s.on_fragment(
                sp_task(i, TestFragment::add(1, 1)),
                &mut e,
                Nanos(0),
                &mut out,
            );
        }
        assert_eq!(s.counters().committed, 5);
        assert_eq!(s.counters().committed_mp, 0);
        assert_eq!(s.scheme(), Scheme::Blocking);
        assert_eq!(s.epoch(), 0);
        assert!(s.is_idle());
        assert_eq!(s.adaptive_stats(Nanos(100)).unwrap().switches, 0);
        assert!(s.take_switch_notes().is_empty());
    }

    #[test]
    fn uniform_single_partition_load_never_switches() {
        // At f = 0 no scheme beats blocking by the margin; the streak
        // must never arm.
        let cfg = adaptive_config(Scheme::Blocking, 0.15, 4);
        let (mut s, mut e, mut out) = setup(&cfg);
        for i in 1..=64 {
            s.on_fragment(
                sp_task(i, TestFragment::add(1, 1)),
                &mut e,
                Nanos(i as u64),
                &mut out,
            );
        }
        let stats = s.adaptive_stats(Nanos(1000)).unwrap();
        assert_eq!(stats.switches, 0);
        assert!(stats.windows_evaluated >= 16);
        assert_eq!(s.scheme(), Scheme::Blocking);
        // All residency accrues to the initial scheme.
        assert_eq!(stats.residency_ns[Scheme::Blocking as usize], 1000);
        assert_eq!(stats.residency_ns[Scheme::Speculative as usize], 0);
    }

    #[test]
    fn sustained_mp_load_switches_away_from_blocking() {
        // Pure multi-partition traffic: the §6 model scores blocking at
        // 2/(2·t_mp) — far below the concurrent schemes — so three
        // consecutive windows must arm a switch.
        let cfg = adaptive_config(Scheme::Blocking, 0.10, 2);
        let (mut s, mut e, mut out) = setup(&cfg);
        let mut now = 0u64;
        for i in 1..=20 {
            now += 1000;
            s.on_fragment(
                mp_task(i, TestFragment::add(1, 1)),
                &mut e,
                Nanos(now),
                &mut out,
            );
            now += 1000;
            s.on_decision(decision(i, true), &mut e, Nanos(now), &mut out);
        }
        let stats = s.adaptive_stats(Nanos(now)).unwrap();
        assert!(stats.switches >= 1, "expected a switch: {stats:?}");
        assert_ne!(s.scheme(), Scheme::Blocking);
        assert_eq!(s.epoch() as u64, stats.switches);
        let notes = s.take_switch_notes();
        assert_eq!(notes.len() as u64, stats.switches);
        assert_eq!(notes[0].epoch, 1);
        assert_eq!(notes[0].scheme, stats.switch_log[0].scheme);
        assert!(s.take_switch_notes().is_empty(), "notes drain once");
        // Counters survived the swap: every commit is still counted.
        assert_eq!(s.counters().committed, 20);
        assert_eq!(s.counters().committed_mp, 20);
        // Residency is split between the old and new schemes.
        let resident: Vec<usize> = (0..4).filter(|&i| stats.residency_ns[i] > 0).collect();
        assert!(resident.len() >= 2, "residency: {:?}", stats.residency_ns);
    }

    #[test]
    fn quiesce_holds_new_transactions_and_replays_after_swap() {
        let cfg = adaptive_config(Scheme::Speculative, 0.01, 2);
        let (mut s, mut e, mut out) = setup(&cfg);
        let mut now = 0u64;
        // Five committed MP transactions: windows close at outcomes 2
        // and 4 (streak 2 toward locking — pure-MP traffic where
        // client-free 2PC wins in the model).
        for i in 1..=5 {
            now += 1000;
            s.on_fragment(
                mp_task(i, TestFragment::add(1, 1)),
                &mut e,
                Nanos(now),
                &mut out,
            );
            now += 1000;
            s.on_decision(decision(i, true), &mut e, Nanos(now), &mut out);
        }
        assert_eq!(s.adaptive_stats(Nanos(now)).unwrap().switches, 0);
        // Transactions 6 and 7 in flight; aborting 6 is the 6th outcome:
        // the third window closes, the switch arms — but 7 is still
        // undecided, so the swap must wait.
        s.on_fragment(
            mp_task(6, TestFragment::add(1, 1)),
            &mut e,
            Nanos(now),
            &mut out,
        );
        s.on_fragment(
            mp_task(7, TestFragment::add(2, 1)),
            &mut e,
            Nanos(now),
            &mut out,
        );
        now += 1000;
        s.on_decision(decision(6, false), &mut e, Nanos(now), &mut out);
        assert_eq!(s.adaptive_stats(Nanos(now)).unwrap().switches, 0);
        assert_eq!(s.scheme(), Scheme::Speculative, "swap waits for the drain");
        // A new transaction arriving mid-quiesce is held, not executed.
        out.take();
        s.on_fragment(
            sp_task(100, TestFragment::add(1, 50)),
            &mut e,
            Nanos(now),
            &mut out,
        );
        assert!(
            out.take().0.is_empty(),
            "held fragment must not produce output"
        );
        assert_eq!(s.adaptive_stats(Nanos(now)).unwrap().held_fragments, 1);
        // Deciding 7 drains the inner: swap happens, the held fragment
        // replays under the new scheme and commits.
        now += 1000;
        s.on_decision(decision(7, true), &mut e, Nanos(now), &mut out);
        let stats = s.adaptive_stats(Nanos(now)).unwrap();
        assert_eq!(stats.switches, 1);
        assert_ne!(s.scheme(), Scheme::Speculative);
        let (msgs, _) = out.take();
        assert!(
            msgs.iter().any(|m| matches!(
                m,
                crate::outbox::PartitionOut::ToClient { client, .. } if *client == ClientId(1)
            )),
            "held SP transaction must commit after the swap"
        );
        assert!(s.is_idle());
        assert_eq!(stats.quiesce_stall.count(), 1);
    }

    #[test]
    fn resume_carries_scheme_and_epoch_for_failover() {
        let cfg = adaptive_config(Scheme::Blocking, 0.15, 256);
        let s: AdaptiveScheduler<TestEngine> = AdaptiveScheduler::new(
            &cfg,
            PartitionId(1),
            Some(SchemeSwitch {
                epoch: 3,
                scheme: Scheme::Locking,
            }),
        );
        assert_eq!(s.scheme(), Scheme::Locking);
        assert_eq!(s.epoch(), 3);
    }
}
