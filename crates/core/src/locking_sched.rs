//! The lightweight locking scheme (paper §4.3).
//!
//! Strict two-phase locking adapted to single-threaded partitions:
//!
//! * **No-lock fast path**: "When our locking system has no active
//!   transactions and receives a single partition transaction, the
//!   transaction can be executed without locks and undo information" —
//!   locks are only acquired while multi-partition transactions are
//!   active.
//! * Locks are acquired per fragment from the pre-declared lock set; a
//!   conflicting request suspends the transaction in the lock manager's
//!   FIFO queue (logical concurrency only — execution stays serial).
//! * Local deadlocks are broken by waits-for cycle detection, preferring
//!   single-partition victims; distributed deadlocks by wait timeouts.
//! * Multi-partition transactions are coordinated *by the client* (no
//!   central coordinator): responses go to `task.coordinator`, which is
//!   `CoordinatorRef::Client(_)` under this scheme, and the client runs
//!   two-phase commit (`txn_driver.rs`).

use crate::engine::ExecutionEngine;
use crate::outbox::Outbox;
use crate::scheduler::Scheduler;
use hcc_common::stats::SchedulerCounters;
use hcc_common::{
    AbortReason, CostModel, Decision, FragmentResponse, FragmentTask, LockKey, Nanos, PartitionId,
    TxnId, TxnResult, Vote,
};
use hcc_locking::deadlock::{choose_victim, find_cycle};
use hcc_locking::{AcquireOutcome, LockManager, LockMode};

/// Where a registered transaction is in its lifecycle.
enum Phase<F> {
    /// Suspended acquiring locks for `task`; `locks[..next]` already held.
    Waiting {
        task: FragmentTask<F>,
        locks: Vec<(LockKey, LockMode)>,
        next: usize,
    },
    /// Multi-partition transaction between rounds (locks held, no work).
    Idle,
    /// Voted commit; awaiting the coordinator's decision (locks held).
    Prepared,
}

struct LockTxn<F> {
    client: hcc_common::ClientId,
    multi_partition: bool,
    phase: Phase<F>,
}

/// Scheduler implementing the paper's low-overhead locking scheme.
pub struct LockingScheduler<E: ExecutionEngine> {
    me: PartitionId,
    costs: CostModel,
    lock_timeout: Nanos,
    lm: LockManager,
    txns: hcc_common::FxHashMap<TxnId, LockTxn<E::Fragment>>,
    counters: SchedulerCounters,
}

impl<E: ExecutionEngine> LockingScheduler<E> {
    pub fn new(me: PartitionId, costs: CostModel, lock_timeout: Nanos) -> Self {
        LockingScheduler {
            me,
            costs,
            lock_timeout,
            lm: LockManager::new(),
            txns: hcc_common::FxHashMap::default(),
            counters: SchedulerCounters::default(),
        }
    }

    /// Currently registered (lock-holding or waiting) transactions.
    pub fn active_txns(&self) -> usize {
        self.txns.len()
    }

    /// Acquire a fragment's locks in canonical (key) order, the standard
    /// local-deadlock avoidance refinement. Transactions whose fragments
    /// run on *different partitions* can still interleave inconsistently,
    /// so distributed deadlocks remain possible and are handled by timeout
    /// — exactly the behaviour the paper reports for TPC-C (§5.6).
    fn canonical(mut locks: Vec<(LockKey, LockMode)>) -> Vec<(LockKey, LockMode)> {
        locks.sort_by_key(|(k, _)| *k);
        locks
    }

    pub fn lock_stats(&self) -> hcc_locking::LockStats {
        self.lm.stats
    }

    /// Charge execution CPU plus per-lock overhead, splitting the lock
    /// portion into the lock-manager bucket (backs the §5.6 profile
    /// breakdown: "Approximately 12% of the time is spent managing the
    /// lock table, 14% is spent acquiring locks, and 6% releasing").
    fn charge_exec(
        &mut self,
        out: &mut Outbox<E::Output>,
        ops: u32,
        undo: bool,
        n_locks: usize,
        mp: bool,
    ) {
        let base = self.costs.fragment_cost(ops, undo, false, mp);
        let lock_part = Nanos(self.costs.per_lock.0 * n_locks as u64);
        out.charge(base + lock_part);
        self.counters.fragments_executed += 1;
        self.counters.lock_manager_ns += lock_part.0;
        self.counters.execution_ns += base.0;
    }

    fn charge_rollback(&mut self, out: &mut Outbox<E::Output>, undone: u32) {
        let cost = self.costs.rollback_cost(undone);
        out.charge(cost);
        self.counters.rollback_ns += cost.0;
    }

    /// The Figure-2-style fast path: no active transactions at all, so a
    /// single-partition transaction runs without locks or undo.
    fn run_fast_path(
        &mut self,
        task: FragmentTask<E::Fragment>,
        engine: &mut E,
        out: &mut Outbox<E::Output>,
    ) {
        let undo = task.can_abort;
        let outcome = engine.execute(task.txn, &task.fragment, undo);
        self.charge_exec(out, outcome.ops, undo, 0, false);
        match outcome.result {
            Ok(payload) => {
                if undo {
                    engine.forget(task.txn);
                } else {
                    self.counters.fast_path += 1;
                }
                self.counters.committed += 1;
                out.send_client(task.client, task.txn, TxnResult::Committed(payload));
            }
            Err(reason) => {
                engine.rollback(task.txn);
                self.counters.aborted += 1;
                out.send_client(task.client, task.txn, TxnResult::Aborted(reason));
            }
        }
    }

    /// Acquire locks for `task` starting at index `next`; execute when all
    /// are held, suspend (and check for deadlock) on conflict.
    #[allow(clippy::too_many_arguments)]
    fn try_acquire(
        &mut self,
        txn: TxnId,
        task: FragmentTask<E::Fragment>,
        locks: Vec<(LockKey, LockMode)>,
        mut next: usize,
        engine: &mut E,
        now: Nanos,
        out: &mut Outbox<E::Output>,
    ) {
        while next < locks.len() {
            let (key, mode) = locks[next];
            match self.lm.acquire(txn, key, mode, now) {
                AcquireOutcome::Granted => {
                    self.counters.locks_granted_immediately += 1;
                    next += 1;
                }
                AcquireOutcome::Waiting => {
                    self.counters.locks_waited += 1;
                    // Suspending and later resuming the transaction costs
                    // CPU (saving/restoring execution context, §5.2).
                    out.charge(self.costs.suspend_resume);
                    self.counters.lock_manager_ns += self.costs.suspend_resume.0;
                    if let Some(t) = self.txns.get_mut(&txn) {
                        t.phase = Phase::Waiting {
                            task,
                            locks,
                            next: next + 1,
                        };
                    }
                    // A new wait edge is the only way a cycle can form.
                    if let Some(cycle) = find_cycle(&self.lm, txn) {
                        self.counters.local_deadlocks += 1;
                        self.lm.stats.deadlocks_detected += 1;
                        let victim = choose_victim(&self.lm, &cycle);
                        self.abort_txn(victim, AbortReason::DeadlockVictim, engine, now, out);
                    }
                    return;
                }
            }
        }
        self.execute_locked(txn, task, engine, now, out);
    }

    /// All locks held: run the fragment.
    fn execute_locked(
        &mut self,
        txn: TxnId,
        task: FragmentTask<E::Fragment>,
        engine: &mut E,
        now: Nanos,
        out: &mut Outbox<E::Output>,
    ) {
        // "Transactions must record undo information in order to rollback
        // in case of deadlock" — multi-partition transactions always (2PC
        // can abort them); locked single-partition transactions only if
        // they can user-abort (once running they never block).
        let undo = task.multi_partition || task.can_abort;
        let n_locks = self.lm.held_count(txn);
        let outcome = engine.execute(txn, &task.fragment, undo);
        self.charge_exec(out, outcome.ops, undo, n_locks, task.multi_partition);

        if !task.multi_partition {
            match outcome.result {
                Ok(payload) => {
                    engine.forget(txn);
                    self.counters.committed += 1;
                    out.send_client(task.client, txn, TxnResult::Committed(payload));
                }
                Err(reason) => {
                    engine.rollback(txn);
                    self.counters.aborted += 1;
                    out.send_client(task.client, txn, TxnResult::Aborted(reason));
                }
            }
            self.finish_txn(txn, engine, now, out);
            return;
        }

        let vote = match (&outcome.result, task.last_fragment) {
            (Ok(_), true) => Some(Vote::Commit),
            (Err(r), _) => Some(Vote::Abort(*r)),
            (Ok(_), false) => None,
        };
        if let Some(t) = self.txns.get_mut(&txn) {
            t.phase = if task.last_fragment {
                Phase::Prepared
            } else {
                Phase::Idle
            };
        }
        out.send_coordinator(
            task.coordinator,
            FragmentResponse {
                txn,
                partition: self.me,
                round: task.round,
                attempt: 0,
                payload: outcome.result,
                vote,
                depends_on: None,
            },
        );
    }

    /// Remove a finished transaction, release its locks, and resume any
    /// transactions whose requests became grantable.
    fn finish_txn(&mut self, txn: TxnId, engine: &mut E, now: Nanos, out: &mut Outbox<E::Output>) {
        self.txns.remove(&txn);
        let woken = self.lm.release_all(txn);
        for w in woken {
            self.resume(w, engine, now, out);
        }
    }

    /// A suspended transaction's blocked request was granted: continue
    /// acquiring its remaining locks.
    fn resume(&mut self, txn: TxnId, engine: &mut E, now: Nanos, out: &mut Outbox<E::Output>) {
        let Some(t) = self.txns.get_mut(&txn) else {
            debug_assert!(false, "woke unknown txn {txn}");
            return;
        };
        let phase = std::mem::replace(&mut t.phase, Phase::Idle);
        match phase {
            Phase::Waiting { task, locks, next } => {
                self.try_acquire(txn, task, locks, next, engine, now, out);
            }
            other => {
                debug_assert!(false, "woke non-waiting txn {txn}");
                t.phase = other;
            }
        }
    }

    /// Abort a transaction locally (deadlock victim or lock timeout),
    /// informing its coordinator/client so it is aborted globally.
    fn abort_txn(
        &mut self,
        victim: TxnId,
        reason: AbortReason,
        engine: &mut E,
        now: Nanos,
        out: &mut Outbox<E::Output>,
    ) {
        let Some(t) = self.txns.remove(&victim) else {
            return;
        };
        let undone = engine.rollback(victim);
        self.charge_rollback(out, undone);
        self.counters.aborted += 1;
        match reason {
            AbortReason::DeadlockVictim => {}
            AbortReason::LockTimeout => self.counters.lock_timeouts += 1,
            _ => {}
        }
        // Tell whoever is waiting for this transaction.
        match &t.phase {
            Phase::Waiting { task, .. } => {
                if t.multi_partition {
                    out.send_coordinator(
                        task.coordinator,
                        FragmentResponse {
                            txn: victim,
                            partition: self.me,
                            round: task.round,
                            attempt: 0,
                            payload: Err(reason),
                            vote: Some(Vote::Abort(reason)),
                            depends_on: None,
                        },
                    );
                } else {
                    out.send_client(t.client, victim, TxnResult::Aborted(reason));
                }
            }
            Phase::Idle | Phase::Prepared => {
                // Aborted between rounds (only reachable for timeouts of
                // idle MP transactions, which we do not trigger; kept for
                // robustness): the coordinator learns via its own timeout.
            }
        }
        let woken = self.lm.release_all(victim);
        for w in woken {
            self.resume(w, engine, now, out);
        }
    }
}

impl<E: ExecutionEngine> Scheduler<E> for LockingScheduler<E> {
    fn on_fragment(
        &mut self,
        task: FragmentTask<E::Fragment>,
        engine: &mut E,
        now: Nanos,
        out: &mut Outbox<E::Output>,
    ) {
        if self.txns.contains_key(&task.txn) {
            // Continuation of a multi-partition transaction: acquire the
            // new fragment's locks (2PL growing phase) and run it.
            debug_assert!(matches!(self.txns[&task.txn].phase, Phase::Idle));
            let locks = Self::canonical(engine.lock_set(&task.fragment));
            self.try_acquire(task.txn, task, locks, 0, engine, now, out);
            return;
        }

        // Fast path: no active transactions at all ⇒ single-partition
        // transactions skip the lock manager entirely.
        if self.txns.is_empty() && !task.multi_partition {
            self.run_fast_path(task, engine, out);
            return;
        }

        self.lm.register_txn(task.txn, task.multi_partition);
        self.txns.insert(
            task.txn,
            LockTxn {
                client: task.client,
                multi_partition: task.multi_partition,
                phase: Phase::Idle,
            },
        );
        let locks = Self::canonical(engine.lock_set(&task.fragment));
        self.try_acquire(task.txn, task, locks, 0, engine, now, out);
        debug_assert!(
            self.lm.check_invariants().is_ok(),
            "{:?}",
            self.lm.check_invariants()
        );
    }

    fn on_decision(
        &mut self,
        decision: Decision,
        engine: &mut E,
        now: Nanos,
        out: &mut Outbox<E::Output>,
    ) {
        let Some(t) = self.txns.get(&decision.txn) else {
            // Already aborted locally (deadlock victim / timeout) — the
            // coordinator's abort raced with ours. Idempotent.
            return;
        };
        if decision.commit {
            debug_assert!(matches!(t.phase, Phase::Prepared));
            engine.forget(decision.txn);
            self.counters.committed += 1;
            // Decisions only exist for two-phase-commit participants, and
            // only multi-partition transactions enter 2PC.
            self.counters.committed_mp += 1;
        } else {
            let undone = engine.rollback(decision.txn);
            self.charge_rollback(out, undone);
            self.counters.aborted += 1;
        }
        self.finish_txn(decision.txn, engine, now, out);
    }

    fn on_tick(
        &mut self,
        engine: &mut E,
        now: Nanos,
        out: &mut Outbox<E::Output>,
    ) -> Option<Nanos> {
        // Timeout only multi-partition waits: local chains resolve via
        // cycle detection; a long multi-partition wait indicates a
        // distributed deadlock this partition cannot see (§4.3).
        let expired = self.lm.expired_waits(now, self.lock_timeout);
        for txn in expired {
            if self.lm.is_multi_partition(txn) {
                self.lm.stats.timeouts += 1;
                self.abort_txn(txn, AbortReason::LockTimeout, engine, now, out);
            }
        }
        if self.lm.waiters().next().is_some() {
            Some(Nanos(self.lock_timeout.0 / 4).max(Nanos(1)))
        } else {
            None
        }
    }

    fn counters(&self) -> SchedulerCounters {
        self.counters
    }

    fn is_idle(&self) -> bool {
        self.txns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outbox::PartitionOut;
    use crate::testkit::{TestEngine, TestFragment};
    use hcc_common::{ClientId, CoordinatorRef};

    const NOW: Nanos = Nanos(0);

    fn sp(txn: u32, frag: TestFragment) -> FragmentTask<TestFragment> {
        FragmentTask {
            txn: TxnId::new(ClientId(txn), 0),
            coordinator: CoordinatorRef::Client(ClientId(txn)),
            client: ClientId(txn),
            fragment: frag,
            multi_partition: false,
            last_fragment: true,
            round: 0,
            can_abort: false,
        }
    }

    fn mp(txn: u32, frag: TestFragment, last: bool, round: u32) -> FragmentTask<TestFragment> {
        FragmentTask {
            txn: TxnId::new(ClientId(txn), 0),
            coordinator: CoordinatorRef::Client(ClientId(txn)),
            client: ClientId(txn),
            fragment: frag,
            multi_partition: true,
            last_fragment: last,
            round,
            can_abort: false,
        }
    }

    fn txid(n: u32) -> TxnId {
        TxnId::new(ClientId(n), 0)
    }

    fn setup() -> (
        LockingScheduler<TestEngine>,
        TestEngine,
        Outbox<Vec<(u64, i64)>>,
    ) {
        (
            LockingScheduler::new(PartitionId(0), CostModel::default(), Nanos::from_millis(5)),
            TestEngine::with_data(&[(1, 100), (2, 200), (3, 300)]),
            Outbox::new(CostModel::default()),
        )
    }

    #[test]
    fn fast_path_without_locks() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(sp(1, TestFragment::add(1, 1)), &mut e, NOW, &mut out);
        assert_eq!(e.get(1), 101);
        assert_eq!(s.counters().fast_path, 1);
        assert_eq!(s.lock_stats().acquires, 0, "no locks on fast path");
        assert!(s.is_idle());
    }

    #[test]
    fn sp_acquires_locks_while_mp_active() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp(1, TestFragment::add(1, 1), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        assert_eq!(s.active_txns(), 1);
        // Non-conflicting SP runs concurrently (different key).
        s.on_fragment(sp(2, TestFragment::add(2, 1)), &mut e, NOW, &mut out);
        assert_eq!(e.get(2), 201);
        assert!(s.lock_stats().acquires > 0, "locks used while MP active");
        assert_eq!(s.counters().fast_path, 0);
        // Conflicting SP waits.
        s.on_fragment(sp(3, TestFragment::add(1, 50)), &mut e, NOW, &mut out);
        assert_eq!(e.get(1), 101, "conflicting SP must wait");
        out.take();

        // Commit the MP txn: the waiter runs.
        s.on_decision(
            Decision {
                txn: txid(1),
                commit: true,
            },
            &mut e,
            NOW,
            &mut out,
        );
        assert_eq!(e.get(1), 151);
        let (msgs, _) = out.take();
        assert!(msgs.iter().any(|m| matches!(
            m,
            PartitionOut::ToClient {
                result: TxnResult::Committed(_),
                ..
            }
        )));
        assert!(s.is_idle());
    }

    #[test]
    fn mp_abort_rolls_back_and_wakes() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp(1, TestFragment::add(1, 7), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        s.on_fragment(sp(2, TestFragment::add(1, 1)), &mut e, NOW, &mut out);
        s.on_decision(
            Decision {
                txn: txid(1),
                commit: false,
            },
            &mut e,
            NOW,
            &mut out,
        );
        // MP's +7 undone; SP's +1 applied afterwards.
        assert_eq!(e.get(1), 101);
        assert_eq!(s.counters().aborted, 1);
        assert!(s.is_idle());
        assert_eq!(e.live_undo_buffers(), 0);
    }

    #[test]
    fn local_deadlock_kills_single_partition_victim() {
        let (mut s, mut e, mut out) = setup();
        // MP t1 locks key1 (round 0, not last: stays Idle holding lock).
        s.on_fragment(
            mp(1, TestFragment::add(1, 1), false, 0),
            &mut e,
            NOW,
            &mut out,
        );
        // MP t2 locks key2.
        s.on_fragment(
            mp(2, TestFragment::add(2, 1), false, 0),
            &mut e,
            NOW,
            &mut out,
        );
        // SP t3 wants key2 then... SP fragments acquire all locks at once:
        // t3 wants both key1 and key2 -> waits on key1 (t1 holds).
        s.on_fragment(
            sp(
                3,
                TestFragment {
                    ops: vec![
                        crate::testkit::TestOp::Add(1, 10),
                        crate::testkit::TestOp::Add(2, 10),
                    ],
                    fail: false,
                },
            ),
            &mut e,
            NOW,
            &mut out,
        );
        assert_eq!(s.counters().local_deadlocks, 0);
        // t1 round 1 wants key2 (held by t2): waits, no cycle yet.
        s.on_fragment(
            mp(1, TestFragment::add(2, 1), true, 1),
            &mut e,
            NOW,
            &mut out,
        );
        assert_eq!(s.counters().local_deadlocks, 0);
        // t2 round 1 wants key1 (held by t1): cycle t1->t2->t1 (t3 is an
        // innocent bystander waiting on key1).
        out.take();
        s.on_fragment(
            mp(2, TestFragment::add(1, 1), true, 1),
            &mut e,
            NOW,
            &mut out,
        );
        assert_eq!(s.counters().local_deadlocks, 1);
        // Victim must be an MP txn (no SP txn is in the cycle; t3 waits but
        // does not block anyone).
        let (msgs, _) = out.take();
        let aborted: Vec<_> = msgs
            .iter()
            .filter_map(|m| match m {
                PartitionOut::ToCoordinator { response, .. }
                    if matches!(
                        response.vote,
                        Some(Vote::Abort(AbortReason::DeadlockVictim))
                    ) =>
                {
                    Some(response.txn)
                }
                _ => None,
            })
            .collect();
        assert_eq!(aborted.len(), 1);
        assert!(aborted[0] == txid(1) || aborted[0] == txid(2));
    }

    #[test]
    fn deadlock_prefers_sp_victim_when_in_cycle() {
        let (mut s, mut e, mut out) = setup();
        // MP t1 holds key2 (idle, multi-round).
        s.on_fragment(
            mp(1, TestFragment::add(2, 1), false, 0),
            &mut e,
            NOW,
            &mut out,
        );
        // SP t2 wants key1 AND key2 (canonical order): gets key1, waits on
        // key2.
        s.on_fragment(
            sp(
                2,
                TestFragment {
                    ops: vec![
                        crate::testkit::TestOp::Add(2, 10),
                        crate::testkit::TestOp::Add(1, 10),
                    ],
                    fail: false,
                },
            ),
            &mut e,
            NOW,
            &mut out,
        );
        out.take();
        // MP t1 round 1 wants key1 (held by SP t2): cycle t1 -> t2 -> t1.
        s.on_fragment(
            mp(1, TestFragment::add(1, 1), true, 1),
            &mut e,
            NOW,
            &mut out,
        );
        assert_eq!(s.counters().local_deadlocks, 1);
        let (msgs, _) = out.take();
        // SP t2 aborted; MP t1 proceeded to execute round 1.
        assert!(msgs.iter().any(|m| matches!(
            m,
            PartitionOut::ToClient { result: TxnResult::Aborted(AbortReason::DeadlockVictim), txn, .. }
                if *txn == txid(2)
        )));
        assert!(msgs.iter().any(|m| matches!(
            m,
            PartitionOut::ToCoordinator { response, .. }
                if response.txn == txid(1) && response.vote == Some(Vote::Commit)
        )));
        assert_eq!(e.get(2), 201, "SP rollback leaves only MP's write");
        assert_eq!(e.get(1), 101);
    }

    #[test]
    fn lock_timeout_aborts_waiting_mp() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp(1, TestFragment::add(1, 1), false, 0),
            &mut e,
            NOW,
            &mut out,
        );
        // MP t2 waits on key1.
        s.on_fragment(
            mp(2, TestFragment::add(1, 5), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        out.take();
        // Before the timeout: nothing.
        let next = s.on_tick(&mut e, Nanos::from_millis(1), &mut out);
        assert!(next.is_some());
        assert_eq!(s.counters().lock_timeouts, 0);
        // After the timeout: t2 aborted with LockTimeout.
        s.on_tick(&mut e, Nanos::from_millis(6), &mut out);
        assert_eq!(s.counters().lock_timeouts, 1);
        let (msgs, _) = out.take();
        assert!(msgs.iter().any(|m| matches!(
            m,
            PartitionOut::ToCoordinator { response, .. }
                if response.txn == txid(2)
                    && matches!(response.vote, Some(Vote::Abort(AbortReason::LockTimeout)))
        )));
        // t1 unaffected.
        assert_eq!(s.active_txns(), 1);
    }

    #[test]
    fn sp_waiters_do_not_time_out() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp(1, TestFragment::add(1, 1), false, 0),
            &mut e,
            NOW,
            &mut out,
        );
        s.on_fragment(sp(2, TestFragment::add(1, 5)), &mut e, NOW, &mut out);
        s.on_tick(&mut e, Nanos::from_millis(60), &mut out);
        assert_eq!(s.counters().lock_timeouts, 0);
        assert_eq!(s.active_txns(), 2);
    }

    #[test]
    fn decision_for_locally_aborted_txn_is_ignored() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp(1, TestFragment::add(1, 1), false, 0),
            &mut e,
            NOW,
            &mut out,
        );
        s.on_fragment(
            mp(2, TestFragment::add(1, 5), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        s.on_tick(&mut e, Nanos::from_millis(10), &mut out); // t2 timed out
        out.take();
        // The client-coordinator's abort decision arrives afterwards.
        s.on_decision(
            Decision {
                txn: txid(2),
                commit: false,
            },
            &mut e,
            NOW,
            &mut out,
        );
        assert_eq!(s.active_txns(), 1);
        assert_eq!(s.counters().aborted, 1, "not double-counted");
    }

    #[test]
    fn readers_share_locks_under_active_mp() {
        let (mut s, mut e, mut out) = setup();
        // MP holds a write lock on key 3... no: use read locks on key 1 for
        // MP and two SP readers; all should proceed concurrently.
        s.on_fragment(
            mp(1, TestFragment::read(&[1]), false, 0),
            &mut e,
            NOW,
            &mut out,
        );
        s.on_fragment(sp(2, TestFragment::read(&[1])), &mut e, NOW, &mut out);
        s.on_fragment(sp(3, TestFragment::read(&[1])), &mut e, NOW, &mut out);
        let (msgs, _) = out.take();
        let client_replies = msgs
            .iter()
            .filter(|m| {
                matches!(
                    m,
                    PartitionOut::ToClient {
                        result: TxnResult::Committed(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(client_replies, 2, "shared locks allow concurrent readers");
    }

    #[test]
    fn mp_user_abort_votes_abort_and_releases() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp(1, TestFragment::failing(), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        let (msgs, _) = out.take();
        assert!(matches!(
            &msgs[0],
            PartitionOut::ToCoordinator { response, .. }
                if matches!(response.vote, Some(Vote::Abort(AbortReason::User)))
        ));
        // Locks are held until the decision arrives.
        assert_eq!(s.active_txns(), 1);
        s.on_decision(
            Decision {
                txn: txid(1),
                commit: false,
            },
            &mut e,
            NOW,
            &mut out,
        );
        assert!(s.is_idle());
    }
}
