//! The speculative concurrency control scheme (paper §4.2, Figure 3).
//!
//! While a multi-partition transaction waits for its two-phase commit to
//! resolve (a pure network stall), the partition executes queued
//! transactions *speculatively*: with undo buffers, results withheld,
//! assuming they conflict with everything that ran before them. If the
//! pending transaction commits, the speculative work is committed for free
//! — the stall was hidden. If it aborts, every speculative transaction is
//! undone (tail first), re-queued in order, and re-executed.
//!
//! Two levels, as in the paper:
//!
//! * **Local speculation** (§4.2.1): speculative single-partition results
//!   are buffered inside the partition and released when they become
//!   non-speculative.
//! * **Multi-partition speculation** (§4.2.2): when every transaction in
//!   the uncommitted queue shares one coordinator, speculative fragment
//!   responses are released to that coordinator immediately, tagged with
//!   the execution attempt of the transaction they depend on. The
//!   coordinator cascades commits and aborts (see `coordinator.rs`).
//!
//! Under **sharded coordinators** the same-coordinator-chain rule is
//! enforced by falling back to *blocking*: a multi-partition fragment
//! whose coordinator differs from the uncommitted chain's waits in the
//! unexecuted queue (counted in `SchedulerCounters::cross_coord_waits`)
//! instead of speculating — releasing its result with a cross-shard
//! dependency would be unverifiable at the other shard. Because no
//! global dispatch order exists across shards, two cross-shard
//! transactions meeting at two partitions in opposite orders can wait on
//! each other forever; that residual distributed deadlock is resolved by
//! the coordinator's timeout expiry
//! (`Coordinator::expire_stalled` with the retryable
//! [`hcc_common::AbortReason::CrossCoordinator`]), exactly how §4.3
//! resolves distributed deadlocks under locking.
//!
//! Speculation is only legal once the transaction ahead has "finished
//! locally" (executed its last fragment here — the piggybacked prepare);
//! continuation fragments of a *speculative* multi-round transaction are
//! parked until it is promoted to the head of the queue, which is why
//! general transactions gain little from speculation (§5.4, Figure 7).

use crate::engine::ExecutionEngine;
use crate::outbox::Outbox;
use crate::scheduler::Scheduler;
use hcc_common::stats::SchedulerCounters;
use hcc_common::{
    CoordinatorRef, CostModel, Decision, FragmentResponse, FragmentTask, FxHashMap, FxHashSet,
    Nanos, PartitionId, SpecDep, TxnId, TxnResult, Vote,
};
use hcc_locking::LockMode;
use std::collections::VecDeque;

/// How cascading aborts decide which speculative transactions to squash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictPolicy {
    /// The paper's speculation: "it assumes that all transactions
    /// conflict" — every speculative successor is squashed (§4.2).
    AssumeAll,
    /// The OCC extension (§5.7): track read/write sets and squash only
    /// transactions whose sets actually intersect the aborted writes
    /// (transitively). Multi-partition transactions are always squashed to
    /// keep the coordinator dependency protocol simple; single-partition
    /// transactions survive if they touched disjoint data. Set tracking is
    /// charged like lock overhead ("our locking implementation involves
    /// little more than keeping track of the read/write sets of a
    /// transaction — which OCC also must do").
    Precise,
}

/// An executed-but-uncommitted transaction.
struct Uncommitted<E: ExecutionEngine> {
    txn: TxnId,
    coordinator: CoordinatorRef,
    client: hcc_common::ClientId,
    multi_partition: bool,
    /// Execution attempt at this partition (incremented on each squash).
    attempt: u32,
    /// True once the last fragment at this partition has executed.
    finished_locally: bool,
    /// Result of a single-partition transaction, buffered until it becomes
    /// non-speculative (local speculation, §4.2.1).
    buffered_result: Option<TxnResult<E::Output>>,
    /// Responses of a *different-coordinator* multi-partition transaction,
    /// held until promotion to head.
    held_responses: Vec<FragmentResponse<E::Output>>,
    /// Round-0 fragments, kept for re-execution after a squash.
    executed_tasks: Vec<FragmentTask<E::Fragment>>,
    /// Continuation fragments that arrived while speculative; run at
    /// promotion.
    pending_continuations: VecDeque<FragmentTask<E::Fragment>>,
    /// Read/write set (only tracked under `ConflictPolicy::Precise`).
    lock_set: Vec<(hcc_common::LockKey, LockMode)>,
}

/// Scheduler implementing Figure 3 of the paper.
pub struct SpeculativeScheduler<E: ExecutionEngine> {
    me: PartitionId,
    costs: CostModel,
    /// Fragments not yet executed (new transactions), FIFO.
    unexecuted: VecDeque<FragmentTask<E::Fragment>>,
    /// Executed transactions awaiting commit; head is non-speculative.
    uncommitted: VecDeque<Uncommitted<E>>,
    /// Count of entries in `uncommitted` not yet finished locally.
    unfinished: usize,
    /// Cap on outstanding speculative transactions (∞ reproduces the
    /// paper; finite values implement the §5.3 mitigation).
    max_depth: usize,
    /// Next execution attempt for squashed transactions awaiting re-run.
    attempts: FxHashMap<TxnId, u32>,
    policy: ConflictPolicy,
    /// §4.2.1-only mode: hold speculative multi-partition responses in the
    /// partition instead of releasing them with dependency tags.
    local_only: bool,
    /// The cross-shard transaction the pump is currently stalled on
    /// (dedupes the `cross_coord_waits` count).
    blocked_on: Option<TxnId>,
    /// Cross-shard sequencing active: multi-partition arrivals are already
    /// globally ordered by the epoch merge, so the §4.2.2
    /// same-coordinator-chain rule is lifted — speculation chains legally
    /// span coordinator shards (their cross-shard dependencies settle via
    /// peer decision notes).
    sequenced: bool,
    /// Stale continuation fragments dropped (see `on_fragment`).
    pub stale_fragments_dropped: u64,
    counters: SchedulerCounters,
}

impl<E: ExecutionEngine> SpeculativeScheduler<E> {
    pub fn new(me: PartitionId, costs: CostModel, max_depth: usize) -> Self {
        Self::with_policy(me, costs, max_depth, ConflictPolicy::AssumeAll)
    }

    pub fn with_policy(
        me: PartitionId,
        costs: CostModel,
        max_depth: usize,
        policy: ConflictPolicy,
    ) -> Self {
        SpeculativeScheduler {
            me,
            costs,
            unexecuted: VecDeque::new(),
            uncommitted: VecDeque::new(),
            unfinished: 0,
            max_depth,
            attempts: FxHashMap::default(),
            policy,
            local_only: false,
            blocked_on: None,
            sequenced: false,
            stale_fragments_dropped: 0,
            counters: SchedulerCounters::default(),
        }
    }

    fn track_sets(&self) -> bool {
        self.policy == ConflictPolicy::Precise
    }

    /// Restrict to local speculation (Figure 10's "Local Spec" variant).
    pub fn set_local_only(&mut self, v: bool) {
        self.local_only = v;
    }

    /// Cross-shard sequencing is on: lift the §4.2.2 same-coordinator
    /// restriction (arrivals are globally ordered, so cross-shard chains
    /// are legal and `cross_coord_waits` should stay zero).
    pub fn set_sequenced(&mut self, v: bool) {
        self.sequenced = v;
    }

    /// Number of speculative (non-head) uncommitted transactions.
    pub fn speculation_depth(&self) -> usize {
        self.uncommitted.len().saturating_sub(1)
    }

    pub fn unexecuted_len(&self) -> usize {
        self.unexecuted.len()
    }

    fn position(&self, txn: TxnId) -> Option<usize> {
        self.uncommitted.iter().position(|u| u.txn == txn)
    }

    fn charge_exec(&mut self, out: &mut Outbox<E::Output>, ops: u32, mp: bool) {
        // Under the OCC policy, read/write set tracking costs about what
        // lock maintenance does (paper §5.7), so it is billed the same way.
        let cost = self.costs.fragment_cost(ops, true, self.track_sets(), mp);
        out.charge(cost);
        self.counters.fragments_executed += 1;
        self.counters.execution_ns += cost.0;
    }

    fn charge_rollback(&mut self, out: &mut Outbox<E::Output>, undone: u32) {
        let cost = self.costs.rollback_cost(undone);
        out.charge(cost);
        self.counters.rollback_ns += cost.0;
    }

    fn vote_for(result: &Result<E::Output, hcc_common::AbortReason>, last: bool) -> Option<Vote> {
        match (result, last) {
            (Ok(_), true) => Some(Vote::Commit),
            (Err(r), _) => Some(Vote::Abort(*r)),
            (Ok(_), false) => None,
        }
    }

    /// Whether every uncommitted **multi-partition** transaction shares
    /// `coordinator` — the §4.2.2 condition for releasing speculative
    /// results ("multi-partition speculation can only be used when the
    /// multi-partition transactions come from the same coordinator").
    /// Buffered single-partition transactions have no coordinator and are
    /// irrelevant: their results never leave the partition early.
    fn all_same_coordinator(&self, coordinator: CoordinatorRef) -> bool {
        self.uncommitted
            .iter()
            .filter(|u| u.multi_partition)
            .all(|u| u.coordinator == coordinator)
    }

    /// The most recent multi-partition transaction in the uncommitted
    /// queue: the dependency a new speculative result must name.
    fn last_mp_dep(&self) -> Option<SpecDep> {
        self.uncommitted
            .iter()
            .rev()
            .find(|u| u.multi_partition)
            .map(|u| SpecDep {
                txn: u.txn,
                attempt: u.attempt,
            })
    }

    /// Figure 3's dispatch loop: run new work non-speculatively when the
    /// partition is empty, speculatively when everything queued ahead has
    /// finished locally.
    fn pump(&mut self, engine: &mut E, out: &mut Outbox<E::Output>) {
        loop {
            if self.uncommitted.is_empty() {
                let Some(task) = self.unexecuted.pop_front() else {
                    return;
                };
                if task.multi_partition {
                    self.start_mp_head(task, engine, out);
                } else {
                    self.run_sp_fast_path(task, engine, out);
                }
            } else {
                if self.unfinished > 0 || self.speculation_depth() >= self.max_depth {
                    return;
                }
                // §4.2.2 same-coordinator-chain rule: a multi-partition
                // transaction from a *different* coordinator waits (the
                // blocking fallback) — speculating it would produce a
                // dependency its own shard cannot validate. Residual
                // cross-partition deadlocks are broken by the
                // coordinator's timeout expiry.
                if let Some(front) = self.unexecuted.front() {
                    if front.multi_partition
                        && !self.local_only
                        && !self.sequenced
                        && !self.all_same_coordinator(front.coordinator)
                    {
                        if self.blocked_on != Some(front.txn) {
                            self.blocked_on = Some(front.txn);
                            self.counters.cross_coord_waits += 1;
                        }
                        return;
                    }
                }
                let Some(task) = self.unexecuted.pop_front() else {
                    return;
                };
                self.blocked_on = None;
                self.speculate(task, engine, out);
            }
        }
    }

    /// Non-speculative single-partition execution: no undo buffer unless
    /// the procedure can user-abort; commits immediately (paper §3.2).
    fn run_sp_fast_path(
        &mut self,
        task: FragmentTask<E::Fragment>,
        engine: &mut E,
        out: &mut Outbox<E::Output>,
    ) {
        let undo = task.can_abort;
        let outcome = engine.execute(task.txn, &task.fragment, undo);
        let cost = self.costs.fragment_cost(outcome.ops, undo, false, false);
        out.charge(cost);
        self.counters.fragments_executed += 1;
        self.counters.execution_ns += cost.0;
        match outcome.result {
            Ok(payload) => {
                if undo {
                    engine.forget(task.txn);
                } else {
                    self.counters.fast_path += 1;
                }
                self.counters.committed += 1;
                out.send_client(task.client, task.txn, TxnResult::Committed(payload));
            }
            Err(reason) => {
                engine.rollback(task.txn);
                self.counters.aborted += 1;
                out.send_client(task.client, task.txn, TxnResult::Aborted(reason));
            }
        }
        self.attempts.remove(&task.txn);
    }

    /// Begin a multi-partition transaction as the non-speculative head.
    fn start_mp_head(
        &mut self,
        task: FragmentTask<E::Fragment>,
        engine: &mut E,
        out: &mut Outbox<E::Output>,
    ) {
        debug_assert!(self.uncommitted.is_empty());
        let attempt = self.attempts.get(&task.txn).copied().unwrap_or(0);
        let lock_set = if self.track_sets() {
            engine.lock_set(&task.fragment)
        } else {
            Vec::new()
        };
        let outcome = engine.execute(task.txn, &task.fragment, true);
        self.charge_exec(out, outcome.ops, true);
        let finished = task.last_fragment;
        let vote = Self::vote_for(&outcome.result, task.last_fragment);
        out.send_coordinator(
            task.coordinator,
            FragmentResponse {
                txn: task.txn,
                partition: self.me,
                round: task.round,
                attempt,
                payload: outcome.result,
                vote,
                depends_on: None,
            },
        );
        self.uncommitted.push_back(Uncommitted {
            txn: task.txn,
            coordinator: task.coordinator,
            client: task.client,
            multi_partition: true,
            attempt,
            finished_locally: finished,
            buffered_result: None,
            held_responses: Vec::new(),
            executed_tasks: vec![task],
            pending_continuations: VecDeque::new(),
            lock_set,
        });
        if !finished {
            self.unfinished += 1;
        }
    }

    /// Execute one queued transaction speculatively.
    fn speculate(
        &mut self,
        task: FragmentTask<E::Fragment>,
        engine: &mut E,
        out: &mut Outbox<E::Output>,
    ) {
        debug_assert!(!self.uncommitted.is_empty() && self.unfinished == 0);
        let attempt = self.attempts.get(&task.txn).copied().unwrap_or(0);
        let lock_set = if self.track_sets() {
            engine.lock_set(&task.fragment)
        } else {
            Vec::new()
        };
        // Speculative executions always record undo, even for transactions
        // that cannot user-abort: they may be squashed.
        let outcome = engine.execute(task.txn, &task.fragment, true);
        self.charge_exec(out, outcome.ops, task.multi_partition);
        self.counters.speculative_executions += 1;

        let mut entry = Uncommitted {
            txn: task.txn,
            coordinator: task.coordinator,
            client: task.client,
            multi_partition: task.multi_partition,
            attempt,
            finished_locally: task.last_fragment,
            buffered_result: None,
            held_responses: Vec::new(),
            executed_tasks: Vec::new(),
            pending_continuations: VecDeque::new(),
            lock_set,
        };

        if !task.multi_partition {
            // Local speculation: buffer the client result until promotion.
            // (A speculative user-abort is also buffered: whether the
            // procedure aborts can depend on speculative state, so the
            // outcome is only final once it becomes non-speculative.)
            entry.finished_locally = true;
            entry.buffered_result = Some(match &outcome.result {
                Ok(p) => TxnResult::Committed(p.clone()),
                Err(r) => TxnResult::Aborted(*r),
            });
        } else {
            // Multi-partition speculation (§4.2.2): release the response,
            // tagged with its dependency, only if every uncommitted
            // transaction shares this coordinator; otherwise hold it until
            // promotion (plain local speculation of the first fragment).
            let vote = Self::vote_for(&outcome.result, task.last_fragment);
            let response = FragmentResponse {
                txn: task.txn,
                partition: self.me,
                round: task.round,
                attempt,
                payload: outcome.result,
                vote,
                depends_on: self.last_mp_dep(),
            };
            if self.local_only {
                // §4.2.1-only mode (Figure 10): hold until promotion.
                entry.held_responses.push(response);
            } else {
                // Same-coordinator chain (the cross-shard case was
                // bounced before execution): release with the dependency.
                out.send_coordinator(task.coordinator, response);
            }
        }

        if !entry.finished_locally {
            self.unfinished += 1;
        }
        entry.executed_tasks.push(task);
        self.uncommitted.push_back(entry);
    }

    /// Execute a continuation fragment for the (non-speculative) head.
    fn run_head_fragment(
        &mut self,
        task: FragmentTask<E::Fragment>,
        engine: &mut E,
        out: &mut Outbox<E::Output>,
    ) {
        let mut extra_locks = if self.track_sets() {
            engine.lock_set(&task.fragment)
        } else {
            Vec::new()
        };
        let outcome = engine.execute(task.txn, &task.fragment, true);
        self.charge_exec(out, outcome.ops, true);
        let vote = Self::vote_for(&outcome.result, task.last_fragment);
        let head = self.uncommitted.front_mut().expect("head exists");
        debug_assert_eq!(head.txn, task.txn);
        debug_assert!(!head.finished_locally, "fragment after prepare");
        head.lock_set.append(&mut extra_locks);
        if task.last_fragment {
            head.finished_locally = true;
            self.unfinished -= 1;
        }
        let response = FragmentResponse {
            txn: task.txn,
            partition: self.me,
            round: task.round,
            attempt: head.attempt,
            payload: outcome.result,
            vote,
            depends_on: None,
        };
        out.send_coordinator(task.coordinator, response);
        // Speculation may begin now that the head finished locally.
        self.pump(engine, out);
    }

    /// After the head resolves, commit speculative single-partition
    /// transactions from the front of the queue and promote the next
    /// multi-partition transaction (if any) to non-speculative head.
    fn promote(&mut self, engine: &mut E, out: &mut Outbox<E::Output>) {
        while let Some(next) = self.uncommitted.front_mut() {
            if next.multi_partition {
                // New head. Release held responses (different-coordinator
                // case) and run parked continuations.
                let coordinator = next.coordinator;
                // `take` moves the buffers out without copying them.
                let held = std::mem::take(&mut next.held_responses);
                for r in held {
                    out.send_coordinator(coordinator, r);
                }
                let conts = std::mem::take(&mut next.pending_continuations);
                for task in conts {
                    self.run_head_fragment(task, engine, out);
                }
                return;
            }
            // Speculative single-partition transaction: commit it now and
            // release its buffered result ("transactions are dequeued from
            // the head of the queue and results are sent", §4.2.1).
            let txn = next.txn;
            let client = next.client;
            let result = next
                .buffered_result
                .take()
                .expect("speculative SP has a buffered result");
            engine.forget(txn);
            match &result {
                TxnResult::Committed(_) => self.counters.committed += 1,
                TxnResult::Aborted(_) => self.counters.aborted += 1,
            }
            out.send_client(client, txn, result);
            self.attempts.remove(&txn);
            self.uncommitted.pop_front();
        }
    }

    /// Squash speculative transactions after queue position `pos`,
    /// re-queueing their round-0 fragments in original order. Under
    /// `AssumeAll` everything after `pos` is squashed; under `Precise`
    /// only transactions whose read/write sets (transitively) intersect
    /// the aborted transaction's writes.
    fn squash_after(&mut self, pos: usize, engine: &mut E, out: &mut Outbox<E::Output>) {
        // Decide the squash set in forward (execution) order: conflicts
        // propagate from earlier squashed writes to later readers.
        let squash_flags: Vec<bool> = match self.policy {
            ConflictPolicy::AssumeAll => vec![true; self.uncommitted.len().saturating_sub(pos + 1)],
            ConflictPolicy::Precise => {
                let mut dirty: FxHashSet<hcc_common::LockKey> = self.uncommitted[pos]
                    .lock_set
                    .iter()
                    .filter(|(_, m)| *m == LockMode::Exclusive)
                    .map(|(k, _)| *k)
                    .collect();
                self.uncommitted
                    .iter()
                    .skip(pos + 1)
                    .map(|u| {
                        let conflicts =
                            u.multi_partition || u.lock_set.iter().any(|(k, _)| dirty.contains(k));
                        if conflicts {
                            for (k, m) in &u.lock_set {
                                if *m == LockMode::Exclusive {
                                    dirty.insert(*k);
                                }
                            }
                        }
                        conflicts
                    })
                    .collect()
            }
        };
        // Roll back the squash set newest-first (undo is per-key LIFO;
        // survivors touch disjoint keys, so skipping them is safe).
        let mut kept: Vec<Uncommitted<E>> = Vec::new();
        for squash in squash_flags.into_iter().rev() {
            let u = self.uncommitted.pop_back().expect("non-empty");
            if !squash {
                kept.push(u);
                continue;
            }
            let undone = engine.rollback(u.txn);
            self.charge_rollback(out, undone);
            self.counters.squashed_executions += 1;
            if !u.finished_locally {
                self.unfinished -= 1;
            }
            // Next execution of this transaction is a new attempt.
            self.attempts.insert(u.txn, u.attempt + 1);
            // Re-queue round-0 work; parked continuations are stale (the
            // coordinator re-drives later rounds from fresh responses).
            debug_assert!(u.executed_tasks.iter().all(|t| t.round == 0));
            for task in u.executed_tasks.into_iter().rev() {
                self.unexecuted.push_front(task);
            }
        }
        // Survivors return in their original order.
        for u in kept.into_iter().rev() {
            self.uncommitted.push_back(u);
        }
    }
}

impl<E: ExecutionEngine> Scheduler<E> for SpeculativeScheduler<E> {
    fn on_fragment(
        &mut self,
        task: FragmentTask<E::Fragment>,
        engine: &mut E,
        _now: Nanos,
        out: &mut Outbox<E::Output>,
    ) {
        if let Some(idx) = self.position(task.txn) {
            if idx == 0 {
                // "fragment continues active multi-partition transaction".
                self.run_head_fragment(task, engine, out);
            } else {
                // Continuation of a speculative transaction: park it until
                // promotion (only first fragments are speculated, §4.2.2).
                self.uncommitted[idx].pending_continuations.push_back(task);
            }
            return;
        }
        if task.round > 0 {
            // A continuation for a transaction we no longer hold: its
            // earlier rounds were squashed by a cascading abort, so this
            // fragment was computed from discarded results. Drop it — the
            // coordinator re-drives the round after seeing fresh responses
            // (FIFO delivery guarantees any still-valid continuation finds
            // its transaction in the uncommitted queue).
            self.stale_fragments_dropped += 1;
            return;
        }
        self.unexecuted.push_back(task);
        self.pump(engine, out);
    }

    fn on_decision(
        &mut self,
        decision: Decision,
        engine: &mut E,
        _now: Nanos,
        out: &mut Outbox<E::Output>,
    ) {
        let Some(pos) = self.position(decision.txn) else {
            if !decision.commit {
                // An abort can reach us while the transaction's round-0
                // fragments are still *queued*: either squashed back into
                // the unexecuted queue awaiting re-execution, or parked
                // behind a cross-coordinator wait. The coordinator's
                // expiry/failover fan-out goes to every participant that
                // ever responded, and a squash can race with the decision
                // in flight — so this is a legitimate abort of queued
                // work, not a stray: drop the fragments and move on.
                let before = self.unexecuted.len();
                self.unexecuted.retain(|t| t.txn != decision.txn);
                let purged = before != self.unexecuted.len();
                if purged || self.attempts.remove(&decision.txn).is_some() {
                    if purged {
                        self.counters.aborted += 1;
                    }
                    if self.blocked_on == Some(decision.txn) {
                        self.blocked_on = None;
                    }
                    self.pump(engine, out);
                    return;
                }
            }
            // Unknown transaction: only possible after a failover, when the
            // coordinator's abort fan-out reaches the promoted backup for a
            // transaction that died with the old primary. Counted so
            // healthy runs can assert it never happens.
            self.counters.stray_decisions += 1;
            return;
        };
        // Commits arrive in dependency order (head first). Aborts may
        // target any position: a failover can abort a transaction that
        // was speculated mid-chain (the squash machinery below handles
        // any `pos`).
        debug_assert!(
            pos == 0 || !decision.commit,
            "commit decisions arrive in dependency order"
        );

        if decision.commit {
            let head = self.uncommitted.pop_front().expect("head exists");
            debug_assert!(head.finished_locally, "commit before prepare");
            engine.forget(head.txn);
            self.counters.committed += 1;
            if head.multi_partition {
                self.counters.committed_mp += 1;
            }
            self.attempts.remove(&head.txn);
            self.promote(engine, out);
        } else {
            // Cascading abort: squash all speculative successors, then
            // undo the aborted transaction itself. (Under the precise
            // policy, non-conflicting survivors may remain behind it.)
            self.squash_after(pos, engine, out);
            let u = self.uncommitted.remove(pos).expect("aborted txn present");
            debug_assert_eq!(u.txn, decision.txn);
            let undone = engine.rollback(u.txn);
            self.charge_rollback(out, undone);
            if !u.finished_locally {
                self.unfinished -= 1;
            }
            self.counters.aborted += 1;
            self.attempts.remove(&u.txn);
            // Under the precise policy, non-conflicting speculative
            // single-partition survivors are now valid: commit them (and
            // promote the next multi-partition transaction, if any).
            self.promote(engine, out);
        }
        self.pump(engine, out);
    }

    fn on_tick(
        &mut self,
        _engine: &mut E,
        _now: Nanos,
        _out: &mut Outbox<E::Output>,
    ) -> Option<Nanos> {
        None
    }

    fn counters(&self) -> SchedulerCounters {
        self.counters
    }

    fn is_idle(&self) -> bool {
        self.uncommitted.is_empty() && self.unexecuted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outbox::PartitionOut;
    use crate::testkit::{TestEngine, TestFragment};
    use hcc_common::ClientId;

    const NOW: Nanos = Nanos(0);

    fn sp(client: u32, seq: u32, frag: TestFragment) -> FragmentTask<TestFragment> {
        FragmentTask {
            txn: TxnId::new(ClientId(client), seq),
            coordinator: CoordinatorRef::Client(ClientId(client)),
            client: ClientId(client),
            fragment: frag,
            multi_partition: false,
            last_fragment: true,
            round: 0,
            can_abort: false,
        }
    }

    fn mp(seq: u32, frag: TestFragment, last: bool, round: u32) -> FragmentTask<TestFragment> {
        FragmentTask {
            txn: TxnId::new(ClientId(99), seq),
            coordinator: CoordinatorRef::Central(hcc_common::CoordinatorId(0)),
            client: ClientId(99),
            fragment: frag,
            multi_partition: true,
            last_fragment: last,
            round,
            can_abort: false,
        }
    }

    fn mp_txid(seq: u32) -> TxnId {
        TxnId::new(ClientId(99), seq)
    }

    fn setup() -> (
        SpeculativeScheduler<TestEngine>,
        TestEngine,
        Outbox<Vec<(u64, i64)>>,
    ) {
        (
            SpeculativeScheduler::new(PartitionId(0), CostModel::default(), usize::MAX),
            // Paper example state: x = 5 lives here (key 1).
            TestEngine::with_data(&[(1, 5), (2, 17)]),
            Outbox::new(CostModel::default()),
        )
    }

    fn client_results(msgs: &[PartitionOut<Vec<(u64, i64)>>]) -> Vec<(TxnId, bool)> {
        msgs.iter()
            .filter_map(|m| match m {
                PartitionOut::ToClient { txn, result, .. } => Some((*txn, result.is_committed())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn sp_fast_path_when_idle() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(sp(1, 0, TestFragment::add(1, 1)), &mut e, NOW, &mut out);
        assert_eq!(e.get(1), 6);
        assert_eq!(s.counters().fast_path, 1);
        assert!(s.is_idle());
        assert_eq!(e.live_undo_buffers(), 0);
    }

    /// The paper's §4.2.1 example: multi-round transaction A swaps x and y;
    /// B1 and B2 increment x on P1. B1/B2 must not run until A's final
    /// fragment executes, then run speculatively, and their results are
    /// released only when A commits.
    #[test]
    fn paper_example_local_speculation() {
        let (mut s, mut e, mut out) = setup();
        // Round 0 of A: read x. Not the last fragment here.
        s.on_fragment(
            mp(1, TestFragment::read(&[1]), false, 0),
            &mut e,
            NOW,
            &mut out,
        );
        // B1, B2 arrive while A is unfinished: must NOT speculate.
        s.on_fragment(sp(1, 0, TestFragment::add(1, 1)), &mut e, NOW, &mut out);
        s.on_fragment(sp(2, 0, TestFragment::add(1, 1)), &mut e, NOW, &mut out);
        assert_eq!(e.get(1), 5, "speculation before A finishes would be wrong");
        assert_eq!(s.unexecuted_len(), 2);
        out.take();

        // Final fragment of A: write x = 17 (the swap). Now speculation
        // begins: B1 computes 18, B2 computes 19, both buffered.
        s.on_fragment(
            mp(1, TestFragment::set(1, 17), true, 1),
            &mut e,
            NOW,
            &mut out,
        );
        assert_eq!(e.get(1), 19);
        assert_eq!(s.speculation_depth(), 2);
        let (msgs, _) = out.take();
        assert!(
            client_results(&msgs).is_empty(),
            "speculative results must not escape before commit"
        );
        assert_eq!(s.counters().speculative_executions, 2);

        // A commits: B1 and B2 results released in order.
        s.on_decision(
            Decision {
                txn: mp_txid(1),
                commit: true,
            },
            &mut e,
            NOW,
            &mut out,
        );
        let (msgs, _) = out.take();
        let results = client_results(&msgs);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|(_, ok)| *ok));
        assert_eq!(e.get(1), 19);
        assert!(s.is_idle());
        assert_eq!(e.live_undo_buffers(), 0);
    }

    /// Same example, but A aborts: B1 and B2 are undone and re-executed
    /// against the original value of x.
    #[test]
    fn paper_example_abort_cascade() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp(1, TestFragment::set(1, 17), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        s.on_fragment(sp(1, 0, TestFragment::add(1, 1)), &mut e, NOW, &mut out);
        s.on_fragment(sp(2, 0, TestFragment::add(1, 1)), &mut e, NOW, &mut out);
        assert_eq!(e.get(1), 19, "17 + 1 + 1 speculatively");
        out.take();

        s.on_decision(
            Decision {
                txn: mp_txid(1),
                commit: false,
            },
            &mut e,
            NOW,
            &mut out,
        );
        // A's write undone; B1/B2 re-executed on x = 5: 6 then 7.
        assert_eq!(e.get(1), 7);
        let (msgs, _) = out.take();
        let results = client_results(&msgs);
        assert_eq!(results.len(), 2, "B1 and B2 commit after re-execution");
        assert!(results.iter().all(|(_, ok)| *ok));
        assert_eq!(s.counters().squashed_executions, 2);
        assert!(s.is_idle());
        assert_eq!(e.live_undo_buffers(), 0);
    }

    #[test]
    fn mp_speculation_sends_response_with_dependency() {
        let (mut s, mut e, mut out) = setup();
        // A: simple MP fragment (last). C: another simple MP fragment.
        s.on_fragment(
            mp(1, TestFragment::add(1, 1), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        out.take();
        s.on_fragment(
            mp(2, TestFragment::add(1, 10), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        let (msgs, _) = out.take();
        let resp = msgs
            .iter()
            .find_map(|m| match m {
                PartitionOut::ToCoordinator { response, .. } if response.txn == mp_txid(2) => {
                    Some(response)
                }
                _ => None,
            })
            .expect("speculative MP response released (same coordinator)");
        assert_eq!(
            resp.depends_on,
            Some(SpecDep {
                txn: mp_txid(1),
                attempt: 0
            })
        );
        assert_eq!(resp.vote, Some(Vote::Commit));
        assert_eq!(e.get(1), 16, "5 + 1 + 10");
    }

    #[test]
    fn chained_mp_commits_in_order() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp(1, TestFragment::add(1, 1), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        s.on_fragment(
            mp(2, TestFragment::add(1, 10), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        s.on_fragment(sp(1, 0, TestFragment::add(1, 100)), &mut e, NOW, &mut out);
        out.take();
        s.on_decision(
            Decision {
                txn: mp_txid(1),
                commit: true,
            },
            &mut e,
            NOW,
            &mut out,
        );
        // C (mp 2) becomes head; SP still buffered behind it.
        let (msgs, _) = out.take();
        assert!(client_results(&msgs).is_empty());
        s.on_decision(
            Decision {
                txn: mp_txid(2),
                commit: true,
            },
            &mut e,
            NOW,
            &mut out,
        );
        let (msgs, _) = out.take();
        assert_eq!(client_results(&msgs).len(), 1, "SP released after C");
        assert_eq!(e.get(1), 116);
        assert!(s.is_idle());
    }

    #[test]
    fn mp_abort_cascade_bumps_attempt_and_resends() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp(1, TestFragment::add(1, 1), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        s.on_fragment(
            mp(2, TestFragment::add(1, 10), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        out.take();
        // A aborts: C squashed and immediately re-executed as the new head.
        s.on_decision(
            Decision {
                txn: mp_txid(1),
                commit: false,
            },
            &mut e,
            NOW,
            &mut out,
        );
        assert_eq!(e.get(1), 15, "A's +1 undone, C's +10 re-applied");
        let (msgs, _) = out.take();
        let resp = msgs
            .iter()
            .find_map(|m| match m {
                PartitionOut::ToCoordinator { response, .. } if response.txn == mp_txid(2) => {
                    Some(response)
                }
                _ => None,
            })
            .expect("fresh response resent");
        assert_eq!(resp.attempt, 1, "re-execution is a new attempt");
        assert_eq!(resp.depends_on, None, "new head is non-speculative");
        assert_eq!(s.counters().squashed_executions, 1);
    }

    /// An MP transaction whose coordinator differs from the chain's
    /// (cross-shard, or a client-driver vs a shard) waits unexecuted —
    /// the blocking fallback of the same-coordinator-chain rule — and is
    /// admitted once the chain resolves.
    #[test]
    fn different_coordinator_mp_waits_until_chain_resolves() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp(1, TestFragment::add(1, 1), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        out.take();
        let mut other = mp(2, TestFragment::add(1, 10), true, 0);
        other.coordinator = CoordinatorRef::Client(ClientId(7));
        let other_txn = other.txn;
        s.on_fragment(other, &mut e, NOW, &mut out);
        let (msgs, _) = out.take();
        assert!(
            !msgs.iter().any(|m| matches!(
                m,
                PartitionOut::ToCoordinator { response, .. } if response.txn == other_txn
            )),
            "cross-coordinator fragment must wait, not execute"
        );
        assert_eq!(e.get(1), 6, "not executed while waiting");
        assert_eq!(s.counters().cross_coord_waits, 1);
        assert_eq!(s.unexecuted_len(), 1, "queued, not dropped");
        // Same-shard SP work behind the waiter also waits (FIFO).
        s.on_fragment(sp(1, 0, TestFragment::add(1, 100)), &mut e, NOW, &mut out);
        assert_eq!(e.get(1), 6);
        assert_eq!(
            s.counters().cross_coord_waits,
            1,
            "stall counted once per blocking transaction"
        );
        out.take();

        // Chain resolves: the waiter becomes the new head and executes.
        s.on_decision(
            Decision {
                txn: mp_txid(1),
                commit: true,
            },
            &mut e,
            NOW,
            &mut out,
        );
        let (msgs, _) = out.take();
        let dest = msgs
            .iter()
            .find_map(|m| match m {
                PartitionOut::ToCoordinator { response, dest } if response.txn == other_txn => {
                    Some(*dest)
                }
                _ => None,
            })
            .expect("waiter admitted once the chain resolved");
        assert_eq!(dest, CoordinatorRef::Client(ClientId(7)));
        assert_eq!(e.get(1), 116, "waiter executed, then the SP speculated");
    }

    /// Two shards' transactions at one partition: the second shard's
    /// waits; a third same-shard-as-head transaction behind it also waits
    /// (FIFO — the chain cannot be extended past a waiting cross-shard
    /// transaction, which is what keeps cross-shard waits bounded).
    #[test]
    fn cross_shard_waiter_blocks_chain_extension() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp(1, TestFragment::add(1, 1), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        out.take();
        let mut other = mp(2, TestFragment::add(1, 10), true, 0);
        other.coordinator = CoordinatorRef::Central(hcc_common::CoordinatorId(1));
        s.on_fragment(other, &mut e, NOW, &mut out);
        // A same-shard-as-head MP transaction arrives behind the waiter:
        // it must NOT jump the queue into the head's chain.
        s.on_fragment(
            mp(3, TestFragment::add(1, 100), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        assert_eq!(e.get(1), 6, "only the head executed");
        assert_eq!(s.unexecuted_len(), 2);
        assert_eq!(s.counters().cross_coord_waits, 1);
        out.take();

        // Head commits; the cross-shard waiter becomes head; the shard-0
        // transaction now waits behind *it* (roles swap).
        s.on_decision(
            Decision {
                txn: mp_txid(1),
                commit: true,
            },
            &mut e,
            NOW,
            &mut out,
        );
        assert_eq!(e.get(1), 16, "waiter admitted as the new head");
        assert_eq!(
            s.counters().cross_coord_waits,
            2,
            "the shard-0 transaction now stalls behind shard 1"
        );
    }

    #[test]
    fn speculative_multi_round_continuation_parked_until_promotion() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp(1, TestFragment::add(1, 1), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        // C is multi-round: round 0 is NOT its last fragment.
        s.on_fragment(
            mp(2, TestFragment::read(&[1]), false, 0),
            &mut e,
            NOW,
            &mut out,
        );
        out.take();
        // Round 1 arrives while C is speculative: must be parked.
        s.on_fragment(
            mp(2, TestFragment::set(1, 42), true, 1),
            &mut e,
            NOW,
            &mut out,
        );
        assert_eq!(e.get(1), 6, "round 1 must not execute while speculative");
        // And no further speculation can pass the unfinished C.
        s.on_fragment(sp(1, 0, TestFragment::add(1, 1)), &mut e, NOW, &mut out);
        assert_eq!(s.unexecuted_len(), 1, "SP parked behind unfinished C");
        out.take();

        // A commits -> C promoted -> parked round 1 executes (setting 42),
        // after which the parked SP speculates on top (+1).
        s.on_decision(
            Decision {
                txn: mp_txid(1),
                commit: true,
            },
            &mut e,
            NOW,
            &mut out,
        );
        assert_eq!(e.get(1), 43, "continuation ran, then SP speculated");
        let (msgs, _) = out.take();
        assert!(msgs.iter().any(|m| matches!(
            m,
            PartitionOut::ToCoordinator { response, .. }
                if response.txn == mp_txid(2) && response.round == 1
                    && response.vote == Some(Vote::Commit)
        )));
        assert_eq!(s.speculation_depth(), 1, "SP speculative behind C");
    }

    #[test]
    fn stale_continuation_for_unknown_txn_dropped() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp(7, TestFragment::set(1, 9), true, 1),
            &mut e,
            NOW,
            &mut out,
        );
        assert_eq!(s.stale_fragments_dropped, 1);
        assert_eq!(e.get(1), 5);
        assert!(s.is_idle());
    }

    #[test]
    fn max_depth_limits_speculation() {
        let (mut s, mut e, mut out) = (
            SpeculativeScheduler::<TestEngine>::with_policy(
                PartitionId(0),
                CostModel::default(),
                1,
                ConflictPolicy::AssumeAll,
            ),
            TestEngine::with_data(&[(1, 0)]),
            Outbox::new(CostModel::default()),
        );
        s.on_fragment(
            mp(1, TestFragment::add(1, 1), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        s.on_fragment(sp(1, 0, TestFragment::add(1, 1)), &mut e, NOW, &mut out);
        s.on_fragment(sp(2, 0, TestFragment::add(1, 1)), &mut e, NOW, &mut out);
        assert_eq!(s.speculation_depth(), 1, "depth capped");
        assert_eq!(s.unexecuted_len(), 1);
        assert_eq!(e.get(1), 2, "only one SP speculated");
    }

    #[test]
    fn speculative_user_abort_buffered_and_final_on_commit() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp(1, TestFragment::add(1, 1), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        let mut failing = sp(1, 0, TestFragment::failing());
        failing.can_abort = true;
        s.on_fragment(failing, &mut e, NOW, &mut out);
        let (msgs, _) = out.take();
        assert!(
            client_results(&msgs).is_empty(),
            "aborted result buffered too"
        );
        s.on_decision(
            Decision {
                txn: mp_txid(1),
                commit: true,
            },
            &mut e,
            NOW,
            &mut out,
        );
        let (msgs, _) = out.take();
        let results = client_results(&msgs);
        assert_eq!(results.len(), 1);
        assert!(!results[0].1, "user abort delivered after promotion");
    }

    #[test]
    fn occ_policy_keeps_nonconflicting_survivors() {
        let mut s = SpeculativeScheduler::<TestEngine>::with_policy(
            PartitionId(0),
            CostModel::default(),
            usize::MAX,
            ConflictPolicy::Precise,
        );
        let mut e = TestEngine::with_data(&[(1, 5), (2, 100), (3, 200)]);
        let mut out = Outbox::new(CostModel::default());
        // Head MP writes key 1.
        s.on_fragment(
            mp(1, TestFragment::add(1, 1), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        // SP A touches key 2 (disjoint), SP B touches key 1 (conflicts).
        s.on_fragment(sp(1, 0, TestFragment::add(2, 1)), &mut e, NOW, &mut out);
        s.on_fragment(sp(2, 0, TestFragment::add(1, 1)), &mut e, NOW, &mut out);
        out.take();
        s.on_decision(
            Decision {
                txn: mp_txid(1),
                commit: false,
            },
            &mut e,
            NOW,
            &mut out,
        );
        // Only the conflicting SP was squashed and re-run; the disjoint one
        // survived (committed at promotion after the abort).
        assert_eq!(s.counters().squashed_executions, 1);
        assert_eq!(e.get(1), 6, "head's +1 undone; SP B re-ran on 5");
        assert_eq!(e.get(2), 101, "survivor kept");
        let (msgs, _) = out.take();
        assert_eq!(client_results(&msgs).len(), 2);
        assert!(s.is_idle());
        assert_eq!(e.live_undo_buffers(), 0);
    }

    #[test]
    fn occ_policy_squashes_transitive_conflicts() {
        let mut s = SpeculativeScheduler::<TestEngine>::with_policy(
            PartitionId(0),
            CostModel::default(),
            usize::MAX,
            ConflictPolicy::Precise,
        );
        let mut e = TestEngine::with_data(&[(1, 0), (2, 0), (3, 0)]);
        let mut out = Outbox::new(CostModel::default());
        // Head writes key 1. SP A copies key1 -> writes key 2 (conflicts
        // with head). SP B reads key 2 -> writes key 3 (conflicts with A,
        // not with head directly).
        s.on_fragment(
            mp(1, TestFragment::set(1, 7), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        s.on_fragment(
            sp(
                1,
                0,
                TestFragment {
                    ops: vec![
                        crate::testkit::TestOp::Read(1),
                        crate::testkit::TestOp::Add(2, 1),
                    ],
                    fail: false,
                },
            ),
            &mut e,
            NOW,
            &mut out,
        );
        s.on_fragment(
            sp(
                2,
                0,
                TestFragment {
                    ops: vec![
                        crate::testkit::TestOp::Read(2),
                        crate::testkit::TestOp::Add(3, 1),
                    ],
                    fail: false,
                },
            ),
            &mut e,
            NOW,
            &mut out,
        );
        out.take();
        s.on_decision(
            Decision {
                txn: mp_txid(1),
                commit: false,
            },
            &mut e,
            NOW,
            &mut out,
        );
        // Both SPs squashed (transitive) and re-run.
        assert_eq!(s.counters().squashed_executions, 2);
        assert!(s.is_idle());
        assert_eq!(e.live_undo_buffers(), 0);
    }

    #[test]
    fn counters_track_committed_and_aborted() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(sp(1, 0, TestFragment::add(1, 1)), &mut e, NOW, &mut out);
        s.on_fragment(
            mp(1, TestFragment::add(1, 1), true, 0),
            &mut e,
            NOW,
            &mut out,
        );
        s.on_decision(
            Decision {
                txn: mp_txid(1),
                commit: false,
            },
            &mut e,
            NOW,
            &mut out,
        );
        let c = s.counters();
        assert_eq!(c.committed, 1);
        assert_eq!(c.aborted, 1);
    }
}
