//! A serial-equivalence oracle for the four concurrency control schemes.
//!
//! The schedulers' whole correctness claim is serializability: any
//! concurrent history they admit must be equivalent to *some* serial
//! execution — specifically, for these strict schedulers, to the serial
//! execution in **commit order** (the classical strict-2PL equivalence;
//! blocking and speculation dispatch FIFO so their commit order is
//! arrival order, and locking may commit a later-arriving transaction
//! first only when 2PL serialized it first). The oracle therefore
//! records the order in which the concurrent run committed transactions
//! and replays exactly that order one-at-a-time through the same
//! [`TestEngine`]: committed outputs, the aborted set, and the final
//! fingerprint must all be bit-identical. Any divergence implicates the
//! concurrency control (squash sets, undo ordering, lock coverage), not
//! the storage.
//!
//! The comparison includes per-transaction *outputs*, not just the final
//! fingerprint: a phantom read (a scan observing rows inserted — or
//! missing rows deleted — by a transaction that later aborts) corrupts
//! only the reader's output, never the final state. This is exactly how
//! the delete-phantom in scan lock sets was caught (see
//! `speculative_scan_*` regression tests in `tests/scan_serial_oracle.rs`
//! at the workspace root).
//!
//! The runner drives one partition's scheduler directly, playing client,
//! coordinator, and network: multi-partition transactions execute their
//! single local fragment, vote, and then wait `decision_delay` further
//! arrivals for their 2PC decision — the window in which the speculative
//! and OCC schemes speculate and the blocking scheme stalls. A
//! `forced_abort` models the (virtual) other participant voting abort.

use crate::engine::ExecutionEngine;
use crate::outbox::{Outbox, PartitionOut};
use crate::scheduler::make_scheduler;
use crate::testkit::{TestEngine, TestFragment, TestOutput};
use hcc_common::{
    ClientId, CoordinatorId, CoordinatorRef, Decision, FragmentTask, Nanos, Scheme, SystemConfig,
    TxnId, TxnResult, Vote,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// One transaction of an oracle run. Index in the input slice is the
/// arrival order and the transaction's identity.
#[derive(Debug, Clone)]
pub struct OracleTxn {
    pub fragment: TestFragment,
    /// Route through the 2PC path (coordinator decision) instead of the
    /// single-partition fast path.
    pub multi_partition: bool,
    /// 2PC aborts this transaction even though its local vote was commit
    /// (the virtual remote participant failed). Ignored for
    /// single-partition transactions.
    pub forced_abort: bool,
    /// How many *subsequent arrivals* to wait before the decision is
    /// delivered — the stall window other transactions queue or
    /// speculate into. Ignored for single-partition transactions.
    pub decision_delay: u32,
}

/// What a run (concurrent or serial) committed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleOutcome {
    /// Output of every committed transaction, by arrival index.
    pub committed: BTreeMap<usize, TestOutput>,
    /// Arrival indexes that aborted (user abort or forced 2PC abort).
    pub aborted: BTreeSet<usize>,
    /// Arrival indexes in the order they committed — the serial order
    /// this run claims equivalence to.
    pub commit_order: Vec<usize>,
    /// Final committed-state fingerprint.
    pub fingerprint: u64,
}

const COORD: CoordinatorRef = CoordinatorRef::Central(CoordinatorId(0));

fn txn_id(index: usize) -> TxnId {
    TxnId::new(ClientId(index as u32), 0)
}

fn index_of(txn: TxnId) -> usize {
    txn.client().0 as usize
}

/// Execute `txns` through the scheduler of `scheme` on one partition and
/// collect the committed results. Panics if the run wedges (a pending
/// transaction whose vote never arrives) or leaks undo buffers — both
/// scheduler bugs the oracle should fail loudly on.
pub fn run_scheme(
    scheme: Scheme,
    stripe_shift: u32,
    initial: &[(u64, i64)],
    txns: &[OracleTxn],
) -> OracleOutcome {
    let config = SystemConfig::new(scheme);
    let mut engine = TestEngine::with_data(initial).with_stripe_locks(stripe_shift);
    let mut sched = make_scheduler::<TestEngine>(&config, hcc_common::PartitionId(0));
    let mut out: Outbox<TestOutput> = Outbox::new(config.costs);

    let mut committed: BTreeMap<usize, TestOutput> = BTreeMap::new();
    let mut aborted: BTreeSet<usize> = BTreeSet::new();
    let mut commit_order: Vec<usize> = Vec::new();
    // Latest fragment response per MP transaction (a squash supersedes
    // earlier attempts), and the FIFO of undecided MP transactions with
    // the arrival count at which each becomes decidable.
    let mut latest: HashMap<usize, (Result<TestOutput, hcc_common::AbortReason>, Vote)> =
        HashMap::new();
    let mut pending: VecDeque<(usize, u64)> = VecDeque::new();
    let mut arrivals: u64 = 0;

    let drain =
        |out: &mut Outbox<TestOutput>,
         committed: &mut BTreeMap<usize, TestOutput>,
         aborted: &mut BTreeSet<usize>,
         commit_order: &mut Vec<usize>,
         latest: &mut HashMap<usize, (Result<TestOutput, hcc_common::AbortReason>, Vote)>| {
            let (msgs, _cpu) = out.take();
            for m in msgs {
                match m {
                    PartitionOut::ToClient { txn, result, .. } => match result {
                        TxnResult::Committed(payload) => {
                            commit_order.push(index_of(txn));
                            committed.insert(index_of(txn), payload);
                        }
                        TxnResult::Aborted(_) => {
                            aborted.insert(index_of(txn));
                        }
                    },
                    PartitionOut::ToCoordinator { response, .. } => {
                        let vote = response
                            .vote
                            .expect("single-round fragments always carry a vote");
                        latest.insert(index_of(response.txn), (response.payload, vote));
                    }
                }
            }
        };

    // Deliver decisions. The chain-ordered schemes (blocking,
    // speculation, OCC) receive them strictly FIFO — the coordinator's
    // commit-at-head order. Under locking, clients run *independent* 2PC
    // (§4.3), so any prepared transaction may be decided: a waiting
    // transaction can even be blocked on a lock a later-arriving,
    // already-prepared transaction holds, and FIFO-only delivery would
    // wedge. `force` ignores the decision delay — the end-of-input flush.
    macro_rules! deliver_ready {
        ($force:expr) => {
            loop {
                let window = if scheme == Scheme::Locking {
                    pending.len()
                } else {
                    pending.len().min(1)
                };
                let mut found: Option<(usize, usize)> = None;
                for pos in 0..window {
                    let (idx, eligible_at) = pending[pos];
                    if (!$force && arrivals < eligible_at) || !latest.contains_key(&idx) {
                        // Not yet eligible, or its vote is not in (e.g.
                        // suspended on a lock): under locking keep
                        // looking, otherwise the chain is stalled here.
                        continue;
                    }
                    found = Some((pos, idx));
                    break;
                }
                let Some((pos, idx)) = found else {
                    break;
                };
                let (payload, vote) = latest.get(&idx).cloned().expect("vote checked above");
                let commit = matches!(vote, Vote::Commit) && !txns[idx].forced_abort;
                pending.remove(pos);
                sched.on_decision(
                    Decision {
                        txn: txn_id(idx),
                        commit,
                    },
                    &mut engine,
                    Nanos(arrivals),
                    &mut out,
                );
                // The MP transaction's commit point precedes anything its
                // decision released (promoted speculative results), so
                // record it before draining the outbox.
                if commit {
                    commit_order.push(idx);
                    committed.insert(idx, payload.expect("commit vote implies Ok payload"));
                } else {
                    aborted.insert(idx);
                }
                drain(
                    &mut out,
                    &mut committed,
                    &mut aborted,
                    &mut commit_order,
                    &mut latest,
                );
            }
        };
    }

    for (i, t) in txns.iter().enumerate() {
        let task = FragmentTask {
            txn: txn_id(i),
            coordinator: COORD,
            client: ClientId(i as u32),
            fragment: t.fragment.clone(),
            multi_partition: t.multi_partition,
            last_fragment: true,
            round: 0,
            can_abort: t.fragment.fail,
        };
        sched.on_fragment(task, &mut engine, Nanos(arrivals), &mut out);
        drain(
            &mut out,
            &mut committed,
            &mut aborted,
            &mut commit_order,
            &mut latest,
        );
        if t.multi_partition {
            pending.push_back((i, arrivals + 1 + t.decision_delay as u64));
        }
        arrivals += 1;
        deliver_ready!(false);
    }
    // Flush: decide the remaining transactions in order. Each decision
    // can wake lock waiters whose votes gate the next round, so loop
    // until the queue drains; stall = scheduler bug.
    let mut guard = 0usize;
    while !pending.is_empty() {
        let before = pending.len();
        deliver_ready!(true);
        if pending.len() == before {
            guard += 1;
            assert!(
                guard < 4,
                "{scheme}: oracle run wedged with {} undecided transactions \
                 (front = {:?})",
                pending.len(),
                pending.front()
            );
        } else {
            guard = 0;
        }
    }

    assert!(sched.is_idle(), "{scheme}: scheduler not idle after drain");
    assert_eq!(
        engine.live_undo_buffers(),
        0,
        "{scheme}: leaked undo buffers"
    );
    OracleOutcome {
        committed,
        aborted,
        commit_order,
        fingerprint: engine.fingerprint(),
    }
}

/// The oracle: execute the same transactions one at a time, in arrival
/// order, through the same engine. Aborted transactions (user aborts and
/// forced 2PC aborts) roll back and leave no state.
pub fn run_serial(initial: &[(u64, i64)], txns: &[OracleTxn]) -> OracleOutcome {
    let order: Vec<usize> = (0..txns.len()).collect();
    run_serial_in_order(initial, txns, &order)
}

/// Execute the transactions one at a time in the given arrival-index
/// order (a permutation, or any subsequence covering the committed set):
/// the serial schedule a concurrent run claims equivalence to. Aborted
/// transactions (user aborts and forced 2PC aborts) roll back and leave
/// no state wherever they appear; indexes absent from `order` are
/// treated as aborted.
pub fn run_serial_in_order(
    initial: &[(u64, i64)],
    txns: &[OracleTxn],
    order: &[usize],
) -> OracleOutcome {
    let mut engine = TestEngine::with_data(initial);
    let mut committed = BTreeMap::new();
    let mut aborted: BTreeSet<usize> = (0..txns.len()).collect();
    let mut commit_order = Vec::new();
    for &i in order {
        let t = &txns[i];
        let id = txn_id(i);
        let outcome = engine.execute(id, &t.fragment, true);
        match outcome.result {
            Err(_) => {
                engine.rollback(id);
            }
            Ok(payload) => {
                if t.multi_partition && t.forced_abort {
                    engine.rollback(id);
                } else {
                    engine.forget(id);
                    aborted.remove(&i);
                    commit_order.push(i);
                    committed.insert(i, payload);
                }
            }
        }
    }
    assert_eq!(engine.live_undo_buffers(), 0);
    OracleOutcome {
        committed,
        aborted,
        commit_order,
        fingerprint: engine.fingerprint(),
    }
}

/// Run every scheme and check it against the serial oracle *in the
/// scheme's own commit order* (strict schedulers are conflict-equivalent
/// to their commit order — the serializability claim itself), panicking
/// with a precise diff on the first divergence. The commit/abort *sets*
/// must additionally match the arrival-order serial execution: which
/// transactions abort is decided by their flags, never by scheduling.
/// Returns the arrival-order serial outcome for extra assertions.
pub fn assert_serial_equivalent(
    stripe_shift: u32,
    initial: &[(u64, i64)],
    txns: &[OracleTxn],
) -> OracleOutcome {
    let arrival = run_serial(initial, txns);
    for scheme in [
        Scheme::Blocking,
        Scheme::Speculative,
        Scheme::Locking,
        Scheme::Occ,
    ] {
        let got = run_scheme(scheme, stripe_shift, initial, txns);
        assert_eq!(
            got.aborted, arrival.aborted,
            "{scheme}: aborted set diverged (aborts are flag-determined)"
        );
        assert_eq!(
            got.commit_order.len(),
            got.committed.len(),
            "{scheme}: a transaction committed twice"
        );
        let serial = run_serial_in_order(initial, txns, &got.commit_order);
        for (idx, payload) in &serial.committed {
            let scheme_payload = got.committed.get(idx).unwrap_or_else(|| {
                panic!("{scheme}: txn {idx} committed serially but not concurrently")
            });
            assert_eq!(
                scheme_payload, payload,
                "{scheme}: txn {idx} committed a different output than the \
                 serial execution of this run's own commit order (phantom or \
                 stale read)"
            );
        }
        assert_eq!(
            got.committed.len(),
            serial.committed.len(),
            "{scheme}: committed-set size diverged"
        );
        assert_eq!(
            got.fingerprint, serial.fingerprint,
            "{scheme}: final state diverged from serial execution in commit order"
        );
    }
    arrival
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::TestOp;

    fn sp(ops: Vec<TestOp>) -> OracleTxn {
        OracleTxn {
            fragment: TestFragment { ops, fail: false },
            multi_partition: false,
            forced_abort: false,
            decision_delay: 0,
        }
    }

    fn mp(ops: Vec<TestOp>, forced_abort: bool, delay: u32) -> OracleTxn {
        OracleTxn {
            fragment: TestFragment { ops, fail: false },
            multi_partition: true,
            forced_abort,
            decision_delay: delay,
        }
    }

    const INITIAL: &[(u64, i64)] = &[(0, 10), (1, 11), (2, 12), (8, 18), (9, 19)];

    #[test]
    fn plain_point_mix_matches_serial() {
        let txns = vec![
            mp(vec![TestOp::Add(0, 5), TestOp::Read(0)], false, 2),
            sp(vec![TestOp::Read(0), TestOp::Add(1, 1)]),
            sp(vec![TestOp::Set(2, 99)]),
            mp(vec![TestOp::Add(2, 1)], true, 1),
            sp(vec![TestOp::Read(2)]),
        ];
        assert_serial_equivalent(2, INITIAL, &txns);
    }

    #[test]
    fn scans_with_inserts_and_deletes_match_serial() {
        let txns = vec![
            mp(vec![TestOp::Set(4, 44)], false, 3), // insert into [0,8)
            sp(vec![TestOp::Scan(0, 8)]),
            mp(vec![TestOp::Del(1)], true, 2), // delete, later aborted
            sp(vec![TestOp::Scan(0, 8)]),
            sp(vec![TestOp::Scan(0, 16)]),
        ];
        assert_serial_equivalent(2, INITIAL, &txns);
    }

    #[test]
    fn forced_abort_mp_leaves_no_trace() {
        let txns = vec![
            mp(vec![TestOp::Set(30, 1), TestOp::Del(0)], true, 2),
            sp(vec![TestOp::Scan(0, 64)]),
        ];
        let serial = assert_serial_equivalent(2, INITIAL, &txns);
        assert_eq!(serial.aborted.len(), 1);
    }

    #[test]
    fn user_abort_fragment_counts_as_aborted_everywhere() {
        let mut failing = sp(vec![]);
        failing.fragment.fail = true;
        let txns = vec![
            mp(vec![TestOp::Add(0, 1)], false, 1),
            failing,
            sp(vec![TestOp::Read(0)]),
        ];
        let serial = assert_serial_equivalent(2, INITIAL, &txns);
        assert_eq!(serial.aborted.len(), 1);
    }

    /// The delete-phantom regression (ISSUE 5 satellite): a scan running
    /// speculatively behind a transaction that *deleted* a row in its
    /// range must not survive that transaction's abort — it observed the
    /// row's absence, which the rollback un-observes. A scan lock set
    /// built by enumerating current members misses this (the deleted row
    /// is not a member at scan time, and here it was alone in its stripe,
    /// so no neighbour drags the stripe in); only range-covering stripe
    /// locks make the deleter's write set intersect the scan's read set.
    /// Caught by this oracle against the member-enumeration variant,
    /// fixed by `TestEngine::lock_set` covering `[start, end)` stripes.
    #[test]
    fn scan_must_not_observe_absence_of_rows_deleted_by_later_aborted_txn() {
        // shift 2 → key 8 is alone in stripe 2; key 0 is far away.
        let initial: &[(u64, i64)] = &[(0, 10), (8, 18)];
        let txns = vec![
            mp(vec![TestOp::Del(8)], true, 2), // deletes, then 2PC-aborts
            sp(vec![TestOp::Scan(4, 12)]),     // must see 8 after the abort
            sp(vec![TestOp::Read(0)]),
        ];
        let serial = assert_serial_equivalent(2, initial, &txns);
        assert_eq!(
            serial.committed.get(&1),
            Some(&vec![(8, 18)]),
            "serially the scan sees the restored row"
        );
    }

    /// The insert twin: a scan behind a later-aborted *insert* into its
    /// range must not keep the phantom row in its committed output.
    #[test]
    fn scan_must_not_observe_rows_inserted_by_later_aborted_txn() {
        let initial: &[(u64, i64)] = &[(0, 10)];
        let txns = vec![
            mp(vec![TestOp::Set(5, 55)], true, 2), // insert, then abort
            sp(vec![TestOp::Scan(4, 8)]),          // must NOT see 5
            sp(vec![TestOp::Read(0)]),
        ];
        let serial = assert_serial_equivalent(2, initial, &txns);
        assert_eq!(
            serial.committed.get(&1),
            Some(&vec![]),
            "serially the aborted insert is invisible"
        );
    }

    #[test]
    fn zero_delay_decisions_commit_in_line() {
        let txns = vec![
            mp(vec![TestOp::Add(0, 1)], false, 0),
            mp(vec![TestOp::Add(0, 1)], false, 0),
            sp(vec![TestOp::Read(0)]),
        ];
        assert_serial_equivalent(2, INITIAL, &txns);
    }
}
