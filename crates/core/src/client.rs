//! Client-side request lifecycle, shared by the simulator and the threaded
//! runtime.
//!
//! Clients are closed-loop (paper §5): issue one request, wait for its
//! result, issue the next. A transaction aborted for scheduling reasons
//! (deadlock victim, lock timeout) is transparently retried under a fresh
//! transaction id — a `TxnId` identifies one *invocation attempt*
//! end-to-end, which keeps partition- and coordinator-side bookkeeping
//! (execution attempts, decided-transaction history) unambiguous. User
//! aborts are final outcomes and are not retried.

use crate::procedure::{Procedure, Request};
use hcc_common::stats::LatencyHistogram;
use hcc_common::{ClientId, Nanos, PartitionId, TxnId, TxnResult};

/// Per-client outcome statistics.
#[derive(Debug, Clone, Default)]
pub struct ClientStats {
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that ended in a (final) user abort.
    pub user_aborted: u64,
    /// Scheduling aborts that triggered a transparent retry.
    pub retries: u64,
    /// End-to-end latency of committed transactions (submission of the
    /// first attempt → result), recorded by
    /// [`ClientCore::on_result_at`].
    pub latency: LatencyHistogram,
}

impl ClientStats {
    /// Fold another client's stats in (drivers aggregate across clients).
    pub fn merge(&mut self, other: &ClientStats) {
        self.committed += other.committed;
        self.user_aborted += other.user_aborted;
        self.retries += other.retries;
        self.latency.merge(&other.latency);
    }
}

/// What the client should do after a result arrives.
#[derive(Debug, PartialEq, Eq)]
pub enum NextAction {
    /// The request reached a final outcome: issue a new request.
    NewRequest,
    /// The request must be retried (same work, fresh transaction id).
    Retry,
}

/// The retryable copy of an in-flight request.
pub enum PendingRequest<F, R> {
    SinglePartition {
        partition: PartitionId,
        fragment: F,
        can_abort: bool,
    },
    MultiPartition {
        procedure: Box<dyn Procedure<F, R>>,
        can_abort: bool,
    },
}

impl<F: Clone, R> PendingRequest<F, R> {
    /// Snapshot a request so it can be re-submitted on retry.
    pub fn from_request(req: &Request<F, R>) -> Self {
        match req {
            Request::SinglePartition {
                partition,
                fragment,
                can_abort,
            } => PendingRequest::SinglePartition {
                partition: *partition,
                fragment: fragment.clone(),
                can_abort: *can_abort,
            },
            Request::MultiPartition {
                procedure,
                can_abort,
            } => PendingRequest::MultiPartition {
                procedure: procedure.clone_box(),
                can_abort: *can_abort,
            },
        }
    }

    /// Turn the snapshot back into a request (cloning so the snapshot can
    /// serve further retries).
    pub fn to_request(&self) -> Request<F, R> {
        match self {
            PendingRequest::SinglePartition {
                partition,
                fragment,
                can_abort,
            } => Request::SinglePartition {
                partition: *partition,
                fragment: fragment.clone(),
                can_abort: *can_abort,
            },
            PendingRequest::MultiPartition {
                procedure,
                can_abort,
            } => Request::MultiPartition {
                procedure: procedure.clone_box(),
                can_abort: *can_abort,
            },
        }
    }
}

/// Transaction-id assignment and outcome bookkeeping for one client.
#[derive(Debug)]
pub struct ClientCore {
    pub id: ClientId,
    seq: u32,
    pub stats: ClientStats,
}

impl ClientCore {
    pub fn new(id: ClientId) -> Self {
        ClientCore {
            id,
            seq: 0,
            stats: ClientStats::default(),
        }
    }

    /// Allocate the transaction id for the next invocation attempt.
    pub fn next_txn_id(&mut self) -> TxnId {
        let txn = TxnId::new(self.id, self.seq);
        self.seq = self.seq.wrapping_add(1);
        txn
    }

    /// Record a final result; decide whether to retry.
    pub fn on_result<R>(&mut self, result: &TxnResult<R>) -> NextAction {
        match result {
            TxnResult::Committed(_) => {
                self.stats.committed += 1;
                NextAction::NewRequest
            }
            TxnResult::Aborted(reason) if reason.is_retryable() => {
                self.stats.retries += 1;
                NextAction::Retry
            }
            TxnResult::Aborted(_) => {
                self.stats.user_aborted += 1;
                NextAction::NewRequest
            }
        }
    }

    /// As [`on_result`](ClientCore::on_result), but with clock readings so
    /// committed-transaction latency lands in [`ClientStats::latency`].
    /// `submitted` is when the request's *first* attempt was issued (a
    /// retried transaction keeps accruing from its original submission —
    /// the user-visible latency), `now` when the result arrived. When
    /// `record` is false the outcome is counted but the latency sample is
    /// dropped (drivers pass the measurement-window predicate here).
    pub fn on_result_at<R>(
        &mut self,
        result: &TxnResult<R>,
        submitted: Nanos,
        now: Nanos,
        record: bool,
    ) -> NextAction {
        if record && result.is_committed() {
            self.stats.latency.record(now.saturating_sub(submitted));
        }
        self.on_result(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{SimpleMpProcedure, TestFragment};
    use hcc_common::AbortReason;

    #[test]
    fn txn_ids_are_sequential_per_client() {
        let mut c = ClientCore::new(ClientId(3));
        let a = c.next_txn_id();
        let b = c.next_txn_id();
        assert_eq!(a.client(), ClientId(3));
        assert_eq!(a.seq() + 1, b.seq());
    }

    #[test]
    fn commit_counts_and_continues() {
        let mut c = ClientCore::new(ClientId(0));
        let action = c.on_result(&TxnResult::Committed(42u32));
        assert_eq!(action, NextAction::NewRequest);
        assert_eq!(c.stats.committed, 1);
    }

    #[test]
    fn deadlock_and_timeout_retry() {
        let mut c = ClientCore::new(ClientId(0));
        assert_eq!(
            c.on_result(&TxnResult::<u32>::Aborted(AbortReason::DeadlockVictim)),
            NextAction::Retry
        );
        assert_eq!(
            c.on_result(&TxnResult::<u32>::Aborted(AbortReason::LockTimeout)),
            NextAction::Retry
        );
        assert_eq!(c.stats.retries, 2);
        assert_eq!(c.stats.committed, 0);
    }

    #[test]
    fn on_result_at_records_commit_latency_only() {
        let mut c = ClientCore::new(ClientId(0));
        c.on_result_at(
            &TxnResult::Committed(1u32),
            Nanos(1_000),
            Nanos(26_000),
            true,
        );
        c.on_result_at(
            &TxnResult::<u32>::Aborted(AbortReason::User),
            Nanos(0),
            Nanos(90_000),
            true,
        );
        // Outside the measurement window: counted, not sampled.
        c.on_result_at(&TxnResult::Committed(2u32), Nanos(0), Nanos(50_000), false);
        assert_eq!(c.stats.committed, 2);
        assert_eq!(c.stats.user_aborted, 1);
        assert_eq!(c.stats.latency.count(), 1);
        assert_eq!(c.stats.latency.mean(), Nanos(25_000));
    }

    #[test]
    fn stats_merge_folds_latency() {
        let mut a = ClientStats::default();
        let mut b = ClientStats::default();
        a.committed = 2;
        a.latency.record(Nanos::from_micros(10));
        b.committed = 3;
        b.retries = 1;
        b.latency.record(Nanos::from_micros(30));
        a.merge(&b);
        assert_eq!(a.committed, 5);
        assert_eq!(a.retries, 1);
        assert_eq!(a.latency.count(), 2);
        assert_eq!(a.latency.mean(), Nanos::from_micros(20));
    }

    #[test]
    fn user_abort_is_final() {
        let mut c = ClientCore::new(ClientId(0));
        assert_eq!(
            c.on_result(&TxnResult::<u32>::Aborted(AbortReason::User)),
            NextAction::NewRequest
        );
        assert_eq!(c.stats.user_aborted, 1);
    }

    #[test]
    fn pending_request_roundtrip() {
        let req: Request<TestFragment, Vec<(u64, i64)>> = Request::SinglePartition {
            partition: PartitionId(1),
            fragment: TestFragment::add(5, 1),
            can_abort: true,
        };
        let pending = PendingRequest::from_request(&req);
        match pending.to_request() {
            Request::SinglePartition {
                partition,
                can_abort,
                ..
            } => {
                assert_eq!(partition, PartitionId(1));
                assert!(can_abort);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn pending_mp_clones_procedure() {
        let req: Request<TestFragment, Vec<(u64, i64)>> = Request::MultiPartition {
            procedure: Box::new(SimpleMpProcedure {
                fragments: vec![(PartitionId(0), TestFragment::add(1, 1))],
            }),
            can_abort: false,
        };
        let pending = PendingRequest::from_request(&req);
        match pending.to_request() {
            Request::MultiPartition { procedure, .. } => {
                assert_eq!(procedure.participants(), vec![PartitionId(0)]);
            }
            _ => panic!("wrong variant"),
        }
    }
}
