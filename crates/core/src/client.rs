//! Client-side request lifecycle, shared by the simulator and the threaded
//! runtime.
//!
//! Clients are closed-loop (paper §5): issue one request, wait for its
//! result, issue the next. A transaction aborted for scheduling reasons
//! (deadlock victim, lock timeout) is transparently retried under a fresh
//! transaction id — a `TxnId` identifies one *invocation attempt*
//! end-to-end, which keeps partition- and coordinator-side bookkeeping
//! (execution attempts, decided-transaction history) unambiguous. User
//! aborts are final outcomes and are not retried.

use crate::procedure::{Procedure, Request};
use hcc_common::stats::LatencyHistogram;
use hcc_common::{
    AbortReason, ClientId, Nanos, PartitionId, RetryConfig, SplitMix64, TxnId, TxnResult,
};

/// Per-client outcome statistics.
#[derive(Debug, Clone, Default)]
pub struct ClientStats {
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that ended in a (final) user abort.
    pub user_aborted: u64,
    /// Scheduling aborts that triggered a transparent retry.
    pub retries: u64,
    /// The subset of [`retries`](ClientStats::retries) that waited out a
    /// nonzero backoff delay (infrastructure aborts under
    /// [`RetryConfig`]).
    pub backoff_retries: u64,
    /// Requests abandoned after [`RetryConfig::max_attempts`] consecutive
    /// retryable aborts.
    pub retry_exhausted: u64,
    /// End-to-end latency of committed transactions (submission of the
    /// first attempt → result), recorded by
    /// [`ClientCore::on_result_at`].
    pub latency: LatencyHistogram,
}

impl ClientStats {
    /// Fold another client's stats in (drivers aggregate across clients).
    pub fn merge(&mut self, other: &ClientStats) {
        self.committed += other.committed;
        self.user_aborted += other.user_aborted;
        self.retries += other.retries;
        self.backoff_retries += other.backoff_retries;
        self.retry_exhausted += other.retry_exhausted;
        self.latency.merge(&other.latency);
    }
}

/// What the client should do after a result arrives.
#[derive(Debug, PartialEq, Eq)]
pub enum NextAction {
    /// The request reached a final outcome: issue a new request.
    NewRequest,
    /// The request must be retried (same work, fresh transaction id) after
    /// waiting `after` — zero for scheduling aborts (deadlock victim, lock
    /// timeout, failed speculation), a capped-exponential backoff with
    /// deterministic jitter for infrastructure aborts (partition failover,
    /// cross-coordinator expiry, stalled log).
    Retry { after: Nanos },
}

/// The retryable copy of an in-flight request.
pub enum PendingRequest<F, R> {
    SinglePartition {
        partition: PartitionId,
        fragment: F,
        can_abort: bool,
    },
    MultiPartition {
        procedure: Box<dyn Procedure<F, R>>,
        can_abort: bool,
    },
}

impl<F: Clone, R> PendingRequest<F, R> {
    /// Snapshot a request so it can be re-submitted on retry.
    pub fn from_request(req: &Request<F, R>) -> Self {
        match req {
            Request::SinglePartition {
                partition,
                fragment,
                can_abort,
            } => PendingRequest::SinglePartition {
                partition: *partition,
                fragment: fragment.clone(),
                can_abort: *can_abort,
            },
            Request::MultiPartition {
                procedure,
                can_abort,
            } => PendingRequest::MultiPartition {
                procedure: procedure.clone_box(),
                can_abort: *can_abort,
            },
        }
    }

    /// Turn the snapshot back into a request (cloning so the snapshot can
    /// serve further retries).
    pub fn to_request(&self) -> Request<F, R> {
        match self {
            PendingRequest::SinglePartition {
                partition,
                fragment,
                can_abort,
            } => Request::SinglePartition {
                partition: *partition,
                fragment: fragment.clone(),
                can_abort: *can_abort,
            },
            PendingRequest::MultiPartition {
                procedure,
                can_abort,
            } => Request::MultiPartition {
                procedure: procedure.clone_box(),
                can_abort: *can_abort,
            },
        }
    }
}

/// Transaction-id assignment and outcome bookkeeping for one client.
#[derive(Debug)]
pub struct ClientCore {
    pub id: ClientId,
    seq: u32,
    /// Consecutive retryable aborts of the *current* request (reset on any
    /// final outcome) — the exponent of the backoff schedule.
    attempts: u32,
    retry: RetryConfig,
    /// Jitter stream, seeded from the client id alone so a run stays a
    /// pure function of (config, workload, seed).
    jitter: SplitMix64,
    pub stats: ClientStats,
}

impl ClientCore {
    pub fn new(id: ClientId) -> Self {
        Self::with_retry(id, RetryConfig::default())
    }

    pub fn with_retry(id: ClientId, retry: RetryConfig) -> Self {
        ClientCore {
            id,
            seq: 0,
            attempts: 0,
            retry,
            jitter: SplitMix64::new(0xBACC_0FF0 ^ u64::from(id.0) << 17),
            stats: ClientStats::default(),
        }
    }

    /// Allocate the transaction id for the next invocation attempt.
    pub fn next_txn_id(&mut self) -> TxnId {
        let txn = TxnId::new(self.id, self.seq);
        self.seq = self.seq.wrapping_add(1);
        txn
    }

    /// Consecutive retryable aborts of the in-flight request so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Equal-jitter capped exponential backoff: attempt `n` draws uniformly
    /// from `[d/2, d]` where `d = min(cap, base * 2^(n-1))`. The half-floor
    /// keeps retries spaced out; the jitter decorrelates clients that
    /// failed together (a failover aborts every in-flight transaction of a
    /// partition at once).
    fn backoff_delay(&mut self) -> Nanos {
        let exp = self.attempts.saturating_sub(1).min(32);
        let raw = self.retry.base.0.saturating_mul(1u64 << exp);
        let d = raw.min(self.retry.cap.0);
        let half = d / 2;
        Nanos(half + self.jitter.next_u64() % (d - half + 1))
    }

    /// Record a final result; decide whether to retry.
    pub fn on_result<R>(&mut self, result: &TxnResult<R>) -> NextAction {
        match result {
            TxnResult::Committed(_) => {
                self.stats.committed += 1;
                self.attempts = 0;
                NextAction::NewRequest
            }
            TxnResult::Aborted(reason) if reason.is_retryable() => {
                self.attempts += 1;
                if self.attempts > self.retry.max_attempts {
                    // Give up: surface the abort to the workload as final.
                    self.stats.retry_exhausted += 1;
                    self.stats.user_aborted += 1;
                    self.attempts = 0;
                    return NextAction::NewRequest;
                }
                self.stats.retries += 1;
                let after = match reason {
                    AbortReason::PartitionFailed
                    | AbortReason::CrossCoordinator
                    | AbortReason::LogStalled => self.backoff_delay(),
                    _ => Nanos::ZERO,
                };
                if after > Nanos::ZERO {
                    self.stats.backoff_retries += 1;
                }
                NextAction::Retry { after }
            }
            TxnResult::Aborted(_) => {
                self.stats.user_aborted += 1;
                self.attempts = 0;
                NextAction::NewRequest
            }
        }
    }

    /// As [`on_result`](ClientCore::on_result), but with clock readings so
    /// committed-transaction latency lands in [`ClientStats::latency`].
    /// `submitted` is when the request's *first* attempt was issued (a
    /// retried transaction keeps accruing from its original submission —
    /// the user-visible latency), `now` when the result arrived. When
    /// `record` is false the outcome is counted but the latency sample is
    /// dropped (drivers pass the measurement-window predicate here).
    pub fn on_result_at<R>(
        &mut self,
        result: &TxnResult<R>,
        submitted: Nanos,
        now: Nanos,
        record: bool,
    ) -> NextAction {
        if record && result.is_committed() {
            self.stats.latency.record(now.saturating_sub(submitted));
        }
        self.on_result(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{SimpleMpProcedure, TestFragment};
    use hcc_common::AbortReason;

    #[test]
    fn txn_ids_are_sequential_per_client() {
        let mut c = ClientCore::new(ClientId(3));
        let a = c.next_txn_id();
        let b = c.next_txn_id();
        assert_eq!(a.client(), ClientId(3));
        assert_eq!(a.seq() + 1, b.seq());
    }

    #[test]
    fn commit_counts_and_continues() {
        let mut c = ClientCore::new(ClientId(0));
        let action = c.on_result(&TxnResult::Committed(42u32));
        assert_eq!(action, NextAction::NewRequest);
        assert_eq!(c.stats.committed, 1);
    }

    #[test]
    fn deadlock_and_timeout_retry_immediately() {
        let mut c = ClientCore::new(ClientId(0));
        assert_eq!(
            c.on_result(&TxnResult::<u32>::Aborted(AbortReason::DeadlockVictim)),
            NextAction::Retry { after: Nanos::ZERO }
        );
        assert_eq!(
            c.on_result(&TxnResult::<u32>::Aborted(AbortReason::LockTimeout)),
            NextAction::Retry { after: Nanos::ZERO }
        );
        assert_eq!(c.stats.retries, 2);
        assert_eq!(c.stats.backoff_retries, 0);
        assert_eq!(c.stats.committed, 0);
    }

    #[test]
    fn infrastructure_aborts_back_off_exponentially() {
        let retry = RetryConfig::default()
            .with_base(Nanos::from_micros(100))
            .with_cap(Nanos::from_micros(1_600));
        let mut c = ClientCore::with_retry(ClientId(5), retry);
        let mut delays = Vec::new();
        for _ in 0..6 {
            match c.on_result(&TxnResult::<u32>::Aborted(AbortReason::PartitionFailed)) {
                NextAction::Retry { after } => delays.push(after),
                other => panic!("expected retry, got {other:?}"),
            }
        }
        // Attempt n draws from [d/2, d] with d = min(cap, base * 2^(n-1)).
        for (i, after) in delays.iter().enumerate() {
            let d = (100_000u64 << i).min(1_600_000);
            assert!(
                (d / 2..=d).contains(&after.0),
                "attempt {} delay {} outside [{}, {}]",
                i + 1,
                after.0,
                d / 2,
                d
            );
        }
        // Capped: attempts 5 and 6 both draw from the cap's window.
        assert!(delays[5].0 <= 1_600_000);
        assert_eq!(c.stats.backoff_retries, 6);
        // A commit resets the schedule.
        c.on_result(&TxnResult::Committed(1u32));
        match c.on_result(&TxnResult::<u32>::Aborted(AbortReason::CrossCoordinator)) {
            NextAction::Retry { after } => {
                assert!((50_000..=100_000).contains(&after.0), "reset to base")
            }
            other => panic!("expected retry, got {other:?}"),
        }
    }

    #[test]
    fn backoff_is_deterministic_per_client() {
        let mut a = ClientCore::new(ClientId(9));
        let mut b = ClientCore::new(ClientId(9));
        for _ in 0..4 {
            assert_eq!(
                a.on_result(&TxnResult::<u32>::Aborted(AbortReason::LogStalled)),
                b.on_result(&TxnResult::<u32>::Aborted(AbortReason::LogStalled)),
            );
        }
    }

    #[test]
    fn retries_exhaust_after_max_attempts() {
        let retry = RetryConfig::default().with_max_attempts(3);
        let mut c = ClientCore::with_retry(ClientId(0), retry);
        for _ in 0..3 {
            assert!(matches!(
                c.on_result(&TxnResult::<u32>::Aborted(AbortReason::PartitionFailed)),
                NextAction::Retry { .. }
            ));
        }
        assert_eq!(
            c.on_result(&TxnResult::<u32>::Aborted(AbortReason::PartitionFailed)),
            NextAction::NewRequest,
            "fourth consecutive abort gives up"
        );
        assert_eq!(c.stats.retry_exhausted, 1);
        assert_eq!(c.stats.retries, 3);
        // The schedule reset with the abandonment.
        assert!(matches!(
            c.on_result(&TxnResult::<u32>::Aborted(AbortReason::PartitionFailed)),
            NextAction::Retry { .. }
        ));
        assert_eq!(c.attempts(), 1);
    }

    #[test]
    fn on_result_at_records_commit_latency_only() {
        let mut c = ClientCore::new(ClientId(0));
        c.on_result_at(
            &TxnResult::Committed(1u32),
            Nanos(1_000),
            Nanos(26_000),
            true,
        );
        c.on_result_at(
            &TxnResult::<u32>::Aborted(AbortReason::User),
            Nanos(0),
            Nanos(90_000),
            true,
        );
        // Outside the measurement window: counted, not sampled.
        c.on_result_at(&TxnResult::Committed(2u32), Nanos(0), Nanos(50_000), false);
        assert_eq!(c.stats.committed, 2);
        assert_eq!(c.stats.user_aborted, 1);
        assert_eq!(c.stats.latency.count(), 1);
        assert_eq!(c.stats.latency.mean(), Nanos(25_000));
    }

    #[test]
    fn stats_merge_folds_latency() {
        let mut a = ClientStats::default();
        let mut b = ClientStats::default();
        a.committed = 2;
        a.latency.record(Nanos::from_micros(10));
        b.committed = 3;
        b.retries = 1;
        b.latency.record(Nanos::from_micros(30));
        a.merge(&b);
        assert_eq!(a.committed, 5);
        assert_eq!(a.retries, 1);
        assert_eq!(a.latency.count(), 2);
        assert_eq!(a.latency.mean(), Nanos::from_micros(20));
    }

    #[test]
    fn user_abort_is_final() {
        let mut c = ClientCore::new(ClientId(0));
        assert_eq!(
            c.on_result(&TxnResult::<u32>::Aborted(AbortReason::User)),
            NextAction::NewRequest
        );
        assert_eq!(c.stats.user_aborted, 1);
    }

    #[test]
    fn pending_request_roundtrip() {
        let req: Request<TestFragment, Vec<(u64, i64)>> = Request::SinglePartition {
            partition: PartitionId(1),
            fragment: TestFragment::add(5, 1),
            can_abort: true,
        };
        let pending = PendingRequest::from_request(&req);
        match pending.to_request() {
            Request::SinglePartition {
                partition,
                can_abort,
                ..
            } => {
                assert_eq!(partition, PartitionId(1));
                assert!(can_abort);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn pending_mp_clones_procedure() {
        let req: Request<TestFragment, Vec<(u64, i64)>> = Request::MultiPartition {
            procedure: Box::new(SimpleMpProcedure {
                fragments: vec![(PartitionId(0), TestFragment::add(1, 1))],
            }),
            can_abort: false,
        };
        let pending = PendingRequest::from_request(&req);
        match pending.to_request() {
            Request::MultiPartition { procedure, .. } => {
                assert_eq!(procedure.participants(), vec![PartitionId(0)]);
            }
            _ => panic!("wrong variant"),
        }
    }
}
