//! The execution-engine abstraction: what a partition's storage engine must
//! provide to the concurrency control schedulers.

use hcc_common::{AbortReason, LockKey, TxnId};
use hcc_locking::LockMode;

/// Outcome of executing one fragment.
#[derive(Debug, Clone)]
pub struct ExecOutcome<R> {
    /// The fragment's output, or the reason it refused to run.
    pub result: Result<R, AbortReason>,
    /// Number of logical storage operations performed (reads + writes);
    /// the drivers convert this into virtual CPU via the cost model.
    pub ops: u32,
}

/// A partition-local storage engine that executes transaction fragments.
///
/// # Contract
///
/// * `execute` with `undo = true` appends this fragment's pre-images to the
///   transaction's undo buffer (creating it if needed); a later
///   [`rollback`](ExecutionEngine::rollback) restores the state from before
///   the transaction's *first* fragment.
/// * If `execute` returns `Err`, the fragment must have left **no
///   effects** — procedures validate before writing (the paper reorders
///   TPC-C new-order for exactly this reason, §5.5). Effects of the
///   transaction's *earlier* fragments remain until `rollback`.
/// * `execute` with `undo = false` is only used by schedulers on the
///   non-speculative fast path where the transaction is guaranteed to
///   commit before anything else runs.
/// * `rollback(txn)` / `forget(txn)` are idempotent and tolerate unknown
///   transactions (no undo buffer ⇒ no-op), returning the number of undo
///   records applied/discarded.
pub trait ExecutionEngine {
    /// Workload-specific description of a unit of work at one partition.
    type Fragment: Clone + std::fmt::Debug + hcc_common::LogEncode;
    /// Fragment result payload.
    type Output: Clone + std::fmt::Debug;

    /// Run a fragment on behalf of `txn`.
    fn execute(
        &mut self,
        txn: TxnId,
        fragment: &Self::Fragment,
        undo: bool,
    ) -> ExecOutcome<Self::Output>;

    /// Undo all recorded effects of `txn`, newest first. Returns the number
    /// of undo records applied (for cost accounting).
    fn rollback(&mut self, txn: TxnId) -> u32;

    /// Discard the undo buffer of a committed transaction.
    fn forget(&mut self, txn: TxnId) -> u32;

    /// A copy of the engine's **committed** state, for §3.3 recovery: a
    /// rejoining replica installs a snapshot taken by a live replica at a
    /// known commit-log position, then catches up from the log. In-flight
    /// transaction bookkeeping (undo buffers) is *not* part of the
    /// snapshot — replicas only ever hold committed state.
    fn snapshot(&self) -> Self
    where
        Self: Sized;

    /// The pre-declared lock set of a fragment, for the locking scheduler.
    /// Reads map to [`LockMode::Shared`], writes to
    /// [`LockMode::Exclusive`]. Stored procedures make access sets
    /// statically known (paper §2.1); coarse granules are permitted (they
    /// only add false conflicts, which is conservative).
    fn lock_set(&self, fragment: &Self::Fragment) -> Vec<(LockKey, LockMode)>;
}
