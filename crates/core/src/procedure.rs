//! Stored-procedure plans for multi-partition transactions, and the
//! workload-generator interface.
//!
//! A transaction is "deterministic code interleaved \[with\] database
//! operations" (paper §3.1), divided into fragments. We represent the
//! coordinator-side logic as a [`Procedure`]: a *pure* function from the
//! settled responses of earlier rounds to the next round's fragments (or
//! the final result). Purity matters: when speculative inputs are
//! discarded after a cascading abort, the coordinator simply re-evaluates
//! the procedure on fresh responses — no hidden state to rewind.

use crate::engine::ExecutionEngine;
use hcc_common::{ClientId, PartitionId, TxnId};

/// Settled outputs of one completed round, keyed by partition.
#[derive(Debug, Clone)]
pub struct RoundOutputs<R> {
    pub by_partition: Vec<(PartitionId, R)>,
}

impl<R> RoundOutputs<R> {
    pub fn get(&self, p: PartitionId) -> Option<&R> {
        self.by_partition
            .iter()
            .find(|(pp, _)| *pp == p)
            .map(|(_, r)| r)
    }
}

/// What the procedure wants next.
#[derive(Debug)]
pub enum Step<F, R> {
    /// Dispatch these fragments; `is_final` means this is the last round,
    /// so the 2PC prepare is piggybacked on it (paper §3.3).
    Round {
        fragments: Vec<(PartitionId, F)>,
        is_final: bool,
    },
    /// All rounds completed: the final result to return to the client.
    Finish(R),
}

/// Coordinator-side logic of a multi-partition stored procedure.
pub trait Procedure<F, R>: std::fmt::Debug + Send {
    /// Given the settled outputs of rounds `0..n`, produce round `n`'s
    /// fragments or the final result. Called with an empty slice for round
    /// 0. Must be deterministic.
    fn step(&self, prior: &[RoundOutputs<R>]) -> Step<F, R>;

    /// Clone into a new box (retried transactions re-submit the same
    /// procedure under a fresh transaction id).
    fn clone_box(&self) -> Box<dyn Procedure<F, R>>;

    /// The partitions this procedure touches in round 0 (used for
    /// accounting and by tests).
    ///
    fn participants(&self) -> Vec<PartitionId> {
        match self.step(&[]) {
            Step::Round { fragments, .. } => fragments.iter().map(|(p, _)| *p).collect(),
            Step::Finish(_) => Vec::new(),
        }
    }
}

/// One client request, as produced by a workload generator.
pub enum Request<F, R> {
    /// Runs entirely at one partition; sent directly to it.
    SinglePartition {
        partition: PartitionId,
        fragment: F,
        /// Whether the procedure may abort after writing (forces an undo
        /// buffer even on the non-speculative path, paper §3.2).
        can_abort: bool,
    },
    /// Coordinated across partitions.
    MultiPartition {
        procedure: Box<dyn Procedure<F, R>>,
        can_abort: bool,
    },
}

impl<F, R> std::fmt::Debug for Request<F, R>
where
    F: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Request::SinglePartition {
                partition,
                fragment,
                can_abort,
            } => f
                .debug_struct("SinglePartition")
                .field("partition", partition)
                .field("fragment", fragment)
                .field("can_abort", can_abort)
                .finish(),
            Request::MultiPartition { procedure, .. } => f
                .debug_struct("MultiPartition")
                .field("procedure", procedure)
                .finish(),
        }
    }
}

/// A workload: builds per-partition engines and generates the request
/// stream for each closed-loop client. Implemented by `hcc-workloads`.
pub trait RequestGenerator {
    type Engine: ExecutionEngine;

    /// Next request for `client`. Clients are closed-loop: this is called
    /// exactly once per completed transaction (paper §5: "Each client
    /// issues one request, waits for the response, then issues another").
    fn next_request(
        &mut self,
        client: ClientId,
    ) -> Request<
        <Self::Engine as ExecutionEngine>::Fragment,
        <Self::Engine as ExecutionEngine>::Output,
    >;

    /// Observe a completed transaction (for generators that validate
    /// results or adapt). Default: ignore.
    fn on_result(&mut self, _client: ClientId, _txn: TxnId, _committed: bool) {}
}
