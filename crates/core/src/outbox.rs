//! Message and cost collection for the partition state machines.

use hcc_common::{ClientId, CoordinatorRef, CostModel, FragmentResponse, Nanos, TxnId, TxnResult};

/// A message emitted by a partition scheduler, to be routed by the driver.
#[derive(Debug, Clone)]
pub enum PartitionOut<R> {
    /// Final result of a single-partition transaction, straight to the
    /// issuing client.
    ToClient {
        client: ClientId,
        txn: TxnId,
        result: TxnResult<R>,
    },
    /// A fragment response, to the central coordinator or to the
    /// client-coordinator (locking scheme).
    ToCoordinator {
        dest: CoordinatorRef,
        response: FragmentResponse<R>,
    },
}

/// Collects the messages a scheduler wants sent and the virtual CPU it
/// consumed handling the current event. Drivers drain messages (applying
/// network latency) and advance the partition's busy-clock by `cpu`.
#[derive(Debug)]
pub struct Outbox<R> {
    pub messages: Vec<PartitionOut<R>>,
    pub cpu: Nanos,
    /// The cost model used by schedulers to price their work. Owned here so
    /// every charge site has it at hand.
    pub costs: CostModel,
}

impl<R> Outbox<R> {
    pub fn new(costs: CostModel) -> Self {
        Outbox {
            messages: Vec::new(),
            cpu: Nanos::ZERO,
            costs,
        }
    }

    /// Add virtual CPU time to the current event's bill.
    #[inline]
    pub fn charge(&mut self, ns: Nanos) {
        self.cpu += ns;
    }

    pub fn send_client(&mut self, client: ClientId, txn: TxnId, result: TxnResult<R>) {
        self.messages.push(PartitionOut::ToClient {
            client,
            txn,
            result,
        });
    }

    pub fn send_coordinator(&mut self, dest: CoordinatorRef, response: FragmentResponse<R>) {
        self.messages
            .push(PartitionOut::ToCoordinator { dest, response });
    }

    /// Drain accumulated messages and CPU, resetting for the next event.
    pub fn take(&mut self) -> (Vec<PartitionOut<R>>, Nanos) {
        let cpu = self.cpu;
        self.cpu = Nanos::ZERO;
        (std::mem::take(&mut self.messages), cpu)
    }

    /// As [`take`](Outbox::take), but swap the messages into a caller-owned
    /// scratch buffer so a long-lived outbox recycles its allocation.
    /// `scratch` must be empty.
    pub fn take_into(&mut self, scratch: &mut Vec<PartitionOut<R>>) -> Nanos {
        debug_assert!(scratch.is_empty(), "scratch buffer not drained");
        let cpu = self.cpu;
        self.cpu = Nanos::ZERO;
        std::mem::swap(&mut self.messages, scratch);
        cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_common::AbortReason;

    #[test]
    fn charge_accumulates_and_take_resets() {
        let mut ob: Outbox<u32> = Outbox::new(CostModel::default());
        ob.charge(Nanos(100));
        ob.charge(Nanos(50));
        ob.send_client(
            ClientId(1),
            TxnId::new(ClientId(1), 0),
            TxnResult::Aborted(AbortReason::User),
        );
        let (msgs, cpu) = ob.take();
        assert_eq!(msgs.len(), 1);
        assert_eq!(cpu, Nanos(150));
        let (msgs, cpu) = ob.take();
        assert!(msgs.is_empty());
        assert_eq!(cpu, Nanos::ZERO);
    }
}
