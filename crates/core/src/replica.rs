//! The shared replication core (paper §3.2–§3.3).
//!
//! Before this module, the repo modeled primary/backup replication twice:
//! the simulator applied committed fragments inline to a "shadow replica"
//! and the runtime had a minimal backup actor that swallowed replay
//! failures behind a `debug_assert`. Both drivers now speak one protocol:
//!
//! * [`ReplicationSession`] — the **primary side**. Buffers each in-flight
//!   transaction's fragments (latest fragment per round wins, so a squashed
//!   speculative continuation is superseded by its re-sent version), and on
//!   commit emits a sequence-numbered [`CommitRecord`] — commit-order log
//!   shipping.
//! * [`ReplicaCore`] — the **replica side**. Replays records strictly in
//!   sequence order onto a replica engine ("the backups execute the
//!   transactions in the sequential order received from the primary",
//!   §2.2), without locks or undo. A lost/reordered record or a fragment
//!   that fails to re-execute is a [`ReplayError`] the driver must surface,
//!   not a `debug_assert`.
//! * [`AckTracker`] — the primary's acked watermark over its backups: the
//!   highest sequence number every backup has confirmed applying. The
//!   paper commits a transaction once it is on `k` replicas (§2.2); the
//!   runtime holds single-partition results until the transaction's record
//!   is under the watermark.
//!
//! Failover and §3.3 recovery are built on these pieces by the drivers:
//! promotion turns a `ReplicaCore` position into a `ReplicationSession`
//! resumed at the same sequence number (log continuity for the surviving
//! backups), and a recovering node is seeded by
//! [`ReplicaCore::reset_to`] with a state snapshot taken at a known
//! watermark, then catches up from the live primary's log.

use crate::engine::ExecutionEngine;
use hcc_common::stats::ReplicationCounters;
use hcc_common::{
    AbortReason, ClientId, CommitRecord, CoordinatorRef, FragmentResponse, FragmentTask, FxHashMap,
    FxHashSet, PartitionId, SchemeSwitch, TxnId, Vote,
};
use std::collections::VecDeque;

/// How many recently applied transaction ids a replica remembers (the
/// exactly-once guard for in-doubt commit redelivery after a promotion).
/// Far larger than any in-flight horizon, same reasoning as the
/// coordinator's history window.
const APPLIED_WINDOW: usize = 1 << 16;

/// Why a replica could not apply a commit record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// The record's sequence number is ahead of the replica's watermark:
    /// at least one earlier record was lost or reordered.
    SequenceGap { expected: u64, got: u64 },
    /// A committed fragment failed to re-execute on the replica — the
    /// replica's state has diverged from the primary's.
    FragmentFailed { txn: TxnId, reason: AbortReason },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::SequenceGap { expected, got } => {
                write!(f, "commit log gap: expected seq {expected}, got {got}")
            }
            ReplayError::FragmentFailed { txn, reason } => {
                write!(f, "replay of committed {txn} failed: {reason:?}")
            }
        }
    }
}

/// Primary-side replication state for one partition: the in-flight fragment
/// buffer and the commit-order sequencer.
#[derive(Debug)]
pub struct ReplicationSession<F> {
    /// Fragments of in-flight transactions, by round (latest per round
    /// wins).
    pending: FxHashMap<TxnId, Vec<FragmentTask<F>>>,
    /// Sequence number of the last commit record emitted.
    seq: u64,
    /// Adaptive scheme switch waiting to ride the next commit record
    /// shipped (ISSUE 10): set by the driver right after a live swap,
    /// taken by [`Self::on_commit`].
    pending_switch: Option<SchemeSwitch>,
}

impl<F: Clone> ReplicationSession<F> {
    pub fn new() -> Self {
        Self::resume_from(0)
    }

    /// Start a session whose next commit record will carry `seq + 1` — how
    /// a promoted backup continues its dead primary's log without a gap.
    pub fn resume_from(seq: u64) -> Self {
        ReplicationSession {
            pending: FxHashMap::default(),
            seq,
            pending_switch: None,
        }
    }

    /// The adaptive controller swapped this partition's scheduler: stamp
    /// the transition onto the next commit record shipped so replicas (and
    /// hence any promoted backup) land in the same scheme at the same
    /// transition epoch. A second swap before any commit ships supersedes
    /// the first — replicas only need the latest position.
    pub fn mark_scheme_switch(&mut self, sw: SchemeSwitch) {
        self.pending_switch = Some(sw);
    }

    /// Sequence number of the last record emitted (the log position).
    pub fn shipped(&self) -> u64 {
        self.seq
    }

    /// Number of transactions currently buffered (in flight).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Record a delivered fragment for later replay. A re-sent fragment
    /// (same round, after a speculative squash) supersedes the original.
    pub fn record_fragment(&mut self, task: &FragmentTask<F>) {
        let entry = self.pending.entry(task.txn).or_default();
        entry.retain(|t| t.round != task.round);
        entry.push(task.clone());
    }

    /// The transaction committed here: emit its commit record (fragments in
    /// round order, next sequence number). `None` if no fragment was ever
    /// recorded — e.g. a decision for a transaction a fresh post-failover
    /// primary never executed.
    pub fn on_commit(&mut self, txn: TxnId) -> Option<CommitRecord<F>> {
        let mut frags = self.pending.remove(&txn)?;
        frags.sort_by_key(|t| t.round);
        self.seq += 1;
        Some(CommitRecord {
            seq: self.seq,
            txn,
            frags,
            scheme_switch: self.pending_switch.take(),
        })
    }

    /// The transaction aborted here: drop its buffered fragments.
    pub fn on_abort(&mut self, txn: TxnId) {
        self.pending.remove(&txn);
    }

    /// Drain the in-flight buffer — what a crashing primary bounces back to
    /// coordinators/clients as [`AbortReason::PartitionFailed`]. Sorted by
    /// transaction id so the bounce order is deterministic.
    pub fn take_in_flight(&mut self) -> Vec<(TxnId, Vec<FragmentTask<F>>)> {
        let mut v: Vec<_> = std::mem::take(&mut self.pending).into_iter().collect();
        v.sort_by_key(|(txn, _)| *txn);
        v
    }
}

impl<F: Clone> Default for ReplicationSession<F> {
    fn default() -> Self {
        Self::new()
    }
}

/// Replica-side replay state for one partition: the sequence-checked
/// applier. The engine itself is owned by the driver (an actor or the
/// simulator) and passed in per record, which is what lets a role change
/// (backup → primary, failed → recovering) reuse the same engine slot.
#[derive(Debug, Default)]
pub struct ReplicaCore {
    /// Highest sequence number applied (the replica's watermark).
    applied: u64,
    /// Recently applied transaction ids (bounded window). A promoted
    /// primary inherits this set so a re-delivered in-doubt commit whose
    /// record *did* reach the backups before the crash is recognized and
    /// acknowledged instead of applied twice.
    applied_txns: FxHashSet<TxnId>,
    applied_order: VecDeque<TxnId>,
    /// Latest adaptive scheme transition observed in the applied commit
    /// stream (ISSUE 10). `None` until the primary's first switch ships. A
    /// promotion reads this to land the new primary in the same scheme at
    /// the same transition epoch as the one it replaces.
    scheme_switch: Option<SchemeSwitch>,
    pub counters: ReplicationCounters,
}

impl ReplicaCore {
    pub fn new() -> Self {
        Self::default()
    }

    /// The replica's watermark: records `1..=watermark()` are applied.
    pub fn watermark(&self) -> u64 {
        self.applied
    }

    /// Reset the watermark after installing a state snapshot taken at
    /// `seq` — the §3.3 rejoin path.
    pub fn reset_to(&mut self, seq: u64) {
        self.applied = seq;
    }

    /// Replay one commit record onto `engine`, in round order, without
    /// locks or undo. Duplicates (seq at or below the watermark) are
    /// skipped idempotently; a gap or a failing fragment is an error the
    /// caller must surface. Returns the logical ops replayed.
    pub fn apply<E: ExecutionEngine>(
        &mut self,
        engine: &mut E,
        record: &CommitRecord<E::Fragment>,
    ) -> Result<u32, ReplayError> {
        if record.seq <= self.applied {
            self.counters.records_skipped += 1;
            return Ok(0);
        }
        if record.seq != self.applied + 1 {
            self.counters.replay_failures += 1;
            return Err(ReplayError::SequenceGap {
                expected: self.applied + 1,
                got: record.seq,
            });
        }
        let mut ops = 0;
        for task in &record.frags {
            let out = engine.execute(record.txn, &task.fragment, false);
            ops += out.ops;
            if let Err(reason) = out.result {
                self.counters.replay_failures += 1;
                return Err(ReplayError::FragmentFailed {
                    txn: record.txn,
                    reason,
                });
            }
        }
        engine.forget(record.txn);
        self.applied = record.seq;
        if let Some(sw) = record.scheme_switch {
            self.scheme_switch = Some(sw);
        }
        self.counters.records_applied += 1;
        self.applied_txns.insert(record.txn);
        self.applied_order.push_back(record.txn);
        while self.applied_order.len() > APPLIED_WINDOW {
            if let Some(old) = self.applied_order.pop_front() {
                self.applied_txns.remove(&old);
            }
        }
        Ok(ops)
    }

    /// Hand the applied-transaction window to a promotion (the new
    /// primary's exactly-once guard for redelivered in-doubt commits).
    pub fn take_applied_txns(&mut self) -> FxHashSet<TxnId> {
        self.applied_order.clear();
        std::mem::take(&mut self.applied_txns)
    }

    /// Latest adaptive scheme transition in the applied commit stream
    /// (`None` = still on the initial configured scheme).
    pub fn scheme_switch(&self) -> Option<SchemeSwitch> {
        self.scheme_switch
    }
}

/// Where the failover bounce of one in-flight transaction must go — the
/// "your participant's node just died" signal a crashing primary sends for
/// everything in its [`ReplicationSession`] (and a dead node keeps sending
/// for late-arriving fragments). Shared by the runtime and the simulator
/// so the two drivers cannot drift.
pub enum FailoverBounce<R> {
    /// Single-partition work: the client is waiting on this node directly.
    ToClient { client: ClientId },
    /// Multi-partition work: an abort-voting response to the 2PC
    /// coordinator of record. Coordinators treat `PartitionFailed`
    /// responses as round-agnostic failure notifications.
    ToCoordinator {
        dest: CoordinatorRef,
        response: FragmentResponse<R>,
    },
}

/// Build the bounce for an in-flight transaction from its recorded
/// fragments (any fragment determines the destination; the payload is the
/// retryable [`AbortReason::PartitionFailed`]). `None` if no fragment was
/// recorded.
pub fn failover_bounce<F, R>(
    partition: PartitionId,
    txn: TxnId,
    frags: &[FragmentTask<F>],
) -> Option<FailoverBounce<R>> {
    let task = frags.first()?;
    if task.multi_partition {
        Some(FailoverBounce::ToCoordinator {
            dest: task.coordinator,
            response: FragmentResponse {
                txn,
                partition,
                round: task.round,
                attempt: 0,
                payload: Err(AbortReason::PartitionFailed),
                vote: Some(Vote::Abort(AbortReason::PartitionFailed)),
                depends_on: None,
            },
        })
    } else {
        Some(FailoverBounce::ToClient {
            client: task.client,
        })
    }
}

/// The primary's view of its backups' progress: per-backup cumulative acks
/// and the minimum — the **acked watermark** under which results may be
/// released (§2.2: a transaction commits once it is on `k` replicas).
#[derive(Debug, Default)]
pub struct AckTracker {
    /// (backup key, highest acked seq). A handful of backups, linear scan.
    acked: Vec<(usize, u64)>,
}

impl AckTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Track a backup from `seq` onward (0 for a from-the-start backup, the
    /// snapshot watermark for a freshly recovered one).
    pub fn add_backup(&mut self, key: usize, seq: u64) {
        match self.acked.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = seq,
            None => self.acked.push((key, seq)),
        }
    }

    /// A backup confirmed applying records up to `seq` (cumulative).
    pub fn on_ack(&mut self, key: usize, seq: u64) {
        if let Some(slot) = self.acked.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = slot.1.max(seq);
        }
    }

    /// Highest sequence number *every* tracked backup has applied.
    /// `u64::MAX` with no backups (nothing to wait for).
    pub fn min_acked(&self) -> u64 {
        self.acked.iter().map(|(_, s)| *s).min().unwrap_or(u64::MAX)
    }

    pub fn backups(&self) -> usize {
        self.acked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{TestEngine, TestFragment};
    use hcc_common::{ClientId, CoordinatorRef};

    fn task(txn: TxnId, round: u32, frag: TestFragment) -> FragmentTask<TestFragment> {
        FragmentTask {
            txn,
            coordinator: CoordinatorRef::Central(hcc_common::CoordinatorId(0)),
            client: ClientId(0),
            fragment: frag,
            multi_partition: false,
            last_fragment: true,
            round,
            can_abort: false,
        }
    }

    fn txid(n: u32) -> TxnId {
        TxnId::new(ClientId(0), n)
    }

    #[test]
    fn commit_records_are_densely_sequenced() {
        let mut s: ReplicationSession<TestFragment> = ReplicationSession::new();
        s.record_fragment(&task(txid(1), 0, TestFragment::add(1, 1)));
        s.record_fragment(&task(txid(2), 0, TestFragment::add(2, 1)));
        let r1 = s.on_commit(txid(1)).expect("recorded");
        let r2 = s.on_commit(txid(2)).expect("recorded");
        assert_eq!((r1.seq, r2.seq), (1, 2));
        assert_eq!(s.shipped(), 2);
        assert!(s.on_commit(txid(3)).is_none(), "never-recorded txn");
    }

    #[test]
    fn resent_fragment_supersedes_same_round() {
        let mut s: ReplicationSession<TestFragment> = ReplicationSession::new();
        s.record_fragment(&task(txid(1), 0, TestFragment::add(1, 1)));
        s.record_fragment(&task(txid(1), 1, TestFragment::add(2, 1)));
        // Round-0 re-executed after a squash: replaces, not appends.
        s.record_fragment(&task(txid(1), 0, TestFragment::add(3, 1)));
        let rec = s.on_commit(txid(1)).unwrap();
        assert_eq!(rec.frags.len(), 2);
        assert_eq!(rec.frags[0].round, 0);
        assert_eq!(rec.frags[1].round, 1);
    }

    #[test]
    fn replay_applies_in_order_and_skips_duplicates() {
        let mut s: ReplicationSession<TestFragment> = ReplicationSession::new();
        let mut replica = ReplicaCore::new();
        let mut engine = TestEngine::new();
        s.record_fragment(&task(txid(1), 0, TestFragment::set(7, 41)));
        s.record_fragment(&task(txid(2), 0, TestFragment::add(7, 1)));
        let r1 = s.on_commit(txid(1)).unwrap();
        let r2 = s.on_commit(txid(2)).unwrap();
        replica.apply(&mut engine, &r1).unwrap();
        replica.apply(&mut engine, &r1).unwrap(); // duplicate: skipped
        replica.apply(&mut engine, &r2).unwrap();
        assert_eq!(engine.get(7), 42);
        assert_eq!(replica.watermark(), 2);
        assert_eq!(replica.counters.records_applied, 2);
        assert_eq!(replica.counters.records_skipped, 1);
        assert_eq!(replica.counters.replay_failures, 0);
    }

    #[test]
    fn sequence_gap_is_an_error_not_an_assert() {
        let mut replica = ReplicaCore::new();
        let mut engine = TestEngine::new();
        let rec = CommitRecord {
            seq: 3,
            txn: txid(9),
            frags: vec![task(txid(9), 0, TestFragment::add(1, 1))],
            scheme_switch: None,
        };
        let err = replica.apply(&mut engine, &rec).unwrap_err();
        assert_eq!(
            err,
            ReplayError::SequenceGap {
                expected: 1,
                got: 3
            }
        );
        assert_eq!(replica.counters.replay_failures, 1);
        assert_eq!(replica.watermark(), 0, "gap must not advance");
    }

    #[test]
    fn failing_fragment_is_an_error() {
        let mut replica = ReplicaCore::new();
        let mut engine = TestEngine::new();
        let rec = CommitRecord {
            seq: 1,
            txn: txid(4),
            frags: vec![task(txid(4), 0, TestFragment::failing())],
            scheme_switch: None,
        };
        let err = replica.apply(&mut engine, &rec).unwrap_err();
        assert!(matches!(err, ReplayError::FragmentFailed { .. }));
        assert_eq!(replica.counters.replay_failures, 1);
    }

    #[test]
    fn snapshot_reset_resumes_from_watermark() {
        let mut replica = ReplicaCore::new();
        let mut engine = TestEngine::new();
        replica.reset_to(10); // installed a snapshot taken at seq 10
        let dup = CommitRecord {
            seq: 9,
            txn: txid(1),
            frags: vec![],
            scheme_switch: None,
        };
        replica.apply(&mut engine, &dup).unwrap(); // pre-snapshot: skipped
        let next = CommitRecord {
            seq: 11,
            txn: txid(2),
            frags: vec![task(txid(2), 0, TestFragment::add(5, 1))],
            scheme_switch: None,
        };
        replica.apply(&mut engine, &next).unwrap();
        assert_eq!(replica.watermark(), 11);
    }

    #[test]
    fn ack_tracker_minimum_over_backups() {
        let mut acks = AckTracker::new();
        assert_eq!(acks.min_acked(), u64::MAX, "no backups, nothing to wait");
        acks.add_backup(0, 0);
        acks.add_backup(1, 0);
        acks.on_ack(0, 5);
        acks.on_ack(1, 3);
        assert_eq!(acks.min_acked(), 3);
        acks.on_ack(1, 7);
        assert_eq!(acks.min_acked(), 5);
        // A recovered backup joins at its snapshot watermark.
        acks.add_backup(2, 6);
        assert_eq!(acks.min_acked(), 5);
    }

    #[test]
    fn promoted_session_continues_the_log() {
        let mut replica = ReplicaCore::new();
        let mut engine = TestEngine::new();
        let rec = CommitRecord {
            seq: 1,
            txn: txid(1),
            frags: vec![task(txid(1), 0, TestFragment::add(1, 1))],
            scheme_switch: None,
        };
        replica.apply(&mut engine, &rec).unwrap();
        // Promotion: the backup's watermark seeds the new session.
        let mut s: ReplicationSession<TestFragment> =
            ReplicationSession::resume_from(replica.watermark());
        s.record_fragment(&task(txid(2), 0, TestFragment::add(1, 1)));
        let next = s.on_commit(txid(2)).unwrap();
        assert_eq!(next.seq, 2, "no gap across the promotion");
    }
}
