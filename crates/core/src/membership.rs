//! The replication control plane: membership and epoch authority.
//!
//! PR 3 made the (then-singleton) central coordinator the membership
//! authority: it owned the per-group failover epochs and drove the
//! promote → rejoin protocol. With coordinators sharded (N shards, clients
//! statically partitioned), that authority cannot live inside any one
//! shard — every shard must agree on who a partition's primary is, and a
//! failover must abort in-flight transactions at *all* shards, not just
//! the one that happened to hear about it.
//!
//! [`MembershipCore`] is that authority, extracted into its own core: it
//! owns the epochs, decides promotions, and emits epoch-stamped
//! [`MembershipUpdate`]s that the drivers fan out — to the backend routing
//! table (flip the partition address to the promoted slot), to the failed
//! node (rejoin), and to every coordinator shard
//! ([`crate::coordinator::Coordinator::on_partition_failed`] consumes the
//! update: abort in-flight transactions touching the dead node and
//! re-deliver unacknowledged commit decisions).
//!
//! Failure *detection* stays modeled as reliable and immediate (the dying
//! node's last act is notifying this core), which keeps the
//! kill → promote → recover scenario deterministic. Like the rest of the
//! failover machinery, one failover per replica group per run is
//! supported: the promoted slot is always the first backup.

use hcc_common::{FxHashMap, PartitionId};

/// The epoch-stamped outcome of a primary failure, consumed by routing
/// tables, the failed node, and every coordinator shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipUpdate {
    /// The replica group whose primary died.
    pub partition: PartitionId,
    /// The group's new membership epoch (0 = never failed over).
    pub epoch: u32,
    /// Slot promoted to primary (one failover per group per run: the
    /// first backup).
    pub new_primary_slot: u32,
    /// The failed slot, told to rejoin as a backup (§3.3).
    pub failed_slot: u32,
}

/// Membership/epoch state for every replica group, owned by exactly one
/// process per run (a dedicated actor in the runtime, a field of the
/// simulation driver in the sim).
#[derive(Debug, Default)]
pub struct MembershipCore {
    /// Failovers performed per group. Absent = epoch 0 (initial primary).
    epochs: FxHashMap<PartitionId, u32>,
}

impl MembershipCore {
    pub fn new() -> Self {
        Self::default()
    }

    /// A replica group's primary failed: bump its epoch and name the
    /// promoted slot. The caller fans the update out (routing flip,
    /// rejoin, per-shard coordinator notification).
    pub fn on_primary_failed(&mut self, partition: PartitionId) -> MembershipUpdate {
        let epoch = self.epochs.entry(partition).or_insert(0);
        *epoch += 1;
        MembershipUpdate {
            partition,
            epoch: *epoch,
            new_primary_slot: 1,
            failed_slot: 0,
        }
    }

    /// The current membership epoch of a replica group.
    pub fn epoch(&self, partition: PartitionId) -> u32 {
        self.epochs.get(&partition).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_bumps_epoch_and_promotes_first_backup() {
        let mut m = MembershipCore::new();
        assert_eq!(m.epoch(PartitionId(3)), 0);
        let up = m.on_primary_failed(PartitionId(3));
        assert_eq!(
            up,
            MembershipUpdate {
                partition: PartitionId(3),
                epoch: 1,
                new_primary_slot: 1,
                failed_slot: 0,
            }
        );
        assert_eq!(m.epoch(PartitionId(3)), 1);
        assert_eq!(m.epoch(PartitionId(0)), 0, "other groups untouched");
    }

    #[test]
    fn epochs_are_per_group_and_monotone() {
        let mut m = MembershipCore::new();
        m.on_primary_failed(PartitionId(0));
        let up = m.on_primary_failed(PartitionId(0));
        assert_eq!(up.epoch, 2);
        assert_eq!(m.on_primary_failed(PartitionId(1)).epoch, 1);
    }
}
