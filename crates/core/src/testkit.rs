//! A miniature execution engine and procedures for exercising the
//! schedulers in unit and integration tests.
//!
//! The engine is an integer key/value map supporting read and
//! read-modify-write operations with full undo support, plus a forced-abort
//! flag to simulate user aborts. It is deliberately tiny but exercises
//! every scheduler code path: undo recording, rollback, lock sets, and
//! multi-round procedures (the paper's §4.2.1 swap example is reproduced in
//! the speculative scheduler's tests with this engine).

use crate::engine::{ExecOutcome, ExecutionEngine};
use crate::procedure::{Procedure, RoundOutputs, Step};
use hcc_common::{AbortReason, LockKey, LogEncode, PartitionId, TxnId};
use hcc_locking::{granule, LockMode};
use std::collections::{BTreeMap, HashMap};

/// One operation of a test fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestOp {
    /// Read a key (reported in the output).
    Read(u64),
    /// key := value (inserts when absent).
    Set(u64, i64),
    /// key += delta.
    Add(u64, i64),
    /// Remove a key (no-op when absent).
    Del(u64),
    /// Range scan: every present key in `[start, end)`, ascending,
    /// reported in the output. The range is *static* — the paper's §2.1
    /// stored procedures make access sets statically known, which is what
    /// lets the locking scheme pre-declare range-covering locks.
    Scan(u64, u64),
}

/// A fragment for the test engine.
#[derive(Debug, Clone, Default)]
pub struct TestFragment {
    pub ops: Vec<TestOp>,
    /// If set, the fragment refuses to run (user abort) without effects.
    pub fail: bool,
}

impl LogEncode for TestOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TestOp::Read(k) => {
                out.push(0);
                k.encode(out);
            }
            TestOp::Set(k, v) => {
                out.push(1);
                k.encode(out);
                v.encode(out);
            }
            TestOp::Add(k, d) => {
                out.push(2);
                k.encode(out);
                d.encode(out);
            }
            TestOp::Del(k) => {
                out.push(3);
                k.encode(out);
            }
            TestOp::Scan(s, e) => {
                out.push(4);
                s.encode(out);
                e.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let (tag, rest) = input.split_first()?;
        *input = rest;
        Some(match tag {
            0 => TestOp::Read(u64::decode(input)?),
            1 => TestOp::Set(u64::decode(input)?, i64::decode(input)?),
            2 => TestOp::Add(u64::decode(input)?, i64::decode(input)?),
            3 => TestOp::Del(u64::decode(input)?),
            4 => TestOp::Scan(u64::decode(input)?, u64::decode(input)?),
            _ => return None,
        })
    }
}

impl LogEncode for TestFragment {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ops.encode(out);
        self.fail.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(TestFragment {
            ops: Vec::decode(input)?,
            fail: bool::decode(input)?,
        })
    }
}

impl TestFragment {
    pub fn read(keys: &[u64]) -> Self {
        TestFragment {
            ops: keys.iter().map(|&k| TestOp::Read(k)).collect(),
            fail: false,
        }
    }

    pub fn add(key: u64, delta: i64) -> Self {
        TestFragment {
            ops: vec![TestOp::Add(key, delta), TestOp::Read(key)],
            fail: false,
        }
    }

    pub fn set(key: u64, value: i64) -> Self {
        TestFragment {
            ops: vec![TestOp::Set(key, value)],
            fail: false,
        }
    }

    pub fn failing() -> Self {
        TestFragment {
            ops: vec![],
            fail: true,
        }
    }
}

/// Output: the values read, in op order.
pub type TestOutput = Vec<(u64, i64)>;

/// Integer KV engine with per-transaction undo buffers. Backed by an
/// ordered map so [`TestOp::Scan`] has a real range index to walk.
#[derive(Debug, Default)]
pub struct TestEngine {
    pub kv: BTreeMap<u64, i64>,
    undo: HashMap<TxnId, Vec<(u64, Option<i64>)>>,
    /// Lock granularity. `None` (default) pre-declares per-key locks —
    /// the original behaviour, and what every point-only scheduler test
    /// assumes. `Some(shift)` switches the whole engine to *stripe*
    /// granules of `2^shift` adjacent keys: scans take shared locks on
    /// every stripe overlapping their range, and point ops lock their
    /// key's stripe, so membership changes (insert/delete) conflict with
    /// any scan whose range covers them — phantom protection by range
    /// coverage. Scan fragments are rejected in per-key mode: member
    /// enumeration cannot see keys a concurrent transaction deletes, so a
    /// per-key lock set for a scan is unsound (the delete-phantom the
    /// serial oracle caught).
    stripe_shift: Option<u32>,
}

impl TestEngine {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_data(pairs: &[(u64, i64)]) -> Self {
        TestEngine {
            kv: pairs.iter().copied().collect(),
            undo: HashMap::new(),
            stripe_shift: None,
        }
    }

    /// Switch to stripe-granule locking (see `stripe_shift`).
    pub fn with_stripe_locks(mut self, shift: u32) -> Self {
        assert!(shift < 63, "stripe shift must leave room for the namespace");
        self.stripe_shift = Some(shift);
        self
    }

    pub fn get(&self, key: u64) -> i64 {
        self.kv.get(&key).copied().unwrap_or(0)
    }

    pub fn contains(&self, key: u64) -> bool {
        self.kv.contains_key(&key)
    }

    /// Number of transactions with live undo buffers (leak detection).
    pub fn live_undo_buffers(&self) -> usize {
        self.undo.len()
    }

    /// Order-independent fingerprint of the committed contents.
    pub fn fingerprint(&self) -> u64 {
        let mut acc = 0u64;
        for (&k, &v) in &self.kv {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in k.to_be_bytes().into_iter().chain(v.to_be_bytes()) {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            acc ^= h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        acc
    }

    fn write(&mut self, txn: TxnId, key: u64, value: i64, undo: bool) {
        let prior = self.kv.insert(key, value);
        if undo {
            self.undo.entry(txn).or_default().push((key, prior));
        }
    }

    fn delete(&mut self, txn: TxnId, key: u64, undo: bool) {
        let prior = self.kv.remove(&key);
        if undo {
            self.undo.entry(txn).or_default().push((key, prior));
        }
    }
}

impl ExecutionEngine for TestEngine {
    type Fragment = TestFragment;
    type Output = TestOutput;

    fn execute(
        &mut self,
        txn: TxnId,
        fragment: &TestFragment,
        undo: bool,
    ) -> ExecOutcome<TestOutput> {
        if fragment.fail {
            return ExecOutcome {
                result: Err(AbortReason::User),
                ops: 1,
            };
        }
        let mut out = Vec::new();
        let mut ops = 0u32;
        for op in &fragment.ops {
            ops += 1;
            match *op {
                TestOp::Read(k) => out.push((k, self.get(k))),
                TestOp::Set(k, v) => self.write(txn, k, v, undo),
                TestOp::Add(k, d) => {
                    let v = self.get(k) + d;
                    self.write(txn, k, v, undo);
                }
                TestOp::Del(k) => self.delete(txn, k, undo),
                TestOp::Scan(start, end) => {
                    for (&k, &v) in self.kv.range(start..end.max(start)) {
                        out.push((k, v));
                        ops += 1;
                    }
                }
            }
        }
        ExecOutcome {
            result: Ok(out),
            ops,
        }
    }

    fn rollback(&mut self, txn: TxnId) -> u32 {
        let records = self.undo.remove(&txn).unwrap_or_default();
        let n = records.len() as u32;
        for (key, prior) in records.into_iter().rev() {
            match prior {
                Some(v) => {
                    self.kv.insert(key, v);
                }
                None => {
                    self.kv.remove(&key);
                }
            }
        }
        n
    }

    fn forget(&mut self, txn: TxnId) -> u32 {
        self.undo.remove(&txn).map_or(0, |r| r.len() as u32)
    }

    fn snapshot(&self) -> Self {
        TestEngine {
            kv: self.kv.clone(),
            undo: HashMap::new(),
            stripe_shift: self.stripe_shift,
        }
    }

    fn lock_set(&self, fragment: &TestFragment) -> Vec<(LockKey, LockMode)> {
        let mut locks: Vec<(LockKey, LockMode)> = Vec::new();
        match self.stripe_shift {
            None => {
                for op in &fragment.ops {
                    let (key, mode) = match *op {
                        TestOp::Read(k) => (k, LockMode::Shared),
                        TestOp::Set(k, _) | TestOp::Add(k, _) | TestOp::Del(k) => {
                            (k, LockMode::Exclusive)
                        }
                        TestOp::Scan(..) => panic!(
                            "scan fragments require stripe lock granularity \
                             (TestEngine::with_stripe_locks): per-key lock sets \
                             cannot cover deleted members"
                        ),
                    };
                    granule::merge_lock(&mut locks, LockKey(key), mode);
                }
            }
            Some(shift) => {
                for op in &fragment.ops {
                    match *op {
                        TestOp::Read(k) => granule::merge_lock(
                            &mut locks,
                            granule::stripe_key(k, shift),
                            LockMode::Shared,
                        ),
                        TestOp::Set(k, _) | TestOp::Add(k, _) | TestOp::Del(k) => {
                            granule::merge_lock(
                                &mut locks,
                                granule::stripe_key(k, shift),
                                LockMode::Exclusive,
                            )
                        }
                        TestOp::Scan(start, end) => {
                            for lk in granule::stripe_range(start, end, shift) {
                                granule::merge_lock(&mut locks, lk, LockMode::Shared);
                            }
                        }
                    }
                }
            }
        }
        locks
    }
}

/// A one-round ("simple") multi-partition procedure: apply a fragment at
/// each participant simultaneously. This is the shape of every distributed
/// TPC-C transaction (paper §4.2.2).
#[derive(Debug, Clone)]
pub struct SimpleMpProcedure {
    pub fragments: Vec<(PartitionId, TestFragment)>,
}

impl Procedure<TestFragment, TestOutput> for SimpleMpProcedure {
    fn clone_box(&self) -> Box<dyn Procedure<TestFragment, TestOutput>> {
        Box::new(self.clone())
    }

    fn step(&self, prior: &[RoundOutputs<TestOutput>]) -> Step<TestFragment, TestOutput> {
        if prior.is_empty() {
            Step::Round {
                fragments: self.fragments.clone(),
                is_final: true,
            }
        } else {
            // Final result: concatenation of all partitions' reads.
            let mut all = Vec::new();
            for (_, r) in &prior[0].by_partition {
                all.extend(r.iter().copied());
            }
            Step::Finish(all)
        }
    }
}

/// A two-round ("general") procedure: round 0 reads a key at each of two
/// partitions, round 1 writes each value to the *other* partition — the
/// paper's §4.2.1 example transaction A, which swaps `x` on P1 with `y`
/// on P2.
#[derive(Debug, Clone)]
pub struct SwapProcedure {
    pub p1: PartitionId,
    pub key1: u64,
    pub p2: PartitionId,
    pub key2: u64,
}

impl Procedure<TestFragment, TestOutput> for SwapProcedure {
    fn clone_box(&self) -> Box<dyn Procedure<TestFragment, TestOutput>> {
        Box::new(self.clone())
    }

    fn step(&self, prior: &[RoundOutputs<TestOutput>]) -> Step<TestFragment, TestOutput> {
        match prior.len() {
            0 => Step::Round {
                fragments: vec![
                    (self.p1, TestFragment::read(&[self.key1])),
                    (self.p2, TestFragment::read(&[self.key2])),
                ],
                is_final: false,
            },
            1 => {
                let v1 = prior[0].get(self.p1).expect("p1 response")[0].1;
                let v2 = prior[0].get(self.p2).expect("p2 response")[0].1;
                Step::Round {
                    fragments: vec![
                        (self.p1, TestFragment::set(self.key1, v2)),
                        (self.p2, TestFragment::set(self.key2, v1)),
                    ],
                    is_final: true,
                }
            }
            _ => Step::Finish(Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_common::ClientId;

    fn t(n: u32) -> TxnId {
        TxnId::new(ClientId(0), n)
    }

    #[test]
    fn execute_reads_and_writes() {
        let mut e = TestEngine::with_data(&[(1, 5)]);
        let out = e.execute(t(1), &TestFragment::add(1, 2), false);
        assert_eq!(out.result.unwrap(), vec![(1, 7)]);
        assert_eq!(out.ops, 2);
        assert_eq!(e.get(1), 7);
    }

    #[test]
    fn failing_fragment_has_no_effects() {
        let mut e = TestEngine::with_data(&[(1, 5)]);
        let out = e.execute(t(1), &TestFragment::failing(), true);
        assert_eq!(out.result.unwrap_err(), AbortReason::User);
        assert_eq!(e.get(1), 5);
        assert_eq!(e.rollback(t(1)), 0);
    }

    #[test]
    fn rollback_across_fragments_is_lifo() {
        let mut e = TestEngine::with_data(&[(1, 10)]);
        e.execute(t(1), &TestFragment::add(1, 1), true);
        e.execute(t(1), &TestFragment::add(1, 1), true);
        assert_eq!(e.get(1), 12);
        let n = e.rollback(t(1));
        assert_eq!(n, 2);
        assert_eq!(e.get(1), 10);
        assert_eq!(e.live_undo_buffers(), 0);
    }

    #[test]
    fn forget_discards_undo() {
        let mut e = TestEngine::new();
        e.execute(t(1), &TestFragment::set(1, 1), true);
        assert_eq!(e.live_undo_buffers(), 1);
        assert_eq!(e.forget(t(1)), 1);
        assert_eq!(e.live_undo_buffers(), 0);
        assert_eq!(e.get(1), 1, "forget keeps effects");
    }

    #[test]
    fn undoless_execution_cannot_rollback() {
        let mut e = TestEngine::new();
        e.execute(t(1), &TestFragment::set(1, 9), false);
        assert_eq!(e.rollback(t(1)), 0);
        assert_eq!(e.get(1), 9);
    }

    #[test]
    fn lock_set_merges_modes() {
        let e = TestEngine::new();
        let frag = TestFragment {
            ops: vec![TestOp::Read(1), TestOp::Add(1, 1), TestOp::Read(2)],
            fail: false,
        };
        let locks = e.lock_set(&frag);
        assert_eq!(locks.len(), 2);
        assert!(locks.contains(&(LockKey(1), LockMode::Exclusive)));
        assert!(locks.contains(&(LockKey(2), LockMode::Shared)));
    }

    #[test]
    fn scan_reads_range_in_key_order() {
        let mut e = TestEngine::with_data(&[(5, 50), (1, 10), (3, 30), (9, 90)]);
        let out = e.execute(
            t(1),
            &TestFragment {
                ops: vec![TestOp::Scan(1, 9)],
                fail: false,
            },
            false,
        );
        assert_eq!(out.result.unwrap(), vec![(1, 10), (3, 30), (5, 50)]);
        assert_eq!(out.ops, 4, "one dispatch unit + three rows");
    }

    #[test]
    fn empty_and_inverted_scans_are_cheap() {
        let mut e = TestEngine::with_data(&[(1, 10)]);
        let out = e.execute(
            t(1),
            &TestFragment {
                ops: vec![TestOp::Scan(2, 2), TestOp::Scan(9, 3)],
                fail: false,
            },
            false,
        );
        assert_eq!(out.result.unwrap(), vec![]);
        assert_eq!(out.ops, 2);
    }

    #[test]
    fn delete_rolls_back_to_present() {
        let mut e = TestEngine::with_data(&[(1, 10)]);
        let fp = e.fingerprint();
        e.execute(
            t(1),
            &TestFragment {
                ops: vec![TestOp::Del(1), TestOp::Set(2, 20)],
                fail: false,
            },
            true,
        );
        assert!(!e.contains(1));
        assert!(e.contains(2));
        assert_eq!(e.rollback(t(1)), 2);
        assert_eq!(e.fingerprint(), fp);
        assert_eq!(e.get(1), 10);
        assert!(!e.contains(2));
    }

    #[test]
    fn stripe_mode_scan_locks_cover_the_range() {
        // shift 2 → stripes of 4 keys. Scan [3, 9) covers stripes 0..=2.
        let e = TestEngine::with_data(&[]).with_stripe_locks(2);
        let locks = e.lock_set(&TestFragment {
            ops: vec![TestOp::Scan(3, 9)],
            fail: false,
        });
        let stripes: Vec<u64> = locks
            .iter()
            .map(|(k, _)| k.0 & !granule::STRIPE_NS)
            .collect();
        assert_eq!(stripes, vec![0, 1, 2]);
        assert!(locks.iter().all(|(_, m)| *m == LockMode::Shared));
    }

    #[test]
    fn stripe_mode_membership_changes_conflict_with_covering_scans() {
        let e = TestEngine::with_data(&[]).with_stripe_locks(2);
        let scan = e.lock_set(&TestFragment {
            ops: vec![TestOp::Scan(0, 8)],
            fail: false,
        });
        // A delete inside the range and an insert inside the range both
        // take X on a stripe the scan holds S on.
        for probe in [TestOp::Del(5), TestOp::Set(5, 1)] {
            let w = e.lock_set(&TestFragment {
                ops: vec![probe],
                fail: false,
            });
            assert_eq!(w.len(), 1);
            assert_eq!(w[0].1, LockMode::Exclusive);
            assert!(
                scan.iter().any(|(k, _)| *k == w[0].0),
                "membership change must hit a scanned stripe"
            );
        }
        // Outside the range: no overlap.
        let w = e.lock_set(&TestFragment {
            ops: vec![TestOp::Set(12, 1)],
            fail: false,
        });
        assert!(scan.iter().all(|(k, _)| *k != w[0].0));
    }

    #[test]
    #[should_panic(expected = "stripe lock granularity")]
    fn per_key_mode_rejects_scan_lock_sets() {
        let e = TestEngine::with_data(&[]);
        e.lock_set(&TestFragment {
            ops: vec![TestOp::Scan(0, 4)],
            fail: false,
        });
    }

    #[test]
    fn swap_procedure_rounds() {
        let p1 = PartitionId(0);
        let p2 = PartitionId(1);
        let proc = SwapProcedure {
            p1,
            key1: 1,
            p2,
            key2: 2,
        };
        let Step::Round {
            fragments,
            is_final,
        } = proc.step(&[])
        else {
            panic!("expected round 0");
        };
        assert_eq!(fragments.len(), 2);
        assert!(!is_final);
        let r0 = RoundOutputs {
            by_partition: vec![(p1, vec![(1, 5)]), (p2, vec![(2, 17)])],
        };
        let Step::Round {
            fragments,
            is_final,
        } = proc.step(&[r0])
        else {
            panic!("expected round 1");
        };
        assert!(is_final);
        // x gets y's value and vice versa.
        assert!(fragments
            .iter()
            .any(|(p, f)| *p == p1 && f.ops == vec![TestOp::Set(1, 17)]));
        assert!(fragments
            .iter()
            .any(|(p, f)| *p == p2 && f.ops == vec![TestOp::Set(2, 5)]));
    }

    #[test]
    fn simple_mp_participants() {
        let proc = SimpleMpProcedure {
            fragments: vec![
                (PartitionId(0), TestFragment::add(1, 1)),
                (PartitionId(1), TestFragment::add(2, 1)),
            ],
        };
        assert_eq!(proc.participants(), vec![PartitionId(0), PartitionId(1)]);
    }
}
