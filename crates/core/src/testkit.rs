//! A miniature execution engine and procedures for exercising the
//! schedulers in unit and integration tests.
//!
//! The engine is an integer key/value map supporting read and
//! read-modify-write operations with full undo support, plus a forced-abort
//! flag to simulate user aborts. It is deliberately tiny but exercises
//! every scheduler code path: undo recording, rollback, lock sets, and
//! multi-round procedures (the paper's §4.2.1 swap example is reproduced in
//! the speculative scheduler's tests with this engine).

use crate::engine::{ExecOutcome, ExecutionEngine};
use crate::procedure::{Procedure, RoundOutputs, Step};
use hcc_common::{AbortReason, LockKey, PartitionId, TxnId};
use hcc_locking::LockMode;
use std::collections::HashMap;

/// One operation of a test fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestOp {
    /// Read a key (reported in the output).
    Read(u64),
    /// key := value.
    Set(u64, i64),
    /// key += delta.
    Add(u64, i64),
}

/// A fragment for the test engine.
#[derive(Debug, Clone, Default)]
pub struct TestFragment {
    pub ops: Vec<TestOp>,
    /// If set, the fragment refuses to run (user abort) without effects.
    pub fail: bool,
}

impl TestFragment {
    pub fn read(keys: &[u64]) -> Self {
        TestFragment {
            ops: keys.iter().map(|&k| TestOp::Read(k)).collect(),
            fail: false,
        }
    }

    pub fn add(key: u64, delta: i64) -> Self {
        TestFragment {
            ops: vec![TestOp::Add(key, delta), TestOp::Read(key)],
            fail: false,
        }
    }

    pub fn set(key: u64, value: i64) -> Self {
        TestFragment {
            ops: vec![TestOp::Set(key, value)],
            fail: false,
        }
    }

    pub fn failing() -> Self {
        TestFragment {
            ops: vec![],
            fail: true,
        }
    }
}

/// Output: the values read, in op order.
pub type TestOutput = Vec<(u64, i64)>;

/// Integer KV engine with per-transaction undo buffers.
#[derive(Debug, Default)]
pub struct TestEngine {
    pub kv: HashMap<u64, i64>,
    undo: HashMap<TxnId, Vec<(u64, Option<i64>)>>,
}

impl TestEngine {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_data(pairs: &[(u64, i64)]) -> Self {
        TestEngine {
            kv: pairs.iter().copied().collect(),
            undo: HashMap::new(),
        }
    }

    pub fn get(&self, key: u64) -> i64 {
        self.kv.get(&key).copied().unwrap_or(0)
    }

    /// Number of transactions with live undo buffers (leak detection).
    pub fn live_undo_buffers(&self) -> usize {
        self.undo.len()
    }

    fn write(&mut self, txn: TxnId, key: u64, value: i64, undo: bool) {
        let prior = self.kv.insert(key, value);
        if undo {
            self.undo.entry(txn).or_default().push((key, prior));
        }
    }
}

impl ExecutionEngine for TestEngine {
    type Fragment = TestFragment;
    type Output = TestOutput;

    fn execute(
        &mut self,
        txn: TxnId,
        fragment: &TestFragment,
        undo: bool,
    ) -> ExecOutcome<TestOutput> {
        if fragment.fail {
            return ExecOutcome {
                result: Err(AbortReason::User),
                ops: 1,
            };
        }
        let mut out = Vec::new();
        for op in &fragment.ops {
            match *op {
                TestOp::Read(k) => out.push((k, self.get(k))),
                TestOp::Set(k, v) => self.write(txn, k, v, undo),
                TestOp::Add(k, d) => {
                    let v = self.get(k) + d;
                    self.write(txn, k, v, undo);
                }
            }
        }
        ExecOutcome {
            result: Ok(out),
            ops: fragment.ops.len() as u32,
        }
    }

    fn rollback(&mut self, txn: TxnId) -> u32 {
        let records = self.undo.remove(&txn).unwrap_or_default();
        let n = records.len() as u32;
        for (key, prior) in records.into_iter().rev() {
            match prior {
                Some(v) => {
                    self.kv.insert(key, v);
                }
                None => {
                    self.kv.remove(&key);
                }
            }
        }
        n
    }

    fn forget(&mut self, txn: TxnId) -> u32 {
        self.undo.remove(&txn).map_or(0, |r| r.len() as u32)
    }

    fn snapshot(&self) -> Self {
        TestEngine {
            kv: self.kv.clone(),
            undo: HashMap::new(),
        }
    }

    fn lock_set(&self, fragment: &TestFragment) -> Vec<(LockKey, LockMode)> {
        let mut locks: Vec<(LockKey, LockMode)> = Vec::new();
        for op in &fragment.ops {
            let (key, mode) = match *op {
                TestOp::Read(k) => (k, LockMode::Shared),
                TestOp::Set(k, _) | TestOp::Add(k, _) => (k, LockMode::Exclusive),
            };
            let lk = LockKey(key);
            match locks.iter_mut().find(|(l, _)| *l == lk) {
                Some((_, m)) => {
                    if mode == LockMode::Exclusive {
                        *m = LockMode::Exclusive;
                    }
                }
                None => locks.push((lk, mode)),
            }
        }
        locks
    }
}

/// A one-round ("simple") multi-partition procedure: apply a fragment at
/// each participant simultaneously. This is the shape of every distributed
/// TPC-C transaction (paper §4.2.2).
#[derive(Debug, Clone)]
pub struct SimpleMpProcedure {
    pub fragments: Vec<(PartitionId, TestFragment)>,
}

impl Procedure<TestFragment, TestOutput> for SimpleMpProcedure {
    fn clone_box(&self) -> Box<dyn Procedure<TestFragment, TestOutput>> {
        Box::new(self.clone())
    }

    fn step(&self, prior: &[RoundOutputs<TestOutput>]) -> Step<TestFragment, TestOutput> {
        if prior.is_empty() {
            Step::Round {
                fragments: self.fragments.clone(),
                is_final: true,
            }
        } else {
            // Final result: concatenation of all partitions' reads.
            let mut all = Vec::new();
            for (_, r) in &prior[0].by_partition {
                all.extend(r.iter().copied());
            }
            Step::Finish(all)
        }
    }
}

/// A two-round ("general") procedure: round 0 reads a key at each of two
/// partitions, round 1 writes each value to the *other* partition — the
/// paper's §4.2.1 example transaction A, which swaps `x` on P1 with `y`
/// on P2.
#[derive(Debug, Clone)]
pub struct SwapProcedure {
    pub p1: PartitionId,
    pub key1: u64,
    pub p2: PartitionId,
    pub key2: u64,
}

impl Procedure<TestFragment, TestOutput> for SwapProcedure {
    fn clone_box(&self) -> Box<dyn Procedure<TestFragment, TestOutput>> {
        Box::new(self.clone())
    }

    fn step(&self, prior: &[RoundOutputs<TestOutput>]) -> Step<TestFragment, TestOutput> {
        match prior.len() {
            0 => Step::Round {
                fragments: vec![
                    (self.p1, TestFragment::read(&[self.key1])),
                    (self.p2, TestFragment::read(&[self.key2])),
                ],
                is_final: false,
            },
            1 => {
                let v1 = prior[0].get(self.p1).expect("p1 response")[0].1;
                let v2 = prior[0].get(self.p2).expect("p2 response")[0].1;
                Step::Round {
                    fragments: vec![
                        (self.p1, TestFragment::set(self.key1, v2)),
                        (self.p2, TestFragment::set(self.key2, v1)),
                    ],
                    is_final: true,
                }
            }
            _ => Step::Finish(Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_common::ClientId;

    fn t(n: u32) -> TxnId {
        TxnId::new(ClientId(0), n)
    }

    #[test]
    fn execute_reads_and_writes() {
        let mut e = TestEngine::with_data(&[(1, 5)]);
        let out = e.execute(t(1), &TestFragment::add(1, 2), false);
        assert_eq!(out.result.unwrap(), vec![(1, 7)]);
        assert_eq!(out.ops, 2);
        assert_eq!(e.get(1), 7);
    }

    #[test]
    fn failing_fragment_has_no_effects() {
        let mut e = TestEngine::with_data(&[(1, 5)]);
        let out = e.execute(t(1), &TestFragment::failing(), true);
        assert_eq!(out.result.unwrap_err(), AbortReason::User);
        assert_eq!(e.get(1), 5);
        assert_eq!(e.rollback(t(1)), 0);
    }

    #[test]
    fn rollback_across_fragments_is_lifo() {
        let mut e = TestEngine::with_data(&[(1, 10)]);
        e.execute(t(1), &TestFragment::add(1, 1), true);
        e.execute(t(1), &TestFragment::add(1, 1), true);
        assert_eq!(e.get(1), 12);
        let n = e.rollback(t(1));
        assert_eq!(n, 2);
        assert_eq!(e.get(1), 10);
        assert_eq!(e.live_undo_buffers(), 0);
    }

    #[test]
    fn forget_discards_undo() {
        let mut e = TestEngine::new();
        e.execute(t(1), &TestFragment::set(1, 1), true);
        assert_eq!(e.live_undo_buffers(), 1);
        assert_eq!(e.forget(t(1)), 1);
        assert_eq!(e.live_undo_buffers(), 0);
        assert_eq!(e.get(1), 1, "forget keeps effects");
    }

    #[test]
    fn undoless_execution_cannot_rollback() {
        let mut e = TestEngine::new();
        e.execute(t(1), &TestFragment::set(1, 9), false);
        assert_eq!(e.rollback(t(1)), 0);
        assert_eq!(e.get(1), 9);
    }

    #[test]
    fn lock_set_merges_modes() {
        let e = TestEngine::new();
        let frag = TestFragment {
            ops: vec![TestOp::Read(1), TestOp::Add(1, 1), TestOp::Read(2)],
            fail: false,
        };
        let locks = e.lock_set(&frag);
        assert_eq!(locks.len(), 2);
        assert!(locks.contains(&(LockKey(1), LockMode::Exclusive)));
        assert!(locks.contains(&(LockKey(2), LockMode::Shared)));
    }

    #[test]
    fn swap_procedure_rounds() {
        let p1 = PartitionId(0);
        let p2 = PartitionId(1);
        let proc = SwapProcedure {
            p1,
            key1: 1,
            p2,
            key2: 2,
        };
        let Step::Round {
            fragments,
            is_final,
        } = proc.step(&[])
        else {
            panic!("expected round 0");
        };
        assert_eq!(fragments.len(), 2);
        assert!(!is_final);
        let r0 = RoundOutputs {
            by_partition: vec![(p1, vec![(1, 5)]), (p2, vec![(2, 17)])],
        };
        let Step::Round {
            fragments,
            is_final,
        } = proc.step(&[r0])
        else {
            panic!("expected round 1");
        };
        assert!(is_final);
        // x gets y's value and vice versa.
        assert!(fragments
            .iter()
            .any(|(p, f)| *p == p1 && f.ops == vec![TestOp::Set(1, 17)]));
        assert!(fragments
            .iter()
            .any(|(p, f)| *p == p2 && f.ops == vec![TestOp::Set(2, 5)]));
    }

    #[test]
    fn simple_mp_participants() {
        let proc = SimpleMpProcedure {
            fragments: vec![
                (PartitionId(0), TestFragment::add(1, 1)),
                (PartitionId(1), TestFragment::add(2, 1)),
            ],
        };
        assert_eq!(proc.participants(), vec![PartitionId(0), PartitionId(1)]);
    }
}
