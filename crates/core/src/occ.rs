//! Optimistic concurrency control — the extension sketched in the paper's
//! §5.7.
//!
//! The paper hypothesizes that OCC "would be similar to that of locking"
//! because, with single-threaded partitions, the locking implementation
//! "involves little more than keeping track of the read/write sets of a
//! transaction — which OCC also must do", so OCC's usual advantage (no
//! lock manager latching) disappears.
//!
//! Our OCC variant is validation-based speculation: transactions execute
//! optimistically during multi-partition stalls exactly like the
//! speculative scheme, but read/write sets are tracked, and when a
//! transaction aborts, only the speculative successors whose sets
//! (transitively) intersect its writes are squashed — backward validation
//! instead of the paper's assume-all-conflict rule. The price is set
//! tracking on every speculative execution, billed at the lock-overhead
//! rate, which is exactly the trade the paper describes.

use crate::engine::ExecutionEngine;
use crate::outbox::Outbox;
use crate::scheduler::Scheduler;
use crate::speculative::{ConflictPolicy, SpeculativeScheduler};
use hcc_common::stats::SchedulerCounters;
use hcc_common::{CostModel, Decision, FragmentTask, Nanos, PartitionId};

/// Validation-based (OCC) scheduler: speculation with precise conflict
/// detection.
pub struct OccScheduler<E: ExecutionEngine> {
    inner: SpeculativeScheduler<E>,
}

impl<E: ExecutionEngine> OccScheduler<E> {
    pub fn new(me: PartitionId, costs: CostModel) -> Self {
        OccScheduler {
            inner: SpeculativeScheduler::with_policy(
                me,
                costs,
                usize::MAX,
                ConflictPolicy::Precise,
            ),
        }
    }

    pub fn speculation_depth(&self) -> usize {
        self.inner.speculation_depth()
    }
}

impl<E: ExecutionEngine> Scheduler<E> for OccScheduler<E> {
    fn on_fragment(
        &mut self,
        task: FragmentTask<E::Fragment>,
        engine: &mut E,
        now: Nanos,
        out: &mut Outbox<E::Output>,
    ) {
        self.inner.on_fragment(task, engine, now, out);
    }

    fn on_decision(
        &mut self,
        decision: Decision,
        engine: &mut E,
        now: Nanos,
        out: &mut Outbox<E::Output>,
    ) {
        self.inner.on_decision(decision, engine, now, out);
    }

    fn on_tick(
        &mut self,
        engine: &mut E,
        now: Nanos,
        out: &mut Outbox<E::Output>,
    ) -> Option<Nanos> {
        self.inner.on_tick(engine, now, out)
    }

    fn counters(&self) -> SchedulerCounters {
        self.inner.counters()
    }

    fn is_idle(&self) -> bool {
        self.inner.is_idle()
    }
}
