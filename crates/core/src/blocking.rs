//! The blocking scheme (paper §4.1, Figure 2).
//!
//! "The simplest scheme for handling multi-partition transactions is to
//! block until they complete. [...] In effect, this system assumes that all
//! transactions conflict, and thus can only execute one at a time."
//!
//! Single-partition transactions run to completion immediately when no
//! multi-partition transaction is active — without an undo buffer unless
//! they can user-abort. While a multi-partition transaction is in flight
//! (including its two-phase-commit network stall), everything else queues.
//!
//! Under **sharded coordinators** blocking behaves as it always did —
//! everything queues behind the active multi-partition transaction — but
//! cross-shard arrivals are counted (`cross_coord_waits`), because
//! without a global dispatch order two cross-shard transactions meeting
//! at two partitions in opposite orders block each other forever. That
//! residual distributed deadlock is broken by the coordinator's timeout
//! expiry (retryable `CrossCoordinator` aborts), exactly how §4.3
//! resolves distributed deadlocks under locking.

use crate::engine::ExecutionEngine;
use crate::outbox::Outbox;
use crate::scheduler::Scheduler;
use hcc_common::stats::SchedulerCounters;
use hcc_common::{
    CoordinatorRef, CostModel, Decision, FragmentResponse, FragmentTask, Nanos, TxnResult, Vote,
};
use std::collections::VecDeque;

/// The multi-partition transaction currently occupying the partition.
#[derive(Debug)]
struct ActiveMp {
    txn: hcc_common::TxnId,
    coordinator: CoordinatorRef,
    ops: u32,
}

/// Scheduler implementing Figure 2 of the paper.
pub struct BlockingScheduler<E: ExecutionEngine> {
    me: hcc_common::PartitionId,
    costs: CostModel,
    active: Option<ActiveMp>,
    queue: VecDeque<FragmentTask<E::Fragment>>,
    /// Cross-shard sequencing active: multi-partition arrivals are
    /// globally ordered by the epoch merge, so a cross-shard overlap in
    /// the queue is ordinary sequenced traffic, not a deadlock-prone wait
    /// — `cross_coord_waits` stays zero.
    sequenced: bool,
    counters: SchedulerCounters,
}

impl<E: ExecutionEngine> BlockingScheduler<E> {
    pub fn new(me: hcc_common::PartitionId, costs: CostModel) -> Self {
        BlockingScheduler {
            me,
            costs,
            active: None,
            queue: VecDeque::new(),
            sequenced: false,
            counters: SchedulerCounters::default(),
        }
    }

    /// Cross-shard sequencing is on (see the `sequenced` field).
    pub fn set_sequenced(&mut self, v: bool) {
        self.sequenced = v;
    }

    /// Execute a single-partition transaction to completion (the no-active
    /// fast path of Figure 2).
    fn run_single_partition(
        &mut self,
        task: &FragmentTask<E::Fragment>,
        engine: &mut E,
        out: &mut Outbox<E::Output>,
    ) {
        // "execute fragment without undo buffer" — unless the procedure may
        // user-abort, in which case an undo buffer is required (§3.2).
        let undo = task.can_abort;
        let outcome = engine.execute(task.txn, &task.fragment, undo);
        let cost = self.costs.fragment_cost(outcome.ops, undo, false, false);
        out.charge(cost);
        self.counters.fragments_executed += 1;
        self.counters.execution_ns += cost.0;
        match outcome.result {
            Ok(payload) => {
                if undo {
                    engine.forget(task.txn);
                } else {
                    self.counters.fast_path += 1;
                }
                self.counters.committed += 1;
                out.send_client(task.client, task.txn, TxnResult::Committed(payload));
            }
            Err(reason) => {
                // Failed fragments leave no effects (engine contract), but
                // earlier undo records would not exist for a single
                // fragment; rollback is a no-op kept for symmetry.
                engine.rollback(task.txn);
                self.counters.aborted += 1;
                out.send_client(task.client, task.txn, TxnResult::Aborted(reason));
            }
        }
    }

    /// Execute one fragment of a multi-partition transaction and respond to
    /// its coordinator (piggybacking the 2PC vote on the last fragment).
    fn run_mp_fragment(
        &mut self,
        task: &FragmentTask<E::Fragment>,
        engine: &mut E,
        out: &mut Outbox<E::Output>,
    ) {
        let outcome = engine.execute(task.txn, &task.fragment, true);
        let cost = self.costs.fragment_cost(outcome.ops, true, false, true);
        out.charge(cost);
        self.counters.fragments_executed += 1;
        self.counters.execution_ns += cost.0;
        if let Some(a) = self.active.as_mut() {
            a.ops += outcome.ops;
        }
        let vote = task.last_fragment.then_some(match &outcome.result {
            Ok(_) => Vote::Commit,
            Err(r) => Vote::Abort(*r),
        });
        // A mid-transaction failure also reports Err so the coordinator
        // aborts without waiting for remaining rounds.
        let vote = match (&outcome.result, vote) {
            (Err(r), None) => Some(Vote::Abort(*r)),
            (_, v) => v,
        };
        out.send_coordinator(
            task.coordinator,
            FragmentResponse {
                txn: task.txn,
                partition: self.me,
                round: task.round,
                attempt: 0,
                payload: outcome.result,
                vote,
                depends_on: None,
            },
        );
    }

    /// After the active transaction finishes, run queued work until the
    /// next multi-partition transaction becomes active (or the queue
    /// drains).
    fn drain(&mut self, engine: &mut E, out: &mut Outbox<E::Output>) {
        while self.active.is_none() {
            let Some(task) = self.queue.pop_front() else {
                break;
            };
            if task.multi_partition {
                self.active = Some(ActiveMp {
                    txn: task.txn,
                    coordinator: task.coordinator,
                    ops: 0,
                });
                self.run_mp_fragment(&task, engine, out);
            } else {
                self.run_single_partition(&task, engine, out);
            }
        }
    }
}

impl<E: ExecutionEngine> Scheduler<E> for BlockingScheduler<E> {
    fn on_fragment(
        &mut self,
        task: FragmentTask<E::Fragment>,
        engine: &mut E,
        _now: Nanos,
        out: &mut Outbox<E::Output>,
    ) {
        match &self.active {
            None => {
                debug_assert!(self.queue.is_empty(), "queue non-empty while inactive");
                if task.multi_partition {
                    self.active = Some(ActiveMp {
                        txn: task.txn,
                        coordinator: task.coordinator,
                        ops: 0,
                    });
                    self.run_mp_fragment(&task, engine, out);
                } else {
                    self.run_single_partition(&task, engine, out);
                }
            }
            Some(a) if a.txn == task.txn => {
                // "fragment continues active multi-partition transaction".
                self.run_mp_fragment(&task, engine, out);
            }
            Some(a) => {
                if task.multi_partition && a.coordinator != task.coordinator && !self.sequenced {
                    // Cross-shard overlap: wait, counted. A resulting
                    // cross-partition deadlock is broken by the
                    // coordinator's timeout expiry. Under sequencing the
                    // overlap is ordinary ordered traffic — not counted.
                    self.counters.cross_coord_waits += 1;
                }
                self.queue.push_back(task);
            }
        }
    }

    fn on_decision(
        &mut self,
        decision: Decision,
        engine: &mut E,
        _now: Nanos,
        out: &mut Outbox<E::Output>,
    ) {
        // A decision for a transaction we never saw: only possible after a
        // failover (the coordinator fans aborts out to every dispatched
        // partition, and the promoted backup never executed the fragments).
        // Count it — healthy runs assert this stays 0 — and ignore it.
        match &self.active {
            Some(active) if active.txn == decision.txn => {}
            _ => {
                self.counters.stray_decisions += 1;
                return;
            }
        }
        self.active = None;
        if decision.commit {
            engine.forget(decision.txn);
            self.counters.committed += 1;
            // Only multi-partition transactions wait for a coordinator
            // decision; single-partition work commits inline in `drain`.
            self.counters.committed_mp += 1;
        } else {
            let undone = engine.rollback(decision.txn);
            let cost = self.costs.rollback_cost(undone);
            out.charge(cost);
            self.counters.rollback_ns += cost.0;
            self.counters.aborted += 1;
        }
        self.drain(engine, out);
    }

    fn on_tick(
        &mut self,
        _engine: &mut E,
        _now: Nanos,
        _out: &mut Outbox<E::Output>,
    ) -> Option<Nanos> {
        None
    }

    fn counters(&self) -> SchedulerCounters {
        self.counters
    }

    fn is_idle(&self) -> bool {
        self.active.is_none() && self.queue.is_empty()
    }
}

// Re-exported for tests: how many transactions are waiting.
impl<E: ExecutionEngine> BlockingScheduler<E> {
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{TestEngine, TestFragment};
    use hcc_common::{AbortReason, ClientId, CoordinatorRef, PartitionId, TxnId};

    fn sp_task(txn: u32, frag: TestFragment) -> FragmentTask<TestFragment> {
        FragmentTask {
            txn: TxnId::new(ClientId(1), txn),
            coordinator: CoordinatorRef::Client(ClientId(1)),
            client: ClientId(1),
            fragment: frag,
            multi_partition: false,
            last_fragment: true,
            round: 0,
            can_abort: false,
        }
    }

    fn mp_task(txn: u32, frag: TestFragment, last: bool, round: u32) -> FragmentTask<TestFragment> {
        FragmentTask {
            txn: TxnId::new(ClientId(9), txn),
            coordinator: CoordinatorRef::Central(hcc_common::CoordinatorId(0)),
            client: ClientId(9),
            fragment: frag,
            multi_partition: true,
            last_fragment: last,
            round,
            can_abort: false,
        }
    }

    fn setup() -> (
        BlockingScheduler<TestEngine>,
        TestEngine,
        Outbox<Vec<(u64, i64)>>,
    ) {
        (
            BlockingScheduler::new(PartitionId(0), CostModel::default()),
            TestEngine::with_data(&[(1, 100), (2, 200)]),
            Outbox::new(CostModel::default()),
        )
    }

    #[test]
    fn single_partition_commits_immediately() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            sp_task(1, TestFragment::add(1, 5)),
            &mut e,
            Nanos(0),
            &mut out,
        );
        assert_eq!(e.get(1), 105);
        let (msgs, cpu) = out.take();
        assert_eq!(msgs.len(), 1);
        assert!(matches!(
            &msgs[0],
            crate::outbox::PartitionOut::ToClient {
                result: TxnResult::Committed(_),
                ..
            }
        ));
        assert!(cpu > Nanos::ZERO);
        assert!(s.is_idle());
        assert_eq!(s.counters().fast_path, 1);
        assert_eq!(e.live_undo_buffers(), 0);
    }

    #[test]
    fn user_abort_single_partition() {
        let (mut s, mut e, mut out) = setup();
        let mut task = sp_task(1, TestFragment::failing());
        task.can_abort = true;
        s.on_fragment(task, &mut e, Nanos(0), &mut out);
        let (msgs, _) = out.take();
        assert!(matches!(
            &msgs[0],
            crate::outbox::PartitionOut::ToClient {
                result: TxnResult::Aborted(AbortReason::User),
                ..
            }
        ));
        assert_eq!(s.counters().aborted, 1);
    }

    #[test]
    fn mp_blocks_queued_sp_until_decision() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp_task(1, TestFragment::add(1, 1), true, 0),
            &mut e,
            Nanos(0),
            &mut out,
        );
        let (msgs, _) = out.take();
        assert!(matches!(
            &msgs[0],
            crate::outbox::PartitionOut::ToCoordinator { response, .. }
                if response.vote == Some(Vote::Commit)
        ));
        // SP arrives while MP active: queued, not executed.
        s.on_fragment(
            sp_task(2, TestFragment::add(1, 10)),
            &mut e,
            Nanos(0),
            &mut out,
        );
        assert_eq!(e.get(1), 101, "queued SP must not execute");
        assert_eq!(s.queue_len(), 1);
        assert!(out.take().0.is_empty());

        // Commit decision releases the queue.
        s.on_decision(
            Decision {
                txn: TxnId::new(ClientId(9), 1),
                commit: true,
            },
            &mut e,
            Nanos(0),
            &mut out,
        );
        assert_eq!(e.get(1), 111);
        let (msgs, _) = out.take();
        assert_eq!(msgs.len(), 1);
        assert!(s.is_idle());
        assert_eq!(e.live_undo_buffers(), 0);
    }

    #[test]
    fn abort_rolls_back_mp_effects() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp_task(1, TestFragment::add(1, 1), true, 0),
            &mut e,
            Nanos(0),
            &mut out,
        );
        assert_eq!(e.get(1), 101);
        s.on_decision(
            Decision {
                txn: TxnId::new(ClientId(9), 1),
                commit: false,
            },
            &mut e,
            Nanos(0),
            &mut out,
        );
        assert_eq!(e.get(1), 100, "abort must undo MP writes");
        assert_eq!(s.counters().aborted, 1);
        assert_eq!(e.live_undo_buffers(), 0);
    }

    #[test]
    fn multi_round_mp_continues_without_queueing() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp_task(1, TestFragment::read(&[1]), false, 0),
            &mut e,
            Nanos(0),
            &mut out,
        );
        let (msgs, _) = out.take();
        assert!(matches!(
            &msgs[0],
            crate::outbox::PartitionOut::ToCoordinator { response, .. } if response.vote.is_none()
        ));
        // Round 1 continues the same transaction.
        s.on_fragment(
            mp_task(1, TestFragment::set(1, 77), true, 1),
            &mut e,
            Nanos(0),
            &mut out,
        );
        assert_eq!(e.get(1), 77);
        let (msgs, _) = out.take();
        assert!(matches!(
            &msgs[0],
            crate::outbox::PartitionOut::ToCoordinator { response, .. }
                if response.vote == Some(Vote::Commit) && response.round == 1
        ));
        // Abort undoes both rounds.
        s.on_decision(
            Decision {
                txn: TxnId::new(ClientId(9), 1),
                commit: false,
            },
            &mut e,
            Nanos(0),
            &mut out,
        );
        assert_eq!(e.get(1), 100);
    }

    #[test]
    fn mp_user_abort_votes_abort() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp_task(1, TestFragment::failing(), true, 0),
            &mut e,
            Nanos(0),
            &mut out,
        );
        let (msgs, _) = out.take();
        assert!(matches!(
            &msgs[0],
            crate::outbox::PartitionOut::ToCoordinator { response, .. }
                if matches!(response.vote, Some(Vote::Abort(AbortReason::User)))
        ));
    }

    #[test]
    fn queued_mp_becomes_active_after_drain() {
        let (mut s, mut e, mut out) = setup();
        s.on_fragment(
            mp_task(1, TestFragment::add(1, 1), true, 0),
            &mut e,
            Nanos(0),
            &mut out,
        );
        s.on_fragment(
            sp_task(2, TestFragment::add(2, 1)),
            &mut e,
            Nanos(0),
            &mut out,
        );
        s.on_fragment(
            mp_task(3, TestFragment::add(2, 5), true, 0),
            &mut e,
            Nanos(0),
            &mut out,
        );
        s.on_fragment(
            sp_task(4, TestFragment::add(2, 7)),
            &mut e,
            Nanos(0),
            &mut out,
        );
        assert_eq!(s.queue_len(), 3);
        out.take();

        s.on_decision(
            Decision {
                txn: TxnId::new(ClientId(9), 1),
                commit: true,
            },
            &mut e,
            Nanos(0),
            &mut out,
        );
        // SP(2) ran, MP(3) became active (executed, awaiting decision),
        // SP(4) still queued behind it.
        assert_eq!(e.get(2), 206);
        assert_eq!(s.queue_len(), 1);
        assert!(!s.is_idle());
        let (msgs, _) = out.take();
        // One client reply (SP 2) + one coordinator response (MP 3).
        assert_eq!(msgs.len(), 2);

        s.on_decision(
            Decision {
                txn: TxnId::new(ClientId(9), 3),
                commit: true,
            },
            &mut e,
            Nanos(0),
            &mut out,
        );
        assert_eq!(e.get(2), 213);
        assert!(s.is_idle());
    }

    #[test]
    fn charges_more_cpu_for_undo_execution() {
        let costs = CostModel::default();
        let mut s: BlockingScheduler<TestEngine> = BlockingScheduler::new(PartitionId(0), costs);
        let mut e = TestEngine::with_data(&[(1, 0)]);
        let mut out = Outbox::new(costs);
        s.on_fragment(
            sp_task(1, TestFragment::add(1, 1)),
            &mut e,
            Nanos(0),
            &mut out,
        );
        let (_, plain) = out.take();
        let mut task = sp_task(2, TestFragment::add(1, 1));
        task.can_abort = true; // forces undo buffer
        s.on_fragment(task, &mut e, Nanos(0), &mut out);
        let (_, with_undo) = out.take();
        assert!(with_undo > plain, "{with_undo} vs {plain}");
    }
}
