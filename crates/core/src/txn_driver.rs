//! Client-side two-phase commit for the locking scheme.
//!
//! Under locking, "clients send multi-partition transactions directly to
//! the partitions, without going through the central coordinator. This is
//! more efficient when there are no lock conflicts, as it reduces network
//! latency and eliminates an extra process from the system" (§4.3).
//!
//! [`TxnDriver`] is a thin wrapper around [`Coordinator`] configured as a
//! client-coordinator: the round-driving and 2PC logic are identical, but
//! fragments are stamped `CoordinatorRef::Client(_)` so partitions respond
//! to the client, and there is no speculative-dependency machinery to
//! exercise (the locking scheduler never emits dependencies).

use crate::coordinator::{CoordOut, Coordinator};
use crate::procedure::Procedure;
use hcc_common::{ClientId, CostModel, FragmentResponse, TxnId, TxnResult};

/// Drives the multi-partition transactions of one client under the locking
/// scheme.
pub struct TxnDriver<F, R> {
    inner: Coordinator<F, R>,
    client: ClientId,
}

impl<F: Clone + std::fmt::Debug, R: Clone + std::fmt::Debug> TxnDriver<F, R> {
    pub fn new(costs: CostModel, client: ClientId) -> Self {
        TxnDriver {
            inner: Coordinator::client_driver(costs, client),
            client,
        }
    }

    /// Start a multi-partition transaction; emits round-0 fragments.
    pub fn begin(
        &mut self,
        txn: TxnId,
        procedure: Box<dyn Procedure<F, R>>,
        can_abort: bool,
        out: &mut Vec<CoordOut<F, R>>,
    ) {
        self.inner
            .on_invoke(txn, self.client, procedure, can_abort, out);
    }

    /// Feed a partition's response; may emit more fragments, decisions,
    /// and finally a `CoordOut::ClientResult` destined for this client
    /// itself. The caller extracts the result with
    /// [`TxnDriver::take_result`].
    pub fn on_response(&mut self, resp: FragmentResponse<R>, out: &mut Vec<CoordOut<F, R>>) {
        self.inner.on_response(resp, out);
    }

    /// Enable durable result release: the driver parks a committed result
    /// until every participant acknowledges its commit decision (which
    /// partitions send only once the commit record is durably logged).
    /// The decisions then carry `CoordinatorRef::Client(_)` ack addresses,
    /// so partitions route the acks back to this client.
    pub fn set_hold_results(&mut self, on: bool) {
        self.inner.set_hold_results(on);
    }

    /// A participant acknowledged (durably logged) a commit decision; the
    /// final ack releases the parked result into `out`.
    pub fn on_decision_ack(
        &mut self,
        txn: TxnId,
        partition: hcc_common::PartitionId,
        out: &mut Vec<CoordOut<F, R>>,
    ) {
        self.inner.on_decision_ack(txn, partition, out);
    }

    /// Number of undecided transactions (0 or 1 for closed-loop clients).
    pub fn pending(&self) -> usize {
        self.inner.pending()
    }

    /// Virtual CPU consumed since last drained.
    pub fn take_cpu(&mut self) -> hcc_common::Nanos {
        self.inner.take_cpu()
    }

    /// Split driver outputs into network messages and the final result (if
    /// the transaction just decided).
    pub fn take_result(out: &mut Vec<CoordOut<F, R>>) -> Option<(TxnId, TxnResult<R>)> {
        let pos = out
            .iter()
            .position(|o| matches!(o, CoordOut::ClientResult { .. }))?;
        match out.remove(pos) {
            CoordOut::ClientResult { txn, result, .. } => Some((txn, result)),
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{SimpleMpProcedure, TestFragment, TestOutput};
    use hcc_common::{AbortReason, CoordinatorRef, PartitionId, Vote};

    fn driver() -> TxnDriver<TestFragment, TestOutput> {
        TxnDriver::new(CostModel::default(), ClientId(5))
    }

    fn proc2() -> Box<dyn Procedure<TestFragment, TestOutput>> {
        Box::new(SimpleMpProcedure {
            fragments: vec![
                (PartitionId(0), TestFragment::add(1, 1)),
                (PartitionId(1), TestFragment::add(2, 1)),
            ],
        })
    }

    fn resp(txn: TxnId, p: u32, vote: Vote) -> FragmentResponse<TestOutput> {
        FragmentResponse {
            txn,
            partition: PartitionId(p),
            round: 0,
            attempt: 0,
            payload: match vote {
                Vote::Commit => Ok(vec![]),
                Vote::Abort(r) => Err(r),
            },
            vote: Some(vote),
            depends_on: None,
        }
    }

    #[test]
    fn fragments_are_client_coordinated() {
        let mut d = driver();
        let mut out = Vec::new();
        let txn = TxnId::new(ClientId(5), 0);
        d.begin(txn, proc2(), false, &mut out);
        assert_eq!(out.len(), 2);
        for o in &out {
            match o {
                CoordOut::Fragment(_, t) => {
                    assert_eq!(t.coordinator, CoordinatorRef::Client(ClientId(5)));
                    assert!(t.last_fragment);
                }
                _ => panic!("expected fragments"),
            }
        }
    }

    #[test]
    fn commit_after_votes_and_result_extracted() {
        let mut d = driver();
        let mut out = Vec::new();
        let txn = TxnId::new(ClientId(5), 0);
        d.begin(txn, proc2(), false, &mut out);
        out.clear();
        d.on_response(resp(txn, 0, Vote::Commit), &mut out);
        assert!(TxnDriver::take_result(&mut out).is_none());
        d.on_response(resp(txn, 1, Vote::Commit), &mut out);
        let (id, result) = TxnDriver::take_result(&mut out).expect("decided");
        assert_eq!(id, txn);
        assert!(result.is_committed());
        // Two commit decisions remain in the outbox.
        let commits = out
            .iter()
            .filter(|o| matches!(o, CoordOut::Decision(_, dd, _) if dd.commit))
            .count();
        assert_eq!(commits, 2);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn held_result_releases_on_final_decision_ack() {
        let mut d = driver();
        d.set_hold_results(true);
        let mut out = Vec::new();
        let txn = TxnId::new(ClientId(5), 0);
        d.begin(txn, proc2(), false, &mut out);
        out.clear();
        d.on_response(resp(txn, 0, Vote::Commit), &mut out);
        d.on_response(resp(txn, 1, Vote::Commit), &mut out);
        // Decided, but the result is parked until both participants ack.
        assert!(TxnDriver::take_result(&mut out).is_none());
        // Decisions carry a client ack address.
        let acked = out
            .iter()
            .filter(
                |o| matches!(o, CoordOut::Decision(_, dd, Some(CoordinatorRef::Client(c))) if dd.commit && *c == ClientId(5)),
            )
            .count();
        assert_eq!(acked, 2);
        out.clear();
        d.on_decision_ack(txn, PartitionId(0), &mut out);
        assert!(TxnDriver::take_result(&mut out).is_none());
        d.on_decision_ack(txn, PartitionId(1), &mut out);
        let (id, result) = TxnDriver::take_result(&mut out).expect("released");
        assert_eq!(id, txn);
        assert!(result.is_committed());
    }

    #[test]
    fn deadlock_vote_aborts_transaction() {
        let mut d = driver();
        let mut out = Vec::new();
        let txn = TxnId::new(ClientId(5), 0);
        d.begin(txn, proc2(), false, &mut out);
        out.clear();
        d.on_response(resp(txn, 0, Vote::Commit), &mut out);
        d.on_response(
            resp(txn, 1, Vote::Abort(AbortReason::LockTimeout)),
            &mut out,
        );
        let (_, result) = TxnDriver::take_result(&mut out).expect("decided");
        assert_eq!(result, TxnResult::Aborted(AbortReason::LockTimeout));
        let aborts = out
            .iter()
            .filter(|o| matches!(o, CoordOut::Decision(_, dd, _) if !dd.commit))
            .count();
        assert_eq!(aborts, 2);
    }
}
