//! Multiplexed reactor backend: every actor on a configurable worker
//! pool with partition affinity.
//!
//! The ROADMAP's "async backend", hand-rolled because the build is
//! offline (no tokio, and the vendored crossbeam has no `Select`): each
//! actor owns a mailbox (`Mutex<VecDeque>` + a `scheduled` bit) and the
//! indices of actors with undelivered mail circulate through per-worker
//! run queues. Workers pop an index, drain that mailbox, step the actor,
//! and route its outputs — the classic epoll/ready-list shape, with the
//! mailbox bit playing the role of edge-triggered readiness (an actor is
//! enqueued exactly once per busy period, never concurrently stepped).
//!
//! # Placement
//!
//! Every actor has a *home worker*. Replica actors are **pinned**: a
//! whole group (primary + backups) homes on `group % workers`, its ready
//! tokens go only to that worker's private pinned queue, and only that
//! worker ever pops them — so a partition's scheduler, engine, and
//! group-commit sequencer run on one core for the life of the run (cache
//! residency for the hot single-partition path, and no cross-core
//! migration of engine state). Clients, coordinator shards, and the
//! membership actor are **stealable**: their tokens go to their home
//! worker's shared queue, but any worker whose own queues are empty may
//! steal them, keeping the pool busy when client load is skewed.
//!
//! # Parking
//!
//! An idle worker *parks* on a condvar instead of spinning: it raises its
//! `parked` flag, re-checks every queue it may pop from (the Dekker-style
//! re-check that closes the sleep/wake race), and only then waits. A
//! sender wakes the home worker for pinned work, or the home-else-any
//! parked worker for stealable work. Client backoff ticks are gated on
//! [`RunControl::backoff_waiters`], so a quiescent system delivers no
//! messages at all and every worker stays parked — the no-busy-spin
//! invariant `loops ≤ steps + parks (+ startup slack)` that the idle soak
//! test asserts.
//!
//! Per-actor cost is two mutex hops per message instead of a parked
//! thread per actor, so thread count and stack memory stay flat as
//! clients grow. Mailbox FIFO order per link preserves the delivery
//! guarantee the speculation protocol needs.
//!
//! Replica groups occupy `replication` slab slots per partition; the
//! logical [`ActorId::Partition`] address resolves through a membership
//! table of atomics, flipped by the coordinator's [`ActorId::Control`]
//! message on failover (inside the sender's routing pass, so the
//! promotion is in the new primary's mailbox before any redirected
//! traffic).
//!
//! Quiescence (shutdown without losing in-flight decisions) uses a global
//! undelivered-message count: a worker decrements it only *after* routing
//! the outputs of the message it consumed, so `live_clients == 0 &&
//! pending == 0` proves the run has fully drained — including a
//! kill → promote → recover chain, which is itself just messages. The
//! count stays a *single* padded atomic on purpose: sharding it would
//! admit transient zero reads and a false quiescence.

use crate::actors::{
    ActorId, ClientActor, ClientCtx, CoordinatorActor, MembershipActor, Msg, OutMsg, ReplicaActor,
    ReplicaParts, RunControl,
};
use crate::{
    assemble_replicas, finish_report, now_ns, Backend, RunMode, RuntimeConfig, RuntimeReport,
    WorkerStats,
};
use hcc_common::stats::SequencerStats;
use hcc_common::{CachePadded, ClientId, CoordinatorId, PartitionId, Scheme};
use hcc_core::client::ClientStats;
use hcc_core::{ExecutionEngine, RequestGenerator};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Mailbox<E: ExecutionEngine> {
    queue: VecDeque<Msg<E>>,
    /// True while the actor is in a run queue or being stepped; the
    /// single-enqueuer invariant that keeps an actor on one worker at a
    /// time.
    scheduled: bool,
}

enum AnyActor<W: RequestGenerator> {
    // Clients dominate the slab at scale; boxing them (and the now
    // role-carrying replicas) keeps every slot at the small variants'
    // size.
    Client(Box<ClientActor<W>>),
    Coordinator(Box<CoordinatorActor<W::Engine>>),
    Membership(Box<MembershipActor>),
    Replica(Box<ReplicaActor<W::Engine>>),
}

/// Condvar-based sleep/wake with a sticky token, so a wake that lands
/// before the sleeper reaches `wait` is never lost.
struct Parker {
    lock: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

impl Parker {
    fn new() -> Self {
        Parker {
            lock: std::sync::Mutex::new(false),
            cv: std::sync::Condvar::new(),
        }
    }

    fn wake(&self) {
        let mut token = self.lock.lock().expect("parker poisoned");
        *token = true;
        self.cv.notify_one();
    }

    fn park(&self) {
        let mut token = self.lock.lock().expect("parker poisoned");
        while !*token {
            token = self.cv.wait(token).expect("parker poisoned");
        }
        *token = false;
    }
}

/// One worker's scheduling state. Padded as a unit: a worker hammers its
/// own queues and flag; neighbours must not ride the same line.
struct WorkerState {
    /// Ready tokens for replica actors homed here. Only this worker pops.
    pinned: Mutex<VecDeque<usize>>,
    /// Ready tokens for stealable actors homed here. Any worker may pop.
    shared: Mutex<VecDeque<usize>>,
    /// Raised before the pre-park re-check; a waker that swaps it off
    /// owns the wake.
    parked: AtomicBool,
    parker: Parker,
    /// Flushed once by the worker thread as it exits.
    stats: Mutex<WorkerStats>,
}

impl WorkerState {
    fn new() -> Self {
        WorkerState {
            pinned: Mutex::new(VecDeque::new()),
            shared: Mutex::new(VecDeque::new()),
            parked: AtomicBool::new(false),
            parker: Parker::new(),
            stats: Mutex::new(WorkerStats::default()),
        }
    }
}

struct Shared<W: RequestGenerator> {
    actors: Vec<CachePadded<Mutex<AnyActor<W>>>>,
    mail: Vec<CachePadded<Mutex<Mailbox<W::Engine>>>>,
    workers: Vec<CachePadded<WorkerState>>,
    /// Messages sent but not yet fully processed (outputs routed). A
    /// single padded atomic — see the module docs on quiescence.
    pending: CachePadded<AtomicU64>,
    /// Set by the driver once `pending` hits zero; parked workers exit.
    shutdown: AtomicBool,
    ctl: RunControl,
    workload: Mutex<W>,
    epoch: Instant,
    /// Actor-index layout: clients, then the coordinator shards, then the
    /// membership actor, then replica groups (`replication` slots each,
    /// group-major).
    clients: usize,
    coordinators: usize,
    slots_per_group: usize,
    /// Current primary slot per group.
    membership: Vec<CachePadded<AtomicU32>>,
}

impl<W: RequestGenerator> Shared<W>
where
    W::Engine: Send + 'static,
    <W::Engine as ExecutionEngine>::Fragment: Send,
    <W::Engine as ExecutionEngine>::Output: Send,
{
    fn replica_base(&self) -> usize {
        self.clients + self.coordinators + 1
    }

    fn replica_index(&self, p: PartitionId, slot: usize) -> usize {
        self.replica_base() + p.as_usize() * self.slots_per_group + slot
    }

    fn index_of(&self, id: ActorId) -> usize {
        match id {
            ActorId::Client(c) => c.as_usize(),
            ActorId::Coordinator(k) => self.clients + k.as_usize(),
            ActorId::Membership => self.clients + self.coordinators,
            ActorId::Partition(p) => {
                let slot = self.membership[p.as_usize()].load(Ordering::Acquire) as usize;
                self.replica_index(p, slot)
            }
            ActorId::Replica(p, s) => self.replica_index(p, s as usize),
            ActorId::Control => unreachable!("control messages are handled in send()"),
        }
    }

    /// Home worker and pinned-ness of an actor index. Replica groups pin
    /// group-major so every slot of a group (primary and backups, across
    /// failovers) shares one home; everything else hashes round-robin and
    /// is stealable.
    fn placement(&self, idx: usize) -> (usize, bool) {
        let base = self.replica_base();
        if idx >= base {
            (
                ((idx - base) / self.slots_per_group) % self.workers.len(),
                true,
            )
        } else {
            (idx % self.workers.len(), false)
        }
    }

    /// Deliver one message: count it, enqueue it, and schedule the actor
    /// if nothing else already has. Control messages mutate the routing
    /// table in place instead of being delivered.
    fn send(&self, m: OutMsg<W::Engine>) {
        if m.dest == ActorId::Control {
            if let Msg::Promoted { partition, slot } = m.msg {
                self.membership[partition.as_usize()].store(slot, Ordering::Release);
            }
            return;
        }
        let idx = self.index_of(m.dest);
        self.pending.fetch_add(1, Ordering::SeqCst);
        let mut mb = self.mail[idx].lock();
        mb.queue.push_back(m.msg);
        if !mb.scheduled {
            mb.scheduled = true;
            drop(mb);
            self.schedule(idx);
        }
    }

    /// Publish a ready token to the actor's home queue and wake a worker
    /// that can pop it.
    fn schedule(&self, idx: usize) {
        let (home, pinned) = self.placement(idx);
        if pinned {
            self.workers[home].pinned.lock().push_back(idx);
            self.wake(home);
        } else {
            self.workers[home].shared.lock().push_back(idx);
            // Prefer the home worker (affinity), else hand the wake to
            // any parked worker — stealable work shouldn't wait behind a
            // busy home while siblings sleep.
            if !self.wake(home) {
                for w in 0..self.workers.len() {
                    if w != home && self.wake(w) {
                        break;
                    }
                }
            }
        }
    }

    /// Wake worker `w` if it is parked (or about to park). Returns true
    /// if this call owned the wake.
    fn wake(&self, w: usize) -> bool {
        let ws = &self.workers[w];
        if ws.parked.swap(false, Ordering::SeqCst) {
            ws.parker.wake();
            true
        } else {
            false
        }
    }

    /// Pop the next actor index worker `me` may run: own pinned, own
    /// shared, then steal from siblings' shared queues.
    fn next_ready(&self, me: usize, stats: &mut WorkerStats) -> Option<usize> {
        if let Some(idx) = self.workers[me].pinned.lock().pop_front() {
            return Some(idx);
        }
        if let Some(idx) = self.workers[me].shared.lock().pop_front() {
            return Some(idx);
        }
        let n = self.workers.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(idx) = self.workers[victim].shared.lock().pop_front() {
                stats.steals += 1;
                return Some(idx);
            }
        }
        None
    }

    /// Step one actor for one message, routing its outputs.
    fn process(&self, idx: usize, msg: Msg<W::Engine>, out: &mut Vec<OutMsg<W::Engine>>) {
        let now = now_ns(self.epoch);
        let mut actor = self.actors[idx].lock();
        match &mut *actor {
            AnyActor::Client(c) => {
                let ctx = ClientCtx {
                    workload: &self.workload,
                    ctl: &self.ctl,
                };
                c.step(msg, now, &ctx, out);
            }
            AnyActor::Coordinator(c) => c.step(msg, now, out),
            AnyActor::Membership(m) => m.step(msg, out),
            AnyActor::Replica(r) => r.step(msg, now, &self.ctl, out),
        }
    }

    /// Drain and step one scheduled actor, then unschedule or requeue it.
    fn run_actor(
        &self,
        idx: usize,
        batch: &mut Vec<Msg<W::Engine>>,
        out: &mut Vec<OutMsg<W::Engine>>,
        stats: &mut WorkerStats,
    ) {
        // Drain the mailbox snapshot, then step message by message. The
        // consumed message stays in `pending` until its outputs are
        // routed — that ordering is what makes `pending == 0` mean
        // "fully drained".
        debug_assert!(batch.is_empty());
        batch.extend(self.mail[idx].lock().queue.drain(..));
        let pinned = idx >= self.replica_base();
        for msg in batch.drain(..) {
            self.process(idx, msg, out);
            for m in out.drain(..) {
                self.send(m);
            }
            self.pending.fetch_sub(1, Ordering::SeqCst);
            stats.steps += 1;
            if pinned {
                stats.pinned_steps += 1;
            }
        }
        // Unschedule, or requeue if mail arrived while we were stepping
        // (requeued to the actor's *home*, preserving affinity; the
        // round-robin push_back keeps it fair).
        let mut mb = self.mail[idx].lock();
        if mb.queue.is_empty() {
            mb.scheduled = false;
        } else {
            drop(mb);
            self.schedule(idx);
        }
    }
}

fn worker_loop<W>(shared: &Shared<W>, me: usize)
where
    W: RequestGenerator,
    W::Engine: Send + 'static,
    <W::Engine as ExecutionEngine>::Fragment: Send,
    <W::Engine as ExecutionEngine>::Output: Send,
{
    let ws = &shared.workers[me];
    let mut out = Vec::new();
    let mut batch = Vec::new();
    let mut stats = WorkerStats::default();
    loop {
        stats.loops += 1;
        if let Some(idx) = shared.next_ready(me, &mut stats) {
            let busy = Instant::now();
            shared.run_actor(idx, &mut batch, &mut out, &mut stats);
            stats.busy_ns += busy.elapsed().as_nanos() as u64;
            continue;
        }
        // Nothing runnable: raise the parked flag *first*, then re-check
        // every queue. A sender either sees the flag (and wakes us) or
        // published its token before we re-checked (and we find it) —
        // never neither.
        ws.parked.store(true, Ordering::SeqCst);
        if let Some(idx) = shared.next_ready(me, &mut stats) {
            ws.parked.store(false, Ordering::SeqCst);
            let busy = Instant::now();
            shared.run_actor(idx, &mut batch, &mut out, &mut stats);
            stats.busy_ns += busy.elapsed().as_nanos() as u64;
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            ws.parked.store(false, Ordering::SeqCst);
            break;
        }
        stats.parks += 1;
        ws.parker.park();
        // Either a waker claimed our flag (it is already false) or the
        // shutdown broadcast left it raised; clear it and rescan.
        ws.parked.store(false, Ordering::SeqCst);
    }
    *ws.stats.lock() = stats;
}

/// All actors multiplexed onto a pool of worker threads with partition
/// affinity. `workers == 0` means auto: `SystemConfig::resolved_workers`
/// (the `workers` knob, else available parallelism).
#[derive(Default)]
pub struct MultiplexedBackend {
    pub workers: usize,
}

impl Backend for MultiplexedBackend {
    fn run<W, B>(
        &self,
        cfg: &RuntimeConfig,
        workload: W,
        build_engine: B,
    ) -> RuntimeReport<W::Engine>
    where
        W: RequestGenerator + Send + 'static,
        W::Engine: Send + 'static,
        <W::Engine as ExecutionEngine>::Fragment: Send + 'static,
        <W::Engine as ExecutionEngine>::Output: Send + 'static,
        B: Fn(PartitionId) -> W::Engine,
    {
        let system = &cfg.system;
        if let Err(e) = system.validate() {
            panic!("invalid SystemConfig: {e}");
        }
        // Explicit backend choice wins, then the system config knob, then
        // the host's available parallelism.
        let workers = if self.workers > 0 {
            self.workers
        } else {
            system.resolved_workers()
        };
        let n = system.partitions as usize;
        let slots = system.replication.max(1) as usize;
        let clients = system.clients as usize;
        if let Some(plan) = cfg.failure {
            assert!(
                system.replication >= 2,
                "failure injection needs a backup to fail over to"
            );
            assert!((plan.partition.as_usize()) < n && plan.after_commits >= 1);
        }
        let per_client = match cfg.mode {
            RunMode::FixedRequests(k) => Some(k),
            RunMode::Timed { .. } => None,
        };

        // Actor slab: clients, coordinator shards, membership, replica
        // groups.
        let mut actors: Vec<CachePadded<Mutex<AnyActor<W>>>> = Vec::new();
        for c in 0..clients {
            actors.push(CachePadded::new(Mutex::new(AnyActor::Client(Box::new(
                ClientActor::new(ClientId(c as u32), system, per_client),
            )))));
        }
        let shards = system.coordinators.max(1) as usize;
        let track_in_doubt = cfg.failure.is_some();
        let seq_on = system.sequencing_active();
        let coord_expiry = (shards > 1 && !seq_on).then_some(system.lock_timeout);
        for k in 0..shards {
            let mut coord: CoordinatorActor<W::Engine> = CoordinatorActor::new(
                system.costs,
                CoordinatorId(k as u32),
                track_in_doubt,
                system.durability.is_some(),
                coord_expiry,
            );
            if seq_on {
                coord.enable_sequencing(system);
            }
            actors.push(CachePadded::new(Mutex::new(AnyActor::Coordinator(
                Box::new(coord),
            ))));
        }
        actors.push(CachePadded::new(Mutex::new(AnyActor::Membership(
            Box::new(MembershipActor::new(system.coordinators)),
        ))));
        for p in 0..n {
            let group = PartitionId(p as u32);
            for s in 0..slots {
                let crash_after = cfg
                    .failure
                    .filter(|f| f.partition == group && s == 0)
                    .map(|f| f.after_commits);
                actors.push(CachePadded::new(Mutex::new(AnyActor::Replica(Box::new(
                    ReplicaActor::new(group, s as u32, system, build_engine(group), crash_after),
                )))));
            }
        }

        let total = actors.len();
        let shared = Arc::new(Shared {
            mail: (0..total)
                .map(|_| {
                    CachePadded::new(Mutex::new(Mailbox {
                        queue: VecDeque::new(),
                        scheduled: false,
                    }))
                })
                .collect(),
            actors,
            workers: (0..workers)
                .map(|_| CachePadded::new(WorkerState::new()))
                .collect(),
            pending: CachePadded::new(AtomicU64::new(0)),
            shutdown: AtomicBool::new(false),
            ctl: RunControl::new(clients),
            workload: Mutex::new(workload),
            epoch: Instant::now(),
            clients,
            coordinators: shards,
            slots_per_group: slots,
            membership: (0..n)
                .map(|_| CachePadded::new(AtomicU32::new(0)))
                .collect(),
        });

        // Worker pool.
        let mut handles = Vec::new();
        for me in 0..workers {
            let shared = shared.clone();
            handles.push(std::thread::spawn(move || worker_loop(&shared, me)));
        }

        // Tick timer: the locking scheme needs periodic lock-timeout scans
        // at each group's current primary, and sharded coordinators need
        // periodic stall expiry (cross-shard deadlock resolution). Runs
        // until every client has retired (after which no transaction can
        // be waiting on a lock or a cross-shard chain).
        let timer_stop = Arc::new(AtomicBool::new(false));
        // An adaptive partition can be (or become) Locking at any time, so
        // it needs the lock-timeout scans too.
        let tick_partitions = system.scheme == Scheme::Locking
            || system.adaptive.is_on()
            || system.durability.is_some();
        // Sequencing coordinators tick too: epoch age-closes ride Tick.
        let tick_coords = shards > 1 || seq_on;
        // Clients park during backoff retries (infrastructure aborts) and
        // need a wake-up tick; only configurations that can produce such
        // aborts pay for the ticking — and only while at least one client
        // is actually parked (`backoff_waiters`), so an idle system sends
        // nothing and the workers stay parked.
        let tick_clients = system.replication > 1 || shards > 1 || system.durability.is_some();
        let timer = (tick_partitions || tick_coords || tick_clients).then(|| {
            let shared = shared.clone();
            let stop = timer_stop.clone();
            let mut tick_nanos = system.lock_timeout.0 / 4;
            if let Some(d) = system.durability {
                // Group-commit flushes ride the same timer; tick at least
                // twice per interval so batch latency stays near the knob.
                tick_nanos = tick_nanos.min(d.group_commit_interval.0 / 2);
            }
            if seq_on {
                // Epoch age-closes fire at half the max delay so a lone
                // buffered invoke never waits much past its deadline.
                tick_nanos = tick_nanos.min(system.sequencing.max_delay().0 / 2);
            }
            let tick_every = Duration::from_nanos(tick_nanos).max(
                // Don't busy-spin on sub-microsecond timeouts.
                Duration::from_micros(100),
            );
            let parts = n;
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(tick_every);
                    if tick_partitions {
                        for p in 0..parts {
                            shared.send(OutMsg {
                                dest: ActorId::Partition(PartitionId(p as u32)),
                                msg: Msg::Tick,
                            });
                        }
                    }
                    if tick_coords {
                        for k in 0..shards {
                            shared.send(OutMsg {
                                dest: ActorId::Coordinator(CoordinatorId(k as u32)),
                                msg: Msg::Tick,
                            });
                        }
                    }
                    if tick_clients && shared.ctl.backoff_waiters() > 0 {
                        for c in 0..shared.clients {
                            shared.send(OutMsg {
                                dest: ActorId::Client(ClientId(c as u32)),
                                msg: Msg::Tick,
                            });
                        }
                    }
                }
            })
        });

        // Kick every client.
        for c in 0..clients {
            shared.send(OutMsg {
                dest: ActorId::Client(ClientId(c as u32)),
                msg: Msg::Start,
            });
        }

        // Measurement protocol.
        let started = Instant::now();
        if let RunMode::Timed { warmup, measure } = cfg.mode {
            std::thread::sleep(warmup);
            shared.ctl.window_open.store(true, Ordering::SeqCst);
            std::thread::sleep(measure);
            shared.ctl.window_open.store(false, Ordering::SeqCst);
            shared.ctl.stop.store(true, Ordering::SeqCst);
        }
        // Clients finish their in-flight transactions and retire.
        while shared.ctl.live_clients.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        let elapsed = started.elapsed();
        // No transactions in flight: stop the tick source, then drain the
        // trailing decisions, commit records, and (after an injected
        // failure) the promote/recover chain — all of which the pending
        // count covers.
        timer_stop.store(true, Ordering::SeqCst);
        if let Some(t) = timer {
            t.join().expect("timer thread");
        }
        while shared.pending.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        if cfg.failure.is_some() {
            assert!(
                shared.ctl.recovery_done.load(Ordering::SeqCst),
                "injected failure never finished recovering — \
                 was the crash threshold reachable for this workload?"
            );
        }
        shared.shutdown.store(true, Ordering::SeqCst);
        for ws in &shared.workers {
            ws.parker.wake();
        }
        for h in handles {
            h.join().expect("worker thread");
        }

        // Harvest.
        let committed_in_window = shared.ctl.committed_in_window();
        let shared =
            Arc::try_unwrap(shared).unwrap_or_else(|_| unreachable!("all worker handles joined"));
        let worker_stats: Vec<WorkerStats> =
            shared.workers.iter().map(|ws| *ws.stats.lock()).collect();
        let mut clients_stats = ClientStats::default();
        let mut sequencer = SequencerStats::default();
        let mut parts: Vec<ReplicaParts<W::Engine>> = Vec::new();
        for slot in shared.actors {
            match slot.into_inner().into_inner() {
                AnyActor::Client(c) => clients_stats.merge(&c.into_stats()),
                AnyActor::Coordinator(c) => sequencer.merge(&c.seq_stats()),
                AnyActor::Membership(_) => {}
                AnyActor::Replica(r) => parts.push(r.into_parts()),
            }
        }
        let (engines, backups, sched, repl, dur, logs, part_seq, adaptive) =
            assemble_replicas(parts, n);
        sequencer.merge(&part_seq);

        finish_report(
            &cfg.mode,
            committed_in_window,
            elapsed,
            clients_stats,
            sched,
            repl,
            engines,
            backups,
            dur,
            logs,
            worker_stats,
            sequencer,
            adaptive,
        )
    }
}
