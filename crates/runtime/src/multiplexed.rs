//! Multiplexed reactor backend: every actor on a small fixed worker pool.
//!
//! The ROADMAP's "async backend", hand-rolled because the build is
//! offline (no tokio, and the vendored crossbeam has no `Select`): each
//! actor owns a mailbox (`Mutex<VecDeque>` + a `scheduled` bit) and a
//! shared MPMC ready queue carries the indices of actors with undelivered
//! mail. Workers pop an index, drain that mailbox, step the actor, and
//! route its outputs — the classic epoll/ready-list shape, with the
//! mailbox bit playing the role of edge-triggered readiness (an actor is
//! enqueued exactly once per busy period, never concurrently stepped).
//!
//! Per-actor cost is two mutex hops per message instead of a parked
//! thread per actor, so thread count and stack memory stay flat as
//! clients grow: 512 or 4096 closed-loop clients run on the same
//! `workers` threads. Mailbox FIFO order per link preserves the delivery
//! guarantee the speculation protocol needs.
//!
//! Quiescence (shutdown without losing in-flight decisions) uses a global
//! undelivered-message count: a worker decrements it only *after* routing
//! the outputs of the message it consumed, so `live_clients == 0 &&
//! pending == 0` proves the run has fully drained.

use crate::actors::{
    ActorId, BackupActor, ClientActor, ClientCtx, CoordinatorActor, Msg, OutMsg, PartitionActor,
    RunControl,
};
use crate::{finish_report, now_ns, Backend, RunMode, RuntimeConfig, RuntimeReport};
use crossbeam::channel::{unbounded, Receiver, Sender};
use hcc_common::stats::SchedulerCounters;
use hcc_common::{ClientId, PartitionId, Scheme};
use hcc_core::client::ClientStats;
use hcc_core::{ExecutionEngine, RequestGenerator};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Standard pool size: enough to overlap partition work with coordinator
/// and client bookkeeping on a few cores without oversubscribing small
/// hosts.
pub const DEFAULT_WORKERS: usize = 4;

/// Ready-queue sentinel that tells a worker to exit (and re-send the
/// sentinel for its siblings).
const SHUTDOWN: usize = usize::MAX;

struct Mailbox<E: ExecutionEngine> {
    queue: VecDeque<Msg<E>>,
    /// True while the actor is in the ready queue or being stepped; the
    /// single-enqueuer invariant that keeps an actor on one worker at a
    /// time.
    scheduled: bool,
}

enum AnyActor<W: RequestGenerator> {
    // Clients dominate the slab at scale; boxing them keeps every slot at
    // the small variants' size.
    Client(Box<ClientActor<W>>),
    Coordinator(CoordinatorActor<W::Engine>),
    Partition(PartitionActor<W::Engine>),
    Backup(BackupActor<W::Engine>),
}

struct Shared<W: RequestGenerator> {
    actors: Vec<Mutex<AnyActor<W>>>,
    mail: Vec<Mutex<Mailbox<W::Engine>>>,
    ready_tx: Sender<usize>,
    /// Messages sent but not yet fully processed (outputs routed).
    pending: AtomicU64,
    ctl: RunControl,
    workload: Mutex<W>,
    epoch: Instant,
    /// Actor-index layout: clients, then the coordinator, then partitions,
    /// then (under replication) backups.
    clients: usize,
    partitions: usize,
}

impl<W: RequestGenerator> Shared<W>
where
    W::Engine: Send + 'static,
    <W::Engine as ExecutionEngine>::Fragment: Send,
    <W::Engine as ExecutionEngine>::Output: Send,
{
    fn index_of(&self, id: ActorId) -> usize {
        match id {
            ActorId::Client(c) => c.as_usize(),
            ActorId::Coordinator => self.clients,
            ActorId::Partition(p) => self.clients + 1 + p.as_usize(),
            ActorId::Backup(p) => self.clients + 1 + self.partitions + p.as_usize(),
        }
    }

    /// Deliver one message: count it, enqueue it, and schedule the actor
    /// if nothing else already has.
    fn send(&self, m: OutMsg<W::Engine>) {
        let idx = self.index_of(m.dest);
        self.pending.fetch_add(1, Ordering::SeqCst);
        let mut mb = self.mail[idx].lock();
        mb.queue.push_back(m.msg);
        if !mb.scheduled {
            mb.scheduled = true;
            drop(mb);
            let _ = self.ready_tx.send(idx);
        }
    }

    /// Step one actor for one message, routing its outputs.
    fn process(&self, idx: usize, msg: Msg<W::Engine>, out: &mut Vec<OutMsg<W::Engine>>) {
        let now = now_ns(self.epoch);
        let mut actor = self.actors[idx].lock();
        match &mut *actor {
            AnyActor::Client(c) => {
                let ctx = ClientCtx {
                    workload: &self.workload,
                    ctl: &self.ctl,
                };
                c.step(msg, now, &ctx, out);
            }
            AnyActor::Coordinator(c) => c.step(msg, now, out),
            AnyActor::Partition(p) => p.step(msg, now, out),
            AnyActor::Backup(b) => b.step(msg, now, out),
        }
    }
}

fn worker<W>(shared: Arc<Shared<W>>, ready_rx: Receiver<usize>)
where
    W: RequestGenerator,
    W::Engine: Send + 'static,
    <W::Engine as ExecutionEngine>::Fragment: Send,
    <W::Engine as ExecutionEngine>::Output: Send,
{
    let mut out = Vec::new();
    let mut batch = Vec::new();
    while let Ok(idx) = ready_rx.recv() {
        if idx == SHUTDOWN {
            // Pass the sentinel on so every sibling sees it too.
            let _ = shared.ready_tx.send(SHUTDOWN);
            break;
        }
        // Drain the mailbox snapshot, then step message by message. The
        // consumed message stays in `pending` until its outputs are
        // routed — that ordering is what makes `pending == 0` mean
        // "fully drained".
        debug_assert!(batch.is_empty());
        batch.extend(shared.mail[idx].lock().queue.drain(..));
        for msg in batch.drain(..) {
            shared.process(idx, msg, &mut out);
            for m in out.drain(..) {
                shared.send(m);
            }
            shared.pending.fetch_sub(1, Ordering::SeqCst);
        }
        // Unschedule, or requeue if mail arrived while we were stepping
        // (round-robin fairness: the actor goes to the back of the line).
        let mut mb = shared.mail[idx].lock();
        if mb.queue.is_empty() {
            mb.scheduled = false;
        } else {
            drop(mb);
            let _ = shared.ready_tx.send(idx);
        }
    }
}

/// All actors multiplexed onto `workers` threads.
pub struct MultiplexedBackend {
    pub workers: usize,
}

impl Default for MultiplexedBackend {
    fn default() -> Self {
        MultiplexedBackend {
            workers: DEFAULT_WORKERS,
        }
    }
}

impl Backend for MultiplexedBackend {
    fn run<W, B>(
        &self,
        cfg: &RuntimeConfig,
        workload: W,
        build_engine: B,
    ) -> RuntimeReport<W::Engine>
    where
        W: RequestGenerator + Send + 'static,
        W::Engine: Send + 'static,
        <W::Engine as ExecutionEngine>::Fragment: Send + 'static,
        <W::Engine as ExecutionEngine>::Output: Send + 'static,
        B: Fn(PartitionId) -> W::Engine,
    {
        let system = &cfg.system;
        let workers = self.workers.max(1);
        let n = system.partitions as usize;
        let clients = system.clients as usize;
        let replicate = system.replication > 1;
        let per_client = match cfg.mode {
            RunMode::FixedRequests(k) => Some(k),
            RunMode::Timed { .. } => None,
        };

        // Actor slab: clients, coordinator, partitions, backups.
        let mut actors: Vec<Mutex<AnyActor<W>>> = Vec::new();
        for c in 0..clients {
            actors.push(Mutex::new(AnyActor::Client(Box::new(ClientActor::new(
                ClientId(c as u32),
                system,
                per_client,
            )))));
        }
        actors.push(Mutex::new(AnyActor::Coordinator(CoordinatorActor::new(
            system.costs,
        ))));
        for p in 0..n {
            let me = PartitionId(p as u32);
            actors.push(Mutex::new(AnyActor::Partition(PartitionActor::new(
                me,
                system,
                build_engine(me),
                replicate,
            ))));
        }
        if replicate {
            for p in 0..n {
                actors.push(Mutex::new(AnyActor::Backup(BackupActor::new(
                    build_engine(PartitionId(p as u32)),
                ))));
            }
        }

        let (ready_tx, ready_rx) = unbounded::<usize>();
        let total = actors.len();
        let shared = Arc::new(Shared {
            mail: (0..total)
                .map(|_| {
                    Mutex::new(Mailbox {
                        queue: VecDeque::new(),
                        scheduled: false,
                    })
                })
                .collect(),
            actors,
            ready_tx,
            pending: AtomicU64::new(0),
            ctl: RunControl::new(clients),
            workload: Mutex::new(workload),
            epoch: Instant::now(),
            clients,
            partitions: n,
        });

        // Worker pool.
        let mut handles = Vec::new();
        for _ in 0..workers {
            let shared = shared.clone();
            let rx = ready_rx.clone();
            handles.push(std::thread::spawn(move || worker(shared, rx)));
        }

        // Tick timer: the locking scheme needs periodic lock-timeout scans
        // at each partition. Runs until every client has retired (after
        // which no transaction can be waiting on a lock).
        let timer_stop = Arc::new(AtomicBool::new(false));
        let timer = (system.scheme == Scheme::Locking).then(|| {
            let shared = shared.clone();
            let stop = timer_stop.clone();
            let tick_every = Duration::from_nanos(system.lock_timeout.0 / 4).max(
                // Don't busy-spin on sub-microsecond timeouts.
                Duration::from_micros(100),
            );
            let parts = n;
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(tick_every);
                    for p in 0..parts {
                        shared.send(OutMsg {
                            dest: ActorId::Partition(PartitionId(p as u32)),
                            msg: Msg::Tick,
                        });
                    }
                }
            })
        });

        // Kick every client.
        for c in 0..clients {
            shared.send(OutMsg {
                dest: ActorId::Client(ClientId(c as u32)),
                msg: Msg::Start,
            });
        }

        // Measurement protocol.
        let started = Instant::now();
        if let RunMode::Timed { warmup, measure } = cfg.mode {
            std::thread::sleep(warmup);
            shared.ctl.window_open.store(true, Ordering::SeqCst);
            std::thread::sleep(measure);
            shared.ctl.window_open.store(false, Ordering::SeqCst);
            shared.ctl.stop.store(true, Ordering::SeqCst);
        }
        // Clients finish their in-flight transactions and retire.
        while shared.ctl.live_clients.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        let elapsed = started.elapsed();
        // No transactions in flight: stop the tick source, then drain the
        // trailing decisions/backup commits.
        timer_stop.store(true, Ordering::SeqCst);
        if let Some(t) = timer {
            t.join().expect("timer thread");
        }
        while shared.pending.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        let _ = shared.ready_tx.send(SHUTDOWN);
        for h in handles {
            h.join().expect("worker thread");
        }
        drop(ready_rx);

        // Harvest.
        let committed_in_window = shared.ctl.committed_in_window.load(Ordering::SeqCst);
        let shared =
            Arc::try_unwrap(shared).unwrap_or_else(|_| unreachable!("all worker handles joined"));
        let mut clients_stats = ClientStats::default();
        let mut sched = SchedulerCounters::default();
        let mut engines = Vec::new();
        let mut backups = Vec::new();
        for slot in shared.actors {
            match slot.into_inner() {
                AnyActor::Client(c) => clients_stats.merge(&c.into_stats()),
                AnyActor::Coordinator(_) => {}
                AnyActor::Partition(p) => {
                    let (engine, counters) = p.into_parts();
                    engines.push(engine);
                    sched.merge(&counters);
                }
                AnyActor::Backup(b) => backups.push(b.into_engine()),
            }
        }

        finish_report(
            &cfg.mode,
            committed_in_window,
            elapsed,
            clients_stats,
            sched,
            engines,
            backups,
        )
    }
}
