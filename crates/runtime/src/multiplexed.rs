//! Multiplexed reactor backend: every actor on a small fixed worker pool.
//!
//! The ROADMAP's "async backend", hand-rolled because the build is
//! offline (no tokio, and the vendored crossbeam has no `Select`): each
//! actor owns a mailbox (`Mutex<VecDeque>` + a `scheduled` bit) and a
//! shared MPMC ready queue carries the indices of actors with undelivered
//! mail. Workers pop an index, drain that mailbox, step the actor, and
//! route its outputs — the classic epoll/ready-list shape, with the
//! mailbox bit playing the role of edge-triggered readiness (an actor is
//! enqueued exactly once per busy period, never concurrently stepped).
//!
//! Per-actor cost is two mutex hops per message instead of a parked
//! thread per actor, so thread count and stack memory stay flat as
//! clients grow: 512 or 4096 closed-loop clients run on the same
//! `workers` threads. Mailbox FIFO order per link preserves the delivery
//! guarantee the speculation protocol needs.
//!
//! Replica groups occupy `replication` slab slots per partition; the
//! logical [`ActorId::Partition`] address resolves through a membership
//! table of atomics, flipped by the coordinator's [`ActorId::Control`]
//! message on failover (inside the sender's routing pass, so the
//! promotion is in the new primary's mailbox before any redirected
//! traffic).
//!
//! Quiescence (shutdown without losing in-flight decisions) uses a global
//! undelivered-message count: a worker decrements it only *after* routing
//! the outputs of the message it consumed, so `live_clients == 0 &&
//! pending == 0` proves the run has fully drained — including a
//! kill → promote → recover chain, which is itself just messages.

use crate::actors::{
    ActorId, ClientActor, ClientCtx, CoordinatorActor, MembershipActor, Msg, OutMsg, ReplicaActor,
    ReplicaParts, RunControl,
};
use crate::{
    assemble_replicas, finish_report, now_ns, Backend, RunMode, RuntimeConfig, RuntimeReport,
};
use crossbeam::channel::{unbounded, Receiver, Sender};
use hcc_common::{ClientId, CoordinatorId, PartitionId, Scheme};
use hcc_core::client::ClientStats;
use hcc_core::{ExecutionEngine, RequestGenerator};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Standard pool size: enough to overlap partition work with coordinator
/// and client bookkeeping on a few cores without oversubscribing small
/// hosts.
pub const DEFAULT_WORKERS: usize = 4;

/// Ready-queue sentinel that tells a worker to exit (and re-send the
/// sentinel for its siblings).
const SHUTDOWN: usize = usize::MAX;

struct Mailbox<E: ExecutionEngine> {
    queue: VecDeque<Msg<E>>,
    /// True while the actor is in the ready queue or being stepped; the
    /// single-enqueuer invariant that keeps an actor on one worker at a
    /// time.
    scheduled: bool,
}

enum AnyActor<W: RequestGenerator> {
    // Clients dominate the slab at scale; boxing them (and the now
    // role-carrying replicas) keeps every slot at the small variants'
    // size.
    Client(Box<ClientActor<W>>),
    Coordinator(Box<CoordinatorActor<W::Engine>>),
    Membership(Box<MembershipActor>),
    Replica(Box<ReplicaActor<W::Engine>>),
}

struct Shared<W: RequestGenerator> {
    actors: Vec<Mutex<AnyActor<W>>>,
    mail: Vec<Mutex<Mailbox<W::Engine>>>,
    ready_tx: Sender<usize>,
    /// Messages sent but not yet fully processed (outputs routed).
    pending: AtomicU64,
    ctl: RunControl,
    workload: Mutex<W>,
    epoch: Instant,
    /// Actor-index layout: clients, then the coordinator shards, then the
    /// membership actor, then replica groups (`replication` slots each,
    /// group-major).
    clients: usize,
    coordinators: usize,
    slots_per_group: usize,
    /// Current primary slot per group.
    membership: Vec<AtomicU32>,
}

impl<W: RequestGenerator> Shared<W>
where
    W::Engine: Send + 'static,
    <W::Engine as ExecutionEngine>::Fragment: Send,
    <W::Engine as ExecutionEngine>::Output: Send,
{
    fn replica_index(&self, p: PartitionId, slot: usize) -> usize {
        self.clients + self.coordinators + 1 + p.as_usize() * self.slots_per_group + slot
    }

    fn index_of(&self, id: ActorId) -> usize {
        match id {
            ActorId::Client(c) => c.as_usize(),
            ActorId::Coordinator(k) => self.clients + k.as_usize(),
            ActorId::Membership => self.clients + self.coordinators,
            ActorId::Partition(p) => {
                let slot = self.membership[p.as_usize()].load(Ordering::Acquire) as usize;
                self.replica_index(p, slot)
            }
            ActorId::Replica(p, s) => self.replica_index(p, s as usize),
            ActorId::Control => unreachable!("control messages are handled in send()"),
        }
    }

    /// Deliver one message: count it, enqueue it, and schedule the actor
    /// if nothing else already has. Control messages mutate the routing
    /// table in place instead of being delivered.
    fn send(&self, m: OutMsg<W::Engine>) {
        if m.dest == ActorId::Control {
            if let Msg::Promoted { partition, slot } = m.msg {
                self.membership[partition.as_usize()].store(slot, Ordering::Release);
            }
            return;
        }
        let idx = self.index_of(m.dest);
        self.pending.fetch_add(1, Ordering::SeqCst);
        let mut mb = self.mail[idx].lock();
        mb.queue.push_back(m.msg);
        if !mb.scheduled {
            mb.scheduled = true;
            drop(mb);
            let _ = self.ready_tx.send(idx);
        }
    }

    /// Step one actor for one message, routing its outputs.
    fn process(&self, idx: usize, msg: Msg<W::Engine>, out: &mut Vec<OutMsg<W::Engine>>) {
        let now = now_ns(self.epoch);
        let mut actor = self.actors[idx].lock();
        match &mut *actor {
            AnyActor::Client(c) => {
                let ctx = ClientCtx {
                    workload: &self.workload,
                    ctl: &self.ctl,
                };
                c.step(msg, now, &ctx, out);
            }
            AnyActor::Coordinator(c) => c.step(msg, now, out),
            AnyActor::Membership(m) => m.step(msg, out),
            AnyActor::Replica(r) => r.step(msg, now, &self.ctl, out),
        }
    }
}

fn worker<W>(shared: Arc<Shared<W>>, ready_rx: Receiver<usize>)
where
    W: RequestGenerator,
    W::Engine: Send + 'static,
    <W::Engine as ExecutionEngine>::Fragment: Send,
    <W::Engine as ExecutionEngine>::Output: Send,
{
    let mut out = Vec::new();
    let mut batch = Vec::new();
    while let Ok(idx) = ready_rx.recv() {
        if idx == SHUTDOWN {
            // Pass the sentinel on so every sibling sees it too.
            let _ = shared.ready_tx.send(SHUTDOWN);
            break;
        }
        // Drain the mailbox snapshot, then step message by message. The
        // consumed message stays in `pending` until its outputs are
        // routed — that ordering is what makes `pending == 0` mean
        // "fully drained".
        debug_assert!(batch.is_empty());
        batch.extend(shared.mail[idx].lock().queue.drain(..));
        for msg in batch.drain(..) {
            shared.process(idx, msg, &mut out);
            for m in out.drain(..) {
                shared.send(m);
            }
            shared.pending.fetch_sub(1, Ordering::SeqCst);
        }
        // Unschedule, or requeue if mail arrived while we were stepping
        // (round-robin fairness: the actor goes to the back of the line).
        let mut mb = shared.mail[idx].lock();
        if mb.queue.is_empty() {
            mb.scheduled = false;
        } else {
            drop(mb);
            let _ = shared.ready_tx.send(idx);
        }
    }
}

/// All actors multiplexed onto `workers` threads.
pub struct MultiplexedBackend {
    pub workers: usize,
}

impl Default for MultiplexedBackend {
    fn default() -> Self {
        MultiplexedBackend {
            workers: DEFAULT_WORKERS,
        }
    }
}

impl Backend for MultiplexedBackend {
    fn run<W, B>(
        &self,
        cfg: &RuntimeConfig,
        workload: W,
        build_engine: B,
    ) -> RuntimeReport<W::Engine>
    where
        W: RequestGenerator + Send + 'static,
        W::Engine: Send + 'static,
        <W::Engine as ExecutionEngine>::Fragment: Send + 'static,
        <W::Engine as ExecutionEngine>::Output: Send + 'static,
        B: Fn(PartitionId) -> W::Engine,
    {
        let system = &cfg.system;
        let workers = self.workers.max(1);
        let n = system.partitions as usize;
        let slots = system.replication.max(1) as usize;
        let clients = system.clients as usize;
        if let Some(plan) = cfg.failure {
            assert!(
                system.replication >= 2,
                "failure injection needs a backup to fail over to"
            );
            assert!((plan.partition.as_usize()) < n && plan.after_commits >= 1);
        }
        let per_client = match cfg.mode {
            RunMode::FixedRequests(k) => Some(k),
            RunMode::Timed { .. } => None,
        };

        // Actor slab: clients, coordinator, replica groups.
        let mut actors: Vec<Mutex<AnyActor<W>>> = Vec::new();
        for c in 0..clients {
            actors.push(Mutex::new(AnyActor::Client(Box::new(ClientActor::new(
                ClientId(c as u32),
                system,
                per_client,
            )))));
        }
        let shards = system.coordinators.max(1) as usize;
        let track_in_doubt = cfg.failure.is_some();
        let coord_expiry = (shards > 1).then_some(system.lock_timeout);
        for k in 0..shards {
            actors.push(Mutex::new(AnyActor::Coordinator(Box::new(
                CoordinatorActor::new(
                    system.costs,
                    CoordinatorId(k as u32),
                    track_in_doubt,
                    system.durability.is_some(),
                    coord_expiry,
                ),
            ))));
        }
        actors.push(Mutex::new(AnyActor::Membership(Box::new(
            MembershipActor::new(system.coordinators),
        ))));
        for p in 0..n {
            let group = PartitionId(p as u32);
            for s in 0..slots {
                let crash_after = cfg
                    .failure
                    .filter(|f| f.partition == group && s == 0)
                    .map(|f| f.after_commits);
                actors.push(Mutex::new(AnyActor::Replica(Box::new(ReplicaActor::new(
                    group,
                    s as u32,
                    system,
                    build_engine(group),
                    crash_after,
                )))));
            }
        }

        let (ready_tx, ready_rx) = unbounded::<usize>();
        let total = actors.len();
        let shared = Arc::new(Shared {
            mail: (0..total)
                .map(|_| {
                    Mutex::new(Mailbox {
                        queue: VecDeque::new(),
                        scheduled: false,
                    })
                })
                .collect(),
            actors,
            ready_tx,
            pending: AtomicU64::new(0),
            ctl: RunControl::new(clients),
            workload: Mutex::new(workload),
            epoch: Instant::now(),
            clients,
            coordinators: shards,
            slots_per_group: slots,
            membership: (0..n).map(|_| AtomicU32::new(0)).collect(),
        });

        // Worker pool.
        let mut handles = Vec::new();
        for _ in 0..workers {
            let shared = shared.clone();
            let rx = ready_rx.clone();
            handles.push(std::thread::spawn(move || worker(shared, rx)));
        }

        // Tick timer: the locking scheme needs periodic lock-timeout scans
        // at each group's current primary, and sharded coordinators need
        // periodic stall expiry (cross-shard deadlock resolution). Runs
        // until every client has retired (after which no transaction can
        // be waiting on a lock or a cross-shard chain).
        let timer_stop = Arc::new(AtomicBool::new(false));
        let tick_partitions = system.scheme == Scheme::Locking || system.durability.is_some();
        let tick_coords = shards > 1;
        // Clients park during backoff retries (infrastructure aborts) and
        // need a wake-up tick; only configurations that can produce such
        // aborts pay for the ticking.
        let tick_clients = system.replication > 1 || shards > 1 || system.durability.is_some();
        let timer = (tick_partitions || tick_coords || tick_clients).then(|| {
            let shared = shared.clone();
            let stop = timer_stop.clone();
            let mut tick_nanos = system.lock_timeout.0 / 4;
            if let Some(d) = system.durability {
                // Group-commit flushes ride the same timer; tick at least
                // twice per interval so batch latency stays near the knob.
                tick_nanos = tick_nanos.min(d.group_commit_interval.0 / 2);
            }
            let tick_every = Duration::from_nanos(tick_nanos).max(
                // Don't busy-spin on sub-microsecond timeouts.
                Duration::from_micros(100),
            );
            let parts = n;
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(tick_every);
                    if tick_partitions {
                        for p in 0..parts {
                            shared.send(OutMsg {
                                dest: ActorId::Partition(PartitionId(p as u32)),
                                msg: Msg::Tick,
                            });
                        }
                    }
                    if tick_coords {
                        for k in 0..shards {
                            shared.send(OutMsg {
                                dest: ActorId::Coordinator(CoordinatorId(k as u32)),
                                msg: Msg::Tick,
                            });
                        }
                    }
                    if tick_clients {
                        for c in 0..shared.clients {
                            shared.send(OutMsg {
                                dest: ActorId::Client(ClientId(c as u32)),
                                msg: Msg::Tick,
                            });
                        }
                    }
                }
            })
        });

        // Kick every client.
        for c in 0..clients {
            shared.send(OutMsg {
                dest: ActorId::Client(ClientId(c as u32)),
                msg: Msg::Start,
            });
        }

        // Measurement protocol.
        let started = Instant::now();
        if let RunMode::Timed { warmup, measure } = cfg.mode {
            std::thread::sleep(warmup);
            shared.ctl.window_open.store(true, Ordering::SeqCst);
            std::thread::sleep(measure);
            shared.ctl.window_open.store(false, Ordering::SeqCst);
            shared.ctl.stop.store(true, Ordering::SeqCst);
        }
        // Clients finish their in-flight transactions and retire.
        while shared.ctl.live_clients.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        let elapsed = started.elapsed();
        // No transactions in flight: stop the tick source, then drain the
        // trailing decisions, commit records, and (after an injected
        // failure) the promote/recover chain — all of which the pending
        // count covers.
        timer_stop.store(true, Ordering::SeqCst);
        if let Some(t) = timer {
            t.join().expect("timer thread");
        }
        while shared.pending.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        if cfg.failure.is_some() {
            assert!(
                shared.ctl.recovery_done.load(Ordering::SeqCst),
                "injected failure never finished recovering — \
                 was the crash threshold reachable for this workload?"
            );
        }
        let _ = shared.ready_tx.send(SHUTDOWN);
        for h in handles {
            h.join().expect("worker thread");
        }
        drop(ready_rx);

        // Harvest.
        let committed_in_window = shared.ctl.committed_in_window.load(Ordering::SeqCst);
        let shared =
            Arc::try_unwrap(shared).unwrap_or_else(|_| unreachable!("all worker handles joined"));
        let mut clients_stats = ClientStats::default();
        let mut parts: Vec<ReplicaParts<W::Engine>> = Vec::new();
        for slot in shared.actors {
            match slot.into_inner() {
                AnyActor::Client(c) => clients_stats.merge(&c.into_stats()),
                AnyActor::Coordinator(_) | AnyActor::Membership(_) => {}
                AnyActor::Replica(r) => parts.push(r.into_parts()),
            }
        }
        let (engines, backups, sched, repl, dur, logs) = assemble_replicas(parts, n);

        finish_report(
            &cfg.mode,
            committed_in_window,
            elapsed,
            clients_stats,
            sched,
            repl,
            engines,
            backups,
            dur,
            logs,
        )
    }
}
