//! Thread-per-actor backend: the paper's process model, literally.
//!
//! Every actor gets one OS thread parked on an unbounded crossbeam
//! channel; the thread's whole job is `recv → step → route`. Channels
//! preserve per-link FIFO order, which is the delivery guarantee the
//! speculation protocol needs. The protocol logic itself lives in
//! [`crate::actors`] — this file only moves messages.
//!
//! This backend has the lowest per-message overhead (no shared ready
//! queue, no mailbox locks beyond the channel's own) but costs
//! `clients + partitions + 1 (+ partitions backups)` threads, so it stops
//! scaling somewhere in the hundreds of clients; beyond that, use
//! [`crate::multiplexed`].

use crate::actors::{
    ActorId, BackupActor, ClientActor, ClientCtx, CoordinatorActor, Msg, OutMsg, PartitionActor,
    RunControl,
};
use crate::{finish_report, now_ns, Backend, RunMode, RuntimeConfig, RuntimeReport};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hcc_common::stats::SchedulerCounters;
use hcc_common::{ClientId, PartitionId, Scheme};
use hcc_core::client::ClientStats;
use hcc_core::{ExecutionEngine, RequestGenerator};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Control messages a driver injects alongside actor messages.
enum Wire<E: ExecutionEngine> {
    Actor(Msg<E>),
    Shutdown,
}

/// One sender per actor; routing is an index lookup.
struct Router<E: ExecutionEngine> {
    clients: Vec<Sender<Wire<E>>>,
    coord: Sender<Wire<E>>,
    parts: Vec<Sender<Wire<E>>>,
    backups: Vec<Option<Sender<Wire<E>>>>,
}

impl<E: ExecutionEngine> Clone for Router<E> {
    fn clone(&self) -> Self {
        Router {
            clients: self.clients.clone(),
            coord: self.coord.clone(),
            parts: self.parts.clone(),
            backups: self.backups.clone(),
        }
    }
}

impl<E: ExecutionEngine> Router<E> {
    /// Sends are fire-and-forget: a closed channel means the destination
    /// already shut down (only happens during teardown).
    fn send(&self, m: OutMsg<E>) {
        let _ = match m.dest {
            ActorId::Client(c) => self.clients[c.as_usize()].send(Wire::Actor(m.msg)),
            ActorId::Coordinator => self.coord.send(Wire::Actor(m.msg)),
            ActorId::Partition(p) => self.parts[p.as_usize()].send(Wire::Actor(m.msg)),
            ActorId::Backup(p) => match &self.backups[p.as_usize()] {
                Some(tx) => tx.send(Wire::Actor(m.msg)),
                None => Ok(()),
            },
        };
    }

    fn route(&self, buf: &mut Vec<OutMsg<E>>) {
        for m in buf.drain(..) {
            self.send(m);
        }
    }
}

/// One OS thread per actor.
pub struct ThreadedBackend;

impl Backend for ThreadedBackend {
    fn run<W, B>(
        &self,
        cfg: &RuntimeConfig,
        workload: W,
        build_engine: B,
    ) -> RuntimeReport<W::Engine>
    where
        W: RequestGenerator + Send + 'static,
        W::Engine: Send + 'static,
        <W::Engine as ExecutionEngine>::Fragment: Send + 'static,
        <W::Engine as ExecutionEngine>::Output: Send + 'static,
        B: Fn(PartitionId) -> W::Engine,
    {
        type E<W> = <W as RequestGenerator>::Engine;
        let system = &cfg.system;
        let n = system.partitions as usize;
        let replicate = system.replication > 1;
        let per_client = match cfg.mode {
            RunMode::FixedRequests(k) => Some(k),
            RunMode::Timed { .. } => None,
        };

        // Channels.
        let mut part_txs = Vec::new();
        let mut part_rxs = Vec::new();
        for _ in 0..n {
            let (tx, rx) = unbounded::<Wire<E<W>>>();
            part_txs.push(tx);
            part_rxs.push(rx);
        }
        let (coord_tx, coord_rx) = unbounded();
        let mut client_txs = Vec::new();
        let mut client_rxs = Vec::new();
        for _ in 0..system.clients {
            let (tx, rx) = unbounded::<Wire<E<W>>>();
            client_txs.push(tx);
            client_rxs.push(rx);
        }
        let mut backup_txs: Vec<Option<Sender<Wire<E<W>>>>> = vec![None; n];
        let mut backup_rxs = Vec::new();
        if replicate {
            for (p, slot) in backup_txs.iter_mut().enumerate() {
                let (tx, rx) = unbounded();
                *slot = Some(tx);
                backup_rxs.push((p, rx));
            }
        }
        let router: Router<E<W>> = Router {
            clients: client_txs,
            coord: coord_tx,
            parts: part_txs,
            backups: backup_txs,
        };

        let epoch = Instant::now();
        let ctl = Arc::new(RunControl::new(system.clients as usize));
        let workload = Arc::new(Mutex::new(workload));

        // Partition threads.
        let mut part_handles = Vec::new();
        for (p, rx) in part_rxs.into_iter().enumerate() {
            let me = PartitionId(p as u32);
            let actor = PartitionActor::new(me, system, build_engine(me), replicate);
            let router = router.clone();
            let tick_every = Duration::from_nanos(system.lock_timeout.0 / 4);
            let ticks = system.scheme == Scheme::Locking;
            part_handles.push(std::thread::spawn(move || {
                partition_thread(actor, rx, router, epoch, ticks, tick_every)
            }));
        }

        // Backup threads.
        let mut backup_handles = Vec::new();
        for (p, rx) in backup_rxs {
            let mut actor = BackupActor::new(build_engine(PartitionId(p as u32)));
            backup_handles.push(std::thread::spawn(move || {
                let mut sink = Vec::new();
                while let Ok(wire) = rx.recv() {
                    match wire {
                        Wire::Actor(msg) => actor.step(msg, hcc_common::Nanos::ZERO, &mut sink),
                        Wire::Shutdown => break,
                    }
                }
                actor.into_engine()
            }));
        }

        // Coordinator thread.
        let coord_handle = {
            let mut actor: CoordinatorActor<E<W>> = CoordinatorActor::new(system.costs);
            let router = router.clone();
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                while let Ok(wire) = coord_rx.recv() {
                    match wire {
                        Wire::Actor(msg) => {
                            actor.step(msg, now_ns(epoch), &mut buf);
                            router.route(&mut buf);
                        }
                        Wire::Shutdown => break,
                    }
                }
            })
        };

        // Client threads.
        let mut client_handles = Vec::new();
        for (c, rx) in client_rxs.into_iter().enumerate() {
            let mut actor: ClientActor<W> =
                ClientActor::new(ClientId(c as u32), system, per_client);
            let router = router.clone();
            let ctl = ctl.clone();
            let wl = workload.clone();
            client_handles.push(std::thread::spawn(move || {
                let ctx = ClientCtx {
                    workload: &wl,
                    ctl: &ctl,
                };
                let mut buf = Vec::new();
                while let Ok(wire) = rx.recv() {
                    match wire {
                        Wire::Actor(msg) => {
                            actor.step(msg, now_ns(epoch), &ctx, &mut buf);
                            router.route(&mut buf);
                            if actor.done() {
                                break;
                            }
                        }
                        Wire::Shutdown => break,
                    }
                }
                actor.into_stats()
            }));
        }

        // Kick every client.
        for tx in &router.clients {
            let _ = tx.send(Wire::Actor(Msg::Start));
        }

        // Measurement protocol.
        let started = Instant::now();
        if let RunMode::Timed { warmup, measure } = cfg.mode {
            std::thread::sleep(warmup);
            ctl.window_open.store(true, Ordering::SeqCst);
            std::thread::sleep(measure);
            ctl.window_open.store(false, Ordering::SeqCst);
            // Stop clients (each finishes its in-flight transaction first).
            ctl.stop.store(true, Ordering::SeqCst);
        }
        let mut clients = ClientStats::default();
        for h in client_handles {
            clients.merge(&h.join().expect("client thread"));
        }
        let elapsed = started.elapsed();
        let committed_in_window = ctl.committed_in_window.load(Ordering::SeqCst);

        // Quiesced: shut down coordinator, then partitions, then backups.
        // Channel FIFO ensures every message sent before a Shutdown is
        // processed first.
        let _ = router.coord.send(Wire::Shutdown);
        coord_handle.join().expect("coordinator thread");
        let mut engines = Vec::new();
        let mut sched = SchedulerCounters::default();
        for (p, h) in part_handles.into_iter().enumerate() {
            let _ = router.parts[p].send(Wire::Shutdown);
            let (engine, counters) = h.join().expect("partition thread");
            engines.push(engine);
            sched.merge(&counters);
        }
        let mut backups = Vec::new();
        for (p, h) in backup_handles.into_iter().enumerate() {
            if let Some(tx) = &router.backups[p] {
                let _ = tx.send(Wire::Shutdown);
            }
            backups.push(h.join().expect("backup thread"));
        }

        finish_report(
            &cfg.mode,
            committed_in_window,
            elapsed,
            clients,
            sched,
            engines,
            backups,
        )
    }
}

fn partition_thread<E>(
    mut actor: PartitionActor<E>,
    rx: Receiver<Wire<E>>,
    router: Router<E>,
    epoch: Instant,
    ticks: bool,
    tick_every: Duration,
) -> (E, SchedulerCounters)
where
    E: ExecutionEngine + Send + 'static,
    E::Fragment: Send,
    E::Output: Send,
{
    let mut buf = Vec::new();
    loop {
        let msg = if ticks {
            // The locking scheme needs periodic lock-timeout scans; a recv
            // timeout doubles as the tick timer.
            match rx.recv_timeout(tick_every) {
                Ok(Wire::Actor(m)) => m,
                Ok(Wire::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Timeout) => Msg::Tick,
            }
        } else {
            match rx.recv() {
                Ok(Wire::Actor(m)) => m,
                _ => break,
            }
        };
        actor.step(msg, now_ns(epoch), &mut buf);
        router.route(&mut buf);
    }
    actor.into_parts()
}
