//! Thread-per-actor backend: the paper's process model, literally.
//!
//! Every actor gets one OS thread parked on an unbounded crossbeam
//! channel; the thread's whole job is `recv → step → route`. Channels
//! preserve per-link FIFO order, which is the delivery guarantee the
//! speculation protocol needs. The protocol logic itself lives in
//! [`crate::actors`] — this file only moves messages.
//!
//! Replica groups get one thread per node (`replication` threads per
//! partition). Routing to the logical [`ActorId::Partition`] address goes
//! through a membership table of atomics that the coordinator flips (via
//! an [`ActorId::Control`] message) when it promotes a backup, so a
//! failover transparently redirects partition traffic.
//!
//! This backend has the lowest per-message overhead (no shared ready
//! queue, no mailbox locks beyond the channel's own) but costs
//! `clients + replication × partitions + 1` threads, so it stops scaling
//! somewhere in the hundreds of clients; beyond that, use
//! [`crate::multiplexed`].

use crate::actors::{
    ActorId, ClientActor, ClientCtx, CoordinatorActor, MembershipActor, Msg, OutMsg, ReplicaActor,
    ReplicaParts, RunControl,
};
use crate::{
    assemble_replicas, finish_report, now_ns, Backend, RunMode, RuntimeConfig, RuntimeReport,
};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hcc_common::stats::SequencerStats;
use hcc_common::{ClientId, CoordinatorId, PartitionId, Scheme};
use hcc_core::client::ClientStats;
use hcc_core::{ExecutionEngine, RequestGenerator};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Control messages a driver injects alongside actor messages.
enum Wire<E: ExecutionEngine> {
    Actor(Msg<E>),
    Shutdown,
}

/// One sender per actor; routing is an index lookup, plus the membership
/// table resolving the logical partition address to the current primary.
struct Router<E: ExecutionEngine> {
    clients: Vec<Sender<Wire<E>>>,
    /// One sender per coordinator shard.
    coords: Vec<Sender<Wire<E>>>,
    /// The control-plane membership actor.
    control_plane: Sender<Wire<E>>,
    /// `[group][slot]`.
    replicas: Vec<Vec<Sender<Wire<E>>>>,
    /// Current primary slot per group.
    membership: Arc<Vec<AtomicU32>>,
}

impl<E: ExecutionEngine> Clone for Router<E> {
    fn clone(&self) -> Self {
        Router {
            clients: self.clients.clone(),
            coords: self.coords.clone(),
            control_plane: self.control_plane.clone(),
            replicas: self.replicas.clone(),
            membership: self.membership.clone(),
        }
    }
}

impl<E: ExecutionEngine> Router<E> {
    fn primary_slot(&self, p: PartitionId) -> usize {
        self.membership[p.as_usize()].load(Ordering::Acquire) as usize
    }

    /// Sends are fire-and-forget: a closed channel means the destination
    /// already shut down (only happens during teardown).
    fn send(&self, m: OutMsg<E>) {
        let _ = match m.dest {
            ActorId::Client(c) => self.clients[c.as_usize()].send(Wire::Actor(m.msg)),
            ActorId::Coordinator(k) => self.coords[k.as_usize()].send(Wire::Actor(m.msg)),
            ActorId::Membership => self.control_plane.send(Wire::Actor(m.msg)),
            ActorId::Partition(p) => {
                let slot = self.primary_slot(p);
                self.replicas[p.as_usize()][slot].send(Wire::Actor(m.msg))
            }
            ActorId::Replica(p, s) => {
                self.replicas[p.as_usize()][s as usize].send(Wire::Actor(m.msg))
            }
            ActorId::Control => {
                if let Msg::Promoted { partition, slot } = m.msg {
                    self.membership[partition.as_usize()].store(slot, Ordering::Release);
                }
                Ok(())
            }
        };
    }

    fn route(&self, buf: &mut Vec<OutMsg<E>>) {
        for m in buf.drain(..) {
            self.send(m);
        }
    }
}

/// One OS thread per actor.
pub struct ThreadedBackend;

impl Backend for ThreadedBackend {
    fn run<W, B>(
        &self,
        cfg: &RuntimeConfig,
        workload: W,
        build_engine: B,
    ) -> RuntimeReport<W::Engine>
    where
        W: RequestGenerator + Send + 'static,
        W::Engine: Send + 'static,
        <W::Engine as ExecutionEngine>::Fragment: Send + 'static,
        <W::Engine as ExecutionEngine>::Output: Send + 'static,
        B: Fn(PartitionId) -> W::Engine,
    {
        type E<W> = <W as RequestGenerator>::Engine;
        let system = &cfg.system;
        if let Err(e) = system.validate() {
            panic!("invalid SystemConfig: {e}");
        }
        let n = system.partitions as usize;
        let slots = system.replication.max(1) as usize;
        if let Some(plan) = cfg.failure {
            assert!(
                system.replication >= 2,
                "failure injection needs a backup to fail over to"
            );
            assert!((plan.partition.as_usize()) < n && plan.after_commits >= 1);
        }
        let per_client = match cfg.mode {
            RunMode::FixedRequests(k) => Some(k),
            RunMode::Timed { .. } => None,
        };

        // Channels.
        let mut replica_txs: Vec<Vec<Sender<Wire<E<W>>>>> = Vec::new();
        let mut replica_rxs = Vec::new();
        for p in 0..n {
            let mut txs = Vec::new();
            for s in 0..slots {
                let (tx, rx) = unbounded::<Wire<E<W>>>();
                txs.push(tx);
                replica_rxs.push((p, s, rx));
            }
            replica_txs.push(txs);
        }
        let shards = system.coordinators.max(1) as usize;
        let mut coord_txs = Vec::new();
        let mut coord_rxs = Vec::new();
        for _ in 0..shards {
            let (tx, rx) = unbounded();
            coord_txs.push(tx);
            coord_rxs.push(rx);
        }
        let (control_tx, control_rx) = unbounded();
        let mut client_txs = Vec::new();
        let mut client_rxs = Vec::new();
        for _ in 0..system.clients {
            let (tx, rx) = unbounded::<Wire<E<W>>>();
            client_txs.push(tx);
            client_rxs.push(rx);
        }
        let router: Router<E<W>> = Router {
            clients: client_txs,
            coords: coord_txs,
            control_plane: control_tx,
            replicas: replica_txs,
            membership: Arc::new((0..n).map(|_| AtomicU32::new(0)).collect()),
        };

        let epoch = Instant::now();
        let ctl = Arc::new(RunControl::new(system.clients as usize));
        let workload = Arc::new(Mutex::new(workload));

        // Replica threads (primaries and backups run the same loop; the
        // role lives in the actor).
        let mut replica_handles: Vec<Vec<Option<std::thread::JoinHandle<ReplicaParts<E<W>>>>>> =
            (0..n).map(|_| (0..slots).map(|_| None).collect()).collect();
        for (p, s, rx) in replica_rxs {
            let group = PartitionId(p as u32);
            let crash_after = cfg
                .failure
                .filter(|f| f.partition == group && s == 0)
                .map(|f| f.after_commits);
            let actor =
                ReplicaActor::new(group, s as u32, system, build_engine(group), crash_after);
            let router = router.clone();
            let ctl = ctl.clone();
            // Locking needs lock-timeout scans; durability needs group-commit
            // flush polls (at least twice per interval, floored to keep the
            // wake-up rate sane).
            let mut tick_nanos = system.lock_timeout.0 / 4;
            if let Some(d) = system.durability {
                tick_nanos = tick_nanos.min(d.group_commit_interval.0 / 2);
            }
            let tick_every = Duration::from_nanos(tick_nanos.max(100_000));
            // An adaptive partition can be (or become) Locking at any time,
            // so it needs the lock-timeout scans too.
            let ticks = system.scheme == Scheme::Locking
                || system.adaptive.is_on()
                || system.durability.is_some();
            replica_handles[p][s] = Some(std::thread::spawn(move || {
                replica_thread(actor, rx, router, ctl, epoch, ticks, tick_every)
            }));
        }

        // Coordinator shard threads. With N > 1 shards, each also ticks
        // itself to expire cross-shard distributed deadlocks — unless the
        // sequencer is on, which replaces expiry with epoch age-closes
        // (also tick-driven).
        let track_in_doubt = cfg.failure.is_some();
        let seq_on = system.sequencing_active();
        let coord_expiry = (shards > 1 && !seq_on).then_some(system.lock_timeout);
        let mut coord_handles = Vec::new();
        for (k, rx) in coord_rxs.into_iter().enumerate() {
            let mut actor: CoordinatorActor<E<W>> = CoordinatorActor::new(
                system.costs,
                CoordinatorId(k as u32),
                track_in_doubt,
                system.durability.is_some(),
                coord_expiry,
            );
            if seq_on {
                actor.enable_sequencing(system);
            }
            let router = router.clone();
            let mut tick_nanos = system.lock_timeout.0 / 4;
            if seq_on {
                // Age-closes fire at half the max epoch delay so a lone
                // buffered invoke never waits much past its deadline.
                tick_nanos = tick_nanos.min(system.sequencing.max_delay().0 / 2);
            }
            let tick_every = Duration::from_nanos(tick_nanos.max(50_000));
            let ticks = coord_expiry.is_some() || seq_on;
            coord_handles.push(std::thread::spawn(move || {
                let mut buf = Vec::new();
                loop {
                    let msg = if ticks {
                        match rx.recv_timeout(tick_every) {
                            Ok(Wire::Actor(m)) => m,
                            Ok(Wire::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
                            Err(RecvTimeoutError::Timeout) => Msg::Tick,
                        }
                    } else {
                        match rx.recv() {
                            Ok(Wire::Actor(m)) => m,
                            _ => break,
                        }
                    };
                    actor.step(msg, now_ns(epoch), &mut buf);
                    router.route(&mut buf);
                }
                actor.seq_stats()
            }));
        }

        // Control-plane membership thread.
        let control_handle = {
            let mut actor = MembershipActor::new(system.coordinators);
            let router = router.clone();
            std::thread::spawn(move || {
                let mut buf: Vec<OutMsg<E<W>>> = Vec::new();
                while let Ok(wire) = control_rx.recv() {
                    match wire {
                        Wire::Actor(msg) => {
                            actor.step(msg, &mut buf);
                            router.route(&mut buf);
                        }
                        Wire::Shutdown => break,
                    }
                }
            })
        };

        // Client threads.
        let mut client_handles = Vec::new();
        for (c, rx) in client_rxs.into_iter().enumerate() {
            let mut actor: ClientActor<W> =
                ClientActor::new(ClientId(c as u32), system, per_client);
            let router = router.clone();
            let ctl = ctl.clone();
            let wl = workload.clone();
            client_handles.push(std::thread::spawn(move || {
                let ctx = ClientCtx {
                    workload: &wl,
                    ctl: &ctl,
                };
                let mut buf = Vec::new();
                loop {
                    // A parked backoff retry turns the receive into a timed
                    // wait; the timeout wakes the actor with a Tick.
                    let msg = match actor.retry_wake() {
                        Some(at) => {
                            let wait = Duration::from_nanos(at.0.saturating_sub(now_ns(epoch).0));
                            match rx.recv_timeout(wait) {
                                Ok(Wire::Actor(m)) => m,
                                Ok(Wire::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
                                Err(RecvTimeoutError::Timeout) => Msg::Tick,
                            }
                        }
                        None => match rx.recv() {
                            Ok(Wire::Actor(m)) => m,
                            _ => break,
                        },
                    };
                    actor.step(msg, now_ns(epoch), &ctx, &mut buf);
                    router.route(&mut buf);
                    if actor.done() {
                        break;
                    }
                }
                actor.into_stats()
            }));
        }

        // Kick every client.
        for tx in &router.clients {
            let _ = tx.send(Wire::Actor(Msg::Start));
        }

        // Measurement protocol.
        let started = Instant::now();
        if let RunMode::Timed { warmup, measure } = cfg.mode {
            std::thread::sleep(warmup);
            ctl.window_open.store(true, Ordering::SeqCst);
            std::thread::sleep(measure);
            ctl.window_open.store(false, Ordering::SeqCst);
            // Stop clients (each finishes its in-flight transaction first).
            ctl.stop.store(true, Ordering::SeqCst);
        }
        let mut clients = ClientStats::default();
        for h in client_handles {
            clients.merge(&h.join().expect("client thread"));
        }
        let elapsed = started.elapsed();
        let committed_in_window = ctl.committed_in_window();

        // With a failure injected, the kill → promote → recover chain may
        // still be in flight (it is driven by messages, not clients); wait
        // for the recovering node to finish rejoining before tearing the
        // system down.
        if cfg.failure.is_some() {
            let deadline = Instant::now() + Duration::from_secs(60);
            while !ctl.recovery_done.load(Ordering::SeqCst) {
                assert!(
                    Instant::now() < deadline,
                    "injected failure never finished recovering — \
                     was the crash threshold reachable for this workload?"
                );
                std::thread::sleep(Duration::from_micros(200));
            }
        }

        // Quiesced: shut down the control plane and the coordinator
        // shards, then each group's current primary (so it ships its
        // trailing commit records first), then the group's backups.
        // Channel FIFO ensures every message sent before a Shutdown is
        // processed first.
        let _ = router.control_plane.send(Wire::Shutdown);
        control_handle.join().expect("membership thread");
        for tx in &router.coords {
            let _ = tx.send(Wire::Shutdown);
        }
        let mut sequencer = SequencerStats::default();
        for h in coord_handles {
            sequencer.merge(&h.join().expect("coordinator thread"));
        }
        let mut parts: Vec<ReplicaParts<E<W>>> = Vec::new();
        // Indexing two parallel structures (channels + handles); an index
        // loop is the clear spelling.
        #[allow(clippy::needless_range_loop)]
        for p in 0..n {
            let primary = router.primary_slot(PartitionId(p as u32));
            let mut order: Vec<usize> = vec![primary];
            order.extend((0..slots).filter(|s| *s != primary));
            for s in order {
                let _ = router.replicas[p][s].send(Wire::Shutdown);
                let h = replica_handles[p][s].take().expect("replica handle");
                parts.push(h.join().expect("replica thread"));
            }
        }
        let (engines, backups, sched, repl, dur, logs, part_seq, adaptive) =
            assemble_replicas(parts, n);
        sequencer.merge(&part_seq);

        finish_report(
            &cfg.mode,
            committed_in_window,
            elapsed,
            clients,
            sched,
            repl,
            engines,
            backups,
            dur,
            logs,
            Vec::new(),
            sequencer,
            adaptive,
        )
    }
}

fn replica_thread<E>(
    mut actor: ReplicaActor<E>,
    rx: Receiver<Wire<E>>,
    router: Router<E>,
    ctl: Arc<RunControl>,
    epoch: Instant,
    ticks: bool,
    tick_every: Duration,
) -> ReplicaParts<E>
where
    E: ExecutionEngine + Send + 'static,
    E::Fragment: Send,
    E::Output: Send,
{
    let mut buf = Vec::new();
    loop {
        let msg = if ticks {
            // The locking scheme needs periodic lock-timeout scans; a recv
            // timeout doubles as the tick timer. Non-primary roles ignore
            // ticks.
            match rx.recv_timeout(tick_every) {
                Ok(Wire::Actor(m)) => m,
                Ok(Wire::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Timeout) => Msg::Tick,
            }
        } else {
            match rx.recv() {
                Ok(Wire::Actor(m)) => m,
                _ => break,
            }
        };
        actor.step(msg, now_ns(epoch), &ctl, &mut buf);
        router.route(&mut buf);
    }
    actor.into_parts()
}
