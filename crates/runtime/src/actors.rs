//! Backend-agnostic, poll-driven actor state machines.
//!
//! The runtime is four kinds of actor — clients, the central coordinator,
//! partitions, and (under replication) backups — wrapped around the
//! runtime-agnostic cores from `hcc-core`. Every actor exposes a
//! non-blocking [`step`](PartitionActor::step): consume one message, emit
//! any number of [`OutMsg`]s. Nothing here blocks, sleeps, or spawns;
//! *how* messages move between actors is entirely the backend's business
//! ([`crate::threaded`] parks one OS thread per actor on a channel,
//! [`crate::multiplexed`] drives every actor from a small worker pool).

use hcc_common::stats::SchedulerCounters;
use hcc_common::{
    ClientId, CoordinatorRef, CostModel, Decision, FragmentResponse, FragmentTask, FxHashMap,
    Nanos, PartitionId, Scheme, SystemConfig, TxnId, TxnResult,
};
use hcc_core::client::{ClientCore, ClientStats, NextAction, PendingRequest};
use hcc_core::coordinator::{CoordOut, Coordinator};
use hcc_core::txn_driver::TxnDriver;
use hcc_core::{
    make_scheduler_send, ExecutionEngine, Outbox, PartitionOut, Procedure, Request,
    RequestGenerator, Scheduler,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Logical address of an actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorId {
    Client(ClientId),
    Coordinator,
    Partition(PartitionId),
    Backup(PartitionId),
}

/// Every message the runtime actors exchange, in one enum so backends
/// route a single type. Which variants an actor accepts is part of its
/// `step` contract (a misrouted message is a driver bug, not a protocol
/// state).
pub enum Msg<E: ExecutionEngine> {
    /// Kick a client into issuing its first request.
    Start,
    /// Final result of a client's in-flight transaction.
    Result {
        txn: TxnId,
        result: TxnResult<E::Output>,
    },
    /// Fragment response routed to a client-coordinator (locking scheme).
    FragResponse(FragmentResponse<E::Output>),
    /// A unit of work for a partition.
    Fragment(FragmentTask<E::Fragment>),
    /// A two-phase-commit decision for a partition.
    Decision(Decision),
    /// Periodic maintenance (lock-timeout scans under the locking scheme).
    Tick,
    /// A multi-partition invocation for the central coordinator.
    Invoke {
        txn: TxnId,
        client: ClientId,
        procedure: Box<dyn Procedure<E::Fragment, E::Output>>,
        can_abort: bool,
    },
    /// A fragment response for the central coordinator.
    Response(FragmentResponse<E::Output>),
    /// A committed transaction's fragments, in commit order, for a backup.
    Commit(TxnId, Vec<FragmentTask<E::Fragment>>),
}

/// An outbound message with its destination, as emitted by `step`.
pub struct OutMsg<E: ExecutionEngine> {
    pub dest: ActorId,
    pub msg: Msg<E>,
}

/// Run-wide control state shared between the driver and the client actors:
/// the measurement protocol (stop flag, measurement window, in-window
/// commit counter) and the count of clients still running.
pub struct RunControl {
    /// Clients finish their in-flight transaction, then retire.
    pub stop: AtomicBool,
    /// True during the measurement window (timed mode).
    pub window_open: AtomicBool,
    /// Commits observed while the window was open.
    pub committed_in_window: AtomicU64,
    /// Clients that have not yet retired.
    pub live_clients: AtomicUsize,
}

impl RunControl {
    pub fn new(clients: usize) -> Self {
        RunControl {
            stop: AtomicBool::new(false),
            window_open: AtomicBool::new(false),
            committed_in_window: AtomicU64::new(0),
            live_clients: AtomicUsize::new(clients),
        }
    }
}

/// What a client actor's `step` needs besides the message: the shared
/// workload generator and the run control block.
pub struct ClientCtx<'a, W> {
    pub workload: &'a Mutex<W>,
    pub ctl: &'a RunControl,
}

/// Route one coordinator-core output to its destination actor.
fn push_coord_out<E: ExecutionEngine>(
    o: CoordOut<E::Fragment, E::Output>,
    out: &mut Vec<OutMsg<E>>,
) {
    let (dest, msg) = match o {
        CoordOut::Fragment(p, task) => (ActorId::Partition(p), Msg::Fragment(task)),
        CoordOut::Decision(p, d) => (ActorId::Partition(p), Msg::Decision(d)),
        CoordOut::ClientResult {
            client,
            txn,
            result,
        } => (ActorId::Client(client), Msg::Result { txn, result }),
    };
    out.push(OutMsg { dest, msg });
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A closed-loop client (paper §5) as a poll-driven state machine: issue
/// one request, await its final result, issue the next. Under the locking
/// scheme the client runs its own two-phase commit through [`TxnDriver`]
/// (§4.3), so fragment responses also arrive here.
pub struct ClientActor<W: RequestGenerator> {
    core: ClientCore,
    driver:
        TxnDriver<<W::Engine as ExecutionEngine>::Fragment, <W::Engine as ExecutionEngine>::Output>,
    pending: Option<
        PendingRequest<
            <W::Engine as ExecutionEngine>::Fragment,
            <W::Engine as ExecutionEngine>::Output,
        >,
    >,
    current_txn: Option<TxnId>,
    submitted_at: Nanos,
    /// Final outcomes left before retiring (fixed-work mode); `None` runs
    /// until the control block's stop flag.
    remaining: Option<u64>,
    /// Record every latency sample (fixed-work mode) instead of only
    /// in-window ones.
    record_always: bool,
    scheme: Scheme,
    done: bool,
    scratch: Vec<
        CoordOut<<W::Engine as ExecutionEngine>::Fragment, <W::Engine as ExecutionEngine>::Output>,
    >,
}

impl<W: RequestGenerator> ClientActor<W>
where
    W::Engine: 'static,
{
    pub fn new(id: ClientId, system: &SystemConfig, requests: Option<u64>) -> Self {
        ClientActor {
            core: ClientCore::new(id),
            driver: TxnDriver::new(system.costs, id),
            pending: None,
            current_txn: None,
            submitted_at: Nanos::ZERO,
            remaining: requests,
            record_always: requests.is_some(),
            scheme: system.scheme,
            done: false,
            scratch: Vec::new(),
        }
    }

    /// True once the client has retired; the backend stops delivering to it.
    pub fn done(&self) -> bool {
        self.done
    }

    pub fn into_stats(self) -> ClientStats {
        self.core.stats
    }

    pub fn step(
        &mut self,
        msg: Msg<W::Engine>,
        now: Nanos,
        ctx: &ClientCtx<'_, W>,
        out: &mut Vec<OutMsg<W::Engine>>,
    ) {
        debug_assert!(!self.done, "message delivered to a retired client");
        match msg {
            Msg::Start => {
                debug_assert!(self.pending.is_none());
                let req = ctx.workload.lock().next_request(self.core.id);
                self.pending = Some(PendingRequest::from_request(&req));
                self.submitted_at = now;
                self.dispatch(now, out);
            }
            Msg::Result { txn, result } => self.handle_result(txn, result, now, ctx, out),
            Msg::FragResponse(r) => {
                debug_assert!(self.scratch.is_empty());
                let mut scratch = std::mem::take(&mut self.scratch);
                self.driver.on_response(r, &mut scratch);
                let _ = self.driver.take_cpu();
                let decided = TxnDriver::take_result(&mut scratch);
                // Route the driver's messages (commit/abort decisions)
                // before acting on the result, so decisions precede the
                // next request's fragments at every partition.
                for o in scratch.drain(..) {
                    push_coord_out(o, out);
                }
                self.scratch = scratch;
                if let Some((txn, result)) = decided {
                    self.handle_result(txn, result, now, ctx, out);
                }
            }
            _ => debug_assert!(false, "unexpected message at client {}", self.core.id),
        }
    }

    fn handle_result(
        &mut self,
        txn: TxnId,
        result: TxnResult<<W::Engine as ExecutionEngine>::Output>,
        now: Nanos,
        ctx: &ClientCtx<'_, W>,
        out: &mut Vec<OutMsg<W::Engine>>,
    ) {
        debug_assert_eq!(
            self.current_txn,
            Some(txn),
            "stray result at {}",
            self.core.id
        );
        self.current_txn = None;
        let in_window = ctx.ctl.window_open.load(Ordering::Relaxed);
        let record = self.record_always || in_window;
        match self
            .core
            .on_result_at(&result, self.submitted_at, now, record)
        {
            NextAction::Retry => {
                // Fixed-work clients must drive every request to a final
                // outcome (the reproducibility contract); timed clients
                // honour the stop flag instead.
                if self.remaining.is_none() && ctx.ctl.stop.load(Ordering::Relaxed) {
                    self.retire(ctx);
                } else {
                    self.dispatch(now, out);
                }
            }
            NextAction::NewRequest => {
                if in_window && result.is_committed() {
                    ctx.ctl.committed_in_window.fetch_add(1, Ordering::Relaxed);
                }
                let retire = match self.remaining.as_mut() {
                    Some(k) => {
                        *k -= 1;
                        *k == 0
                    }
                    None => ctx.ctl.stop.load(Ordering::Relaxed),
                };
                let mut wl = ctx.workload.lock();
                wl.on_result(self.core.id, txn, result.is_committed());
                if retire {
                    drop(wl);
                    self.retire(ctx);
                } else {
                    let req = wl.next_request(self.core.id);
                    drop(wl);
                    self.pending = Some(PendingRequest::from_request(&req));
                    self.submitted_at = now;
                    self.dispatch(now, out);
                }
            }
        }
    }

    fn retire(&mut self, ctx: &ClientCtx<'_, W>) {
        self.done = true;
        ctx.ctl.live_clients.fetch_sub(1, Ordering::SeqCst);
    }

    /// Issue the pending request under a fresh transaction id.
    fn dispatch(&mut self, _now: Nanos, out: &mut Vec<OutMsg<W::Engine>>) {
        let txn = self.core.next_txn_id();
        self.current_txn = Some(txn);
        let client = self.core.id;
        match self.pending.as_ref().expect("pending request").to_request() {
            Request::SinglePartition {
                partition,
                fragment,
                can_abort,
            } => {
                out.push(OutMsg {
                    dest: ActorId::Partition(partition),
                    msg: Msg::Fragment(FragmentTask {
                        txn,
                        coordinator: CoordinatorRef::Client(client),
                        client,
                        fragment,
                        multi_partition: false,
                        last_fragment: true,
                        round: 0,
                        can_abort,
                    }),
                });
            }
            Request::MultiPartition {
                procedure,
                can_abort,
            } => match self.scheme {
                Scheme::Locking => {
                    debug_assert!(self.scratch.is_empty());
                    let mut scratch = std::mem::take(&mut self.scratch);
                    self.driver.begin(txn, procedure, can_abort, &mut scratch);
                    let _ = self.driver.take_cpu();
                    for o in scratch.drain(..) {
                        push_coord_out(o, out);
                    }
                    self.scratch = scratch;
                }
                _ => {
                    out.push(OutMsg {
                        dest: ActorId::Coordinator,
                        msg: Msg::Invoke {
                            txn,
                            client,
                            procedure,
                            can_abort,
                        },
                    });
                }
            },
        }
    }
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

/// The central coordinator (paper §3.3) as an actor: a thin routing shell
/// over [`Coordinator`].
pub struct CoordinatorActor<E: ExecutionEngine> {
    coord: Coordinator<E::Fragment, E::Output>,
    scratch: Vec<CoordOut<E::Fragment, E::Output>>,
}

impl<E: ExecutionEngine> CoordinatorActor<E> {
    pub fn new(costs: CostModel) -> Self {
        CoordinatorActor {
            coord: Coordinator::central(costs),
            scratch: Vec::new(),
        }
    }

    pub fn step(&mut self, msg: Msg<E>, _now: Nanos, out: &mut Vec<OutMsg<E>>) {
        debug_assert!(self.scratch.is_empty());
        match msg {
            Msg::Invoke {
                txn,
                client,
                procedure,
                can_abort,
            } => self
                .coord
                .on_invoke(txn, client, procedure, can_abort, &mut self.scratch),
            Msg::Response(r) => self.coord.on_response(r, &mut self.scratch),
            _ => debug_assert!(false, "unexpected message at coordinator"),
        }
        let _ = self.coord.take_cpu();
        for o in self.scratch.drain(..) {
            push_coord_out(o, out);
        }
    }
}

// ---------------------------------------------------------------------
// Partition
// ---------------------------------------------------------------------

/// A single-threaded partition execution engine (paper §2.3) as an actor:
/// the scheme's [`Scheduler`] plus the workload's [`ExecutionEngine`],
/// with commit-order shipping to a backup when replication is on (§3.2).
pub struct PartitionActor<E: ExecutionEngine> {
    me: PartitionId,
    engine: E,
    sched: Box<dyn Scheduler<E> + Send>,
    outbox: Outbox<E::Output>,
    scratch: Vec<PartitionOut<E::Output>>,
    /// Fragments of in-flight transactions, for backup replay.
    pending: FxHashMap<TxnId, Vec<FragmentTask<E::Fragment>>>,
    replicate: bool,
}

impl<E> PartitionActor<E>
where
    E: ExecutionEngine + Send + 'static,
    E::Fragment: Send,
    E::Output: Send,
{
    pub fn new(me: PartitionId, system: &SystemConfig, engine: E, replicate: bool) -> Self {
        PartitionActor {
            me,
            engine,
            sched: make_scheduler_send::<E>(system, me),
            outbox: Outbox::new(system.costs),
            scratch: Vec::new(),
            pending: FxHashMap::default(),
            replicate,
        }
    }

    pub fn into_parts(self) -> (E, SchedulerCounters) {
        let counters = self.sched.counters();
        (self.engine, counters)
    }

    /// Ship a committed transaction's fragments to this partition's backup.
    fn ship_commit(&mut self, txn: TxnId, out: &mut Vec<OutMsg<E>>) {
        if let Some(frags) = self.pending.remove(&txn) {
            out.push(OutMsg {
                dest: ActorId::Backup(self.me),
                msg: Msg::Commit(txn, frags),
            });
        }
    }

    pub fn step(&mut self, msg: Msg<E>, now: Nanos, out: &mut Vec<OutMsg<E>>) {
        debug_assert!(self.outbox.messages.is_empty());
        match msg {
            Msg::Fragment(task) => {
                if self.replicate {
                    let entry = self.pending.entry(task.txn).or_default();
                    entry.retain(|t| t.round != task.round);
                    entry.push(task.clone());
                }
                self.sched
                    .on_fragment(task, &mut self.engine, now, &mut self.outbox);
            }
            Msg::Decision(d) => {
                if self.replicate {
                    if d.commit {
                        self.ship_commit(d.txn, out);
                    } else {
                        self.pending.remove(&d.txn);
                    }
                }
                self.sched
                    .on_decision(d, &mut self.engine, now, &mut self.outbox);
            }
            Msg::Tick => {
                let _ = self.sched.on_tick(&mut self.engine, now, &mut self.outbox);
            }
            _ => debug_assert!(false, "unexpected message at partition {}", self.me),
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let _cpu = self.outbox.take_into(&mut scratch);
        for m in scratch.drain(..) {
            match m {
                PartitionOut::ToClient {
                    client,
                    txn,
                    result,
                } => {
                    if self.replicate {
                        match &result {
                            TxnResult::Committed(_) => self.ship_commit(txn, out),
                            TxnResult::Aborted(_) => {
                                self.pending.remove(&txn);
                            }
                        }
                    }
                    out.push(OutMsg {
                        dest: ActorId::Client(client),
                        msg: Msg::Result { txn, result },
                    });
                }
                PartitionOut::ToCoordinator { dest, response } => {
                    let out_msg = match dest {
                        CoordinatorRef::Central => OutMsg {
                            dest: ActorId::Coordinator,
                            msg: Msg::Response(response),
                        },
                        CoordinatorRef::Client(c) => OutMsg {
                            dest: ActorId::Client(c),
                            msg: Msg::FragResponse(response),
                        },
                    };
                    out.push(out_msg);
                }
            }
        }
        self.scratch = scratch;
    }
}

// ---------------------------------------------------------------------
// Backup
// ---------------------------------------------------------------------

/// A backup replica: replays committed transactions in the order received
/// from its primary (paper §4.3), without locks or undo.
pub struct BackupActor<E: ExecutionEngine> {
    engine: E,
}

impl<E: ExecutionEngine> BackupActor<E> {
    pub fn new(engine: E) -> Self {
        BackupActor { engine }
    }

    pub fn into_engine(self) -> E {
        self.engine
    }

    pub fn step(&mut self, msg: Msg<E>, _now: Nanos, _out: &mut Vec<OutMsg<E>>) {
        match msg {
            Msg::Commit(txn, mut frags) => {
                frags.sort_by_key(|t| t.round);
                for task in frags {
                    let r = self.engine.execute(txn, &task.fragment, false);
                    debug_assert!(r.result.is_ok(), "backup replay failed for {txn}");
                }
                self.engine.forget(txn);
            }
            _ => debug_assert!(false, "unexpected message at backup"),
        }
    }
}
