//! Backend-agnostic, poll-driven actor state machines.
//!
//! The runtime is three kinds of actor — clients, the central coordinator,
//! and replicas — wrapped around the runtime-agnostic cores from
//! `hcc-core`. Every actor exposes a non-blocking
//! [`step`](ReplicaActor::step): consume one message, emit any number of
//! [`OutMsg`]s. Nothing here blocks, sleeps, or spawns; *how* messages
//! move between actors is entirely the backend's business
//! ([`crate::threaded`] parks one OS thread per actor on a channel,
//! [`crate::multiplexed`] drives every actor from a small worker pool).
//!
//! # Replica groups, failover, recovery
//!
//! Each partition is a *replica group* of `replication` physical nodes:
//! slot 0 starts as the primary, slots 1.. as backups replaying the
//! primary's commit-order log through the shared
//! [`hcc_core::replica::ReplicaCore`] (paper §3.2). A [`ReplicaActor`]
//! owns one node and changes [`Role`] over its lifetime:
//!
//! * **Primary** — the scheme's scheduler + engine, shipping a
//!   [`CommitRecord`] per commit to every backup and holding
//!   single-partition results until the record is under the group's acked
//!   watermark (§2.2: a transaction commits once it is on `k` replicas).
//! * **Backup** — sequence-checked replay; every applied record is acked
//!   back to whichever slot shipped it. Replay failures are *propagated*
//!   into [`ReplicationCounters`] and surfaced in the run report, never
//!   swallowed.
//! * **Failed** — a crashed primary (fault injection, §3.3's failure
//!   model). Bounces everything with
//!   [`AbortReason::PartitionFailed`] — the moral equivalent of the
//!   client's connection resetting — so closed-loop clients transparently
//!   retry against the new primary.
//! * **Recovering** — the failed node rejoining: it asks the new primary
//!   for a state snapshot, installs it at the snapshot's log position,
//!   and returns as a backup that catches up from the log (§3.3) while
//!   the group keeps processing.
//!
//! The membership authority is the dedicated control-plane
//! [`MembershipActor`] (wrapping `hcc_core::MembershipCore`): on
//! `PrimaryFailed` it bumps the group's epoch, promotes the first backup,
//! flips the backends' routing table (via a [`ActorId::Control`] message),
//! tells the dead node to rejoin, and fans an epoch-stamped
//! [`Msg::RoutingUpdate`] out to **every coordinator shard**, each of
//! which aborts its own in-flight transactions touching the dead node.
//! Failure *detection* is modeled as reliable and immediate — the dying
//! node's last act is notifying the membership actor — which keeps the
//! kill → promote → recover scenario deterministic.
//!
//! Coordinators are sharded ([`ActorId::Coordinator`] carries a
//! [`CoordinatorId`]): clients are statically partitioned across shards
//! and each shard runs its own `Coordinator` core. In failover runs the
//! shards also track the 2PC in-doubt window: primaries acknowledge
//! commit decisions ([`Msg::DecisionAck`]), and a routing update makes
//! the owning shard re-deliver any unacknowledged commit's fragments to
//! the promoted primary — closing the window instead of documenting it.
//!
//! One failover per group per run is supported (the `FailurePlan` is
//! one-shot).

use hcc_common::codec::encode_to_vec;
use hcc_common::stats::SequencerStats;
use hcc_common::stats::{
    AdaptiveStats, DurabilityCounters, ReplicationCounters, SchedulerCounters,
};
use hcc_common::{
    AbortReason, CachePadded, ClientId, CommitRecord, CoordinatorId, CoordinatorRef, CostModel,
    Decision, DurabilityConfig, FragmentResponse, FragmentTask, FxHashMap, Nanos, PartitionId,
    Scheme, SchemeSwitch, SystemConfig, TxnId, TxnResult,
};
use hcc_core::client::{ClientCore, ClientStats, NextAction, PendingRequest};
use hcc_core::coordinator::{CoordOut, Coordinator, PeerNote};
use hcc_core::group_commit::{FlushDecision, GroupCommit};
use hcc_core::membership::MembershipCore;
use hcc_core::replica::{
    failover_bounce, AckTracker, FailoverBounce, ReplicaCore, ReplicationSession,
};
use hcc_core::sequencer::{
    broadcast_dests, Admit, CloseKind, ClosedEpoch, EpochLog, EpochLogDest, PartitionSequencer,
    ShardSequencer,
};
use hcc_core::txn_driver::TxnDriver;
use hcc_core::{
    make_scheduler_send, make_scheduler_send_resumed, ExecutionEngine, Outbox, PartitionOut,
    Procedure, Request, RequestGenerator, Scheduler,
};
use hcc_storage::{DurableLog, MemLog};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Logical address of an actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorId {
    Client(ClientId),
    /// One central coordinator shard.
    Coordinator(CoordinatorId),
    /// The control-plane membership authority.
    Membership,
    /// The *current primary* of a replica group. Backends resolve this
    /// through their membership table, so a promotion transparently
    /// redirects partition traffic to the promoted node.
    Partition(PartitionId),
    /// A physical replica node: (group, slot). Slot 0 is the initial
    /// primary, slots `1..replication` the initial backups.
    Replica(PartitionId, u32),
    /// Backend-internal control channel: the router interprets the
    /// message (membership flip) instead of delivering it to an actor.
    Control,
}

/// Every message the runtime actors exchange, in one enum so backends
/// route a single type. Which variants an actor accepts is part of its
/// `step` contract (a misrouted message is a driver bug, not a protocol
/// state).
pub enum Msg<E: ExecutionEngine> {
    /// Kick a client into issuing its first request.
    Start,
    /// Final result of a client's in-flight transaction.
    Result {
        txn: TxnId,
        result: TxnResult<E::Output>,
    },
    /// Fragment response routed to a client-coordinator (locking scheme).
    FragResponse(FragmentResponse<E::Output>),
    /// A unit of work for a partition.
    Fragment(FragmentTask<E::Fragment>),
    /// A two-phase-commit decision for a partition. The second field is
    /// the coordinator (central shard or client driver) expecting a
    /// [`Msg::DecisionAck`] for a processed commit — in-doubt tracking
    /// and/or durable result release; `None` otherwise.
    Decision(Decision, Option<CoordinatorRef>),
    /// Periodic maintenance (lock-timeout scans under the locking scheme).
    Tick,
    /// A multi-partition invocation for the central coordinator.
    Invoke {
        txn: TxnId,
        client: ClientId,
        procedure: Box<dyn Procedure<E::Fragment, E::Output>>,
        can_abort: bool,
    },
    /// A fragment response for the central coordinator.
    Response(FragmentResponse<E::Output>),
    /// A commit-order log record, primary → backup. `from_slot` tells the
    /// backup where to send its ack (the shipper may be a promoted node).
    Commit {
        from_slot: u32,
        record: CommitRecord<E::Fragment>,
    },
    /// Cumulative replay acknowledgement, backup → primary.
    CommitAck { slot: u32, seq: u64 },
    /// A dying primary's last gasp, to the membership actor (stands in
    /// for the failure detector, keeping the scenario deterministic).
    PrimaryFailed { partition: PartitionId },
    /// Membership → every coordinator shard: the partition failed over to
    /// a promoted backup under this epoch. Each shard aborts its own
    /// in-flight transactions touching it and re-delivers unacknowledged
    /// commits.
    RoutingUpdate { partition: PartitionId, epoch: u32 },
    /// Primary → coordinator shard: the commit decision for `txn` was
    /// processed (its commit record is in the group's log) — the
    /// transaction leaves the 2PC in-doubt window.
    DecisionAck { txn: TxnId, partition: PartitionId },
    /// Coordinator → backup: you are the group's primary now.
    Promote { epoch: u32 },
    /// Coordinator → failed node: rejoin the group as a backup by copying
    /// state from the new primary (§3.3).
    Rejoin { epoch: u32, primary_slot: u32 },
    /// Recovering node → new primary: send me your committed state.
    FetchState { requester_slot: u32 },
    /// New primary → recovering node: committed state as of log position
    /// `seq`. Records `> seq` follow on the same FIFO link.
    Snapshot { engine: Box<E>, seq: u64 },
    /// Backend control (dest [`ActorId::Control`]): group `0` now answers
    /// to the given slot — flip the routing table.
    Promoted { partition: PartitionId, slot: u32 },
    /// A closed sequencing epoch log: shard → every partition (merge
    /// input) and every peer shard (cascade-close input). Sequencing runs
    /// only.
    EpochLog(EpochLog),
    /// A peer shard's commit/abort decision for one of its transactions
    /// (cross-shard dependency settling under sequencing).
    PeerNote(PeerNote),
}

/// An outbound message with its destination, as emitted by `step`.
pub struct OutMsg<E: ExecutionEngine> {
    pub dest: ActorId,
    pub msg: Msg<E>,
}

/// Run-wide control state shared between the driver and the actors: the
/// measurement protocol (stop flag, measurement window, in-window commit
/// counter), the count of clients still running, and the failover gate
/// (set once the injected failure's recovery completes, so drivers can
/// drain the kill → promote → recover chain before shutdown).
pub struct RunControl {
    /// Clients finish their in-flight transaction, then retire.
    pub stop: AtomicBool,
    /// True during the measurement window (timed mode).
    pub window_open: AtomicBool,
    /// Commits observed while the window was open, sharded by client id so
    /// clients stepped on different workers never contend on (or
    /// false-share) a single counter line. Read via
    /// [`committed_in_window`](Self::committed_in_window) after the window
    /// closes.
    commit_shards: Vec<CachePadded<AtomicU64>>,
    /// Clients that have not yet retired. Padded: decremented from worker
    /// threads while the driver spin-reads it.
    pub live_clients: CachePadded<AtomicUsize>,
    /// Set by the recovering replica when its snapshot is installed.
    pub recovery_done: AtomicBool,
    /// Clients currently parked in a retry backoff and waiting for a
    /// [`Msg::Tick`]. Tick sources consult this so an idle system sends no
    /// client ticks at all (the multiplexed workers stay parked).
    backoff_waiters: CachePadded<AtomicUsize>,
}

/// Shard count for the in-window commit counter: enough stripes that
/// clients on different workers rarely collide, small enough that the
/// end-of-run sum is trivial. Must be a power of two.
const COMMIT_SHARDS: usize = 16;

impl RunControl {
    pub fn new(clients: usize) -> Self {
        RunControl {
            stop: AtomicBool::new(false),
            window_open: AtomicBool::new(false),
            commit_shards: (0..COMMIT_SHARDS)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            live_clients: CachePadded::new(AtomicUsize::new(clients)),
            recovery_done: AtomicBool::new(false),
            backoff_waiters: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Count one commit inside the measurement window.
    pub fn note_window_commit(&self, client: ClientId) {
        self.commit_shards[client.as_usize() & (COMMIT_SHARDS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total commits observed while the window was open (sums the shards;
    /// call only after the window has closed and clients have quiesced).
    pub fn committed_in_window(&self) -> u64 {
        self.commit_shards
            .iter()
            .map(|s| s.load(Ordering::SeqCst))
            .sum()
    }

    /// A client entered a retry backoff and needs future ticks.
    pub fn backoff_started(&self) {
        self.backoff_waiters.fetch_add(1, Ordering::SeqCst);
    }

    /// A client left its retry backoff.
    pub fn backoff_finished(&self) {
        self.backoff_waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// How many clients are parked in a backoff right now.
    pub fn backoff_waiters(&self) -> usize {
        self.backoff_waiters.load(Ordering::SeqCst)
    }
}

/// What a client actor's `step` needs besides the message: the shared
/// workload generator and the run control block.
pub struct ClientCtx<'a, W> {
    pub workload: &'a Mutex<W>,
    pub ctl: &'a RunControl,
}

/// Route one coordinator-core output to its destination actor.
fn push_coord_out<E: ExecutionEngine>(
    o: CoordOut<E::Fragment, E::Output>,
    out: &mut Vec<OutMsg<E>>,
) {
    let (dest, msg) = match o {
        CoordOut::Fragment(p, task) => (ActorId::Partition(p), Msg::Fragment(task)),
        CoordOut::Decision(p, d, ack_to) => (ActorId::Partition(p), Msg::Decision(d, ack_to)),
        CoordOut::ClientResult {
            client,
            txn,
            result,
        } => (ActorId::Client(client), Msg::Result { txn, result }),
        CoordOut::PeerNote(k, note) => (ActorId::Coordinator(k), Msg::PeerNote(note)),
        CoordOut::EpochLog(dest, log) => match dest {
            EpochLogDest::Partition(p) => (ActorId::Partition(p), Msg::EpochLog(log)),
            EpochLogDest::Shard(k) => (ActorId::Coordinator(k), Msg::EpochLog(log)),
        },
    };
    out.push(OutMsg { dest, msg });
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A closed-loop client (paper §5) as a poll-driven state machine: issue
/// one request, await its final result, issue the next. Under the locking
/// scheme the client runs its own two-phase commit through [`TxnDriver`]
/// (§4.3), so fragment responses also arrive here.
pub struct ClientActor<W: RequestGenerator> {
    core: ClientCore,
    driver:
        TxnDriver<<W::Engine as ExecutionEngine>::Fragment, <W::Engine as ExecutionEngine>::Output>,
    pending: Option<
        PendingRequest<
            <W::Engine as ExecutionEngine>::Fragment,
            <W::Engine as ExecutionEngine>::Output,
        >,
    >,
    current_txn: Option<TxnId>,
    submitted_at: Nanos,
    /// Deadline of a backoff wait before re-dispatching the pending
    /// request (infrastructure-abort retry). The backend wakes the actor
    /// with a [`Msg::Tick`] at or after this time.
    retry_at: Option<Nanos>,
    /// Final outcomes left before retiring (fixed-work mode); `None` runs
    /// until the control block's stop flag.
    remaining: Option<u64>,
    /// Record every latency sample (fixed-work mode) instead of only
    /// in-window ones.
    record_always: bool,
    /// Drive multi-partition transactions through this client's own
    /// [`TxnDriver`] 2PC (locking scheme, §4.3). Forced off under adaptive
    /// scheme selection: a partition's scheme can change between rounds,
    /// so MP work must route through the scheme-agnostic central
    /// coordinator.
    client_2pc: bool,
    /// The coordinator shard that owns this client's multi-partition
    /// transactions (static partitioning).
    coord_shard: CoordinatorId,
    done: bool,
    scratch: Vec<
        CoordOut<<W::Engine as ExecutionEngine>::Fragment, <W::Engine as ExecutionEngine>::Output>,
    >,
}

impl<W: RequestGenerator> ClientActor<W>
where
    W::Engine: 'static,
{
    pub fn new(id: ClientId, system: &SystemConfig, requests: Option<u64>) -> Self {
        let mut driver = TxnDriver::new(system.costs, id);
        // Durable release for client-driven 2PC (locking): the driver
        // parks committed results until every participant acks — which
        // partitions do only once the commit record is durably logged.
        driver.set_hold_results(system.durability.is_some());
        ClientActor {
            core: ClientCore::with_retry(id, system.retry),
            driver,
            pending: None,
            current_txn: None,
            submitted_at: Nanos::ZERO,
            retry_at: None,
            remaining: requests,
            record_always: requests.is_some(),
            client_2pc: system.scheme == Scheme::Locking && !system.adaptive.is_on(),
            coord_shard: system.coordinator_of(id),
            done: false,
            scratch: Vec::new(),
        }
    }

    /// True once the client has retired; the backend stops delivering to it.
    pub fn done(&self) -> bool {
        self.done
    }

    /// When the actor needs a [`Msg::Tick`] to finish a backoff wait
    /// (`None` when no retry is parked). Backends turn this into a receive
    /// timeout or a timer entry.
    pub fn retry_wake(&self) -> Option<Nanos> {
        self.retry_at
    }

    pub fn into_stats(self) -> ClientStats {
        self.core.stats
    }

    pub fn step(
        &mut self,
        msg: Msg<W::Engine>,
        now: Nanos,
        ctx: &ClientCtx<'_, W>,
        out: &mut Vec<OutMsg<W::Engine>>,
    ) {
        if self.done {
            // Shared timer threads may tick a retired client; anything
            // else arriving here is a routing bug.
            debug_assert!(
                matches!(msg, Msg::Tick),
                "message delivered to a retired client"
            );
            return;
        }
        match msg {
            Msg::Start => {
                debug_assert!(self.pending.is_none());
                let req = ctx.workload.lock().next_request(self.core.id);
                self.pending = Some(PendingRequest::from_request(&req));
                self.submitted_at = now;
                self.dispatch(now, out);
            }
            Msg::Result { txn, result } => self.handle_result(txn, result, now, ctx, out),
            Msg::Tick => {
                // Backoff wake-up: re-dispatch once the deadline passed.
                // Early or spurious ticks (shared timer threads tick
                // coarsely) are ignored; the backend keeps waking us.
                if matches!(self.retry_at, Some(at) if now >= at) {
                    self.retry_at = None;
                    ctx.ctl.backoff_finished();
                    self.dispatch(now, out);
                }
            }
            Msg::FragResponse(r) => {
                debug_assert!(self.scratch.is_empty());
                let mut scratch = std::mem::take(&mut self.scratch);
                self.driver.on_response(r, &mut scratch);
                let _ = self.driver.take_cpu();
                let decided = TxnDriver::take_result(&mut scratch);
                // Route the driver's messages (commit/abort decisions)
                // before acting on the result, so decisions precede the
                // next request's fragments at every partition.
                for o in scratch.drain(..) {
                    push_coord_out(o, out);
                }
                self.scratch = scratch;
                if let Some((txn, result)) = decided {
                    self.handle_result(txn, result, now, ctx, out);
                }
            }
            Msg::DecisionAck { txn, partition } => {
                // Durable release (locking): a participant durably logged
                // our commit decision; the final ack releases the parked
                // result.
                debug_assert!(self.scratch.is_empty());
                let mut scratch = std::mem::take(&mut self.scratch);
                self.driver.on_decision_ack(txn, partition, &mut scratch);
                let _ = self.driver.take_cpu();
                let decided = TxnDriver::take_result(&mut scratch);
                debug_assert!(scratch.is_empty(), "acks emit only the held result");
                self.scratch = scratch;
                if let Some((txn, result)) = decided {
                    self.handle_result(txn, result, now, ctx, out);
                }
            }
            _ => debug_assert!(false, "unexpected message at client {}", self.core.id),
        }
    }

    fn handle_result(
        &mut self,
        txn: TxnId,
        result: TxnResult<<W::Engine as ExecutionEngine>::Output>,
        now: Nanos,
        ctx: &ClientCtx<'_, W>,
        out: &mut Vec<OutMsg<W::Engine>>,
    ) {
        debug_assert_eq!(
            self.current_txn,
            Some(txn),
            "stray result at {}",
            self.core.id
        );
        self.current_txn = None;
        let in_window = ctx.ctl.window_open.load(Ordering::Relaxed);
        let record = self.record_always || in_window;
        match self
            .core
            .on_result_at(&result, self.submitted_at, now, record)
        {
            NextAction::Retry { after } => {
                // Fixed-work clients must drive every request to a final
                // outcome (the reproducibility contract); timed clients
                // honour the stop flag instead.
                if self.remaining.is_none() && ctx.ctl.stop.load(Ordering::Relaxed) {
                    self.retire(ctx);
                } else if after > Nanos::ZERO {
                    self.retry_at = Some(now + after);
                    ctx.ctl.backoff_started();
                } else {
                    self.dispatch(now, out);
                }
            }
            NextAction::NewRequest => {
                if in_window && result.is_committed() {
                    ctx.ctl.note_window_commit(self.core.id);
                }
                let retire = match self.remaining.as_mut() {
                    Some(k) => {
                        *k -= 1;
                        *k == 0
                    }
                    None => ctx.ctl.stop.load(Ordering::Relaxed),
                };
                let mut wl = ctx.workload.lock();
                wl.on_result(self.core.id, txn, result.is_committed());
                if retire {
                    drop(wl);
                    self.retire(ctx);
                } else {
                    let req = wl.next_request(self.core.id);
                    drop(wl);
                    self.pending = Some(PendingRequest::from_request(&req));
                    self.submitted_at = now;
                    self.dispatch(now, out);
                }
            }
        }
    }

    fn retire(&mut self, ctx: &ClientCtx<'_, W>) {
        self.done = true;
        // A retiring client cannot leave a backoff waiter registered (it
        // retires from a result, never from inside a parked backoff) — but
        // keep the counter exact even if that invariant ever shifts.
        if self.retry_at.take().is_some() {
            ctx.ctl.backoff_finished();
        }
        ctx.ctl.live_clients.fetch_sub(1, Ordering::SeqCst);
    }

    /// Issue the pending request under a fresh transaction id.
    fn dispatch(&mut self, _now: Nanos, out: &mut Vec<OutMsg<W::Engine>>) {
        let txn = self.core.next_txn_id();
        self.current_txn = Some(txn);
        let client = self.core.id;
        match self.pending.as_ref().expect("pending request").to_request() {
            Request::SinglePartition {
                partition,
                fragment,
                can_abort,
            } => {
                out.push(OutMsg {
                    dest: ActorId::Partition(partition),
                    msg: Msg::Fragment(FragmentTask {
                        txn,
                        coordinator: CoordinatorRef::Client(client),
                        client,
                        fragment,
                        multi_partition: false,
                        last_fragment: true,
                        round: 0,
                        can_abort,
                    }),
                });
            }
            Request::MultiPartition {
                procedure,
                can_abort,
            } => match self.client_2pc {
                true => {
                    debug_assert!(self.scratch.is_empty());
                    let mut scratch = std::mem::take(&mut self.scratch);
                    self.driver.begin(txn, procedure, can_abort, &mut scratch);
                    let _ = self.driver.take_cpu();
                    for o in scratch.drain(..) {
                        push_coord_out(o, out);
                    }
                    self.scratch = scratch;
                }
                false => {
                    out.push(OutMsg {
                        dest: ActorId::Coordinator(self.coord_shard),
                        msg: Msg::Invoke {
                            txn,
                            client,
                            procedure,
                            can_abort,
                        },
                    });
                }
            },
        }
    }
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

/// One central coordinator shard (paper §3.3) as an actor: a routing
/// shell over [`Coordinator`]. Clients are statically partitioned across
/// shards; each shard owns its own 2PC, speculation-chain, and (in
/// failover runs) in-doubt commit state. Membership authority lives in
/// [`MembershipActor`], whose routing updates this actor consumes.
pub struct CoordinatorActor<E: ExecutionEngine> {
    coord: Coordinator<E::Fragment, E::Output>,
    id: CoordinatorId,
    /// Stall expiry for cross-shard distributed deadlocks (`Some` only
    /// with N > 1 shards and sequencing off; the singleton's global
    /// dispatch order cannot deadlock, and under sequencing the merged
    /// epoch order leaves nothing for expiry to break). Driven by
    /// `Msg::Tick`.
    expiry: Option<Nanos>,
    /// Epoch sequencer (invocation buffer + log emitter); `None` when
    /// sequencing is off. Age-boundary closes ride `Msg::Tick`.
    seq: Option<ShardSequencer<E::Fragment, E::Output>>,
    /// Broadcast geometry + age boundary for the sequencer.
    partitions: u32,
    shards: u32,
    seq_delay: Nanos,
    /// `CrossCoordinator` expiry aborts issued by this shard (any mode;
    /// must stay zero while sequencing is on — see [`SequencerStats`]).
    cross_coord_aborts: u64,
    scratch: Vec<CoordOut<E::Fragment, E::Output>>,
}

impl<E: ExecutionEngine> CoordinatorActor<E> {
    pub fn new(
        costs: CostModel,
        id: CoordinatorId,
        track_in_doubt: bool,
        hold_results: bool,
        expiry: Option<Nanos>,
    ) -> Self {
        let mut coord = Coordinator::shard(costs, id, track_in_doubt);
        coord.set_hold_results(hold_results);
        CoordinatorActor {
            coord,
            id,
            expiry,
            seq: None,
            partitions: 0,
            shards: 1,
            seq_delay: Nanos::ZERO,
            cross_coord_aborts: 0,
            scratch: Vec::new(),
        }
    }

    /// Turn on epoch sequencing for this shard (call before the run
    /// starts; backends do this when `SystemConfig::sequencing_active()`).
    /// With peer shards, also enables the decision broadcast that lets
    /// speculation chains span shards.
    pub fn enable_sequencing(&mut self, system: &SystemConfig) {
        debug_assert!(system.sequencing_active());
        let shards = system.coordinators.max(1);
        self.partitions = system.partitions;
        self.shards = shards;
        self.seq_delay = system.sequencing.max_delay();
        self.seq = Some(ShardSequencer::new(self.id, system.sequencing.batch()));
        if shards > 1 {
            let peers = (0..shards)
                .filter(|&j| j != self.id.0)
                .map(CoordinatorId)
                .collect();
            self.coord.set_peer_broadcast(peers);
        }
    }

    /// Sequencer counters for the run report (zero when sequencing is
    /// off, except `cross_coord_aborts`, counted in any mode).
    pub fn seq_stats(&self) -> SequencerStats {
        let mut stats = self
            .seq
            .as_ref()
            .map(|s| s.stats().clone())
            .unwrap_or_default();
        stats.cross_coord_aborts += self.cross_coord_aborts;
        stats
    }

    /// Emit a closed epoch: the log broadcast goes into `out` *before* the
    /// epoch's invocations dispatch fragments (also via `out`, drained
    /// from the scratch at the end of `step`), so per-mailbox FIFO lands
    /// each log ahead of the round-0 fragments it orders.
    fn emit_closed(
        &mut self,
        closed: ClosedEpoch<E::Fragment, E::Output>,
        now: Nanos,
        out: &mut Vec<OutMsg<E>>,
    ) {
        for dest in broadcast_dests(self.partitions, self.shards, self.id) {
            let (dest, msg) = match dest {
                EpochLogDest::Partition(p) => {
                    (ActorId::Partition(p), Msg::EpochLog(closed.log.clone()))
                }
                EpochLogDest::Shard(k) => {
                    (ActorId::Coordinator(k), Msg::EpochLog(closed.log.clone()))
                }
            };
            out.push(OutMsg { dest, msg });
        }
        for inv in closed.invokes {
            self.coord.on_invoke_at(
                inv.txn,
                inv.client,
                inv.procedure,
                inv.can_abort,
                now,
                &mut self.scratch,
            );
        }
    }

    pub fn step(&mut self, msg: Msg<E>, now: Nanos, out: &mut Vec<OutMsg<E>>) {
        debug_assert!(self.scratch.is_empty());
        match msg {
            Msg::Invoke {
                txn,
                client,
                procedure,
                can_abort,
            } => {
                if self.seq.is_some() {
                    let closed = self
                        .seq
                        .as_mut()
                        .expect("checked")
                        .push(txn, client, procedure, can_abort, now);
                    if let Some(closed) = closed {
                        self.emit_closed(closed, now, out);
                    }
                } else {
                    self.coord.on_invoke_at(
                        txn,
                        client,
                        procedure,
                        can_abort,
                        now,
                        &mut self.scratch,
                    )
                }
            }
            Msg::Response(r) => self.coord.on_response(r, &mut self.scratch),
            Msg::Tick => {
                if let Some(timeout) = self.expiry {
                    // Presumed distributed deadlock across shards: abort
                    // with the retryable CrossCoordinator so the clients
                    // re-submit (§4.3's timeout resolution, applied to
                    // coordinator chains).
                    let before = self.scratch.len();
                    self.coord.expire_stalled(
                        now,
                        timeout,
                        AbortReason::CrossCoordinator,
                        &mut self.scratch,
                    );
                    let expired = self.scratch[before..]
                        .iter()
                        .filter(|m| {
                            matches!(
                                m,
                                CoordOut::ClientResult {
                                    result: TxnResult::Aborted(AbortReason::CrossCoordinator),
                                    ..
                                }
                            )
                        })
                        .count() as u64;
                    self.cross_coord_aborts += expired;
                    // Backends disable expiry under sequencing; an abort
                    // here with the sequencer live is a wiring bug.
                    debug_assert!(
                        self.seq.is_none() || expired == 0,
                        "CrossCoordinator abort while sequencing is on"
                    );
                }
                // Age boundary: close the open epoch once its oldest
                // buffered invocation has waited `max_delay`.
                let closed = match &mut self.seq {
                    Some(seq)
                        if seq
                            .oldest_enqueued_at()
                            .is_some_and(|t| now.saturating_sub(t) >= self.seq_delay) =>
                    {
                        Some(seq.close(now, CloseKind::Age))
                    }
                    _ => None,
                };
                if let Some(closed) = closed {
                    self.emit_closed(closed, now, out);
                }
            }
            Msg::RoutingUpdate { partition, epoch } => {
                let _aborted = self
                    .coord
                    .on_partition_failed(partition, epoch, &mut self.scratch);
                if let Some(seq) = self.seq.as_mut() {
                    // Membership changed: end the era. Buffered
                    // invocations bounce to their clients for a retry in
                    // the new era; the era-end marker tells every
                    // partition where the old era's merge stops.
                    let (marker, bounced) = seq.on_era_change();
                    for dest in broadcast_dests(self.partitions, self.shards, self.id) {
                        let (dest, msg) = match dest {
                            EpochLogDest::Partition(p) => {
                                (ActorId::Partition(p), Msg::EpochLog(marker.clone()))
                            }
                            EpochLogDest::Shard(k) => {
                                (ActorId::Coordinator(k), Msg::EpochLog(marker.clone()))
                            }
                        };
                        out.push(OutMsg { dest, msg });
                    }
                    for inv in bounced {
                        out.push(OutMsg {
                            dest: ActorId::Client(inv.client),
                            msg: Msg::Result {
                                txn: inv.txn,
                                result: TxnResult::Aborted(AbortReason::PartitionFailed),
                            },
                        });
                    }
                }
            }
            Msg::DecisionAck { txn, partition } => {
                self.coord
                    .on_decision_ack(txn, partition, &mut self.scratch)
            }
            Msg::EpochLog(log) => {
                let closed = match &mut self.seq {
                    Some(seq) => seq.on_peer_log(&log, now),
                    None => Vec::new(),
                };
                for c in closed {
                    self.emit_closed(c, now, out);
                }
            }
            Msg::PeerNote(note) => self.coord.on_peer_decision(note, &mut self.scratch),
            _ => debug_assert!(false, "unexpected message at coordinator"),
        }
        let _ = self.coord.take_cpu();
        for o in self.scratch.drain(..) {
            push_coord_out(o, out);
        }
    }
}

// ---------------------------------------------------------------------
// Membership (control plane)
// ---------------------------------------------------------------------

/// The replication control plane as an actor: the sole owner of
/// membership/epoch state (`hcc_core::MembershipCore`). On a failure
/// notification it drives the whole failover: promote the first backup,
/// flip the backends' routing table, tell the dead node to rejoin, and
/// notify every coordinator shard with an epoch-stamped routing update.
///
/// Emission order matters — the promotion must be in the new primary's
/// mailbox before the membership flip makes other actors route fragments
/// to it, before the rejoin can trigger a state fetch, and before any
/// shard can re-deliver in-doubt commits to the promoted node.
pub struct MembershipActor {
    core: MembershipCore,
    /// Coordinator shard count, for the routing-update fan-out.
    coordinators: u32,
}

impl MembershipActor {
    pub fn new(coordinators: u32) -> Self {
        MembershipActor {
            core: MembershipCore::new(),
            coordinators: coordinators.max(1),
        }
    }

    pub fn step<E: ExecutionEngine>(&mut self, msg: Msg<E>, out: &mut Vec<OutMsg<E>>) {
        match msg {
            Msg::PrimaryFailed { partition } => {
                let up = self.core.on_primary_failed(partition);
                out.push(OutMsg {
                    dest: ActorId::Replica(partition, up.new_primary_slot),
                    msg: Msg::Promote { epoch: up.epoch },
                });
                out.push(OutMsg {
                    dest: ActorId::Control,
                    msg: Msg::Promoted {
                        partition,
                        slot: up.new_primary_slot,
                    },
                });
                out.push(OutMsg {
                    dest: ActorId::Replica(partition, up.failed_slot),
                    msg: Msg::Rejoin {
                        epoch: up.epoch,
                        primary_slot: up.new_primary_slot,
                    },
                });
                for k in 0..self.coordinators {
                    out.push(OutMsg {
                        dest: ActorId::Coordinator(CoordinatorId(k)),
                        msg: Msg::RoutingUpdate {
                            partition,
                            epoch: up.epoch,
                        },
                    });
                }
            }
            _ => debug_assert!(false, "unexpected message at membership actor"),
        }
    }
}

// ---------------------------------------------------------------------
// Replica
// ---------------------------------------------------------------------

/// The role a replica node currently plays; see the module docs.
enum Role<E: ExecutionEngine> {
    Primary {
        sched: Box<dyn Scheduler<E> + Send>,
        /// Commit-order log shipping state; `None` when replication is off.
        session: Option<ReplicationSession<E::Fragment>>,
        /// Slots this primary ships records to.
        targets: Vec<u32>,
        /// Per-backup acked watermark.
        acks: AckTracker,
        /// Committed single-partition results held until their commit
        /// record is acked by every backup (paper §2.2), as
        /// (required seq, client, txn, result).
        held: VecDeque<(u64, ClientId, TxnId, TxnResult<E::Output>)>,
        /// seq of each shipped-but-possibly-unacked record, for the hold
        /// decision (pruned as the watermark advances).
        shipped_seq: FxHashMap<TxnId, u64>,
        /// Transactions this node applied during its backup past (empty
        /// for an initial primary): the exactly-once guard that keeps a
        /// re-delivered in-doubt commit from applying twice when its
        /// record *did* reach the backups before the crash.
        applied: hcc_common::FxHashSet<TxnId>,
    },
    Backup {
        replica: ReplicaCore,
    },
    Failed,
    Recovering,
}

/// Durable command-log state owned by a primary when
/// `SystemConfig::durability` is on.
///
/// The primary appends one framed commit record per committed transaction
/// and syncs in batches under the shared [`GroupCommit`] policy. Committed
/// single-partition results park in `held` until their record's batch is
/// durable; 2PC decision acks park in `pending_acks` the same way, which
/// transitively parks the result the coordinator (or the locking client's
/// driver) is holding for the transaction.
struct Durability<E: ExecutionEngine> {
    log: MemLog,
    gc: GroupCommit,
    /// Log seq of each appended-but-not-yet-released commit record.
    logged_seq: FxHashMap<TxnId, u64>,
    /// Committed single-partition results awaiting durability, in log-seq
    /// order (commit order == append order, so pushes stay sorted).
    held: VecDeque<(u64, ClientId, TxnId, TxnResult<E::Output>)>,
    /// Deferred 2PC decision acks awaiting durability, in log-seq order.
    pending_acks: VecDeque<(u64, TxnId, CoordinatorRef)>,
    /// Stall-guard watermark: records at or below this seq belong to a
    /// batch the guard abandoned — their transactions were bounced with
    /// `LogStalled` (or their acks released undurable) and must not park
    /// again when a late result shows up.
    abandoned_below: u64,
}

impl<E: ExecutionEngine> Durability<E> {
    fn new(cfg: DurabilityConfig) -> Self {
        Durability {
            log: MemLog::new(),
            gc: GroupCommit::new(cfg),
            logged_seq: FxHashMap::default(),
            held: VecDeque::new(),
            pending_acks: VecDeque::new(),
            abandoned_below: 0,
        }
    }
}

/// What a replica thread/slot hands back at shutdown.
pub struct ReplicaParts<E> {
    pub group: PartitionId,
    pub slot: u32,
    pub engine: E,
    /// True if the node ended the run as the group's primary.
    pub is_primary: bool,
    /// True if the node ended the run as a live backup.
    pub is_backup: bool,
    pub sched: SchedulerCounters,
    pub repl: ReplicationCounters,
    /// Framed bytes of the node's durable command log after a final clean
    /// sync (primary with durability on; `None` otherwise).
    pub log_image: Option<Vec<u8>>,
    /// Durable-log counters (all zero when durability was off or the node
    /// never served as a logging primary).
    pub dur: DurabilityCounters,
    /// Partition-side sequencer counters (all zero when sequencing was off
    /// or the node never served as a primary).
    pub seq: SequencerStats,
    /// Adaptive scheme-selection statistics (all zero/empty when
    /// `SystemConfig::adaptive` was off or the node never served as a
    /// primary).
    pub adaptive: AdaptiveStats,
}

/// One physical replica node (paper §2.3's single-threaded partition
/// engine, §3.2's backup, or both over its lifetime).
pub struct ReplicaActor<E: ExecutionEngine> {
    group: PartitionId,
    slot: u32,
    system: SystemConfig,
    engine: E,
    role: Role<E>,
    epoch: u32,
    /// Crash after shipping this many commit records (fault injection;
    /// armed only on the initial primary of the failed group).
    crash_after: Option<u64>,
    /// Durable command log + group-commit state (primary with durability
    /// on; a node promoted mid-run starts a fresh log — the prefix it
    /// applied as a backup is covered by the dead primary's log).
    dur: Option<Durability<E>>,
    outbox: Outbox<E::Output>,
    scratch: Vec<PartitionOut<E::Output>>,
    /// Scheduler counters accumulated across roles (a promoted node keeps
    /// the counters of its backup past; a crashed primary keeps its own).
    sched_counters: SchedulerCounters,
    repl_counters: ReplicationCounters,
    /// Epoch-merge admission gate (primary with sequencing on; a promoted
    /// node starts a fresh, unsynced one).
    seq: Option<PartitionSequencer<E::Fragment>>,
    /// Sequencer counters of gates retired by a role change.
    seq_retired: SequencerStats,
    /// Adaptive stats of schedulers retired by a role change (a crashed
    /// primary's switch history still happened).
    adaptive_retired: AdaptiveStats,
    /// Wall time of the most recent step, so `into_parts` can close the
    /// open scheme-residency segment at teardown.
    last_now: Nanos,
}

impl<E> ReplicaActor<E>
where
    E: ExecutionEngine + Send + 'static,
    E::Fragment: Send,
    E::Output: Send,
{
    /// Build the node for (group, slot). Slot 0 starts as primary, other
    /// slots as backups (only created when `system.replication > 1`).
    pub fn new(
        group: PartitionId,
        slot: u32,
        system: &SystemConfig,
        engine: E,
        crash_after: Option<u64>,
    ) -> Self {
        let replicate = system.replication > 1;
        let durable = system.durability.is_some();
        let role = if slot == 0 {
            Role::Primary {
                sched: make_scheduler_send::<E>(system, group),
                // The session builds the commit records; the durable log
                // needs them even with replication off.
                session: (replicate || durable).then(ReplicationSession::new),
                targets: (1..system.replication).collect(),
                acks: {
                    let mut a = AckTracker::new();
                    for s in 1..system.replication {
                        a.add_backup(s as usize, 0);
                    }
                    a
                },
                held: VecDeque::new(),
                shipped_seq: FxHashMap::default(),
                applied: hcc_common::FxHashSet::default(),
            }
        } else {
            Role::Backup {
                replica: ReplicaCore::new(),
            }
        };
        debug_assert!(
            crash_after.is_none() || (slot == 0 && replicate),
            "failure injection requires the primary of a replicated group"
        );
        ReplicaActor {
            group,
            slot,
            seq: (slot == 0 && system.sequencing_active())
                .then(|| PartitionSequencer::new(group, system.coordinators.max(1))),
            system: system.clone(),
            engine,
            role,
            epoch: 0,
            crash_after,
            dur: (slot == 0)
                .then(|| system.durability.map(Durability::new))
                .flatten(),
            outbox: Outbox::new(system.costs),
            scratch: Vec::new(),
            sched_counters: SchedulerCounters::default(),
            repl_counters: ReplicationCounters::default(),
            seq_retired: SequencerStats::default(),
            adaptive_retired: AdaptiveStats::default(),
            last_now: Nanos::ZERO,
        }
    }

    pub fn into_parts(mut self) -> ReplicaParts<E> {
        let (is_primary, is_backup) = match &self.role {
            Role::Primary { sched, .. } => {
                self.sched_counters.merge(&sched.counters());
                if let Some(a) = sched.adaptive_stats(self.last_now) {
                    self.adaptive_retired.merge(&a);
                }
                (true, false)
            }
            Role::Backup { replica } => {
                self.repl_counters.merge(&replica.counters);
                (false, true)
            }
            Role::Failed | Role::Recovering => (false, false),
        };
        // Close the durable log cleanly: one final sync so the harvested
        // image's durable prefix covers everything appended before
        // shutdown (held results were all released during the run; this
        // only settles the trailing partial batch).
        let (log_image, dur) = match self.dur.take() {
            Some(mut d) => {
                if d.gc.pending() > 0 && d.log.sync().is_ok() {
                    d.gc.on_synced();
                }
                (Some(d.log.full_image()), d.gc.counters)
            }
            None => (None, DurabilityCounters::default()),
        };
        let mut seq = self.seq_retired;
        if let Some(gate) = &self.seq {
            seq.merge(gate.stats());
        }
        ReplicaParts {
            group: self.group,
            slot: self.slot,
            engine: self.engine,
            is_primary,
            is_backup,
            sched: self.sched_counters,
            repl: self.repl_counters,
            log_image,
            dur,
            seq,
            adaptive: self.adaptive_retired,
        }
    }

    /// Bounce one in-flight transaction with `PartitionFailed`: the
    /// retryable "your participant's node just died" signal, addressed to
    /// whoever is waiting on this node (the client for single-partition
    /// work, the 2PC coordinator otherwise). The bounce shape itself is
    /// shared with the simulator (`hcc_core::replica::failover_bounce`).
    fn bounce(&mut self, task: &FragmentTask<E::Fragment>, out: &mut Vec<OutMsg<E>>) {
        let txn = task.txn;
        let Some(bounce) = failover_bounce(self.group, txn, std::slice::from_ref(task)) else {
            return;
        };
        self.repl_counters.failover_bounces += 1;
        out.push(match bounce {
            FailoverBounce::ToClient { client } => OutMsg {
                dest: ActorId::Client(client),
                msg: Msg::Result {
                    txn,
                    result: TxnResult::Aborted(AbortReason::PartitionFailed),
                },
            },
            FailoverBounce::ToCoordinator { dest, response } => match dest {
                CoordinatorRef::Central(k) => OutMsg {
                    dest: ActorId::Coordinator(k),
                    msg: Msg::Response(response),
                },
                CoordinatorRef::Client(c) => OutMsg {
                    dest: ActorId::Client(c),
                    msg: Msg::FragResponse(response),
                },
            },
        });
    }

    /// Route a decision ack to whoever coordinated the transaction (a
    /// central shard or, for client-driven 2PC, the client's driver).
    fn emit_decision_ack(&self, txn: TxnId, ack_to: CoordinatorRef, out: &mut Vec<OutMsg<E>>) {
        out.push(OutMsg {
            dest: match ack_to {
                CoordinatorRef::Central(k) => ActorId::Coordinator(k),
                CoordinatorRef::Client(c) => ActorId::Client(c),
            },
            msg: Msg::DecisionAck {
                txn,
                partition: self.group,
            },
        });
    }

    /// The injected crash: flush results whose records are already at the
    /// backups, bounce everything still in flight, notify the coordinator
    /// (the "failure detector"), and go dark.
    fn crash(&mut self, now: Nanos, out: &mut Vec<OutMsg<E>>) {
        let old = std::mem::replace(&mut self.role, Role::Failed);
        let Role::Primary {
            sched,
            session,
            held,
            ..
        } = old
        else {
            unreachable!("crash is armed only on a primary");
        };
        self.sched_counters.merge(&sched.counters());
        if let Some(a) = sched.adaptive_stats(now) {
            self.adaptive_retired.merge(&a);
        }
        // Held results are for transactions whose records the backups
        // already have (only the ack round-trip was outstanding), so
        // releasing them loses nothing and keeps clients from hanging.
        for (_, client, txn, result) in held {
            out.push(OutMsg {
                dest: ActorId::Client(client),
                msg: Msg::Result { txn, result },
            });
        }
        if let Some(mut session) = session {
            for (_txn, frags) in session.take_in_flight() {
                if let Some(task) = frags.first() {
                    self.bounce(task, out);
                }
            }
        }
        // The log dies with the node, but everything it was parking gates
        // on records the backups already replayed (failure injection
        // requires replication): release rather than lose them — a crashed
        // primary falls back on replication as its durability story.
        if let Some(mut dur) = self.dur.take() {
            for (_, client, txn, result) in dur.held.drain(..) {
                out.push(OutMsg {
                    dest: ActorId::Client(client),
                    msg: Msg::Result { txn, result },
                });
            }
            for (_, txn, ack_to) in dur.pending_acks.drain(..) {
                self.emit_decision_ack(txn, ack_to, out);
            }
        }
        self.repl_counters.failed_at_ns = now.0;
        out.push(OutMsg {
            dest: ActorId::Membership,
            msg: Msg::PrimaryFailed {
                partition: self.group,
            },
        });
    }

    /// Primary-side: the transaction committed here — ship its commit
    /// record to every backup, remember its seq for the hold decision, and
    /// append it to the durable log.
    fn ship_commit(&mut self, txn: TxnId, now: Nanos, out: &mut Vec<OutMsg<E>>) {
        let mut log_bytes: Option<Vec<u8>> = None;
        {
            let Role::Primary {
                session: Some(session),
                targets,
                shipped_seq,
                ..
            } = &mut self.role
            else {
                return;
            };
            let Some(record) = session.on_commit(txn) else {
                return;
            };
            if self.dur.is_some() {
                log_bytes = Some(encode_to_vec(&record));
            }
            // Clone per extra backup; the last (commonly only) target moves
            // the record — zero allocations on the k=1 hot path.
            if let Some((&last, rest)) = targets.split_last() {
                shipped_seq.insert(txn, record.seq);
                self.repl_counters.records_shipped += 1;
                for &slot in rest {
                    out.push(OutMsg {
                        dest: ActorId::Replica(self.group, slot),
                        msg: Msg::Commit {
                            from_slot: self.slot,
                            record: record.clone(),
                        },
                    });
                }
                out.push(OutMsg {
                    dest: ActorId::Replica(self.group, last),
                    msg: Msg::Commit {
                        from_slot: self.slot,
                        record,
                    },
                });
            }
        }
        if let Some(bytes) = log_bytes {
            self.log_append(txn, &bytes, now, out);
        }
    }

    /// Append a committed transaction's record to the durable log and run
    /// the group-commit policy. An append *error* (injected write failure)
    /// leaves the record without durability: the transaction already
    /// committed in the engine, so it is released as if durability were
    /// off — the sim's fault harness pins the stricter bounce semantics.
    fn log_append(&mut self, txn: TxnId, bytes: &[u8], now: Nanos, out: &mut Vec<OutMsg<E>>) {
        let Some(dur) = &mut self.dur else { return };
        let Ok(seq) = dur.log.append(bytes) else {
            return;
        };
        dur.logged_seq.insert(txn, seq);
        if dur.gc.on_append(now) == FlushDecision::SyncNow {
            self.sync_log(now, out);
        }
    }

    /// Issue a log sync. In the live runtime the sync call is synchronous:
    /// it either completes here — releasing everything its batch gated —
    /// or fails (injected stall), in which case the batch stays pending
    /// until the tick-driven stall guard gives up on it.
    fn sync_log(&mut self, now: Nanos, out: &mut Vec<OutMsg<E>>) {
        let Some(dur) = &mut self.dur else { return };
        dur.gc.on_sync_issued(now);
        if dur.log.sync().is_ok() {
            dur.gc.on_synced();
            self.release_durable(out);
        }
    }

    /// Release parked results and deferred decision acks whose records are
    /// under the log's durable watermark.
    fn release_durable(&mut self, out: &mut Vec<OutMsg<E>>) {
        let group = self.group;
        let Some(dur) = &mut self.dur else { return };
        let durable = dur.log.durable();
        while let Some((seq, ..)) = dur.held.front() {
            if *seq > durable {
                break;
            }
            let (_, client, txn, result) = dur.held.pop_front().expect("checked front");
            out.push(OutMsg {
                dest: ActorId::Client(client),
                msg: Msg::Result { txn, result },
            });
        }
        while let Some((seq, ..)) = dur.pending_acks.front() {
            if *seq > durable {
                break;
            }
            let (_, txn, ack_to) = dur.pending_acks.pop_front().expect("checked front");
            out.push(OutMsg {
                dest: match ack_to {
                    CoordinatorRef::Central(k) => ActorId::Coordinator(k),
                    CoordinatorRef::Client(c) => ActorId::Client(c),
                },
                msg: Msg::DecisionAck {
                    txn,
                    partition: group,
                },
            });
        }
    }

    /// Final durability gate for a committed result on its way to the
    /// client: deliver if its record is durable (or durability is off /
    /// the append failed), park until the batch syncs, or — for records in
    /// a batch the stall guard abandoned — bounce with the retryable
    /// `LogStalled`.
    fn deliver_result(
        &mut self,
        client: ClientId,
        txn: TxnId,
        mut result: TxnResult<E::Output>,
        out: &mut Vec<OutMsg<E>>,
    ) {
        if result.is_committed() {
            if let Some(dur) = &mut self.dur {
                if let Some(seq) = dur.logged_seq.remove(&txn) {
                    if seq > dur.log.durable() {
                        if seq <= dur.abandoned_below {
                            dur.gc.counters.stalled_aborts += 1;
                            result = TxnResult::Aborted(AbortReason::LogStalled);
                        } else {
                            dur.gc.counters.results_held += 1;
                            dur.held.push_back((seq, client, txn, result));
                            return;
                        }
                    }
                }
            }
        }
        out.push(OutMsg {
            dest: ActorId::Client(client),
            msg: Msg::Result { txn, result },
        });
    }

    /// Tick-driven log maintenance: flush a batch whose group-commit
    /// interval elapsed, then fire the stall guard if the oldest unsynced
    /// append blew past the sync deadline — bounce every parked result
    /// with `LogStalled`, release the deferred acks (giving up durability
    /// for those decisions rather than wedging 2PC), and wipe the batch
    /// slate so the log can accept new work.
    fn poll_log(&mut self, now: Nanos, out: &mut Vec<OutMsg<E>>) {
        let flush = match &mut self.dur {
            Some(dur) => dur.gc.poll(now) == FlushDecision::SyncNow,
            None => return,
        };
        if flush {
            self.sync_log(now, out);
        }
        let group = self.group;
        let Some(dur) = &mut self.dur else { return };
        if !dur.gc.stalled(now) {
            return;
        }
        dur.abandoned_below = dur.log.appended();
        let victims: Vec<_> = dur.held.drain(..).collect();
        let acks: Vec<_> = dur.pending_acks.drain(..).collect();
        dur.gc.on_stall_abort(victims.len() as u64);
        for (_, client, txn, _) in victims {
            out.push(OutMsg {
                dest: ActorId::Client(client),
                msg: Msg::Result {
                    txn,
                    result: TxnResult::Aborted(AbortReason::LogStalled),
                },
            });
        }
        for (_, txn, ack_to) in acks {
            out.push(OutMsg {
                dest: match ack_to {
                    CoordinatorRef::Central(k) => ActorId::Coordinator(k),
                    CoordinatorRef::Client(c) => ActorId::Client(c),
                },
                msg: Msg::DecisionAck {
                    txn,
                    partition: group,
                },
            });
        }
    }

    pub fn step(&mut self, msg: Msg<E>, now: Nanos, ctl: &RunControl, out: &mut Vec<OutMsg<E>>) {
        self.last_now = now;
        // Dispatch on a copy of the role discriminant so the arms are free
        // to replace `self.role` (promotion, crash, rejoin).
        enum Kind {
            Primary,
            Backup,
            Failed,
            Recovering,
        }
        let kind = match &self.role {
            Role::Primary { .. } => Kind::Primary,
            Role::Backup { .. } => Kind::Backup,
            Role::Failed => Kind::Failed,
            Role::Recovering => Kind::Recovering,
        };
        match kind {
            Kind::Primary => self.step_primary(msg, now, out),
            Kind::Backup => self.step_backup(msg, now, ctl, out),
            Kind::Failed => match msg {
                Msg::Fragment(task) => self.bounce(&task, out),
                Msg::Rejoin {
                    epoch,
                    primary_slot,
                } => {
                    self.epoch = epoch;
                    self.role = Role::Recovering;
                    out.push(OutMsg {
                        dest: ActorId::Replica(self.group, primary_slot),
                        msg: Msg::FetchState {
                            requester_slot: self.slot,
                        },
                    });
                }
                // Decisions, ticks, acks, stray commit records: a dead
                // node drops them.
                _ => {}
            },
            Kind::Recovering => match msg {
                Msg::Fragment(task) => self.bounce(&task, out),
                Msg::Snapshot { engine, seq } => {
                    self.engine = *engine;
                    let mut replica = ReplicaCore::new();
                    replica.reset_to(seq);
                    self.role = Role::Backup { replica };
                    self.repl_counters.recoveries += 1;
                    self.repl_counters.recovered_at_ns = now.0;
                    ctl.recovery_done.store(true, Ordering::SeqCst);
                }
                _ => {}
            },
        }
    }

    /// Hand a fragment to the scheduler (recording it for replication
    /// first) — the single admission point for direct, sequenced, and
    /// log-released fragments.
    fn admit_fragment(&mut self, task: FragmentTask<E::Fragment>, now: Nanos) {
        if let Role::Primary {
            session: Some(session),
            ..
        } = &mut self.role
        {
            session.record_fragment(&task);
        }
        let Role::Primary { sched, .. } = &mut self.role else {
            unreachable!()
        };
        sched.on_fragment(task, &mut self.engine, now, &mut self.outbox);
    }

    fn step_primary(&mut self, msg: Msg<E>, now: Nanos, out: &mut Vec<OutMsg<E>>) {
        debug_assert!(self.outbox.messages.is_empty());
        match msg {
            Msg::Fragment(task) => {
                // Exactly-once guard for in-doubt redelivery: if this
                // (promoted) primary already applied the transaction as a
                // backup — its commit record reached the group before the
                // crash — executing it again would double-apply. Ack the
                // commit directly instead.
                if task.multi_partition {
                    if let Role::Primary { applied, .. } = &self.role {
                        if applied.contains(&task.txn) {
                            if let CoordinatorRef::Central(k) = task.coordinator {
                                out.push(OutMsg {
                                    dest: ActorId::Coordinator(k),
                                    msg: Msg::DecisionAck {
                                        txn: task.txn,
                                        partition: self.group,
                                    },
                                });
                            }
                            return;
                        }
                    }
                }
                // Sequencing gate: centrally coordinated MP round-0
                // fragments dispatch in merged epoch order; a fragment
                // ahead of its turn is held until its predecessors arrive.
                if self.seq.is_some() && PartitionSequencer::gates(&task) {
                    match self.seq.as_mut().expect("checked").on_mp_fragment(task) {
                        Admit::Deliver(tasks) => {
                            for t in tasks {
                                self.admit_fragment(t, now);
                            }
                        }
                        Admit::Held => {}
                    }
                } else {
                    self.admit_fragment(task, now);
                }
            }
            Msg::EpochLog(log) => {
                let released = match &mut self.seq {
                    Some(seq) => seq.on_log(log),
                    None => Vec::new(),
                };
                for t in released {
                    self.admit_fragment(t, now);
                }
            }
            Msg::Decision(d, ack_to) => {
                if d.commit {
                    self.ship_commit(d.txn, now, out);
                } else if let Role::Primary {
                    session: Some(session),
                    ..
                } = &mut self.role
                {
                    session.on_abort(d.txn);
                }
                let Role::Primary { sched, .. } = &mut self.role else {
                    unreachable!()
                };
                let strays_before = sched.counters().stray_decisions;
                sched.on_decision(d, &mut self.engine, now, &mut self.outbox);
                // Acknowledge a processed commit so the shard can drop it
                // from the 2PC in-doubt window. A *stray* commit (a
                // transaction that died with a crashed predecessor) must
                // NOT be acked — acking it would falsely resolve the very
                // window the redelivery machinery is about to close.
                if let Some(ack_to) = ack_to {
                    let clean = {
                        let Role::Primary { sched, .. } = &self.role else {
                            unreachable!()
                        };
                        d.commit && sched.counters().stray_decisions == strays_before
                    };
                    if clean {
                        // With durability on, defer the ack until the
                        // record's batch syncs — the coordinator (or the
                        // locking client's driver) is holding the
                        // committed result until every participant acks.
                        let deferred = match &mut self.dur {
                            Some(dur) => match dur.logged_seq.remove(&d.txn) {
                                Some(seq)
                                    if seq > dur.log.durable() && seq > dur.abandoned_below =>
                                {
                                    dur.pending_acks.push_back((seq, d.txn, ack_to));
                                    true
                                }
                                _ => false,
                            },
                            None => false,
                        };
                        if !deferred {
                            self.emit_decision_ack(d.txn, ack_to, out);
                        }
                    }
                }
            }
            Msg::Tick => {
                {
                    let Role::Primary { sched, .. } = &mut self.role else {
                        unreachable!()
                    };
                    let _ = sched.on_tick(&mut self.engine, now, &mut self.outbox);
                }
                self.poll_log(now, out);
            }
            Msg::CommitAck { slot, seq } => {
                let mut released = Vec::new();
                {
                    let Role::Primary {
                        acks,
                        held,
                        shipped_seq,
                        ..
                    } = &mut self.role
                    else {
                        unreachable!()
                    };
                    acks.on_ack(slot as usize, seq);
                    let watermark = acks.min_acked();
                    while let Some((required, ..)) = held.front() {
                        if *required > watermark {
                            break;
                        }
                        let entry = held.pop_front().expect("checked front");
                        released.push(entry);
                    }
                    shipped_seq.retain(|_, s| *s > watermark);
                }
                // A result clears the replication gate first, then the
                // durability gate (it may park again until its batch
                // syncs).
                for (_, client, txn, result) in released {
                    self.deliver_result(client, txn, result, out);
                }
                return; // pure bookkeeping: no scheduler outputs to drain
            }
            Msg::Promote { .. } => {
                // Already primary (initial slot-0 primary is never sent
                // this; defensive for re-deliveries).
                return;
            }
            Msg::FetchState { requester_slot } => {
                let seq = {
                    let Role::Primary {
                        session,
                        targets,
                        acks,
                        ..
                    } = &mut self.role
                    else {
                        unreachable!()
                    };
                    let seq = session.as_ref().map_or(0, |s| s.shipped());
                    if !targets.contains(&requester_slot) {
                        targets.push(requester_slot);
                    }
                    acks.add_backup(requester_slot as usize, seq);
                    seq
                };
                self.repl_counters.snapshots_served += 1;
                out.push(OutMsg {
                    dest: ActorId::Replica(self.group, requester_slot),
                    msg: Msg::Snapshot {
                        engine: Box::new(self.engine.snapshot()),
                        seq,
                    },
                });
                return;
            }
            _ => {
                debug_assert!(false, "unexpected message at primary {}", self.group);
                return;
            }
        }
        // Adaptive runs: a scheme swap may have completed inside the
        // scheduler call above. Stamp it into the replication session
        // *before* shipping this step's commit records, so the next
        // shipped record carries the switch and a promoted backup resumes
        // in the same scheme at the same point of the commit order.
        if self.system.adaptive.is_on() {
            let Role::Primary { sched, session, .. } = &mut self.role else {
                unreachable!()
            };
            for note in sched.take_switch_notes() {
                if let Some(session) = session {
                    session.mark_scheme_switch(SchemeSwitch {
                        epoch: note.epoch,
                        scheme: note.scheme,
                    });
                }
            }
        }
        // Drain the scheduler's outputs: ship records for freshly
        // committed single-partition (and speculatively released)
        // transactions, hold committed results that are not yet under the
        // acked watermark, route the rest.
        let mut scratch = std::mem::take(&mut self.scratch);
        let _cpu = self.outbox.take_into(&mut scratch);
        for m in scratch.drain(..) {
            match m {
                PartitionOut::ToClient {
                    client,
                    txn,
                    result,
                } => {
                    if result.is_committed() {
                        self.ship_commit(txn, now, out);
                    } else if let Role::Primary {
                        session: Some(session),
                        ..
                    } = &mut self.role
                    {
                        session.on_abort(txn);
                    }
                    // Replication gate first; a result under the acked
                    // watermark still has to clear the durability gate.
                    let repl_hold = {
                        let Role::Primary {
                            acks, shipped_seq, ..
                        } = &self.role
                        else {
                            unreachable!()
                        };
                        shipped_seq
                            .get(&txn)
                            .copied()
                            .filter(|&seq| seq > acks.min_acked())
                    };
                    match repl_hold {
                        Some(seq) => {
                            let Role::Primary { held, .. } = &mut self.role else {
                                unreachable!()
                            };
                            held.push_back((seq, client, txn, result));
                        }
                        None => self.deliver_result(client, txn, result, out),
                    }
                }
                PartitionOut::ToCoordinator { dest, response } => {
                    let out_msg = match dest {
                        CoordinatorRef::Central(k) => OutMsg {
                            dest: ActorId::Coordinator(k),
                            msg: Msg::Response(response),
                        },
                        CoordinatorRef::Client(c) => OutMsg {
                            dest: ActorId::Client(c),
                            msg: Msg::FragResponse(response),
                        },
                    };
                    out.push(out_msg);
                }
            }
        }
        self.scratch = scratch;
        // Fault injection: die once the threshold-th record has shipped.
        if let Some(threshold) = self.crash_after {
            let shipped = match &self.role {
                Role::Primary {
                    session: Some(session),
                    ..
                } => session.shipped(),
                _ => 0,
            };
            if shipped >= threshold {
                self.crash_after = None;
                self.crash(now, out);
            }
        }
    }

    fn step_backup(
        &mut self,
        msg: Msg<E>,
        _now: Nanos,
        _ctl: &RunControl,
        out: &mut Vec<OutMsg<E>>,
    ) {
        match msg {
            Msg::Commit { from_slot, record } => {
                let Role::Backup { replica } = &mut self.role else {
                    unreachable!()
                };
                let seq = record.seq;
                // Propagate, don't assert: a replay failure lands in the
                // counters and fails the run's health checks.
                let _ = replica.apply(&mut self.engine, &record);
                out.push(OutMsg {
                    dest: ActorId::Replica(self.group, from_slot),
                    msg: Msg::CommitAck {
                        slot: self.slot,
                        seq: seq.min(replica.watermark()),
                    },
                });
            }
            Msg::Promote { epoch } => {
                let Role::Backup { replica } = &mut self.role else {
                    unreachable!()
                };
                // Every record the dead primary shipped is already applied
                // (it was queued ahead of this promotion on FIFO links);
                // resume its log without a gap. The failed node becomes a
                // ship target only once it rejoins (via FetchState).
                self.repl_counters.merge(&replica.counters);
                let applied = replica.take_applied_txns();
                let watermark = replica.watermark();
                // Adaptive runs: the commit log says which scheme was in
                // force at the watermark; resume there so failover lands
                // in the same scheme at the same transition epoch.
                let resume = replica.scheme_switch();
                let targets: Vec<u32> = (1..self.system.replication)
                    .filter(|&s| s != self.slot)
                    .collect();
                let mut acks = AckTracker::new();
                for &s in &targets {
                    // Surviving sibling backups hold the same record
                    // prefix this node does.
                    acks.add_backup(s as usize, watermark);
                }
                self.epoch = epoch;
                self.repl_counters.promotions += 1;
                self.role = Role::Primary {
                    sched: make_scheduler_send_resumed::<E>(&self.system, self.group, resume),
                    session: Some(ReplicationSession::resume_from(watermark)),
                    targets,
                    acks,
                    held: VecDeque::new(),
                    shipped_seq: FxHashMap::default(),
                    applied,
                };
                // A promoted primary logs from here on into a fresh log;
                // the prefix it applied as a backup lives in the dead
                // node's log (correlated-crash recovery of a failed-over
                // group needs both, which the harness does not exercise).
                self.dur = self.system.durability.map(Durability::new);
                // The dead primary's merge position and held fragments are
                // lost with it: start unsynced and join the merge at the
                // first complete post-failover era.
                if self.system.sequencing_active() {
                    let old = self.seq.replace(PartitionSequencer::promoted(
                        self.group,
                        self.system.coordinators.max(1),
                    ));
                    if let Some(old) = old {
                        self.seq_retired.merge(old.stats());
                    }
                }
            }
            // A fragment can only arrive here through the membership flip
            // racing ahead of the promotion, which the coordinator's
            // emission order prevents; bounce defensively so the client
            // retries rather than hangs.
            Msg::Fragment(task) => self.bounce(&task, out),
            // Late decisions/acks/ticks/epoch logs for a role this node no
            // longer plays: drop. (An epoch log can only arrive here
            // through the membership flip racing ahead of the promotion;
            // the unsynced promoted gate passes the affected fragments
            // through when they are redelivered.)
            Msg::Decision(..) | Msg::CommitAck { .. } | Msg::Tick | Msg::EpochLog(_) => {}
            Msg::FetchState { requester_slot } => {
                // Serve a sibling's recovery from backup state (only the
                // primary is asked in the current protocol, but the answer
                // is just as correct from any live replica).
                let Role::Backup { replica } = &self.role else {
                    unreachable!()
                };
                let seq = replica.watermark();
                self.repl_counters.snapshots_served += 1;
                out.push(OutMsg {
                    dest: ActorId::Replica(self.group, requester_slot),
                    msg: Msg::Snapshot {
                        engine: Box::new(self.engine.snapshot()),
                        seq,
                    },
                });
            }
            _ => debug_assert!(false, "unexpected message at backup {}", self.group),
        }
    }
}
