//! The live runtime: the same concurrency control state machines as the
//! simulator, driven on real OS threads — behind pluggable backends.
//!
//! The actor model mirrors the paper: one single-threaded execution engine
//! per partition (§2.3), one central coordinator (§3.3), closed-loop
//! clients (§5), and — when replication is enabled — one backup per
//! partition applying committed transactions in commit order (§3.2). All
//! of that protocol logic lives in [`actors`] as poll-driven state
//! machines over the cores from `hcc-core`; a [`Backend`] decides how the
//! actors get CPU:
//!
//! * [`threaded::ThreadedBackend`] — one OS thread per actor, parked on a
//!   channel. Faithful to the paper's process model and fastest at small
//!   client counts, but a run with `C` clients costs `C + partitions + 2`
//!   threads: the host drowns well before "millions of users".
//! * [`multiplexed::MultiplexedBackend`] — every actor multiplexed onto a
//!   small fixed worker pool via per-actor mailboxes and a ready queue
//!   (an epoll-style reactor, hand-rolled — the build is offline). Memory
//!   and thread count stay flat as clients grow, which is what lets a
//!   single host drive thousands of closed-loop clients.
//!
//! Crossbeam channels (threaded) and the mailbox queues (multiplexed)
//! both preserve per-link FIFO order, the property the speculation
//! protocol relies on.
//!
//! The runtime is the "it actually runs" build: examples and soak tests
//! use it, and the backup- and backend-equivalence checks run against it.
//! Calibrated performance curves come from `hcc-sim`, whose virtual clock
//! reproduces the paper's hardware ratios; the runtime measures whatever
//! the host delivers (in-process message passing is ~100× faster than the
//! paper's Ethernet, so its multi-partition stalls are proportionally
//! smaller).

// Associated-type generics make some signatures long; aliases would
// obscure more than they clarify here.
#![allow(clippy::type_complexity)]

pub mod actors;
pub mod multiplexed;
pub mod threaded;

pub use multiplexed::MultiplexedBackend;
pub use threaded::ThreadedBackend;

use crate::actors::ReplicaParts;
use hcc_common::stats::{
    AdaptiveStats, DurabilityCounters, LatencySummary, ReplicationCounters, SchedulerCounters,
    SequencerStats,
};
use hcc_common::{FailurePlan, Nanos, PartitionId, SystemConfig};
use hcc_core::client::ClientStats;
use hcc_core::{ExecutionEngine, RequestGenerator};
use std::time::{Duration, Instant};

/// Which backend drives the actors. Every runtime entry point takes one
/// explicitly — there is no implicit thread-per-actor default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// One OS thread per actor.
    Threaded,
    /// All actors on a fixed pool of `workers` threads.
    Multiplexed { workers: usize },
}

impl BackendChoice {
    /// The multiplexed backend with automatic pool sizing (`workers == 0`
    /// resolves through [`SystemConfig::resolved_workers`]: the config's
    /// `workers` knob, else the host's available parallelism).
    pub const fn multiplexed() -> Self {
        BackendChoice::Multiplexed { workers: 0 }
    }

    /// Parse a CLI-style backend name (`threaded` | `multiplexed[:N]`,
    /// where a bare `multiplexed` or `:0` sizes the pool automatically).
    /// Rejects anything else with a message naming the bad input — a typo
    /// must not silently fall back to a default backend.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "threaded" => Ok(BackendChoice::Threaded),
            "multiplexed" => Ok(BackendChoice::multiplexed()),
            _ => match s.strip_prefix("multiplexed:") {
                Some(n) => n
                    .parse()
                    .map(|workers| BackendChoice::Multiplexed { workers })
                    .map_err(|_| {
                        format!("bad worker count {n:?} in backend {s:?} (expected multiplexed:N)")
                    }),
                None => Err(format!(
                    "unknown backend {s:?} (expected `threaded` or `multiplexed[:N]`)"
                )),
            },
        }
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendChoice::Threaded => f.write_str("threaded"),
            BackendChoice::Multiplexed { workers: 0 } => f.write_str("multiplexed"),
            BackendChoice::Multiplexed { workers } => write!(f, "multiplexed:{workers}"),
        }
    }
}

/// How long a run lasts.
#[derive(Debug, Clone, Copy)]
pub enum RunMode {
    /// Warm up, then measure for a fixed wall-clock window (throughput
    /// runs; the committed count and latency samples come from the
    /// window).
    Timed { warmup: Duration, measure: Duration },
    /// Every client drives exactly this many requests to a final outcome
    /// (commit or user abort; transparent retries don't count), then the
    /// run drains. Total work is a pure function of the workload seed, so
    /// two backends given the same inputs must agree on the final
    /// committed state — the cross-backend equivalence contract.
    FixedRequests(u64),
}

/// Runtime configuration: the system under test, the backend that drives
/// it, the measurement protocol, and optional fault injection.
#[derive(Clone)]
pub struct RuntimeConfig {
    pub system: SystemConfig,
    pub backend: BackendChoice,
    pub mode: RunMode,
    /// Kill one group's primary at a deterministic point and drive the
    /// promote → recover protocol (requires `system.replication >= 2`).
    pub failure: Option<FailurePlan>,
}

impl RuntimeConfig {
    /// Standard timed run: 200 ms warm-up, 1 s measurement.
    pub fn new(system: SystemConfig, backend: BackendChoice) -> Self {
        RuntimeConfig {
            system,
            backend,
            mode: RunMode::Timed {
                warmup: Duration::from_millis(200),
                measure: Duration::from_secs(1),
            },
            failure: None,
        }
    }

    /// Short timed run for tests and smoke benches: 50 ms warm-up, 300 ms
    /// measurement.
    pub fn quick(system: SystemConfig, backend: BackendChoice) -> Self {
        RuntimeConfig::new(system, backend)
            .with_window(Duration::from_millis(50), Duration::from_millis(300))
    }

    /// Deterministic fixed-work run: `requests_per_client` final outcomes
    /// per client, then drain.
    pub fn fixed_work(
        system: SystemConfig,
        backend: BackendChoice,
        requests_per_client: u64,
    ) -> Self {
        assert!(requests_per_client > 0, "a fixed-work run needs work");
        RuntimeConfig {
            system,
            backend,
            mode: RunMode::FixedRequests(requests_per_client),
            failure: None,
        }
    }

    pub fn with_window(mut self, warmup: Duration, measure: Duration) -> Self {
        self.mode = RunMode::Timed { warmup, measure };
        self
    }

    /// Inject a primary crash (kill → promote → recover); see
    /// [`FailurePlan`].
    pub fn with_failure(mut self, plan: FailurePlan) -> Self {
        self.failure = Some(plan);
        self
    }
}

/// Per-worker reactor counters from a multiplexed run (empty for the
/// threaded backend). `loops` counts scheduling iterations, `steps`
/// messages processed, `parks` condvar sleeps, `steals` tokens taken from
/// another worker's shared queue, and `busy_ns` wall time spent stepping
/// actors. The no-busy-spin invariant is `loops <= steps + parks + slack`:
/// every iteration either processes mail or goes to sleep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    pub loops: u64,
    pub steps: u64,
    /// Messages stepped on partition-pinned (replica) actors. Non-zero
    /// only on a group's home worker — the partition-affinity invariant.
    pub pinned_steps: u64,
    pub parks: u64,
    pub steals: u64,
    pub busy_ns: u64,
}

/// What a run produced.
pub struct RuntimeReport<E: ExecutionEngine> {
    /// Transactions committed inside the measurement window (timed mode)
    /// or in total (fixed-work mode).
    pub committed: u64,
    pub throughput_tps: f64,
    /// Per-client stats merged (whole run), including the end-to-end
    /// latency histogram of committed transactions.
    pub clients: ClientStats,
    /// Scheduler counters summed across partitions (whole run).
    pub sched: SchedulerCounters,
    /// Replication counters summed across all replica nodes. Healthy runs
    /// must report `replay_failures == 0`; failover runs report one
    /// promotion and one recovery plus the crash/recovery timestamps.
    pub replication: ReplicationCounters,
    /// Final primary engines per group (after a failover, the promoted
    /// backup's engine), for state inspection.
    pub engines: Vec<E>,
    /// Final live-backup engines (when replication was enabled), in
    /// (group, slot) order — after a recovery this includes the rejoined
    /// node.
    pub backups: Vec<E>,
    /// Durable-log counters summed across all logging primaries (all zero
    /// when `SystemConfig::durability` is off).
    pub durability: DurabilityCounters,
    /// Final framed command-log image per group after a clean shutdown
    /// sync (`None` per group when durability is off, or for a group whose
    /// run-ending primary never logged — e.g. torn down mid-failover).
    pub logs: Vec<Option<Vec<u8>>>,
    /// Per-worker reactor counters (multiplexed backend only; empty for
    /// threaded runs). Index = worker id; partitions pin to
    /// `group % workers.len()`.
    pub workers: Vec<WorkerStats>,
    /// Epoch-sequencing counters summed across coordinator shards and
    /// partition gates (all zero when `SystemConfig::sequencing` is off,
    /// except `cross_coord_aborts`, counted in any mode).
    pub sequencer: SequencerStats,
    /// Adaptive scheme-selection statistics summed across partitions (all
    /// zero/empty when `SystemConfig::adaptive` is off).
    pub adaptive: AdaptiveStats,
}

impl<E: ExecutionEngine> RuntimeReport<E> {
    /// p50/p99/p999 digest of committed-transaction latency.
    pub fn latency(&self) -> LatencySummary {
        self.clients.latency.summary()
    }
}

/// A runtime backend: turns a configuration, a workload, and an engine
/// builder into a finished run. Implemented by [`ThreadedBackend`] and
/// [`MultiplexedBackend`]; select one per run via [`BackendChoice`] and
/// [`run`], or call a backend directly.
pub trait Backend {
    fn run<W, B>(
        &self,
        cfg: &RuntimeConfig,
        workload: W,
        build_engine: B,
    ) -> RuntimeReport<W::Engine>
    where
        W: RequestGenerator + Send + 'static,
        W::Engine: Send + 'static,
        <W::Engine as ExecutionEngine>::Fragment: Send + 'static,
        <W::Engine as ExecutionEngine>::Output: Send + 'static,
        B: Fn(PartitionId) -> W::Engine;
}

/// Run a workload on the backend selected by `cfg.backend`.
///
/// `build_engine` is called once per partition (plus once more per
/// partition for its backup when `system.replication > 1`).
pub fn run<W, B>(cfg: RuntimeConfig, workload: W, build_engine: B) -> RuntimeReport<W::Engine>
where
    W: RequestGenerator + Send + 'static,
    W::Engine: Send + 'static,
    <W::Engine as ExecutionEngine>::Fragment: Send + 'static,
    <W::Engine as ExecutionEngine>::Output: Send + 'static,
    B: Fn(PartitionId) -> W::Engine,
{
    match cfg.backend {
        BackendChoice::Threaded => ThreadedBackend.run(&cfg, workload, build_engine),
        BackendChoice::Multiplexed { workers } => {
            MultiplexedBackend { workers }.run(&cfg, workload, build_engine)
        }
    }
}

pub(crate) fn now_ns(epoch: Instant) -> Nanos {
    Nanos(epoch.elapsed().as_nanos() as u64)
}

/// Sort the harvested replica nodes into the report shape: the primary
/// engine per group, the live backups in (group, slot) order, and the
/// merged counter blocks.
pub(crate) fn assemble_replicas<E: ExecutionEngine>(
    mut parts: Vec<ReplicaParts<E>>,
    groups: usize,
) -> (
    Vec<E>,
    Vec<E>,
    SchedulerCounters,
    ReplicationCounters,
    DurabilityCounters,
    Vec<Option<Vec<u8>>>,
    SequencerStats,
    AdaptiveStats,
) {
    parts.sort_by_key(|p| (p.group, p.slot));
    let mut sched = SchedulerCounters::default();
    let mut repl = ReplicationCounters::default();
    let mut dur = DurabilityCounters::default();
    let mut seq = SequencerStats::default();
    let mut adaptive = AdaptiveStats::default();
    let mut engines: Vec<Option<E>> = (0..groups).map(|_| None).collect();
    let mut logs: Vec<Option<Vec<u8>>> = (0..groups).map(|_| None).collect();
    let mut backups = Vec::new();
    for part in parts {
        sched.merge(&part.sched);
        repl.merge(&part.repl);
        dur.merge(&part.dur);
        seq.merge(&part.seq);
        adaptive.merge(&part.adaptive);
        if part.is_primary {
            let slot = engines
                .get_mut(part.group.as_usize())
                .expect("group in range");
            debug_assert!(slot.is_none(), "two primaries in one group");
            *slot = Some(part.engine);
            logs[part.group.as_usize()] = part.log_image;
        } else if part.is_backup {
            backups.push(part.engine);
        }
        // Failed/recovering nodes that never finished rejoining (possible
        // only when a timed run is torn down mid-recovery) hold stale
        // state and are reported through the counters alone.
    }
    let engines = engines
        .into_iter()
        .map(|e| e.expect("every group has a primary"))
        .collect();
    (engines, backups, sched, repl, dur, logs, seq, adaptive)
}

/// Finish a report from the pieces every backend harvests.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_report<E: ExecutionEngine>(
    mode: &RunMode,
    committed_in_window: u64,
    elapsed: Duration,
    clients: ClientStats,
    sched: SchedulerCounters,
    replication: ReplicationCounters,
    engines: Vec<E>,
    backups: Vec<E>,
    durability: DurabilityCounters,
    logs: Vec<Option<Vec<u8>>>,
    workers: Vec<WorkerStats>,
    sequencer: SequencerStats,
    adaptive: AdaptiveStats,
) -> RuntimeReport<E> {
    let (committed, secs) = match mode {
        RunMode::Timed { measure, .. } => (committed_in_window, measure.as_secs_f64()),
        RunMode::FixedRequests(_) => (clients.committed, elapsed.as_secs_f64().max(1e-9)),
    };
    RuntimeReport {
        committed,
        throughput_tps: committed as f64 / secs,
        clients,
        sched,
        replication,
        engines,
        backups,
        durability,
        logs,
        workers,
        sequencer,
        adaptive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_common::Scheme;
    use hcc_workloads::micro::{MicroConfig, MicroEngine, MicroWorkload};

    const BACKENDS: [BackendChoice; 2] = [
        BackendChoice::Threaded,
        BackendChoice::Multiplexed { workers: 4 },
    ];

    fn quick(scheme: Scheme, clients: u32, backend: BackendChoice) -> RuntimeConfig {
        RuntimeConfig::quick(
            SystemConfig::new(scheme)
                .with_partitions(2)
                .with_clients(clients),
            backend,
        )
        .with_window(Duration::from_millis(30), Duration::from_millis(200))
    }

    fn run_micro(scheme: Scheme, mp: f64, backend: BackendChoice) -> RuntimeReport<MicroEngine> {
        let mc = MicroConfig {
            mp_fraction: mp,
            clients: 8,
            ..Default::default()
        };
        let cfg = quick(scheme, 8, backend);
        let builder = MicroWorkload::new(mc);
        run(cfg, MicroWorkload::new(mc), move |p| {
            builder.build_engine(p)
        })
    }

    #[test]
    fn all_schemes_run_live_with_mp_transactions_on_both_backends() {
        for backend in BACKENDS {
            for scheme in [
                Scheme::Blocking,
                Scheme::Speculative,
                Scheme::Locking,
                Scheme::Occ,
            ] {
                let r = run_micro(scheme, 0.2, backend);
                assert!(
                    r.committed > 100,
                    "{backend}/{scheme}: only {} committed",
                    r.committed
                );
                assert_eq!(
                    r.sched.local_deadlocks, 0,
                    "{backend}/{scheme}: no deadlocks expected"
                );
                // Every partition engine quiesced with no leaked undo buffers.
                for e in &r.engines {
                    assert_eq!(e.live_undo_buffers(), 0, "{backend}/{scheme}");
                }
            }
        }
    }

    #[test]
    fn speculation_speculates_on_both_backends() {
        for backend in BACKENDS {
            let r = run_micro(Scheme::Speculative, 0.5, backend);
            assert!(r.committed > 100, "{backend}");
            // With real (tiny) in-process latencies stalls are short, but
            // speculative executions must still occur at 50% MP.
            assert!(
                r.sched.speculative_executions > 0,
                "{backend}: no speculation happened live"
            );
        }
    }

    #[test]
    fn commit_latency_histogram_is_populated() {
        for backend in BACKENDS {
            let r = run_micro(Scheme::Speculative, 0.2, backend);
            let lat = r.latency();
            assert!(lat.count > 0, "{backend}: no latency samples");
            assert!(lat.p50 > Nanos::ZERO, "{backend}: zero p50");
            assert!(lat.p999 >= lat.p99 && lat.p99 >= lat.p50, "{backend}");
        }
    }

    #[test]
    fn fixed_work_runs_exactly_the_requested_outcomes() {
        for backend in BACKENDS {
            let mc = MicroConfig {
                mp_fraction: 0.3,
                abort_prob: 0.05,
                clients: 8,
                ..Default::default()
            };
            let cfg = RuntimeConfig::fixed_work(
                SystemConfig::new(Scheme::Speculative)
                    .with_partitions(2)
                    .with_clients(8),
                backend,
                25,
            );
            let builder = MicroWorkload::new(mc);
            let r = run(cfg, MicroWorkload::new(mc), move |p| {
                builder.build_engine(p)
            });
            assert_eq!(
                r.clients.committed + r.clients.user_aborted,
                8 * 25,
                "{backend}: every client must drive exactly 25 requests to an outcome"
            );
            for e in &r.engines {
                assert_eq!(e.live_undo_buffers(), 0, "{backend}");
            }
        }
    }

    #[test]
    fn replicated_backups_match_primaries() {
        for backend in BACKENDS {
            let mc = MicroConfig {
                mp_fraction: 0.3,
                abort_prob: 0.05,
                clients: 8,
                ..Default::default()
            };
            let mut cfg = quick(Scheme::Speculative, 8, backend);
            cfg.system.replication = 2;
            let builder = MicroWorkload::new(mc);
            let r = run(cfg, MicroWorkload::new(mc), move |p| {
                builder.build_engine(p)
            });
            assert!(r.committed > 50, "{backend}");
            assert_eq!(r.backups.len(), r.engines.len());
            for (i, (p, b)) in r.engines.iter().zip(r.backups.iter()).enumerate() {
                assert_eq!(
                    p.fingerprint(),
                    b.fingerprint(),
                    "{backend}: backup {i} diverged from its primary (failover would lose state)"
                );
            }
        }
    }

    #[test]
    fn locking_backups_match_primaries() {
        for backend in BACKENDS {
            let mc = MicroConfig {
                mp_fraction: 0.3,
                conflict_prob: 0.5,
                clients: 8,
                ..Default::default()
            };
            let mut cfg = quick(Scheme::Locking, 8, backend);
            cfg.system.replication = 2;
            let builder = MicroWorkload::new(mc);
            let r = run(cfg, MicroWorkload::new(mc), move |p| {
                builder.build_engine(p)
            });
            assert!(r.committed > 50, "{backend}");
            for (p, b) in r.engines.iter().zip(r.backups.iter()) {
                assert_eq!(p.fingerprint(), b.fingerprint(), "{backend}");
            }
        }
    }

    #[test]
    fn backend_choice_parses() {
        assert_eq!(
            BackendChoice::parse("threaded"),
            Ok(BackendChoice::Threaded)
        );
        assert_eq!(
            BackendChoice::parse("multiplexed"),
            Ok(BackendChoice::multiplexed())
        );
        assert_eq!(
            BackendChoice::parse("multiplexed:7"),
            Ok(BackendChoice::Multiplexed { workers: 7 })
        );
        // Round trip: every backend renders to a spelling that parses back.
        for b in [
            BackendChoice::Threaded,
            BackendChoice::multiplexed(),
            BackendChoice::Multiplexed { workers: 7 },
        ] {
            assert_eq!(BackendChoice::parse(&b.to_string()), Ok(b));
        }
        // Garbage is a loud error naming the input, not a silent fallback.
        let err = BackendChoice::parse("green-threads").unwrap_err();
        assert!(err.contains("green-threads"), "{err}");
        let err = BackendChoice::parse("multiplexed:lots").unwrap_err();
        assert!(err.contains("lots"), "{err}");
    }
}

#[cfg(test)]
mod tpcc_tests {
    use super::*;
    use hcc_common::Scheme;
    use hcc_storage::tpcc::consistency;
    use hcc_workloads::tpcc::{TpccConfig, TpccWorkload};

    #[test]
    fn tpcc_runs_live_and_stays_consistent_on_both_backends() {
        for backend in [
            BackendChoice::Threaded,
            BackendChoice::Multiplexed { workers: 4 },
        ] {
            for scheme in [Scheme::Speculative, Scheme::Locking] {
                let mut tpcc = TpccConfig::new(2, 2);
                tpcc.scale = hcc_storage::tpcc::TpccScale::tiny();
                let mut system = SystemConfig::new(scheme).with_partitions(2).with_clients(8);
                system.lock_timeout = Nanos::from_millis(1);
                let cfg = RuntimeConfig::quick(system, backend)
                    .with_window(Duration::from_millis(30), Duration::from_millis(250));
                let builder = TpccWorkload::new(tpcc);
                let r = run(cfg, TpccWorkload::new(tpcc), move |p| {
                    builder.build_engine(p)
                });
                assert!(r.committed > 100, "{backend}/{scheme}: {}", r.committed);
                for (i, e) in r.engines.iter().enumerate() {
                    consistency::check(&e.store).unwrap_or_else(|v| {
                        panic!("{backend}/{scheme}: P{i} inconsistent: {:?}", &v[..1])
                    });
                    assert_eq!(e.live_undo_buffers(), 0, "{backend}/{scheme}: P{i}");
                }
            }
        }
    }

    #[test]
    fn tpcc_replicated_backups_converge() {
        for backend in [
            BackendChoice::Threaded,
            BackendChoice::Multiplexed { workers: 4 },
        ] {
            let mut tpcc = TpccConfig::new(2, 2);
            tpcc.scale = hcc_storage::tpcc::TpccScale::tiny();
            tpcc.remote_item_prob = 0.2; // plenty of cross-partition new-orders
            let mut system = SystemConfig::new(Scheme::Speculative)
                .with_partitions(2)
                .with_clients(8);
            system.replication = 2;
            let cfg = RuntimeConfig::quick(system, backend)
                .with_window(Duration::from_millis(30), Duration::from_millis(250));
            let builder = TpccWorkload::new(tpcc);
            let r = run(cfg, TpccWorkload::new(tpcc), move |p| {
                builder.build_engine(p)
            });
            assert!(r.committed > 100, "{backend}");
            for (i, (p, b)) in r.engines.iter().zip(r.backups.iter()).enumerate() {
                assert_eq!(
                    p.store.fingerprint(),
                    b.store.fingerprint(),
                    "{backend}: TPC-C backup {i} diverged — failover would lose transactions"
                );
            }
        }
    }
}
